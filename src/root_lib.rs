//! Workspace-root helper library.
//!
//! Exists so the repository root can host the cross-crate integration
//! tests (`tests/`) and runnable examples (`examples/`); it simply
//! re-exports the member crates.

pub use rfnoc;
pub use rfnoc_power;
pub use rfnoc_sim;
pub use rfnoc_topology;
pub use rfnoc_traffic;
