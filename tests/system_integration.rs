//! Cross-crate integration tests: every architecture design point, built
//! and simulated end-to-end through the public `rfnoc` API, with
//! reduced-size windows so the suite stays fast in debug builds.

use rfnoc::{Architecture, Experiment, SystemConfig, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_sim::SimConfig;
use rfnoc_traffic::{AppProfile, TraceKind, TrafficConfig};

fn quick_sim() -> SimConfig {
    let mut cfg = SimConfig::paper_baseline();
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = 4_000;
    cfg.drain_cycles = 10_000;
    cfg
}

fn quick_experiment(arch: Architecture, width: LinkWidth, workload: WorkloadSpec) -> Experiment {
    let system = SystemConfig::new(arch, width).with_sim(quick_sim());
    let mut exp = Experiment::new(system, workload);
    exp.profile_cycles = 4_000;
    exp
}

fn run(arch: Architecture, width: LinkWidth, workload: WorkloadSpec) -> rfnoc::RunReport {
    quick_experiment(arch, width, workload).run()
}

#[test]
fn every_architecture_runs_every_width() {
    let archs = [
        Architecture::Baseline,
        Architecture::StaticShortcuts,
        Architecture::WireShortcuts,
        Architecture::AdaptiveShortcuts { access_points: 50 },
        Architecture::AdaptiveShortcuts { access_points: 25 },
        Architecture::VctMulticast,
        Architecture::RfMulticast { access_points: 50 },
        Architecture::AdaptiveWithMulticast { access_points: 50, shortcut_budget: 15 },
    ];
    let workload = WorkloadSpec::TraceWithMulticast {
        base: TraceKind::Uniform,
        locality: 0.5,
        rate_per_cache: 0.0005,
    };
    for arch in archs {
        for width in LinkWidth::all() {
            let report = run(arch.clone(), width, workload.clone());
            assert!(
                report.stats.completed_messages > 0,
                "{} @{width}: no messages completed",
                arch.name()
            );
            assert!(
                report.stats.completion_rate() > 0.95,
                "{} @{width}: completion rate {:.3}",
                arch.name(),
                report.stats.completion_rate()
            );
            assert!(report.total_power_w() > 0.0);
            assert!(report.total_area_mm2() > 0.0);
        }
    }
}

#[test]
fn static_shortcuts_beat_baseline_latency() {
    for trace in [TraceKind::Uniform, TraceKind::Hotspot1, TraceKind::BiDf] {
        let workload = WorkloadSpec::Trace(trace);
        let base = run(Architecture::Baseline, LinkWidth::B16, workload.clone());
        let stat = run(Architecture::StaticShortcuts, LinkWidth::B16, workload);
        let (lat, _) = stat.normalized_to(&base);
        assert!(
            lat < 0.95,
            "{trace}: static shortcuts should cut latency noticeably, got {lat:.3}"
        );
    }
}

#[test]
fn adaptive_beats_static_on_hotspots() {
    let workload = WorkloadSpec::Trace(TraceKind::Hotspot2);
    let base = run(Architecture::Baseline, LinkWidth::B16, workload.clone());
    let stat = run(Architecture::StaticShortcuts, LinkWidth::B16, workload.clone());
    let adapt = run(
        Architecture::AdaptiveShortcuts { access_points: 50 },
        LinkWidth::B16,
        workload,
    );
    let (stat_lat, _) = stat.normalized_to(&base);
    let (adapt_lat, _) = adapt.normalized_to(&base);
    assert!(
        adapt_lat < stat_lat + 0.02,
        "adaptive ({adapt_lat:.3}) should be at least as good as static ({stat_lat:.3})"
    );
}

#[test]
fn adaptive_25_less_flexible_than_50() {
    let workload = WorkloadSpec::Trace(TraceKind::Hotspot1);
    let base = run(Architecture::Baseline, LinkWidth::B16, workload.clone());
    let a50 = run(
        Architecture::AdaptiveShortcuts { access_points: 50 },
        LinkWidth::B16,
        workload.clone(),
    );
    let a25 = run(
        Architecture::AdaptiveShortcuts { access_points: 25 },
        LinkWidth::B16,
        workload,
    );
    // Both help; 25 access points cost less power than 50.
    assert!(a50.normalized_to(&base).0 < 1.0);
    assert!(a25.normalized_to(&base).0 < 1.0);
    assert!(a25.total_power_w() < a50.total_power_w());
}

#[test]
fn headline_adaptive_4b_matches_baseline_at_much_lower_power() {
    // The paper's central claim (§5.1.2): adaptive RF-I shortcuts on a 4B
    // mesh match the 16B baseline's latency within a few percent while
    // cutting power by ~60% and area by ~82%.
    let workload = WorkloadSpec::Trace(TraceKind::Uniform);
    let base = run(Architecture::Baseline, LinkWidth::B16, workload.clone());
    let adaptive = run(
        Architecture::AdaptiveShortcuts { access_points: 50 },
        LinkWidth::B4,
        workload,
    );
    let (lat, pow) = adaptive.normalized_to(&base);
    assert!(lat < 1.10, "latency should be comparable, got {lat:.3}x");
    assert!(pow < 0.48, "power should drop by >52%, got {pow:.3}x");
    let area_saving = 1.0 - adaptive.total_area_mm2() / base.total_area_mm2();
    assert!((area_saving - 0.823).abs() < 0.02, "area saving {area_saving:.3}");
}

#[test]
fn bandwidth_reduction_power_ladder() {
    let workload = WorkloadSpec::Trace(TraceKind::Uniform);
    let p16 = run(Architecture::Baseline, LinkWidth::B16, workload.clone());
    let p8 = run(Architecture::Baseline, LinkWidth::B8, workload.clone());
    let p4 = run(Architecture::Baseline, LinkWidth::B4, workload);
    let s8 = 1.0 - p8.total_power_w() / p16.total_power_w();
    let s4 = 1.0 - p4.total_power_w() / p16.total_power_w();
    assert!((s8 - 0.48).abs() < 0.08, "8B saving {s8:.3} (paper 0.48)");
    assert!((s4 - 0.72).abs() < 0.08, "4B saving {s4:.3} (paper 0.72)");
    // And latency rises as bandwidth falls.
    assert!(p8.avg_latency() > p16.avg_latency());
    assert!(p4.avg_latency() > p8.avg_latency());
}

#[test]
fn wire_shortcuts_slower_than_rf_shortcuts() {
    let workload = WorkloadSpec::Trace(TraceKind::Uniform);
    let rf = run(Architecture::StaticShortcuts, LinkWidth::B16, workload.clone());
    let wire = run(Architecture::WireShortcuts, LinkWidth::B16, workload);
    assert!(
        wire.avg_latency() > rf.avg_latency(),
        "wire {:.1} vs RF {:.1}: single-cycle RF-I must win",
        wire.avg_latency(),
        rf.avg_latency()
    );
    // Wire shortcuts burn repeated-wire energy instead of RF.
    assert_eq!(wire.power.rf_dynamic_w, 0.0);
    assert_eq!(wire.power.rf_static_w, 0.0);
    assert!(wire.power.link_dynamic_w > rf.power.link_dynamic_w);
}

#[test]
fn rf_multicast_beats_unicast_expansion() {
    let workload = WorkloadSpec::TraceWithMulticast {
        base: TraceKind::Uniform,
        locality: 0.2,
        rate_per_cache: 0.001,
    };
    let base = run(Architecture::Baseline, LinkWidth::B16, workload.clone());
    let mc = run(Architecture::RfMulticast { access_points: 50 }, LinkWidth::B16, workload.clone());
    let mcsc = run(
        Architecture::AdaptiveWithMulticast { access_points: 50, shortcut_budget: 15 },
        LinkWidth::B16,
        workload,
    );
    let (mc_lat, _) = mc.normalized_to(&base);
    let (mcsc_lat, _) = mcsc.normalized_to(&base);
    assert!(mc_lat < 1.0, "MC should reduce latency, got {mc_lat:.3}");
    assert!(mcsc_lat < mc_lat, "MC+SC ({mcsc_lat:.3}) should beat MC ({mc_lat:.3})");
}

#[test]
fn app_traces_run_end_to_end() {
    for profile in AppProfile::paper_suite() {
        let workload = WorkloadSpec::App(profile);
        let report = run(Architecture::Baseline, LinkWidth::B16, workload);
        assert!(report.stats.completed_messages > 0);
        assert!(!report.stats.saturated, "{}: saturated", report.workload);
    }
}

#[test]
fn reports_are_deterministic() {
    let workload = WorkloadSpec::Trace(TraceKind::HotBiDf);
    let a = run(Architecture::AdaptiveShortcuts { access_points: 50 }, LinkWidth::B8, workload.clone());
    let b = run(Architecture::AdaptiveShortcuts { access_points: 50 }, LinkWidth::B8, workload);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.power, b.power);
}

#[test]
fn custom_traffic_config_is_honoured() {
    let workload = WorkloadSpec::Trace(TraceKind::Uniform);
    let light = quick_experiment(Architecture::Baseline, LinkWidth::B16, workload.clone())
        .with_traffic(TrafficConfig { injection_rate: 0.001, ..TrafficConfig::default() })
        .run();
    let heavy = quick_experiment(Architecture::Baseline, LinkWidth::B16, workload)
        .with_traffic(TrafficConfig { injection_rate: 0.008, ..TrafficConfig::default() })
        .run();
    assert!(heavy.stats.injected_messages > 4 * light.stats.injected_messages);
    assert!(heavy.total_power_w() > light.total_power_w());
}

#[test]
fn event_counter_profiling_matches_generator_profiling() {
    // The §3.2.2 hardware-counter path: profiling via the simulated
    // network's event counters must select shortcuts of comparable quality
    // to the oracle (generator-side) profile.
    use rfnoc::ProfileSource;
    let workload = WorkloadSpec::Trace(TraceKind::Hotspot1);
    let system = SystemConfig::new(
        Architecture::AdaptiveShortcuts { access_points: 50 },
        LinkWidth::B16,
    )
    .with_sim(quick_sim());
    let mut oracle = Experiment::new(system.clone(), workload.clone());
    oracle.profile_cycles = 4_000;
    let mut counters = Experiment::new(system, workload.clone());
    counters.profile_cycles = 4_000;
    counters.profile_source = ProfileSource::EventCounters;

    let base = run(Architecture::Baseline, LinkWidth::B16, workload);
    let (oracle_lat, _) = oracle.run().normalized_to(&base);
    let (counter_lat, _) = counters.run().normalized_to(&base);
    assert!(counter_lat < 0.95, "counter-profiled adaptive must still win: {counter_lat:.3}");
    assert!(
        (counter_lat - oracle_lat).abs() < 0.08,
        "counter ({counter_lat:.3}) and oracle ({oracle_lat:.3}) profiles should agree"
    );
}
