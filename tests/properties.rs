//! Property-based tests over the core data structures and invariants,
//! spanning the topology, traffic, and simulator crates.

use proptest::prelude::*;
use rfnoc_power::LinkWidth;
use rfnoc_sim::{
    DestSet, MessageClass, MessageSpec, Network, NetworkSpec, ScriptedWorkload, SimConfig,
};
use rfnoc_topology::routing::{xy_route, RoutingTables};
use rfnoc_topology::select::{check_constraints, select_max_cost, SelectionConstraints};
use rfnoc_topology::{GridDims, GridGraph, PairWeights, Shortcut};

fn quick_config() -> SimConfig {
    let mut cfg = SimConfig::paper_baseline();
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 2_000;
    cfg.drain_cycles = 30_000;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// APSP distances on a pure mesh equal Manhattan distance.
    #[test]
    fn mesh_distances_are_manhattan(w in 2usize..8, h in 2usize..8) {
        let dims = GridDims::new(w, h);
        let dist = GridGraph::mesh(dims).distances();
        for a in 0..dims.nodes() {
            for b in 0..dims.nodes() {
                prop_assert_eq!(dist.get(a, b), dims.manhattan(a, b));
            }
        }
    }

    /// Adding any set of legal shortcuts never increases any pairwise
    /// distance, and incremental updates agree with full recomputation.
    #[test]
    fn shortcuts_never_hurt(
        w in 3usize..8,
        h in 3usize..8,
        edges in proptest::collection::vec((0usize..49, 0usize..49), 0..6),
    ) {
        let dims = GridDims::new(w, h);
        let n = dims.nodes();
        let mut g = GridGraph::mesh(dims);
        let base = g.distances();
        let mut dist = base.clone();
        for (a, b) in edges {
            let (a, b) = (a % n, b % n);
            if a == b || g.shortcuts().contains(&Shortcut::new(a, b)) {
                continue;
            }
            g.add_shortcut(Shortcut::new(a, b));
            dist.apply_edge(a, b);
        }
        prop_assert_eq!(&dist, &g.distances());
        for a in 0..n {
            for b in 0..n {
                prop_assert!(dist.get(a, b) <= base.get(a, b));
            }
        }
    }

    /// Shortest-path routing tables produce loop-free routes whose length
    /// equals the APSP distance, for arbitrary legal shortcut sets.
    #[test]
    fn routing_tables_are_shortest(
        seed_edges in proptest::collection::vec((0usize..36, 0usize..36), 0..5),
    ) {
        let dims = GridDims::new(6, 6);
        let mut g = GridGraph::mesh(dims);
        let mut used_src = [false; 36];
        let mut used_dst = [false; 36];
        for (a, b) in seed_edges {
            if a != b && !used_src[a] && !used_dst[b] {
                g.add_shortcut(Shortcut::new(a, b));
                used_src[a] = true;
                used_dst[b] = true;
            }
        }
        let dist = g.distances();
        let tables = RoutingTables::shortest_path(&g);
        for src in 0..36 {
            for dst in 0..36 {
                let route = tables.route(src, dst);
                prop_assert_eq!(route.len() as u32 - 1, dist.get(src, dst));
            }
        }
    }

    /// XY routes only ever move through adjacent routers and have
    /// Manhattan length.
    #[test]
    fn xy_routes_are_minimal(src in 0usize..100, dst in 0usize..100) {
        let dims = GridDims::new(10, 10);
        let route = xy_route(dims, src, dst);
        prop_assert_eq!(route.len() as u32 - 1, dims.manhattan(src, dst));
        for pair in route.windows(2) {
            prop_assert_eq!(dims.manhattan(pair[0], pair[1]), 1);
        }
    }

    /// The max-cost selection never violates its constraints for random
    /// eligibility sets and budgets.
    #[test]
    fn selection_respects_random_constraints(
        budget in 1usize..20,
        eligible in proptest::collection::vec(any::<bool>(), 64),
    ) {
        let dims = GridDims::new(8, 8);
        let g = GridGraph::mesh(dims);
        let weights = PairWeights::uniform(64);
        let constraints = SelectionConstraints {
            budget,
            eligible,
            max_out_per_node: 1,
            max_in_per_node: 1,
        };
        let picked = select_max_cost(&g, &weights, &constraints);
        prop_assert!(check_constraints(&g, &picked, &constraints).is_ok());
    }

    /// Every injected message is delivered exactly once (flit conservation)
    /// on arbitrary message schedules, at every link width.
    #[test]
    fn all_messages_delivered(
        msgs in proptest::collection::vec((0usize..36, 0usize..36, 0u8..3), 1..60),
        width_idx in 0usize..3,
    ) {
        let dims = GridDims::new(6, 6);
        let width = LinkWidth::all()[width_idx];
        let events: Vec<(u64, MessageSpec)> = msgs
            .iter()
            .enumerate()
            .filter(|(_, (s, d, _))| s != d)
            .map(|(i, (s, d, c))| {
                let class = match c {
                    0 => MessageClass::Request,
                    1 => MessageClass::Data,
                    _ => MessageClass::Memory,
                };
                ((i / 4) as u64, MessageSpec::unicast(*s, *d, class))
            })
            .collect();
        let expected: u64 = events.len() as u64;
        let expected_flits: u64 =
            events.iter().map(|(_, m)| width.flits_for(m.bytes()) as u64).sum();
        let cfg = quick_config().with_link_width(width);
        let mut network = Network::new(NetworkSpec::mesh_baseline(dims, cfg));
        let stats = network.run(&mut ScriptedWorkload::new(events));
        prop_assert_eq!(stats.completed_messages, expected);
        prop_assert_eq!(stats.ejected_flits, expected_flits);
        prop_assert!(!stats.saturated);
    }

    /// Multicast messages complete exactly once regardless of destination
    /// set, including sets containing the source.
    #[test]
    fn multicasts_complete_once(
        src in 0usize..36,
        dests in proptest::collection::hash_set(0usize..36, 1..10),
    ) {
        let dims = GridDims::new(6, 6);
        let set = DestSet::from_nodes(dests.iter().copied());
        let mut network =
            Network::new(NetworkSpec::mesh_baseline(dims, quick_config()));
        let stats = network.run(&mut ScriptedWorkload::new(vec![(
            0,
            MessageSpec::multicast(src, set),
        )]));
        prop_assert_eq!(stats.completed_messages, 1);
        prop_assert!(!stats.saturated);
    }
}
