//! Quickstart: the paper's headline comparison on one trace.
//!
//! Runs three design points on the 1Hotspot probabilistic trace:
//!
//! 1. the 16B mesh baseline,
//! 2. static (design-time) RF-I shortcuts on the 16B mesh,
//! 3. adaptive (application-specific) RF-I shortcuts on a **4B** mesh —
//!    the paper's headline configuration, which matches baseline latency
//!    while cutting NoC power by ~65% and silicon area by ~82%.
//!
//! Run with:
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rfnoc::{Architecture, Experiment, SystemConfig, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_traffic::TraceKind;

fn main() {
    let workload = WorkloadSpec::Trace(TraceKind::Hotspot1);

    println!("Running 16B mesh baseline...");
    let baseline = Experiment::new(
        SystemConfig::new(Architecture::Baseline, LinkWidth::B16),
        workload.clone(),
    )
    .run();
    println!("  {baseline}");

    println!("Running static shortcuts @ 16B...");
    let static_sc = Experiment::new(
        SystemConfig::new(Architecture::StaticShortcuts, LinkWidth::B16),
        workload.clone(),
    )
    .run();
    println!("  {static_sc}");

    println!("Running adaptive shortcuts @ 4B (the headline design)...");
    let adaptive = Experiment::new(
        SystemConfig::new(
            Architecture::AdaptiveShortcuts { access_points: 50 },
            LinkWidth::B4,
        ),
        workload,
    )
    .run();
    println!("  {adaptive}");

    println!();
    println!("Normalized to the 16B baseline (latency x, power x):");
    let (l, p) = static_sc.normalized_to(&baseline);
    println!("  static @16B   : {l:.2}x latency, {p:.2}x power");
    let (l, p) = adaptive.normalized_to(&baseline);
    println!("  adaptive @4B  : {l:.2}x latency, {p:.2}x power");
    println!(
        "  adaptive @4B area: {:.1} mm2 vs baseline {:.1} mm2 ({:.0}% saving)",
        adaptive.total_area_mm2(),
        baseline.total_area_mm2(),
        (1.0 - adaptive.total_area_mm2() / baseline.total_area_mm2()) * 100.0
    );
}
