//! Bandwidth-reduction sweep (the experiment behind Figure 8).
//!
//! Sweeps the conventional mesh link width over {16B, 8B, 4B} for the
//! baseline, static-shortcut, and adaptive-shortcut architectures on one
//! trace, printing absolute and normalised latency/power plus the power
//! breakdown per component.
//!
//! ```sh
//! cargo run --release --example bandwidth_sweep [trace]
//! ```

use rfnoc::{Architecture, Experiment, RunReport, SystemConfig, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_traffic::TraceKind;

fn run(arch: Architecture, width: LinkWidth, workload: &WorkloadSpec) -> RunReport {
    Experiment::new(SystemConfig::new(arch, width), workload.clone()).run()
}

fn main() {
    let trace = std::env::args()
        .nth(1)
        .map(|name| {
            TraceKind::all()
                .into_iter()
                .find(|t| t.name().eq_ignore_ascii_case(&name))
                .unwrap_or_else(|| panic!("unknown trace {name}"))
        })
        .unwrap_or(TraceKind::Uniform);
    let workload = WorkloadSpec::Trace(trace);
    println!("Bandwidth sweep on the {trace} trace\n");

    let baseline16 = run(Architecture::Baseline, LinkWidth::B16, &workload);
    println!(
        "{:<40} {:>7} {:>9} {:>7} {:>7}",
        "design", "lat", "power(W)", "lat_n", "pow_n"
    );
    for width in LinkWidth::all() {
        for arch in [
            Architecture::Baseline,
            Architecture::StaticShortcuts,
            Architecture::AdaptiveShortcuts { access_points: 50 },
        ] {
            let report = if arch == Architecture::Baseline && width == LinkWidth::B16 {
                baseline16.clone()
            } else {
                run(arch.clone(), width, &workload)
            };
            let (lat_n, pow_n) = report.normalized_to(&baseline16);
            println!(
                "{:<40} {:>7.1} {:>9.3} {:>7.2} {:>7.2}{}",
                format!("{} @{}", report.system, width),
                report.avg_latency(),
                report.total_power_w(),
                lat_n,
                pow_n,
                if report.stats.saturated { "  [SATURATED]" } else { "" }
            );
            println!("    breakdown: {}", report.power);
        }
    }
}
