//! Fault injection and graceful degradation.
//!
//! Three escalating scenarios on the adaptive RF-I design:
//!
//! 1. a clean run for reference,
//! 2. a mid-run RF transmitter failure — the shortcut drains, the
//!    routing tables rewrite, and traffic falls back to the mesh with a
//!    modest latency penalty and zero lost packets,
//! 3. a hand-built fault plan that cuts a corner router off the mesh —
//!    the forward-progress watchdog stops the run with a structured
//!    [`rfnoc_sim::HealthReport`] instead of hanging until the drain
//!    limit.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```

use rfnoc::{Architecture, Experiment, SystemConfig, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_sim::{
    FaultEvent, FaultPlan, FaultRates, MessageClass, MessageSpec, Network, NetworkSpec,
    ScriptedWorkload, SimConfig,
};
use rfnoc_topology::GridDims;
use rfnoc_traffic::TraceKind;

fn main() {
    let system = SystemConfig::new(
        Architecture::AdaptiveShortcuts { access_points: 50 },
        LinkWidth::B16,
    );
    let workload = WorkloadSpec::Trace(TraceKind::Hotspot1);

    // 1. Clean reference run.
    let clean = Experiment::new(system.clone(), workload.clone()).run();
    println!("clean:    latency {:.1} cyc, completion {:.1}%",
        clean.avg_latency(), clean.stats.completion_rate() * 100.0);

    // 2. Seed-driven RF + mesh faults: two transmitters die, one mesh
    //    link fails, and a handful of flits are glitched mid-flight.
    let rates = FaultRates {
        shortcut_failures: 2.0,
        mesh_link_failures: 1.0,
        glitches: 8.0,
        repair_after: None,
    };
    let faulted = Experiment::new(system, workload)
        .with_random_faults(7, rates)
        .run();
    println!(
        "faulted:  latency {:.1} cyc, completion {:.1}% \
         ({} shortcut faults, {} mesh faults, {} retransmits)",
        faulted.avg_latency(),
        faulted.stats.completion_rate() * 100.0,
        faulted.stats.shortcut_faults,
        faulted.stats.mesh_link_faults,
        faulted.stats.retransmitted_flits,
    );
    assert!(faulted.stats.is_healthy(), "degradation must stay graceful");

    // 3. Partition a router and let the watchdog catch it. Node 0 of a
    //    4×4 mesh only connects through nodes 1 and 4.
    let plan = FaultPlan::new(vec![
        (10, FaultEvent::MeshLinkDown { a: 0, b: 1 }),
        (10, FaultEvent::MeshLinkDown { a: 0, b: 4 }),
    ]);
    let mut cfg = SimConfig::paper_baseline();
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 1_000;
    cfg.drain_cycles = 100_000;
    cfg.watchdog_cycles = 300;
    let spec = NetworkSpec::mesh_baseline(GridDims::new(4, 4), cfg).with_fault_plan(plan);
    let mut network = Network::new(spec);
    let stats = network.run(&mut ScriptedWorkload::new(vec![(
        50,
        MessageSpec::unicast(5, 0, MessageClass::Data),
    )]));
    let health = stats.health.expect("the watchdog reports the partition");
    println!("watchdog: {health}");
    println!(
        "          stopped at cycle {} — {} cycles into a 100k-cycle drain budget",
        stats.end_cycle, stats.end_cycle,
    );
}
