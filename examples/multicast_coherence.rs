//! Multicast coherence acceleration (the experiment behind Figure 9).
//!
//! Compares four ways to deliver cache-to-cores coherence multicasts
//! (invalidates/fills) on a probabilistic trace augmented with multicast
//! messages at two destination-set reuse levels:
//!
//! * **Baseline** — each multicast expanded into per-destination unicasts;
//! * **VCT** — Virtual Circuit Tree multicast in the conventional mesh;
//! * **MC** — the RF-I broadcast channel (50 receivers, no shortcuts);
//! * **MC+SC** — 15 adaptive shortcuts + 35 receivers on the broadcast band.
//!
//! ```sh
//! cargo run --release --example multicast_coherence
//! ```

use rfnoc::{Architecture, Experiment, SystemConfig, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_traffic::TraceKind;

fn main() {
    for &locality in &[0.2, 0.5] {
        println!(
            "=== destination-set locality {}% (lower = more reuse) ===",
            (locality * 100.0) as u32
        );
        let workload = WorkloadSpec::TraceWithMulticast {
            base: TraceKind::Uniform,
            locality,
            rate_per_cache: 0.001,
        };
        let baseline = Experiment::new(
            SystemConfig::new(Architecture::Baseline, LinkWidth::B16),
            workload.clone(),
        )
        .run();
        println!("  {baseline}");
        let arch_points = [
            Architecture::VctMulticast,
            Architecture::RfMulticast { access_points: 50 },
            Architecture::AdaptiveWithMulticast { access_points: 50, shortcut_budget: 15 },
        ];
        for arch in arch_points {
            let report =
                Experiment::new(SystemConfig::new(arch, LinkWidth::B16), workload.clone()).run();
            let (lat, pow) = report.normalized_to(&baseline);
            println!("  {report}");
            println!("    normalized: {lat:.2}x latency, {pow:.2}x power");
        }
        println!();
    }
}
