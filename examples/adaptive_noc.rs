//! Adaptive NoC reconfiguration walkthrough (paper §3.2.2).
//!
//! Shows the full adaptive flow on two very different workloads:
//!
//! 1. profile the application's inter-router communication frequencies
//!    (the event-counter statistics of §3.2.2),
//! 2. select application-specific shortcuts with the region-aware
//!    `F·W`-weighted heuristic,
//! 3. retune the RF-I transmitters/receivers and rebuild the routing
//!    tables, and
//! 4. compare against the architecture-specific (static) shortcut set.
//!
//! The printed maps show how the selected shortcuts crowd around the
//! hotspot for `1Hotspot` but spread out for `Uniform` — the adaptivity
//! that lets one physical RF-I overlay serve both.
//!
//! ```sh
//! cargo run --release --example adaptive_noc
//! ```

use rfnoc::{static_shortcuts, Architecture, Experiment, SystemConfig, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_topology::Shortcut;
use rfnoc_traffic::{Placement, TraceKind};

/// Renders the mesh with shortcut sources (S), destinations (D), both (B).
fn render_map(placement: &Placement, shortcuts: &[Shortcut]) -> String {
    let dims = placement.dims();
    let mut grid = vec![b'.'; dims.nodes()];
    for s in shortcuts {
        grid[s.src] = if grid[s.src] == b'D' { b'B' } else { b'S' };
        grid[s.dst] = if grid[s.dst] == b'S' { b'B' } else { b'D' };
    }
    let mut out = String::new();
    for y in 0..dims.height() {
        out.push_str("    ");
        for x in 0..dims.width() {
            out.push(grid[y * dims.width() + x] as char);
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

fn main() {
    let placement = Placement::paper_10x10();

    println!("Architecture-specific (static) shortcuts, selected at design time:");
    let static_set = static_shortcuts(&placement, 16);
    println!("{}", render_map(&placement, &static_set));

    for trace in [TraceKind::Hotspot1, TraceKind::Uniform] {
        let workload = WorkloadSpec::Trace(trace);
        let system = SystemConfig::new(
            Architecture::AdaptiveShortcuts { access_points: 50 },
            LinkWidth::B16,
        );
        let experiment = Experiment::new(system, workload.clone());
        let built = experiment.build();
        println!("Adaptive shortcuts reconfigured for {trace}:");
        println!("{}", render_map(&placement, &built.shortcuts));

        let report = experiment.run();
        let baseline = Experiment::new(
            SystemConfig::new(Architecture::Baseline, LinkWidth::B16),
            workload,
        )
        .run();
        let (lat, _) = report.normalized_to(&baseline);
        println!(
            "  {trace}: adaptive latency {:.1} cycles vs baseline {:.1} ({:.0}% reduction)\n",
            report.avg_latency(),
            baseline.avg_latency(),
            (1.0 - lat) * 100.0
        );
    }
}
