//! Online reconfiguration: retuning the RF-I while traffic flows.
//!
//! Demonstrates the paper's §3.2 runtime path end to end, driving the
//! simulator directly:
//!
//! 1. run a hotspot workload on adaptive shortcuts tuned for it,
//! 2. profile a *different* workload with the network's own event
//!    counters (§3.2.2's "event counters in our network"),
//! 3. call [`rfnoc_sim::Network::reconfigure`] — the RF channels drain,
//!    the transmitters/receivers retune, the routing tables rewrite over
//!    99 cycles — all without dropping in-flight traffic,
//! 4. keep running under the new workload and compare.
//!
//! ```sh
//! cargo run --release --example online_reconfiguration
//! ```

use rfnoc::{adaptive_shortcuts, Architecture, Experiment, ProfileSource, SystemConfig, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_sim::{Network, SimConfig, Workload};
use rfnoc_traffic::{staggered_rf_routers, Placement, TraceKind, TrafficConfig};

fn main() {
    let placement = Placement::paper_10x10();
    let traffic = TrafficConfig::default();
    let phase_a = WorkloadSpec::Trace(TraceKind::Hotspot1);
    let phase_b = WorkloadSpec::Trace(TraceKind::Hotspot4);

    // Build the network tuned for phase A (hardware-counter profile).
    let mut experiment = Experiment::new(
        SystemConfig::new(
            Architecture::AdaptiveShortcuts { access_points: 50 },
            LinkWidth::B16,
        ),
        phase_a.clone(),
    );
    experiment.profile_source = ProfileSource::EventCounters;
    let built = experiment.build();
    println!("phase A shortcuts: {:?}", built.shortcuts.len());

    let mut cfg = SimConfig::paper_baseline();
    cfg.warmup_cycles = 1_000;
    cfg.measure_cycles = 40_000;
    let mut spec = built.network.clone();
    spec.config = cfg;
    let mut network = Network::new(spec);

    // Drive phase A manually for 20k cycles.
    let mut workload_a = phase_a.instantiate(&placement, &traffic);
    let mut buf = Vec::new();
    while network.cycle() < 20_000 {
        buf.clear();
        workload_a.messages_at(network.cycle(), &mut buf);
        for m in buf.drain(..) {
            network.inject_message(m);
        }
        network.step();
    }
    println!("phase A done at cycle {}", network.cycle());

    // Select the phase-B shortcut set and retune live.
    let rf50 = staggered_rf_routers(placement.dims(), 50);
    let profile_b = phase_b.profile(&placement, &traffic, 10_000);
    let new_set = adaptive_shortcuts(&placement, &rf50, &profile_b, 16);
    network.reconfigure(new_set).expect("legal shortcut set on a table-routed network");
    println!("reconfiguration requested (drain → retune → 99-cycle table rewrite)");

    // Phase B traffic, while the reconfiguration completes underneath.
    let mut workload_b = phase_b.instantiate(&placement, &traffic);
    while network.cycle() < 40_000 {
        buf.clear();
        workload_b.messages_at(network.cycle(), &mut buf);
        for m in buf.drain(..) {
            network.inject_message(m);
        }
        network.step();
    }
    let stats = network.run(&mut NoMore);
    println!(
        "completed {} reconfigurations; {} messages delivered, avg latency {:.1} cycles, avg hops {:.2}",
        network.reconfigurations(),
        stats.completed_messages,
        stats.avg_message_latency(),
        stats.avg_hops(),
    );
}

/// A workload that has finished injecting.
struct NoMore;

impl Workload for NoMore {
    fn messages_at(&mut self, _cycle: u64, _out: &mut Vec<rfnoc_sim::MessageSpec>) {}
}
