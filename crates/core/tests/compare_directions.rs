//! Direction-aware keyword handling in `rfnoc::compare` — the rules the
//! regression gate ([`rfnoc::gate`]) inherits. These pin down exactly
//! which metric leaves are throughput-like, which are cost-like, which
//! are informational, and how id-keyed arrays and truncated inputs
//! behave, since a silent direction flip would invert a gate verdict.

use rfnoc::compare::{compare, direction_of, flatten, parse, Direction};

#[test]
fn higher_is_better_keywords() {
    for path in [
        "cycles_per_sec",
        "configs[mesh].flit_grants_per_sec",
        "throughput",
        "completion_rate",
        "recovery.coverage",
    ] {
        assert_eq!(direction_of(path), Direction::HigherIsBetter, "{path}");
    }
}

#[test]
fn lower_is_better_keywords() {
    for path in [
        "avg_latency_cycles",
        "points[p].p99_latency_cycles",
        "stall_cycles",
        "barrier_wait_frac",
        "wall_ms",
        "dropped",
        "shortcut_faults",
        "retransmit_count",
        "shard_imbalance",
        "configs[mesh64x64_saturated_t4].shard_imbalance",
    ] {
        assert_eq!(direction_of(path), Direction::LowerIsBetter, "{path}");
    }
}

#[test]
fn unmatched_leaves_are_informational() {
    for path in ["injected_messages", "jobs", "avg_hops", "end_cycle", "git"] {
        assert_eq!(direction_of(path), Direction::Informational, "{path}");
    }
}

#[test]
fn spread_noise_metadata_is_never_gated() {
    // The stems would match a directional keyword (`per_sec`), but the
    // `spread` marker wins: noise metadata is input to the gate's band,
    // never a gated metric itself.
    for path in [
        "cycles_per_sec_spread_min",
        "cycles_per_sec_spread_max",
        "configs[mesh].cycles_per_sec_spread_stddev",
    ] {
        assert_eq!(direction_of(path), Direction::Informational, "{path}");
    }
}

#[test]
fn direction_uses_only_the_last_path_segment() {
    // A directional keyword in a parent segment must not leak into the
    // leaf's classification.
    assert_eq!(direction_of("latency.count"), Direction::Informational);
    assert_eq!(direction_of("throughput.wall_ms"), Direction::LowerIsBetter);
}

#[test]
fn id_keyed_arrays_flatten_to_stable_paths() {
    let doc = parse(
        r#"{"configs": [
            {"id": "mesh", "cycles_per_sec": 100.0, "wall_ms": 2.0},
            {"id": "rf", "cycles_per_sec": 250.0}
        ]}"#,
    )
    .unwrap();
    let flat = flatten(&doc);
    assert_eq!(flat.get("configs[mesh].cycles_per_sec"), Some(&100.0));
    assert_eq!(flat.get("configs[mesh].wall_ms"), Some(&2.0));
    assert_eq!(flat.get("configs[rf].cycles_per_sec"), Some(&250.0));
}

#[test]
fn compare_is_direction_aware_per_keyword() {
    let base = parse(
        r#"{"cycles_per_sec": 100.0, "avg_latency_cycles": 10.0, "injected_messages": 7}"#,
    )
    .unwrap();
    let new = parse(
        r#"{"cycles_per_sec": 50.0, "avg_latency_cycles": 20.0, "injected_messages": 99}"#,
    )
    .unwrap();
    let cmp = compare(&base, &new);
    let worsening = |path: &str| {
        cmp.deltas
            .iter()
            .find(|d| d.path == path)
            .unwrap_or_else(|| panic!("missing {path}"))
            .worsening_pct
    };
    // Throughput halved: 50% worse. Latency doubled: 100% worse.
    assert_eq!(worsening("cycles_per_sec"), Some(50.0));
    assert_eq!(worsening("avg_latency_cycles"), Some(100.0));
    // Informational metrics never produce a worsening figure.
    assert_eq!(worsening("injected_messages"), None);
}

#[test]
fn improvements_report_negative_worsening() {
    let base = parse(r#"{"cycles_per_sec": 100.0}"#).unwrap();
    let new = parse(r#"{"cycles_per_sec": 120.0}"#).unwrap();
    let cmp = compare(&base, &new);
    let d = &cmp.deltas[0];
    assert!(d.worsening_pct.unwrap() < 0.0, "{d:?}");
    assert!(!d.breaches(0.0));
}

#[test]
fn ledger_summary_tolerates_a_truncated_final_line() {
    // A live ledger file can end mid-record (the writer flushes whole
    // lines, but a reader may race the last one); only a *final* partial
    // line is forgiven.
    let good = concat!(
        r#"{"t_ms": 1.0, "kind": "plan_start", "points": 2}"#,
        "\n",
        r#"{"t_ms": 2.0, "kind": "point_start", "point": "a""#, // truncated
    );
    let summary = rfnoc::ledger::LedgerSummary::from_text(good).unwrap();
    assert_eq!(summary.records, 1);

    let bad = concat!(
        r#"{"t_ms": 1.0, "kind": "plan_start""#, // truncated mid-stream
        "\n",
        r#"{"t_ms": 2.0, "kind": "plan_finish", "wall_ms": 3.0}"#,
    );
    assert!(rfnoc::ledger::LedgerSummary::from_text(bad).is_err());
}
