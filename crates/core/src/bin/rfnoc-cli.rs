//! `rfnoc-cli` — command-line front end for the RF-I NoC reproduction.
//!
//! ```text
//! rfnoc-cli run <arch> <width> <workload> [fault flags]
//!                                            simulate one design point
//! rfnoc-cli compare <workload>               baseline vs static vs adaptive
//! rfnoc-cli compare <A.json> <B.json> [--threshold PCT]
//!                                            diff two result artifacts;
//!                                            exit 2 on a regression
//! rfnoc-cli sweep <arch> <workload>          16B/8B/4B width sweep
//! rfnoc-cli map <workload>                   adaptive shortcut map
//! rfnoc-cli tail <ledger.jsonl> [--follow]   live run-ledger summary
//! rfnoc-cli ledger-summary <ledger.jsonl>    ledger -> flat JSON report
//! rfnoc-cli info                             architecture & workload names
//! ```
//!
//! Fault flags (run only): `--fault-seed <n>`, `--shortcut-faults <f>`,
//! `--mesh-faults <f>`, `--glitches <f>`, `--repair-after <cycles>` —
//! expected event counts for a deterministic random fault plan spread
//! over the measurement window.
//!
//! Telemetry (run only): `--telemetry <interval>` enables the
//! interval-sampled telemetry layer and prints the per-interval timeline
//! (rates, RF grants, stalls, fault/retune events) after the report.
//!
//! Threads (run only): `--sim-threads <n>` steps the router sweep on `n`
//! worker threads (the sharded cycle engine). Results are bit-identical
//! at any thread count; `0` is rejected.
//!
//! Ledger: `tail` renders a compact live view of a run-ledger JSONL file
//! (written by the bench runner's `--ledger <name>` flag) — throughput
//! sparkline, slowest shard, imbalance ratio, ETA from the remaining plan
//! points; `--follow` re-renders as the file grows and exits once the
//! plan finishes. `ledger-summary` reduces a finished ledger to a flat
//! JSON report (metric names carry the `compare` direction keywords, so
//! two reports gate with `rfnoc-cli compare a.json b.json`); schema
//! problems go to stderr and exit code 2.

use rfnoc::{Architecture, Experiment, FaultSpec, RunReport, SystemConfig, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_sim::{FaultRates, TelemetryConfig, TelemetryReport, TimelineEventKind};
use rfnoc_traffic::{AppProfile, Placement, TraceKind};
use std::process::ExitCode;

const ARCH_NAMES: &[&str] = &[
    "baseline",
    "static",
    "wire",
    "adaptive",
    "adaptive25",
    "vct",
    "mc",
    "mcsc",
];

fn parse_arch(name: &str) -> Option<Architecture> {
    Some(match name {
        "baseline" => Architecture::Baseline,
        "static" => Architecture::StaticShortcuts,
        "wire" => Architecture::WireShortcuts,
        "adaptive" => Architecture::AdaptiveShortcuts { access_points: 50 },
        "adaptive25" => Architecture::AdaptiveShortcuts { access_points: 25 },
        "vct" => Architecture::VctMulticast,
        "mc" => Architecture::RfMulticast { access_points: 50 },
        "mcsc" => {
            Architecture::AdaptiveWithMulticast { access_points: 50, shortcut_budget: 15 }
        }
        _ => return None,
    })
}

fn parse_width(name: &str) -> Option<LinkWidth> {
    Some(match name {
        "16" | "16B" | "16b" => LinkWidth::B16,
        "8" | "8B" | "8b" => LinkWidth::B8,
        "4" | "4B" | "4b" => LinkWidth::B4,
        _ => return None,
    })
}

fn parse_workload(name: &str) -> Option<WorkloadSpec> {
    if let Some(kind) =
        TraceKind::all().into_iter().find(|t| t.name().eq_ignore_ascii_case(name))
    {
        return Some(WorkloadSpec::Trace(kind));
    }
    if let Some(app) =
        AppProfile::paper_suite().into_iter().find(|p| p.name.eq_ignore_ascii_case(name))
    {
        return Some(WorkloadSpec::App(app));
    }
    // trace+mc20 / trace+mc50 forms
    if let Some((base, loc)) = name.split_once("+mc") {
        let kind = TraceKind::all()
            .into_iter()
            .find(|t| t.name().eq_ignore_ascii_case(base))?;
        let locality: f64 = loc.parse::<u32>().ok()? as f64 / 100.0;
        if !(0.0..=1.0).contains(&locality) || locality == 0.0 {
            return None;
        }
        return Some(WorkloadSpec::TraceWithMulticast {
            base: kind,
            locality,
            rate_per_cache: 0.001,
        });
    }
    None
}

/// Parses the optional fault flags that may follow `run`'s positionals.
///
/// Returns `None` on an unknown flag or malformed value.
fn parse_fault_flags(args: &[String]) -> Option<FaultSpec> {
    if args.is_empty() {
        return Some(FaultSpec::None);
    }
    let mut seed = 1u64;
    let mut rates = FaultRates::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it.next()?;
        match flag.as_str() {
            "--fault-seed" => seed = value.parse().ok()?,
            "--shortcut-faults" => rates.shortcut_failures = value.parse().ok()?,
            "--mesh-faults" => rates.mesh_link_failures = value.parse().ok()?,
            "--glitches" => rates.glitches = value.parse().ok()?,
            "--repair-after" => rates.repair_after = Some(value.parse().ok()?),
            _ => return None,
        }
    }
    Some(FaultSpec::Random { seed, rates })
}

fn report_line(report: &RunReport) {
    println!("{report}");
    println!("  power breakdown: {}", report.power);
    println!("  area breakdown:  {}", report.area);
    println!(
        "  avg hops {:.2}, completion {:.1}%, {} messages",
        report.stats.avg_hops(),
        report.stats.completion_rate() * 100.0,
        report.stats.completed_messages
    );
    let s = &report.stats;
    if s.shortcut_faults + s.mesh_link_faults + s.repairs + s.retransmitted_flits > 0 {
        println!(
            "  faults: {} shortcut, {} mesh link, {} repaired, {} flits retransmitted",
            s.shortcut_faults, s.mesh_link_faults, s.repairs, s.retransmitted_flits
        );
    }
}

fn run_one(arch: Architecture, width: LinkWidth, workload: WorkloadSpec) -> RunReport {
    Experiment::new(SystemConfig::new(arch, width), workload).run()
}

/// Prints the telemetry timeline: one row per interval (capped at 20
/// evenly spaced rows; event-bearing intervals always shown).
fn print_timeline(report: &TelemetryReport) {
    let event_label = |kind: &TimelineEventKind| match kind {
        TimelineEventKind::Fault(e) => format!("fault: {e:?}"),
        TimelineEventKind::RetuneApplied { installed } => {
            format!("retune_applied({installed} shortcuts)")
        }
        TimelineEventKind::TablesRewritten => "tables_rewritten".into(),
        TimelineEventKind::WatchdogFired => "watchdog_fired".into(),
        TimelineEventKind::RecoveryConverged { fault_cycle, after } => {
            format!("recovery_converged(fault@{fault_cycle} after {after})")
        }
    };
    println!(
        "  {:>16} {:>8} {:>8} {:>8} {:>8} {:>18}  events",
        "interval", "inj/cyc", "cmp/cyc", "rf/cyc", "peak-buf", "va/sa/credit"
    );
    let n = report.samples.len();
    let stride = n.div_ceil(20).max(1);
    for (i, s) in report.samples.iter().enumerate() {
        let events: Vec<String> =
            report.events_in_sample(i).map(|e| event_label(&e.kind)).collect();
        if i % stride != 0 && events.is_empty() && i + 1 != n {
            continue;
        }
        let cycles = s.cycles.max(1) as f64;
        let peak = s.buffered_peak.iter().copied().max().unwrap_or(0);
        println!(
            "  {:>16} {:>8.3} {:>8.3} {:>8.3} {:>8} {:>18}  {}",
            format!("[{}, {})", s.start, s.start + s.cycles),
            s.injected as f64 / cycles,
            s.completed_packets as f64 / cycles,
            s.rf_grants as f64 / cycles,
            peak,
            format!("{}/{}/{}", s.va_stalls, s.sa_stalls, s.credit_stalls),
            if events.is_empty() { "-".to_string() } else { events.join("; ") },
        );
    }
    let complete = report.spans.iter().filter(|s| s.is_complete()).count();
    println!(
        "  spans: {} recorded ({} complete, {} dropped), {} timeline events",
        report.spans.len(),
        complete,
        report.dropped_spans,
        report.events.len()
    );
}

fn cmd_run(args: &[String]) -> Option<ExitCode> {
    let [arch, width, workload, rest @ ..] = args else { return None };
    let mut experiment = Experiment::new(
        SystemConfig::new(parse_arch(arch)?, parse_width(width)?),
        parse_workload(workload)?,
    );
    // Peel off `--telemetry <interval>` and `--sim-threads <n>` before the
    // fault flags.
    let mut fault_args: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if flag == "--telemetry" {
            let interval: u64 = it.next()?.parse().ok()?;
            if interval == 0 {
                return None;
            }
            experiment.system.sim.telemetry = Some(TelemetryConfig::every(interval));
        } else if flag == "--sim-threads" {
            let threads: usize = it.next()?.parse().ok()?;
            experiment.system.sim.threads = threads;
            if let Err(e) = experiment.system.sim.validate() {
                eprintln!("rfnoc-cli: {e}");
                return Some(ExitCode::FAILURE);
            }
        } else {
            fault_args.push(flag.clone());
        }
    }
    experiment.faults = parse_fault_flags(&fault_args)?;
    let report = experiment.run();
    report_line(&report);
    if let Some(tel) = &report.stats.telemetry {
        println!("telemetry ({} samples at interval {}):", tel.samples.len(), tel.interval);
        print_timeline(tel);
    }
    Some(ExitCode::SUCCESS)
}

/// `compare A.json B.json [--threshold PCT]`: diff two result artifacts
/// metric-by-metric; exit nonzero if any metric regressed past the
/// threshold (default 5%).
fn cmd_compare_files(args: &[String]) -> Option<ExitCode> {
    let [base, new, rest @ ..] = args else { return None };
    let threshold = match rest {
        [] => 5.0,
        [flag, value] if flag == "--threshold" => value.parse().ok().filter(|t| *t >= 0.0)?,
        _ => return None,
    };
    match rfnoc::compare::compare_files(base, new, threshold) {
        Ok(0) => Some(ExitCode::SUCCESS),
        Ok(_) => Some(ExitCode::from(2)),
        Err(e) => {
            eprintln!("compare: {e}");
            Some(ExitCode::FAILURE)
        }
    }
}

fn cmd_compare(args: &[String]) -> Option<ExitCode> {
    if args.len() >= 2 && args[..2].iter().all(|a| a.ends_with(".json")) {
        return cmd_compare_files(args);
    }
    let [workload] = args else { return None };
    let workload = parse_workload(workload)?;
    let baseline = run_one(Architecture::Baseline, LinkWidth::B16, workload.clone());
    report_line(&baseline);
    for (arch, width) in [
        (Architecture::StaticShortcuts, LinkWidth::B16),
        (Architecture::AdaptiveShortcuts { access_points: 50 }, LinkWidth::B16),
        (Architecture::AdaptiveShortcuts { access_points: 50 }, LinkWidth::B4),
    ] {
        let report = run_one(arch, width, workload.clone());
        let (lat, pow) = report.normalized_to(&baseline);
        report_line(&report);
        println!("  vs 16B baseline: {lat:.2}x latency, {pow:.2}x power");
    }
    Some(ExitCode::SUCCESS)
}

fn cmd_sweep(args: &[String]) -> Option<ExitCode> {
    let [arch, workload] = args else { return None };
    let arch = parse_arch(arch)?;
    let workload = parse_workload(workload)?;
    for width in LinkWidth::all() {
        report_line(&run_one(arch.clone(), width, workload.clone()));
    }
    Some(ExitCode::SUCCESS)
}

fn cmd_map(args: &[String]) -> Option<ExitCode> {
    let [workload] = args else { return None };
    let workload = parse_workload(workload)?;
    let system = SystemConfig::new(
        Architecture::AdaptiveShortcuts { access_points: 50 },
        LinkWidth::B16,
    );
    let built = Experiment::new(system, workload.clone()).build();
    let placement = Placement::paper_10x10();
    let dims = placement.dims();
    println!("adaptive shortcuts for {}:", workload.name());
    for s in &built.shortcuts {
        println!(
            "  {} -> {}  ({} hops)",
            dims.coord_of(s.src),
            dims.coord_of(s.dst),
            dims.manhattan(s.src, s.dst)
        );
    }
    Some(ExitCode::SUCCESS)
}

/// `tail <ledger.jsonl> [--follow]`: renders the live run-ledger summary.
/// With `--follow`, re-renders whenever new records land (polling twice a
/// second) and exits once the plan finishes.
fn cmd_tail(args: &[String]) -> Option<ExitCode> {
    let (path, follow) = match args {
        [path] => (path, false),
        [path, flag] if flag == "--follow" => (path, true),
        _ => return None,
    };
    let mut last_records = usize::MAX;
    loop {
        let summary = match rfnoc::ledger::LedgerSummary::from_file(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tail: {e}");
                return Some(ExitCode::FAILURE);
            }
        };
        if summary.records != last_records {
            last_records = summary.records;
            if follow {
                println!("--- {path} ---");
            }
            print!("{}", summary.render_tail());
        }
        if !follow || summary.plan_wall_ms.is_some() {
            return Some(ExitCode::SUCCESS);
        }
        std::thread::sleep(std::time::Duration::from_millis(500));
    }
}

/// `ledger-summary <ledger.jsonl>`: reduces a finished ledger to a flat
/// JSON report on stdout. Schema problems (non-monotone heartbeats, gaps,
/// missing fields) are listed on stderr and yield exit code 2 so CI can
/// gate on them.
fn cmd_ledger_summary(args: &[String]) -> Option<ExitCode> {
    let [path] = args else { return None };
    let summary = match rfnoc::ledger::LedgerSummary::from_file(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ledger-summary: {e}");
            return Some(ExitCode::FAILURE);
        }
    };
    print!("{}", summary.render_json());
    if summary.problems.is_empty() {
        Some(ExitCode::SUCCESS)
    } else {
        for p in &summary.problems {
            eprintln!("ledger-summary: {p}");
        }
        Some(ExitCode::from(2))
    }
}

fn cmd_info() -> Option<ExitCode> {
    println!("architectures: {}", ARCH_NAMES.join(" "));
    let traces: Vec<&str> = TraceKind::all().iter().map(|t| t.name()).collect();
    println!("traces:        {}", traces.join(" "));
    let apps: Vec<&str> = AppProfile::paper_suite().iter().map(|p| p.name).collect();
    println!("apps:          {}", apps.join(" "));
    println!("multicast:     <trace>+mc20 or <trace>+mc50");
    Some(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) if cmd == "run" => cmd_run(rest),
        Some((cmd, rest)) if cmd == "compare" => cmd_compare(rest),
        Some((cmd, rest)) if cmd == "sweep" => cmd_sweep(rest),
        Some((cmd, rest)) if cmd == "map" => cmd_map(rest),
        Some((cmd, rest)) if cmd == "tail" => cmd_tail(rest),
        Some((cmd, rest)) if cmd == "ledger-summary" => cmd_ledger_summary(rest),
        Some((cmd, _)) if cmd == "info" => cmd_info(),
        _ => None,
    };
    result.unwrap_or_else(|| {
        eprintln!(
            "usage:\n  rfnoc-cli run <arch> <16|8|4> <workload> \
             [--telemetry INTERVAL] [--sim-threads N] \
             [--fault-seed N] [--shortcut-faults F] [--mesh-faults F] \
             [--glitches F] [--repair-after C]\n  \
             rfnoc-cli compare <workload>\n  \
             rfnoc-cli compare <base.json> <new.json> [--threshold PCT]\n  \
             rfnoc-cli sweep <arch> <workload>\n  \
             rfnoc-cli map <workload>\n  \
             rfnoc-cli tail <ledger.jsonl> [--follow]\n  \
             rfnoc-cli ledger-summary <ledger.jsonl>\n  \
             rfnoc-cli info"
        );
        ExitCode::FAILURE
    })
}
