//! `rfnoc-cli` — command-line front end for the RF-I NoC reproduction.
//!
//! ```text
//! rfnoc-cli run <arch> <width> <workload> [fault flags]
//!                                            simulate one design point
//! rfnoc-cli compare <workload>               baseline vs static vs adaptive
//! rfnoc-cli compare <A.json> <B.json> [--threshold PCT]
//!                                            diff two result artifacts;
//!                                            exit 2 on a regression
//! rfnoc-cli sweep <arch> <workload>          16B/8B/4B width sweep
//! rfnoc-cli map <workload>                   adaptive shortcut map
//! rfnoc-cli tail <ledger.jsonl> [--follow] [--poll-ms N]
//!                                            live run-ledger summary
//! rfnoc-cli ingest [opts] <file.json>...     file artifacts into the
//!                                            cross-run trend store
//! rfnoc-cli trend <metric> [opts]            per-config metric time series
//! rfnoc-cli gate <new.json>... [opts]        noise-aware regression gate;
//!                                            exit 2 on a significant drop
//! rfnoc-cli serve-obs <ledger.jsonl> [opts]  /metrics /healthz /events
//!                                            HTTP endpoints over a ledger
//! rfnoc-cli ledger-summary <ledger.jsonl>    ledger -> flat JSON report
//! rfnoc-cli info                             architecture & workload names
//! ```
//!
//! Fault flags (run only): `--fault-seed <n>`, `--shortcut-faults <f>`,
//! `--mesh-faults <f>`, `--glitches <f>`, `--repair-after <cycles>` —
//! expected event counts for a deterministic random fault plan spread
//! over the measurement window.
//!
//! Telemetry (run only): `--telemetry <interval>` enables the
//! interval-sampled telemetry layer and prints the per-interval timeline
//! (rates, RF grants, stalls, fault/retune events) after the report.
//!
//! Threads (run only): `--sim-threads <n>` steps the router sweep on `n`
//! worker threads (the sharded cycle engine). Results are bit-identical
//! at any thread count; `0` is rejected.
//!
//! Ledger: `tail` renders a compact live view of a run-ledger JSONL file
//! (written by the bench runner's `--ledger <name>` flag) — throughput
//! sparkline, slowest shard, imbalance ratio, ETA from the remaining plan
//! points; `--follow` re-renders as the file grows and exits once the
//! plan finishes. `ledger-summary` reduces a finished ledger to a flat
//! JSON report (metric names carry the `compare` direction keywords, so
//! two reports gate with `rfnoc-cli compare a.json b.json`); schema
//! problems go to stderr and exit code 2.
//!
//! Observatory: `ingest` files bench/campaign/sweep artifacts into the
//! content-addressed history at `results/history/` (one record per
//! trajectory row), `trend` renders per-config time series from it, and
//! `gate` replaces the old fixed-percent regression threshold with a
//! noise-aware verdict — median of the new samples vs the rolling median
//! ± k·MAD of history, direction-aware via the `compare` keyword rules.
//! `serve-obs` exposes a running (or finished) ledger over plain HTTP:
//! Prometheus text on `/metrics`, liveness on `/healthz`, and an SSE
//! replay-then-follow of the raw JSONL on `/events`.

use rfnoc::{Architecture, Experiment, FaultSpec, RunReport, SystemConfig, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_sim::{FaultRates, TelemetryConfig, TelemetryReport, TimelineEventKind};
use rfnoc_traffic::{AppProfile, Placement, TraceKind};
use std::process::ExitCode;

const ARCH_NAMES: &[&str] = &[
    "baseline",
    "static",
    "wire",
    "adaptive",
    "adaptive25",
    "vct",
    "mc",
    "mcsc",
];

fn parse_arch(name: &str) -> Option<Architecture> {
    Some(match name {
        "baseline" => Architecture::Baseline,
        "static" => Architecture::StaticShortcuts,
        "wire" => Architecture::WireShortcuts,
        "adaptive" => Architecture::AdaptiveShortcuts { access_points: 50 },
        "adaptive25" => Architecture::AdaptiveShortcuts { access_points: 25 },
        "vct" => Architecture::VctMulticast,
        "mc" => Architecture::RfMulticast { access_points: 50 },
        "mcsc" => {
            Architecture::AdaptiveWithMulticast { access_points: 50, shortcut_budget: 15 }
        }
        _ => return None,
    })
}

fn parse_width(name: &str) -> Option<LinkWidth> {
    Some(match name {
        "16" | "16B" | "16b" => LinkWidth::B16,
        "8" | "8B" | "8b" => LinkWidth::B8,
        "4" | "4B" | "4b" => LinkWidth::B4,
        _ => return None,
    })
}

fn parse_workload(name: &str) -> Option<WorkloadSpec> {
    if let Some(kind) =
        TraceKind::all().into_iter().find(|t| t.name().eq_ignore_ascii_case(name))
    {
        return Some(WorkloadSpec::Trace(kind));
    }
    if let Some(app) =
        AppProfile::paper_suite().into_iter().find(|p| p.name.eq_ignore_ascii_case(name))
    {
        return Some(WorkloadSpec::App(app));
    }
    // trace+mc20 / trace+mc50 forms
    if let Some((base, loc)) = name.split_once("+mc") {
        let kind = TraceKind::all()
            .into_iter()
            .find(|t| t.name().eq_ignore_ascii_case(base))?;
        let locality: f64 = loc.parse::<u32>().ok()? as f64 / 100.0;
        if !(0.0..=1.0).contains(&locality) || locality == 0.0 {
            return None;
        }
        return Some(WorkloadSpec::TraceWithMulticast {
            base: kind,
            locality,
            rate_per_cache: 0.001,
        });
    }
    None
}

/// Parses the optional fault flags that may follow `run`'s positionals.
///
/// Returns `None` on an unknown flag or malformed value.
fn parse_fault_flags(args: &[String]) -> Option<FaultSpec> {
    if args.is_empty() {
        return Some(FaultSpec::None);
    }
    let mut seed = 1u64;
    let mut rates = FaultRates::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let value = it.next()?;
        match flag.as_str() {
            "--fault-seed" => seed = value.parse().ok()?,
            "--shortcut-faults" => rates.shortcut_failures = value.parse().ok()?,
            "--mesh-faults" => rates.mesh_link_failures = value.parse().ok()?,
            "--glitches" => rates.glitches = value.parse().ok()?,
            "--repair-after" => rates.repair_after = Some(value.parse().ok()?),
            _ => return None,
        }
    }
    Some(FaultSpec::Random { seed, rates })
}

fn report_line(report: &RunReport) {
    println!("{report}");
    println!("  power breakdown: {}", report.power);
    println!("  area breakdown:  {}", report.area);
    println!(
        "  avg hops {:.2}, completion {:.1}%, {} messages",
        report.stats.avg_hops(),
        report.stats.completion_rate() * 100.0,
        report.stats.completed_messages
    );
    let s = &report.stats;
    if s.shortcut_faults + s.mesh_link_faults + s.repairs + s.retransmitted_flits > 0 {
        println!(
            "  faults: {} shortcut, {} mesh link, {} repaired, {} flits retransmitted",
            s.shortcut_faults, s.mesh_link_faults, s.repairs, s.retransmitted_flits
        );
    }
}

fn run_one(arch: Architecture, width: LinkWidth, workload: WorkloadSpec) -> RunReport {
    Experiment::new(SystemConfig::new(arch, width), workload).run()
}

/// Prints the telemetry timeline: one row per interval (capped at 20
/// evenly spaced rows; event-bearing intervals always shown).
fn print_timeline(report: &TelemetryReport) {
    let event_label = |kind: &TimelineEventKind| match kind {
        TimelineEventKind::Fault(e) => format!("fault: {e:?}"),
        TimelineEventKind::RetuneApplied { installed } => {
            format!("retune_applied({installed} shortcuts)")
        }
        TimelineEventKind::TablesRewritten => "tables_rewritten".into(),
        TimelineEventKind::WatchdogFired => "watchdog_fired".into(),
        TimelineEventKind::RecoveryConverged { fault_cycle, after } => {
            format!("recovery_converged(fault@{fault_cycle} after {after})")
        }
    };
    println!(
        "  {:>16} {:>8} {:>8} {:>8} {:>8} {:>18}  events",
        "interval", "inj/cyc", "cmp/cyc", "rf/cyc", "peak-buf", "va/sa/credit"
    );
    let n = report.samples.len();
    let stride = n.div_ceil(20).max(1);
    for (i, s) in report.samples.iter().enumerate() {
        let events: Vec<String> =
            report.events_in_sample(i).map(|e| event_label(&e.kind)).collect();
        if i % stride != 0 && events.is_empty() && i + 1 != n {
            continue;
        }
        let cycles = s.cycles.max(1) as f64;
        let peak = s.buffered_peak.iter().copied().max().unwrap_or(0);
        println!(
            "  {:>16} {:>8.3} {:>8.3} {:>8.3} {:>8} {:>18}  {}",
            format!("[{}, {})", s.start, s.start + s.cycles),
            s.injected as f64 / cycles,
            s.completed_packets as f64 / cycles,
            s.rf_grants as f64 / cycles,
            peak,
            format!("{}/{}/{}", s.va_stalls, s.sa_stalls, s.credit_stalls),
            if events.is_empty() { "-".to_string() } else { events.join("; ") },
        );
    }
    let complete = report.spans.iter().filter(|s| s.is_complete()).count();
    println!(
        "  spans: {} recorded ({} complete, {} dropped), {} timeline events",
        report.spans.len(),
        complete,
        report.dropped_spans,
        report.events.len()
    );
}

fn cmd_run(args: &[String]) -> Option<ExitCode> {
    let [arch, width, workload, rest @ ..] = args else { return None };
    let mut experiment = Experiment::new(
        SystemConfig::new(parse_arch(arch)?, parse_width(width)?),
        parse_workload(workload)?,
    );
    // Peel off `--telemetry <interval>` and `--sim-threads <n>` before the
    // fault flags.
    let mut fault_args: Vec<String> = Vec::new();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if flag == "--telemetry" {
            let interval: u64 = it.next()?.parse().ok()?;
            if interval == 0 {
                return None;
            }
            experiment.system.sim.telemetry = Some(TelemetryConfig::every(interval));
        } else if flag == "--sim-threads" {
            let threads: usize = it.next()?.parse().ok()?;
            experiment.system.sim.threads = threads;
            if let Err(e) = experiment.system.sim.validate() {
                eprintln!("rfnoc-cli: {e}");
                return Some(ExitCode::FAILURE);
            }
        } else {
            fault_args.push(flag.clone());
        }
    }
    experiment.faults = parse_fault_flags(&fault_args)?;
    let report = experiment.run();
    report_line(&report);
    if let Some(tel) = &report.stats.telemetry {
        println!("telemetry ({} samples at interval {}):", tel.samples.len(), tel.interval);
        print_timeline(tel);
    }
    Some(ExitCode::SUCCESS)
}

/// `compare A.json B.json [--threshold PCT]`: diff two result artifacts
/// metric-by-metric; exit nonzero if any metric regressed past the
/// threshold (default 5%).
fn cmd_compare_files(args: &[String]) -> Option<ExitCode> {
    let [base, new, rest @ ..] = args else { return None };
    let threshold = match rest {
        [] => 5.0,
        [flag, value] if flag == "--threshold" => value.parse().ok().filter(|t| *t >= 0.0)?,
        _ => return None,
    };
    match rfnoc::compare::compare_files(base, new, threshold) {
        Ok(0) => Some(ExitCode::SUCCESS),
        Ok(_) => Some(ExitCode::from(2)),
        Err(e) => {
            eprintln!("compare: {e}");
            Some(ExitCode::FAILURE)
        }
    }
}

fn cmd_compare(args: &[String]) -> Option<ExitCode> {
    if args.len() >= 2 && args[..2].iter().all(|a| a.ends_with(".json")) {
        return cmd_compare_files(args);
    }
    let [workload] = args else { return None };
    let workload = parse_workload(workload)?;
    let baseline = run_one(Architecture::Baseline, LinkWidth::B16, workload.clone());
    report_line(&baseline);
    for (arch, width) in [
        (Architecture::StaticShortcuts, LinkWidth::B16),
        (Architecture::AdaptiveShortcuts { access_points: 50 }, LinkWidth::B16),
        (Architecture::AdaptiveShortcuts { access_points: 50 }, LinkWidth::B4),
    ] {
        let report = run_one(arch, width, workload.clone());
        let (lat, pow) = report.normalized_to(&baseline);
        report_line(&report);
        println!("  vs 16B baseline: {lat:.2}x latency, {pow:.2}x power");
    }
    Some(ExitCode::SUCCESS)
}

fn cmd_sweep(args: &[String]) -> Option<ExitCode> {
    let [arch, workload] = args else { return None };
    let arch = parse_arch(arch)?;
    let workload = parse_workload(workload)?;
    for width in LinkWidth::all() {
        report_line(&run_one(arch.clone(), width, workload.clone()));
    }
    Some(ExitCode::SUCCESS)
}

fn cmd_map(args: &[String]) -> Option<ExitCode> {
    let [workload] = args else { return None };
    let workload = parse_workload(workload)?;
    let system = SystemConfig::new(
        Architecture::AdaptiveShortcuts { access_points: 50 },
        LinkWidth::B16,
    );
    let built = Experiment::new(system, workload.clone()).build();
    let placement = Placement::paper_10x10();
    let dims = placement.dims();
    println!("adaptive shortcuts for {}:", workload.name());
    for s in &built.shortcuts {
        println!(
            "  {} -> {}  ({} hops)",
            dims.coord_of(s.src),
            dims.coord_of(s.dst),
            dims.manhattan(s.src, s.dst)
        );
    }
    Some(ExitCode::SUCCESS)
}

/// Parses a `--poll-ms N` value: zero is rejected with the simulator's
/// typed [`rfnoc_sim::ConfigError::ZeroPollInterval`] (exit 2), matching
/// how the runner rejects `--sim-threads 0`.
fn parse_poll_ms(value: &str) -> Result<Option<std::time::Duration>, ExitCode> {
    let Ok(ms) = value.parse::<u64>() else { return Ok(None) };
    if ms == 0 {
        eprintln!("rfnoc-cli: {}", rfnoc_sim::ConfigError::ZeroPollInterval);
        return Err(ExitCode::from(2));
    }
    Ok(Some(std::time::Duration::from_millis(ms)))
}

/// `tail <ledger.jsonl> [--follow] [--poll-ms N]`: renders the live
/// run-ledger summary. With `--follow`, re-renders whenever new records
/// land (polling every `--poll-ms` milliseconds, default 500; 0 is
/// rejected) and exits once the plan finishes.
fn cmd_tail(args: &[String]) -> Option<ExitCode> {
    let [path, rest @ ..] = args else { return None };
    let mut follow = false;
    let mut poll = std::time::Duration::from_millis(500);
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if flag == "--follow" {
            follow = true;
        } else if flag == "--poll-ms" {
            match parse_poll_ms(it.next()?) {
                Ok(Some(d)) => poll = d,
                Ok(None) => return None,
                Err(code) => return Some(code),
            }
        } else {
            return None;
        }
    }
    let mut last_records = usize::MAX;
    loop {
        let summary = match rfnoc::ledger::LedgerSummary::from_file(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("tail: {e}");
                return Some(ExitCode::FAILURE);
            }
        };
        if summary.records != last_records {
            last_records = summary.records;
            if follow {
                println!("--- {path} ---");
            }
            print!("{}", summary.render_tail());
        }
        if !follow || summary.plan_wall_ms.is_some() {
            return Some(ExitCode::SUCCESS);
        }
        std::thread::sleep(poll);
    }
}

/// Reads and parses one artifact file into history records.
fn read_artifact_records(
    path: &str,
    name_override: Option<&str>,
) -> Result<Vec<rfnoc::history::HistoryRecord>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let doc = rfnoc::compare::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    rfnoc::history::HistoryRecord::from_artifact(&doc, name_override)
        .map_err(|e| format!("{path}: {e}"))
}

/// `ingest [--history DIR] [--name NAME] [--exclude-last] <file.json>...`:
/// files each artifact into the content-addressed trend store. A
/// trajectory-shaped artifact (`{"rows": [...]}`) ingests one record per
/// row; `--exclude-last` skips its newest row (CI ingests the committed
/// rows as history, then gates the freshly appended row against them).
fn cmd_ingest(args: &[String]) -> Option<ExitCode> {
    let mut dir = rfnoc::history::DEFAULT_DIR.to_string();
    let mut name: Option<String> = None;
    let mut exclude_last = false;
    let mut files: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--history" => dir = it.next()?.clone(),
            "--name" => name = Some(it.next()?.clone()),
            "--exclude-last" => exclude_last = true,
            _ if arg.starts_with("--") => return None,
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return None;
    }
    let store = rfnoc::history::HistoryStore::open(&dir);
    let (mut added, mut dups) = (0usize, 0usize);
    for path in files {
        let mut records = match read_artifact_records(path, name.as_deref()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ingest: {e}");
                return Some(ExitCode::FAILURE);
            }
        };
        if exclude_last {
            records.pop();
        }
        for rec in &records {
            match store.ingest(rec) {
                Ok(rfnoc::history::IngestOutcome::Added(_)) => added += 1,
                Ok(rfnoc::history::IngestOutcome::Duplicate(_)) => dups += 1,
                Err(e) => {
                    eprintln!("ingest: {e}");
                    return Some(ExitCode::FAILURE);
                }
            }
        }
    }
    println!("ingest: {added} new record(s), {dups} duplicate(s) into {dir}");
    Some(ExitCode::SUCCESS)
}

/// `trend <metric> [--history DIR] [--artifact NAME]`: renders the
/// chronological series of every stored metric path containing the query
/// — sparkline, first/last values, median and MAD.
fn cmd_trend(args: &[String]) -> Option<ExitCode> {
    let [metric, rest @ ..] = args else { return None };
    let mut dir = rfnoc::history::DEFAULT_DIR.to_string();
    let mut artifact: Option<String> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--history" => dir = it.next()?.clone(),
            "--artifact" => artifact = Some(it.next()?.clone()),
            _ => return None,
        }
    }
    let store = rfnoc::history::HistoryStore::open(&dir);
    let records = match store.load(artifact.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trend: {e}");
            return Some(ExitCode::FAILURE);
        }
    };
    if records.is_empty() {
        println!("trend: no history records in {dir}");
        return Some(ExitCode::SUCCESS);
    }
    let paths = rfnoc::history::matching_paths(&records, metric);
    if paths.is_empty() {
        println!("trend: no stored metric matches {metric:?} ({} records)", records.len());
        return Some(ExitCode::SUCCESS);
    }
    const MAX_PATHS: usize = 40;
    println!(
        "trend: {} path(s) matching {metric:?} over {} record(s) in {dir}",
        paths.len(),
        records.len(),
    );
    for path in paths.iter().take(MAX_PATHS) {
        let series = rfnoc::history::series(&records, path);
        let values: Vec<f64> = series.iter().map(|&(_, _, v)| v).collect();
        let med = rfnoc::gate::median(&values).unwrap_or(0.0);
        let (_, first_git, first) = series.first().copied().unwrap_or((0, "-", 0.0));
        let (_, last_git, last) = series.last().copied().unwrap_or((0, "-", 0.0));
        println!(
            "  {path} ({} pts)\n    {}  {first:.4} [{first_git}] -> {last:.4} [{last_git}]  \
             median {med:.4}",
            series.len(),
            rfnoc::ledger::sparkline(&values, 40),
        );
    }
    if paths.len() > MAX_PATHS {
        println!("  ... {} more path(s); narrow the query", paths.len() - MAX_PATHS);
    }
    Some(ExitCode::SUCCESS)
}

/// `gate <new.json>... [--history DIR] [--name NAME] [--last-row] [--k F]
/// [--floor F] [--window N] [--min-history N]`: judges fresh artifacts
/// against the trend store with the noise-aware median ± k·MAD band.
/// Exit 0 on pass, 2 on a statistically significant regression.
fn cmd_gate(args: &[String]) -> Option<ExitCode> {
    let mut dir = rfnoc::history::DEFAULT_DIR.to_string();
    let mut name: Option<String> = None;
    let mut last_row = false;
    let mut cfg = rfnoc::gate::GateConfig::default();
    let mut files: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--history" => dir = it.next()?.clone(),
            "--name" => name = Some(it.next()?.clone()),
            "--last-row" => last_row = true,
            "--k" => cfg.k = it.next()?.parse().ok().filter(|k: &f64| *k > 0.0)?,
            "--floor" => {
                cfg.rel_floor = it.next()?.parse().ok().filter(|f: &f64| *f >= 0.0)?;
            }
            "--window" => {
                cfg.window = it.next()?.parse().ok().filter(|w: &usize| *w > 0)?;
            }
            "--min-history" => {
                cfg.min_history = it.next()?.parse().ok().filter(|m: &usize| *m > 0)?;
            }
            _ if arg.starts_with("--") => return None,
            _ => files.push(arg),
        }
    }
    if files.is_empty() {
        return None;
    }
    let mut new_records = Vec::new();
    for path in files {
        match read_artifact_records(path, name.as_deref()) {
            Ok(mut records) => {
                if last_row {
                    match records.pop() {
                        Some(last) => new_records.push(last),
                        None => {
                            eprintln!("gate: {path} has no rows");
                            return Some(ExitCode::FAILURE);
                        }
                    }
                } else {
                    new_records.append(&mut records);
                }
            }
            Err(e) => {
                eprintln!("gate: {e}");
                return Some(ExitCode::FAILURE);
            }
        }
    }
    let artifact = new_records.first().map(|r| r.artifact.clone())?;
    let store = rfnoc::history::HistoryStore::open(&dir);
    let history = match store.load(Some(&artifact)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("gate: {e}");
            return Some(ExitCode::FAILURE);
        }
    };
    // A fresh sample that is already ingested would gate against itself;
    // drop exact content matches from the history side.
    let new_hashes: Vec<u64> = new_records.iter().map(|r| r.content_hash()).collect();
    let history: Vec<rfnoc::history::HistoryRecord> = history
        .into_iter()
        .filter(|h| !new_hashes.contains(&h.content_hash()))
        .collect();
    let report = rfnoc::gate::gate(&history, &new_records, &cfg);
    print!("{}", report.render(&cfg));
    if report.pass() {
        Some(ExitCode::SUCCESS)
    } else {
        Some(ExitCode::from(2))
    }
}

/// `serve-obs <ledger.jsonl> [--port P] [--poll-ms N]`: serves the
/// observatory endpoints (`/metrics`, `/healthz`, `/events`) over a
/// ledger file, following it as it grows. A file that is already
/// finished (ends in `plan_finish`) serves a bounded `/events` replay;
/// a live file streams until the process is interrupted. Default port
/// 9137; `--port 0` picks a free port (printed on stderr).
fn cmd_serve_obs(args: &[String]) -> Option<ExitCode> {
    let [path, rest @ ..] = args else { return None };
    let mut port: u16 = 9137;
    let mut poll = std::time::Duration::from_millis(500);
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        if flag == "--port" {
            port = it.next()?.parse().ok()?;
        } else if flag == "--poll-ms" {
            match parse_poll_ms(it.next()?) {
                Ok(Some(d)) => poll = d,
                Ok(None) => return None,
                Err(code) => return Some(code),
            }
        } else {
            return None;
        }
    }
    if !std::path::Path::new(path).exists() {
        eprintln!("serve-obs: {path}: no such file");
        return Some(ExitCode::FAILURE);
    }
    let hub = std::sync::Arc::new(rfnoc::obs::ObsHub::new());
    let addr = match rfnoc::obs::spawn_server(std::sync::Arc::clone(&hub), port) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("serve-obs: cannot bind port {port}: {e}");
            return Some(ExitCode::FAILURE);
        }
    };
    eprintln!(
        "serve-obs: http://{addr}/metrics /healthz /events over {path} \
         (poll {} ms; ctrl-c to stop)",
        poll.as_millis(),
    );
    if let Err(e) = rfnoc::obs::tail_file_into_hub(path, &hub, poll) {
        eprintln!("serve-obs: {e}");
        return Some(ExitCode::FAILURE);
    }
    Some(ExitCode::SUCCESS)
}

/// `ledger-summary <ledger.jsonl>`: reduces a finished ledger to a flat
/// JSON report on stdout. Schema problems (non-monotone heartbeats, gaps,
/// missing fields) are listed on stderr and yield exit code 2 so CI can
/// gate on them.
fn cmd_ledger_summary(args: &[String]) -> Option<ExitCode> {
    let [path] = args else { return None };
    let summary = match rfnoc::ledger::LedgerSummary::from_file(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ledger-summary: {e}");
            return Some(ExitCode::FAILURE);
        }
    };
    print!("{}", summary.render_json());
    if summary.problems.is_empty() {
        Some(ExitCode::SUCCESS)
    } else {
        for p in &summary.problems {
            eprintln!("ledger-summary: {p}");
        }
        Some(ExitCode::from(2))
    }
}

fn cmd_info() -> Option<ExitCode> {
    println!("architectures: {}", ARCH_NAMES.join(" "));
    let traces: Vec<&str> = TraceKind::all().iter().map(|t| t.name()).collect();
    println!("traces:        {}", traces.join(" "));
    let apps: Vec<&str> = AppProfile::paper_suite().iter().map(|p| p.name).collect();
    println!("apps:          {}", apps.join(" "));
    println!("multicast:     <trace>+mc20 or <trace>+mc50");
    Some(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.split_first() {
        Some((cmd, rest)) if cmd == "run" => cmd_run(rest),
        Some((cmd, rest)) if cmd == "compare" => cmd_compare(rest),
        Some((cmd, rest)) if cmd == "sweep" => cmd_sweep(rest),
        Some((cmd, rest)) if cmd == "map" => cmd_map(rest),
        Some((cmd, rest)) if cmd == "tail" => cmd_tail(rest),
        Some((cmd, rest)) if cmd == "ingest" => cmd_ingest(rest),
        Some((cmd, rest)) if cmd == "trend" => cmd_trend(rest),
        Some((cmd, rest)) if cmd == "gate" => cmd_gate(rest),
        Some((cmd, rest)) if cmd == "serve-obs" => cmd_serve_obs(rest),
        Some((cmd, rest)) if cmd == "ledger-summary" => cmd_ledger_summary(rest),
        Some((cmd, _)) if cmd == "info" => cmd_info(),
        _ => None,
    };
    result.unwrap_or_else(|| {
        eprintln!(
            "usage:\n  rfnoc-cli run <arch> <16|8|4> <workload> \
             [--telemetry INTERVAL] [--sim-threads N] \
             [--fault-seed N] [--shortcut-faults F] [--mesh-faults F] \
             [--glitches F] [--repair-after C]\n  \
             rfnoc-cli compare <workload>\n  \
             rfnoc-cli compare <base.json> <new.json> [--threshold PCT]\n  \
             rfnoc-cli sweep <arch> <workload>\n  \
             rfnoc-cli map <workload>\n  \
             rfnoc-cli tail <ledger.jsonl> [--follow] [--poll-ms N]\n  \
             rfnoc-cli ingest [--history DIR] [--name NAME] [--exclude-last] <file.json>...\n  \
             rfnoc-cli trend <metric> [--history DIR] [--artifact NAME]\n  \
             rfnoc-cli gate <new.json>... [--history DIR] [--name NAME] [--last-row] \
             [--k F] [--floor F] [--window N] [--min-history N]\n  \
             rfnoc-cli serve-obs <ledger.jsonl> [--port P] [--poll-ms N]\n  \
             rfnoc-cli ledger-summary <ledger.jsonl>\n  \
             rfnoc-cli info"
        );
        ExitCode::FAILURE
    })
}
