//! Phased (multi-application) experiments with per-phase reconfiguration.
//!
//! The paper reconfigures the RF-I once per application ("we assume a
//! coarse-grain approach to arbitration, where shortcuts are established
//! for the entire duration of an application's execution", §3.2; the
//! routing-table update costs 99 cycles, overlapped with the context
//! switch). This module makes that executable: a [`PhasedExperiment`] runs
//! a sequence of application phases on one architecture under one of three
//! reconfiguration policies, so the benefit of *adapting* (versus freezing
//! one tuning) can be measured directly.

use crate::arch::SystemConfig;
use crate::builder::build_system;
use crate::experiment::RunReport;
use crate::workload::WorkloadSpec;
use rfnoc_power::NocPowerModel;
use rfnoc_sim::Network;
use rfnoc_traffic::{Placement, TrafficConfig};

/// When the adaptive architectures retune their shortcuts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigPolicy {
    /// Retune for every phase (the paper's per-application
    /// reconfiguration).
    PerPhase,
    /// Tune once, for the first phase's profile, and keep that set.
    FreezeFirst,
}

/// A multi-phase experiment.
#[derive(Debug, Clone)]
pub struct PhasedExperiment {
    /// The architecture/width/simulator configuration.
    pub system: SystemConfig,
    /// The application phases, in execution order.
    pub phases: Vec<WorkloadSpec>,
    /// Reconfiguration policy for adaptive architectures.
    pub policy: ReconfigPolicy,
    /// Traffic generator parameters.
    pub traffic: TrafficConfig,
    /// Cycles of traffic used to profile each phase.
    pub profile_cycles: u64,
}

/// Results of a phased run.
#[derive(Debug, Clone)]
pub struct PhasedReport {
    /// Per-phase reports, in order.
    pub phases: Vec<RunReport>,
    /// Number of reconfigurations performed (phase transitions where the
    /// shortcut set was re-selected).
    pub reconfigurations: usize,
    /// Total routing-table update cost charged (cycles).
    pub reconfig_cycles: u64,
}

impl PhasedReport {
    /// Mean of the per-phase average latencies.
    pub fn avg_latency(&self) -> f64 {
        if self.phases.is_empty() {
            return 0.0;
        }
        self.phases.iter().map(RunReport::avg_latency).sum::<f64>() / self.phases.len() as f64
    }

    /// Mean of the per-phase power draws.
    pub fn avg_power_w(&self) -> f64 {
        if self.phases.is_empty() {
            return 0.0;
        }
        self.phases.iter().map(RunReport::total_power_w).sum::<f64>()
            / self.phases.len() as f64
    }
}

impl PhasedExperiment {
    /// A phased experiment with paper-default traffic.
    pub fn new(system: SystemConfig, phases: Vec<WorkloadSpec>, policy: ReconfigPolicy) -> Self {
        Self {
            system,
            phases,
            policy,
            traffic: TrafficConfig::default(),
            profile_cycles: crate::experiment::DEFAULT_PROFILE_CYCLES,
        }
    }

    /// Runs all phases.
    ///
    /// # Panics
    ///
    /// Panics if there are no phases.
    pub fn run(&self) -> PhasedReport {
        assert!(!self.phases.is_empty(), "a phased experiment needs phases");
        let placement = Placement::paper_10x10();
        let model = NocPowerModel::paper_32nm();
        let adaptive = self.system.arch.is_adaptive();
        let mut frozen_profile = None;
        let mut reports = Vec::with_capacity(self.phases.len());
        let mut reconfigurations = 0usize;
        for (i, phase) in self.phases.iter().enumerate() {
            let profile = if adaptive {
                match self.policy {
                    ReconfigPolicy::PerPhase => {
                        if i > 0 {
                            reconfigurations += 1;
                        }
                        Some(phase.profile(&placement, &self.traffic, self.profile_cycles))
                    }
                    ReconfigPolicy::FreezeFirst => {
                        if frozen_profile.is_none() {
                            frozen_profile = Some(phase.profile(
                                &placement,
                                &self.traffic,
                                self.profile_cycles,
                            ));
                        }
                        frozen_profile.clone()
                    }
                }
            } else {
                None
            };
            let built = build_system(&self.system, &placement, profile.as_ref());
            let mut network = Network::new(built.network.clone());
            let mut workload = phase.instantiate(&placement, &self.traffic);
            let stats = network.run(workload.as_mut());
            let power = model.power(&built.design, &stats.activity);
            let area = model.area(&built.design);
            reports.push(RunReport {
                system: self.system.arch.name(),
                workload: phase.name(),
                stats,
                power,
                area,
            });
        }
        PhasedReport {
            phases: reports,
            reconfigurations,
            reconfig_cycles: reconfigurations as u64 * self.system.sim.reconfig_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arch::Architecture;
    use rfnoc_power::LinkWidth;
    use rfnoc_sim::SimConfig;
    use rfnoc_traffic::TraceKind;

    fn quick_system(arch: Architecture) -> SystemConfig {
        let mut sim = SimConfig::paper_baseline();
        sim.warmup_cycles = 500;
        sim.measure_cycles = 4_000;
        sim.drain_cycles = 8_000;
        SystemConfig::new(arch, LinkWidth::B16).with_sim(sim)
    }

    fn phases() -> Vec<WorkloadSpec> {
        vec![
            WorkloadSpec::Trace(TraceKind::Hotspot1),
            WorkloadSpec::Trace(TraceKind::BiDf),
            WorkloadSpec::Trace(TraceKind::Hotspot4),
        ]
    }

    #[test]
    fn per_phase_reconfiguration_counts() {
        let exp = PhasedExperiment::new(
            quick_system(Architecture::AdaptiveShortcuts { access_points: 50 }),
            phases(),
            ReconfigPolicy::PerPhase,
        );
        let mut exp = exp;
        exp.profile_cycles = 3_000;
        let report = exp.run();
        assert_eq!(report.phases.len(), 3);
        assert_eq!(report.reconfigurations, 2, "one per phase transition");
        assert_eq!(report.reconfig_cycles, 2 * 99);
    }

    #[test]
    fn retuning_beats_frozen_tuning_across_phases() {
        let system = quick_system(Architecture::AdaptiveShortcuts { access_points: 50 });
        let mut per_phase =
            PhasedExperiment::new(system.clone(), phases(), ReconfigPolicy::PerPhase);
        per_phase.profile_cycles = 3_000;
        let mut frozen = PhasedExperiment::new(system, phases(), ReconfigPolicy::FreezeFirst);
        frozen.profile_cycles = 3_000;
        let a = per_phase.run();
        let b = frozen.run();
        assert!(
            a.avg_latency() <= b.avg_latency() + 0.5,
            "retuned ({:.2}) must not lose to frozen ({:.2})",
            a.avg_latency(),
            b.avg_latency()
        );
    }

    #[test]
    fn static_architecture_never_reconfigures() {
        let exp = PhasedExperiment::new(
            quick_system(Architecture::StaticShortcuts),
            phases(),
            ReconfigPolicy::PerPhase,
        );
        let report = exp.run();
        assert_eq!(report.reconfigurations, 0);
        assert_eq!(report.reconfig_cycles, 0);
        assert!(report.avg_latency() > 0.0);
        assert!(report.avg_power_w() > 0.0);
    }

    #[test]
    #[should_panic(expected = "needs phases")]
    fn empty_phases_rejected() {
        PhasedExperiment::new(
            quick_system(Architecture::Baseline),
            Vec::new(),
            ReconfigPolicy::PerPhase,
        )
        .run();
    }
}
