//! End-to-end experiments: build → simulate → cost.

use crate::arch::{Architecture, SystemConfig};
use crate::builder::{build_system, BuiltSystem};
use crate::workload::WorkloadSpec;
use rfnoc_power::{AreaBreakdown, NocPowerModel, PowerBreakdown};
use rfnoc_sim::{FaultPlan, FaultRates, Network, RunStats};
use rfnoc_topology::PairWeights;
use rfnoc_traffic::{Placement, TrafficConfig};
use std::fmt;

/// Cycles of traffic generated to profile communication frequencies for
/// adaptive shortcut selection.
pub const DEFAULT_PROFILE_CYCLES: u64 = 20_000;

/// Where the communication-frequency profile for adaptive shortcut
/// selection comes from (§3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileSource {
    /// Regenerate the workload's message stream and count pairs directly —
    /// the paper's "assume that this profile is available" oracle.
    Generator,
    /// Simulate the workload on the baseline mesh with the network's
    /// per-pair event counters enabled and profile from those — the
    /// "information that can be readily collected by event counters in our
    /// network" path.
    EventCounters,
}

/// How faults are injected into an experiment's network (none by default).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum FaultSpec {
    /// No fault injection.
    #[default]
    None,
    /// An explicit, pre-built event schedule.
    Plan(FaultPlan),
    /// A deterministic random plan generated against the *built* system's
    /// shortcut set (so adaptive architectures get faults on the shortcuts
    /// they actually selected), spread over the measurement window.
    Random {
        /// PRNG seed; the same seed and system always yield the same plan.
        seed: u64,
        /// Expected event counts.
        rates: FaultRates,
    },
    /// A deterministic *correlated* storm generated against the built
    /// system's shortcut set (see [`FaultPlan::correlated`]): a regional
    /// mesh-link storm, a glitch burst scaled by the experiment's offered
    /// load, and a band-down-during-retune race — the fault shapes a
    /// resilience campaign sweeps.
    Correlated {
        /// PRNG seed; the same seed and system always yield the same plan.
        seed: u64,
        /// Event-count scale; 0 disables the storm entirely.
        intensity: f64,
    },
}

/// A complete experiment: a system configuration exercised by a workload.
///
/// # Example
///
/// ```no_run
/// use rfnoc::{Architecture, Experiment, SystemConfig, WorkloadSpec};
/// use rfnoc_power::LinkWidth;
/// use rfnoc_traffic::TraceKind;
///
/// let system = SystemConfig::new(Architecture::Baseline, LinkWidth::B16);
/// let report = Experiment::new(system, WorkloadSpec::Trace(TraceKind::Uniform)).run();
/// println!("latency {:.1} cycles, power {:.3} W", report.avg_latency(), report.total_power_w());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// The architecture/width/simulator configuration.
    pub system: SystemConfig,
    /// The workload to run.
    pub workload: WorkloadSpec,
    /// Traffic generator parameters.
    pub traffic: TrafficConfig,
    /// Cycles of traffic used to build the adaptive-selection profile.
    pub profile_cycles: u64,
    /// How adaptive profiles are obtained.
    pub profile_source: ProfileSource,
    /// Component placement (defaults to the paper's 10×10 layout; any
    /// even-sided grid ≥6×6 works, enabling mesh-scaling studies).
    pub placement: Placement,
    /// Fault injection applied to the simulated network.
    pub faults: FaultSpec,
}

impl Experiment {
    /// An experiment with paper-default traffic parameters.
    pub fn new(system: SystemConfig, workload: WorkloadSpec) -> Self {
        Self {
            system,
            workload,
            traffic: TrafficConfig::default(),
            profile_cycles: DEFAULT_PROFILE_CYCLES,
            profile_source: ProfileSource::Generator,
            placement: Placement::paper_10x10(),
            faults: FaultSpec::None,
        }
    }

    /// Overrides the traffic parameters.
    #[must_use]
    pub fn with_traffic(mut self, traffic: TrafficConfig) -> Self {
        self.traffic = traffic;
        self
    }

    /// Injects an explicit fault schedule into the simulated network.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = FaultSpec::Plan(plan);
        self
    }

    /// Injects a seed-driven random fault plan, generated against the
    /// built system's shortcut set over the measurement window.
    #[must_use]
    pub fn with_random_faults(mut self, seed: u64, rates: FaultRates) -> Self {
        self.faults = FaultSpec::Random { seed, rates };
        self
    }

    /// Injects a seed-driven correlated fault storm (regional mesh-link
    /// storm, load-scaled glitch burst, band-down-during-retune race),
    /// generated against the built system's shortcut set.
    #[must_use]
    pub fn with_correlated_faults(mut self, seed: u64, intensity: f64) -> Self {
        self.faults = FaultSpec::Correlated { seed, intensity };
        self
    }

    /// One-line description of the design point without building or
    /// running anything — used by sweep runners for progress reporting.
    pub fn summary(&self) -> String {
        let dims = self.placement.dims();
        let mut s = format!(
            "{} @{} on {} ({}x{}, {} msg/node/cyc",
            self.system.arch.name(),
            self.system.link_width,
            self.workload.name(),
            dims.width(),
            dims.height(),
            self.traffic.injection_rate,
        );
        if !matches!(self.faults, FaultSpec::None) {
            s.push_str(", faults");
        }
        s.push(')');
        s
    }

    /// Rough relative cost of running this experiment — simulated cycles
    /// (profiling included for the adaptive architectures) scaled by the
    /// router count. Parallel sweep runners use it to schedule the most
    /// expensive points first; the absolute value is meaningless.
    pub fn cost_estimate(&self) -> f64 {
        let sim = &self.system.sim;
        let mut cycles = sim.warmup_cycles + sim.measure_cycles + sim.drain_cycles;
        if self.system.arch.is_adaptive() {
            cycles += self.profile_cycles;
        }
        cycles as f64 * self.placement.dims().nodes() as f64
    }

    /// Resolves the fault specification into a concrete plan for `built`.
    fn resolve_faults(&self, built: &BuiltSystem) -> FaultPlan {
        match &self.faults {
            FaultSpec::None => FaultPlan::default(),
            FaultSpec::Plan(plan) => plan.clone(),
            FaultSpec::Random { seed, rates } => {
                let sim = &self.system.sim;
                let start = sim.warmup_cycles;
                let end = start + sim.measure_cycles.max(1);
                FaultPlan::random(
                    *seed,
                    &self.placement.fabric(),
                    &built.shortcuts,
                    *rates,
                    start..end,
                )
            }
            FaultSpec::Correlated { seed, intensity } => {
                let sim = &self.system.sim;
                let start = sim.warmup_cycles;
                let end = start + sim.measure_cycles.max(1);
                // The glitch burst scales with the offered load, relative
                // to the paper-default injection rate.
                let offered = self.traffic.injection_rate / 0.008;
                FaultPlan::correlated(
                    *seed,
                    &self.placement.fabric(),
                    &built.shortcuts,
                    *intensity,
                    offered,
                    start..end,
                )
            }
        }
    }

    /// Obtains the adaptive-selection profile via the configured source.
    fn gather_profile(&self, placement: &Placement) -> PairWeights {
        match self.profile_source {
            ProfileSource::Generator => {
                self.workload.profile(placement, &self.traffic, self.profile_cycles)
            }
            ProfileSource::EventCounters => {
                // Profile on the baseline mesh with the hardware counters
                // enabled for a short warmless window.
                let mut sim = self.system.sim.clone();
                sim.warmup_cycles = 0;
                sim.measure_cycles = self.profile_cycles;
                sim.drain_cycles = 0;
                sim.collect_pair_counts = true;
                let profiling_system =
                    SystemConfig::new(Architecture::Baseline, self.system.link_width)
                        .with_sim(sim);
                let built = build_system(&profiling_system, placement, None);
                let mut network = Network::new(built.network);
                let mut workload = self.workload.instantiate(placement, &self.traffic);
                let stats = network.run(workload.as_mut());
                stats.pair_weights()
            }
        }
    }

    /// Elaborates the system (selecting adaptive shortcuts from a traffic
    /// profile when needed) without running it.
    pub fn build(&self) -> BuiltSystem {
        let profile = self
            .system
            .arch
            .is_adaptive()
            .then(|| self.gather_profile(&self.placement));
        build_system(&self.system, &self.placement, profile.as_ref())
    }

    /// Builds, simulates, and costs the experiment.
    pub fn run(&self) -> RunReport {
        let placement = self.placement.clone();
        let built = self.build();
        let spec = built.network.clone().with_fault_plan(self.resolve_faults(&built));
        let mut network = Network::new(spec);
        // Instantiate against the *built* shortcut set so the adversarial
        // campaign profile targets the overlay actually selected.
        let mut workload =
            self.workload.instantiate_for(&placement, &self.traffic, &built.shortcuts);
        let stats = network.run(workload.as_mut());
        let model = NocPowerModel::paper_32nm();
        let power = model.power(&built.design, &stats.activity);
        let area = model.area(&built.design);
        RunReport {
            system: self.system.arch.name(),
            workload: self.workload.name(),
            stats,
            power,
            area,
        }
    }
}

/// Results of one experiment run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Architecture name.
    pub system: String,
    /// Workload name.
    pub workload: String,
    /// Simulation statistics.
    pub stats: RunStats,
    /// Average NoC power.
    pub power: PowerBreakdown,
    /// NoC active-layer area.
    pub area: AreaBreakdown,
}

impl RunReport {
    /// Average per-message network latency in cycles.
    pub fn avg_latency(&self) -> f64 {
        self.stats.avg_message_latency()
    }

    /// Average per-flit network latency in cycles (the paper's primary
    /// latency metric).
    pub fn avg_flit_latency(&self) -> f64 {
        self.stats.avg_flit_latency()
    }

    /// Total NoC power in watts.
    pub fn total_power_w(&self) -> f64 {
        self.power.total_w()
    }

    /// Total NoC active-layer area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.area.total_mm2()
    }

    /// `(latency, power)` of this run normalised to a baseline run — the
    /// presentation used by Figures 7, 8, 9, and 10.
    pub fn normalized_to(&self, baseline: &RunReport) -> (f64, f64) {
        (
            self.avg_latency() / baseline.avg_latency(),
            self.total_power_w() / baseline.total_power_w(),
        )
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} / {}: latency {:.1} cyc, power {:.3} W, area {:.2} mm2{}",
            self.system,
            self.workload,
            self.avg_latency(),
            self.total_power_w(),
            self.total_area_mm2(),
            if self.stats.saturated { " [SATURATED]" } else { "" }
        )?;
        if let Some(health) = &self.stats.health {
            write!(f, " [WATCHDOG: {health}]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfnoc_traffic::TraceKind;

    fn exp(arch: Architecture) -> Experiment {
        use rfnoc_power::LinkWidth;
        Experiment::new(SystemConfig::new(arch, LinkWidth::B16), WorkloadSpec::Trace(TraceKind::Uniform))
    }

    #[test]
    fn summary_is_cheap_and_descriptive() {
        let s = exp(Architecture::Baseline).summary();
        assert!(s.contains("Mesh Baseline"), "{s}");
        assert!(s.contains("Uniform"), "{s}");
        assert!(s.contains("10x10"), "{s}");
    }

    #[test]
    fn cost_estimate_orders_designs() {
        let base = exp(Architecture::Baseline).cost_estimate();
        let adaptive =
            exp(Architecture::AdaptiveShortcuts { access_points: 50 }).cost_estimate();
        // Adaptive pays for its profiling pass on top of the same window.
        assert!(adaptive > base);
        let mut shorter = exp(Architecture::Baseline);
        shorter.system.sim.measure_cycles /= 2;
        assert!(shorter.cost_estimate() < base);
    }

    #[test]
    fn experiments_compare_by_value() {
        assert_eq!(exp(Architecture::Baseline), exp(Architecture::Baseline));
        assert_ne!(exp(Architecture::Baseline), exp(Architecture::StaticShortcuts));
    }
}
