//! The architecture design points evaluated in the paper.

use rfnoc_power::LinkWidth;
use rfnoc_sim::SimConfig;
use std::fmt;

/// Default RF-I shortcut budget: a 256B aggregate RF-I bandwidth divided
/// into 16B channels gives **B = 16** unidirectional shortcuts (§3.2).
pub const DEFAULT_SHORTCUT_BUDGET: usize = 16;

/// Default number of RF-enabled routers for the adaptive architecture
/// (§5.1.1 picks 50 as the design point of interest).
pub const DEFAULT_ACCESS_POINTS: usize = 50;

/// An architecture design point from the paper's evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Architecture {
    /// Plain mesh, XY routing, no RF-I ("Mesh Baseline").
    Baseline,
    /// Architecture-specific shortcuts fixed at design time, selected by
    /// the Figure 3b max-cost heuristic ("Mesh Static Shortcuts").
    StaticShortcuts,
    /// The same static shortcut set realised in conventional buffered wire
    /// ("Mesh Wire Shortcuts", Figure 10a).
    WireShortcuts,
    /// Application-specific shortcuts re-selected per workload over
    /// `access_points` staggered RF-enabled routers ("Mesh Adaptive
    /// Shortcuts").
    AdaptiveShortcuts {
        /// Number of RF-enabled routers (50 or 25 in the paper).
        access_points: usize,
    },
    /// Baseline mesh with Virtual Circuit Tree multicast (Figure 9 "VCT").
    VctMulticast,
    /// RF-I broadcast channel only: all access points' receivers tuned to
    /// the multicast band, no shortcuts (Figure 9 "MC").
    RfMulticast {
        /// Number of RF-enabled routers.
        access_points: usize,
    },
    /// Adaptive shortcuts plus RF multicast: `shortcut_budget` shortcuts
    /// (15 in the paper) and the remaining receivers on the multicast band
    /// (Figure 9 "MC+SC").
    AdaptiveWithMulticast {
        /// Number of RF-enabled routers.
        access_points: usize,
        /// Shortcuts allocated; the rest of the RF budget serves multicast.
        shortcut_budget: usize,
    },
}

impl Architecture {
    /// Whether this architecture needs a traffic profile to select its
    /// shortcuts (the adaptive design points).
    pub fn is_adaptive(&self) -> bool {
        matches!(
            self,
            Architecture::AdaptiveShortcuts { .. } | Architecture::AdaptiveWithMulticast { .. }
        )
    }

    /// Short display name following the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Architecture::Baseline => "Mesh Baseline".into(),
            Architecture::StaticShortcuts => "Mesh Static Shortcuts".into(),
            Architecture::WireShortcuts => "Mesh Wire Shortcuts".into(),
            Architecture::AdaptiveShortcuts { access_points } => {
                format!("Mesh Adaptive Shortcuts ({access_points} APs)")
            }
            Architecture::VctMulticast => "VCT Multicast".into(),
            Architecture::RfMulticast { access_points } => {
                format!("RF Multicast ({access_points} APs)")
            }
            Architecture::AdaptiveWithMulticast { access_points, shortcut_budget } => format!(
                "Adaptive Shortcuts + RF Multicast ({access_points} APs, {shortcut_budget} SC)"
            ),
        }
    }
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// A complete system configuration: architecture + link width + simulator
/// parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// The architecture design point.
    pub arch: Architecture,
    /// Conventional mesh link width (16B baseline; 8B/4B reduced).
    pub link_width: LinkWidth,
    /// Simulator microarchitecture parameters.
    pub sim: SimConfig,
    /// RF-I shortcut budget for the shortcut architectures.
    pub shortcut_budget: usize,
}

impl SystemConfig {
    /// The given architecture at the given width with paper-default
    /// simulator parameters.
    pub fn new(arch: Architecture, link_width: LinkWidth) -> Self {
        Self {
            arch,
            link_width,
            sim: SimConfig::paper_baseline().with_link_width(link_width),
            shortcut_budget: DEFAULT_SHORTCUT_BUDGET,
        }
    }

    /// Replaces the simulator configuration (keeping its link width in
    /// sync with this system's).
    #[must_use]
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim.with_link_width(self.link_width);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptivity_flags() {
        assert!(!Architecture::Baseline.is_adaptive());
        assert!(!Architecture::StaticShortcuts.is_adaptive());
        assert!(Architecture::AdaptiveShortcuts { access_points: 50 }.is_adaptive());
        assert!(Architecture::AdaptiveWithMulticast { access_points: 50, shortcut_budget: 15 }
            .is_adaptive());
    }

    #[test]
    fn system_config_syncs_width() {
        let sys = SystemConfig::new(Architecture::Baseline, LinkWidth::B4);
        assert_eq!(sys.sim.link_width, LinkWidth::B4);
        let sys = sys.with_sim(SimConfig::paper_baseline());
        assert_eq!(sys.sim.link_width, LinkWidth::B4, "width must stay in sync");
    }

    #[test]
    fn names_are_distinct() {
        let archs = [
            Architecture::Baseline,
            Architecture::StaticShortcuts,
            Architecture::WireShortcuts,
            Architecture::AdaptiveShortcuts { access_points: 50 },
            Architecture::VctMulticast,
            Architecture::RfMulticast { access_points: 50 },
            Architecture::AdaptiveWithMulticast { access_points: 50, shortcut_budget: 15 },
        ];
        let names: std::collections::HashSet<String> =
            archs.iter().map(|a| a.name()).collect();
        assert_eq!(names.len(), archs.len());
    }
}
