//! # rfnoc — CMP network-on-chip overlaid with multi-band RF-interconnect
//!
//! A from-scratch reproduction of the system described in *CMP
//! network-on-chip overlaid with multi-band RF-interconnect* (Chang, Cong,
//! Kaplan, Naik, Reinman, Socher, Tam — HPCA 2008) and its companion
//! *Power Reduction of CMP Communication Networks via RF-Interconnects*
//! (HPCA 2009).
//!
//! The system: a 64-core CMP whose 10×10 mesh NoC is overlaid with
//! multi-band RF-interconnect transmission lines. The RF-I provides
//! single-cycle cross-chip *shortcuts* whose frequency bands can be
//! retuned per application (an adaptive NoC), a natural broadcast medium
//! for coherence *multicast*, and — the headline result — enough added
//! bandwidth that the underlying mesh can be thinned from 16B to 4B links,
//! cutting NoC power by ~65% and area by ~82% at equal performance.
//!
//! This crate is the top of the reproduction stack:
//!
//! * [`Architecture`] / [`SystemConfig`] — the paper's design points
//!   (baseline, static/wire/adaptive shortcuts, VCT and RF multicast).
//! * [`WorkloadSpec`] — Table 1 probabilistic traces, synthetic PARSEC/
//!   SPECjbb application profiles, multicast-augmented traces.
//! * [`Experiment`] → [`RunReport`] — build, profile, simulate (on
//!   [`rfnoc_sim`]), and cost (with [`rfnoc_power`]) in one call.
//!
//! # Quickstart
//!
//! Compare the 16B baseline against adaptive RF-I shortcuts on a 4B mesh:
//!
//! ```no_run
//! use rfnoc::{Architecture, Experiment, SystemConfig, WorkloadSpec};
//! use rfnoc_power::LinkWidth;
//! use rfnoc_traffic::TraceKind;
//!
//! let workload = WorkloadSpec::Trace(TraceKind::Hotspot1);
//! let baseline = Experiment::new(
//!     SystemConfig::new(Architecture::Baseline, LinkWidth::B16),
//!     workload.clone(),
//! )
//! .run();
//! let adaptive = Experiment::new(
//!     SystemConfig::new(
//!         Architecture::AdaptiveShortcuts { access_points: 50 },
//!         LinkWidth::B4,
//!     ),
//!     workload,
//! )
//! .run();
//! let (lat, pow) = adaptive.normalized_to(&baseline);
//! println!("adaptive@4B: {lat:.2}x latency, {pow:.2}x power");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
mod arch;
mod builder;
pub mod compare;
mod experiment;
pub mod gate;
pub mod history;
pub mod ledger;
pub mod obs;
mod phased;
mod workload;

pub use arch::{Architecture, SystemConfig, DEFAULT_ACCESS_POINTS, DEFAULT_SHORTCUT_BUDGET};
pub use builder::{
    adaptive_shortcuts, build_system, static_shortcuts, BuiltSystem, DEFAULT_MC_EPOCH,
    WIRE_SHORTCUT_CYCLES_PER_HOP,
};
pub use experiment::{
    Experiment, FaultSpec, ProfileSource, RunReport, DEFAULT_PROFILE_CYCLES,
};
pub use phased::{PhasedExperiment, PhasedReport, ReconfigPolicy};
pub use workload::WorkloadSpec;

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use rfnoc_power;
pub use rfnoc_sim;
pub use rfnoc_topology;
pub use rfnoc_traffic;
