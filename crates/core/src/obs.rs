//! The live observatory: an in-process hub fed with run-ledger lines and
//! a dependency-free HTTP server exposing them.
//!
//! The bench runner's `LedgerSink` (and `rfnoc-cli serve-obs`, which
//! tails a ledger file) pushes every JSONL line into an [`ObsHub`]. The
//! hub keeps two things: an incremental [`LedgerReader`] reduction (so
//! `/metrics` answers from aggregates, never by re-reading a file) and a
//! bounded ring of the raw lines (so `/events` can replay the stream
//! from the beginning to late subscribers). [`spawn_server`] binds a
//! `std::net::TcpListener` on localhost and serves, one thread per
//! connection:
//!
//! * `GET /healthz` — `ok`, always 200 while the process lives.
//! * `GET /metrics` — Prometheus text exposition (format 0.0.4) of the
//!   running reduction: heartbeat throughput (kcycles/s last/mean/max),
//!   in-flight flits, shard imbalance and barrier-wait share, per-shard
//!   sweep/barrier counters, point lifecycle progress, event counts.
//! * `GET /events` — Server-Sent Events: every ledger line as one
//!   `data:` frame, replayed from the start of the ring, then followed
//!   live; the stream ends with an `end` event once the hub is closed
//!   and the subscriber has caught up.
//!
//! Everything here is observation-side only: the hub consumes the same
//! rendered lines the ledger file gets (a fan-out tee in the sink), so
//! the engine and its golden hashes are untouched.

use crate::ledger::{LedgerReader, LedgerSummary};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Raw ledger lines retained for `/events` replay. At the bench ledger's
/// record sizes this is a few tens of MB at worst; beyond it the ring
/// drops its oldest lines and late subscribers see a truncated replay.
const RING_CAP: usize = 65_536;

/// How long a blocked `/events` subscriber waits before emitting an SSE
/// keepalive comment (which doubles as dead-client detection).
const SSE_KEEPALIVE: Duration = Duration::from_millis(1_000);

struct HubInner {
    reader: LedgerReader,
    /// Ring of raw lines; `lines[i]` has sequence `base_seq + i`.
    lines: VecDeque<String>,
    /// Sequence number of the oldest retained line.
    base_seq: u64,
    /// No further lines will arrive; subscribers should finish.
    closed: bool,
    /// Live `/events` subscriber handlers.
    subscribers: usize,
    /// Lines that failed JSON reduction (still replayed verbatim).
    malformed: u64,
}

/// The shared state between a ledger producer and the HTTP handlers.
pub struct ObsHub {
    inner: Mutex<HubInner>,
    cv: Condvar,
}

impl Default for ObsHub {
    fn default() -> Self {
        Self::new()
    }
}

impl ObsHub {
    /// An empty hub.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(HubInner {
                reader: LedgerReader::new(),
                lines: VecDeque::new(),
                base_seq: 0,
                closed: false,
                subscribers: 0,
                malformed: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Feeds one ledger line (without trailing newline; one is trimmed if
    /// present). The line lands in the replay ring verbatim — `/events`
    /// mirrors the file exactly — and in the running reduction when it
    /// parses. Empty lines are ignored.
    pub fn push_line(&self, line: &str) {
        let line = line.trim_end_matches(['\n', '\r']);
        if line.trim().is_empty() {
            return;
        }
        let mut g = self.inner.lock().expect("obs hub");
        if g.reader.push_line(line).is_err() {
            g.malformed += 1;
        }
        if g.lines.len() == RING_CAP {
            g.lines.pop_front();
            g.base_seq += 1;
        }
        g.lines.push_back(line.to_string());
        drop(g);
        self.cv.notify_all();
    }

    /// Marks the stream finished: `/events` subscribers drain and end.
    pub fn close(&self) {
        self.inner.lock().expect("obs hub").closed = true;
        self.cv.notify_all();
    }

    /// Whether [`Self::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().expect("obs hub").closed
    }

    /// Total lines pushed (including any the ring has since dropped).
    pub fn lines_pushed(&self) -> u64 {
        let g = self.inner.lock().expect("obs hub");
        g.base_seq + g.lines.len() as u64
    }

    /// A snapshot of the running ledger reduction.
    pub fn summary(&self) -> LedgerSummary {
        self.inner.lock().expect("obs hub").reader.summary().clone()
    }

    /// Blocks until every `/events` subscriber has disconnected, or the
    /// timeout elapses; returns whether the hub fully drained. Producers
    /// call this after [`Self::close`] so a process exit does not cut
    /// off a subscriber mid-replay.
    pub fn wait_drained(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.inner.lock().expect("obs hub");
        while g.subscribers > 0 {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (g2, _) = self
                .cv
                .wait_timeout(g, deadline - now)
                .expect("obs hub");
            g = g2;
        }
        true
    }

    /// Fetches lines from `from_seq` on. Blocks up to [`SSE_KEEPALIVE`]
    /// when nothing new is available. Returns the batch (possibly
    /// empty), the next sequence to ask for, and whether the stream is
    /// finished (closed and caught up).
    fn next_lines(&self, from_seq: u64) -> (Vec<String>, u64, bool) {
        let mut g = self.inner.lock().expect("obs hub");
        loop {
            let end = g.base_seq + g.lines.len() as u64;
            if from_seq < end {
                // A subscriber older than the ring restarts at its head.
                let start = from_seq.max(g.base_seq);
                let batch: Vec<String> = g
                    .lines
                    .iter()
                    .skip((start - g.base_seq) as usize)
                    .cloned()
                    .collect();
                return (batch, end, false);
            }
            if g.closed {
                return (Vec::new(), end, true);
            }
            let (g2, res) = self
                .cv
                .wait_timeout(g, SSE_KEEPALIVE)
                .expect("obs hub");
            g = g2;
            if res.timed_out() {
                return (Vec::new(), g.base_seq + g.lines.len() as u64, false);
            }
        }
    }

    /// Renders the Prometheus text exposition (format 0.0.4).
    pub fn metrics_text(&self) -> String {
        let (summary, pushed, malformed, closed) = {
            let g = self.inner.lock().expect("obs hub");
            (
                g.reader.summary().clone(),
                g.base_seq + g.lines.len() as u64,
                g.malformed,
                g.closed,
            )
        };
        let mut out = String::new();
        let mut gauge = |name: &str, help: &str, v: f64| {
            if v.is_finite() {
                let _ = writeln!(out, "# HELP {name} {help}");
                let _ = writeln!(out, "# TYPE {name} gauge");
                let _ = writeln!(out, "{name} {v}");
            }
        };
        gauge(
            "rfnoc_ledger_records",
            "Well-formed ledger records reduced so far.",
            summary.records as f64,
        );
        gauge(
            "rfnoc_ledger_lines",
            "Raw ledger lines received (including malformed).",
            pushed as f64,
        );
        gauge(
            "rfnoc_ledger_malformed_lines",
            "Ledger lines that failed JSON reduction.",
            malformed as f64,
        );
        gauge(
            "rfnoc_heartbeats",
            "Engine heartbeat records seen.",
            summary.heartbeats as f64,
        );
        gauge(
            "rfnoc_total_kcycles",
            "Simulated kilocycles covered by heartbeats.",
            summary.total_cycles / 1e3,
        );
        gauge(
            "rfnoc_kcycles_per_sec",
            "Engine throughput of the most recent heartbeat (kcycles/s).",
            summary.kcps.last().copied().unwrap_or(0.0),
        );
        gauge(
            "rfnoc_kcycles_per_sec_mean",
            "Mean per-heartbeat engine throughput (kcycles/s).",
            summary.kcps_mean(),
        );
        gauge(
            "rfnoc_kcycles_per_sec_max",
            "Peak per-heartbeat engine throughput (kcycles/s).",
            summary.kcps_max(),
        );
        gauge(
            "rfnoc_in_flight",
            "In-flight flits at the most recent heartbeat.",
            summary.in_flight_last,
        );
        gauge(
            "rfnoc_completed_messages",
            "Cumulative completed messages at the most recent heartbeat.",
            summary.completed_last,
        );
        if let Some(v) = summary.shard_imbalance() {
            gauge(
                "rfnoc_shard_imbalance",
                "Max-over-mean per-shard total sweep time (1.0 = balanced).",
                v,
            );
        }
        if let Some(v) = summary.barrier_wait_frac() {
            gauge(
                "rfnoc_barrier_wait_frac",
                "Barrier-wait share of the sharded sweep wall time.",
                v,
            );
        }
        if let Some(p) = summary.points_planned {
            gauge("rfnoc_points_planned", "Unique plan points announced.", p);
        }
        gauge(
            "rfnoc_points_started",
            "Plan points that have started.",
            summary.points_started as f64,
        );
        gauge(
            "rfnoc_points_finished",
            "Plan points that have finished.",
            summary.points_finished as f64,
        );
        gauge(
            "rfnoc_plan_finished",
            "1 once the producer closed the stream.",
            if closed { 1.0 } else { 0.0 },
        );
        gauge(
            "rfnoc_schema_problems",
            "Ledger schema violations detected by the reduction.",
            summary.problems.len() as f64,
        );
        if !summary.shards.is_empty() {
            let _ = writeln!(
                out,
                "# HELP rfnoc_shard_sweep_ms Total sweep wall milliseconds per engine shard."
            );
            let _ = writeln!(out, "# TYPE rfnoc_shard_sweep_ms gauge");
            for (id, t) in &summary.shards {
                let _ =
                    writeln!(out, "rfnoc_shard_sweep_ms{{shard=\"{id}\"}} {}", t.sweep_ms);
            }
            let _ = writeln!(
                out,
                "# HELP rfnoc_shard_barrier_ms Total barrier wall milliseconds per engine shard."
            );
            let _ = writeln!(out, "# TYPE rfnoc_shard_barrier_ms gauge");
            for (id, t) in &summary.shards {
                let _ = writeln!(
                    out,
                    "rfnoc_shard_barrier_ms{{shard=\"{id}\"}} {}",
                    t.barrier_ms
                );
            }
        }
        if !summary.events.is_empty() {
            let _ = writeln!(
                out,
                "# HELP rfnoc_events Timeline event records seen, by event name."
            );
            let _ = writeln!(out, "# TYPE rfnoc_events gauge");
            for (name, count) in &summary.events {
                let escaped: String = name
                    .chars()
                    .map(|c| if c == '"' || c == '\\' || c == '\n' { '_' } else { c })
                    .collect();
                let _ = writeln!(out, "rfnoc_events{{event=\"{escaped}\"}} {count}");
            }
        }
        out
    }
}

/// Binds `127.0.0.1:port` (0 = OS-assigned) and serves the hub on a
/// detached accept-loop thread. Returns the bound address.
///
/// # Errors
///
/// The bind failure, if any — the caller decides whether that is fatal.
pub fn spawn_server(hub: Arc<ObsHub>, port: u16) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    std::thread::Builder::new()
        .name("rfnoc-obs-accept".into())
        .spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { continue };
                let hub = Arc::clone(&hub);
                let _ = std::thread::Builder::new()
                    .name("rfnoc-obs-conn".into())
                    .spawn(move || handle_connection(stream, &hub));
            }
        })?;
    Ok(addr)
}

/// Reads the request line + headers of one HTTP/1.x request; returns the
/// request path. Bounded at 16 KiB of headers.
fn read_request(stream: &mut TcpStream) -> Option<String> {
    let mut reader = BufReader::new(stream.try_clone().ok()?).take(16 * 1024);
    let mut request_line = String::new();
    reader.read_line(&mut request_line).ok()?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next()?;
    let path = parts.next()?.to_string();
    if method != "GET" {
        return None;
    }
    // Drain headers up to the blank line; the bodies of GETs are empty.
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) if line == "\r\n" || line == "\n" => break,
            Ok(_) => continue,
            Err(_) => return None,
        }
    }
    Some(path)
}

fn write_response(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.flush();
}

fn handle_connection(mut stream: TcpStream, hub: &Arc<ObsHub>) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let Some(path) = read_request(&mut stream) else {
        write_response(&mut stream, "400 Bad Request", "text/plain", "bad request\n");
        return;
    };
    match path.split('?').next().unwrap_or("") {
        "/healthz" => write_response(&mut stream, "200 OK", "text/plain", "ok\n"),
        "/metrics" => write_response(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4",
            &hub.metrics_text(),
        ),
        "/events" => serve_events(stream, hub),
        _ => write_response(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

/// Streams the ledger as Server-Sent Events: full replay from the ring's
/// head, then live until the hub closes and the subscriber is caught up.
fn serve_events(mut stream: TcpStream, hub: &Arc<ObsHub>) {
    let header = "HTTP/1.1 200 OK\r\nContent-Type: text/event-stream\r\n\
                  Cache-Control: no-cache\r\nConnection: close\r\n\r\n";
    if stream.write_all(header.as_bytes()).and_then(|()| stream.flush()).is_err() {
        return;
    }
    hub.inner.lock().expect("obs hub").subscribers += 1;
    let mut seq = 0u64;
    loop {
        let (batch, next_seq, finished) = hub.next_lines(seq);
        let mut chunk = String::new();
        for line in &batch {
            let _ = writeln!(chunk, "data: {line}\n");
        }
        if batch.is_empty() && !finished {
            // Keepalive comment: detects dead clients while idle.
            chunk.push_str(": keepalive\n\n");
        }
        if finished {
            chunk.push_str("event: end\ndata: stream closed\n\n");
        }
        let ok = stream.write_all(chunk.as_bytes()).and_then(|()| stream.flush()).is_ok();
        seq = next_seq;
        if finished || !ok {
            break;
        }
    }
    hub.inner.lock().expect("obs hub").subscribers -= 1;
    hub.cv.notify_all();
}

/// Follows a ledger file into a hub for `rfnoc-cli serve-obs`: pushes
/// every complete line, then polls for growth every `poll`.
///
/// If the file already ends in a `plan_finish` record when first read
/// (i.e. it is a finished run, not a live one), the hub is closed right
/// away so `/events` subscribers get a bounded replay. A live file is
/// followed indefinitely — the server runs until interrupted.
///
/// # Errors
///
/// The initial read failing. Later read failures are tolerated (the file
/// may be mid-rotation); the hub simply stops growing until it heals.
pub fn tail_file_into_hub(
    path: &str,
    hub: &ObsHub,
    poll: Duration,
) -> Result<(), String> {
    let mut consumed = 0usize;
    let mut first = true;
    loop {
        match std::fs::read_to_string(path) {
            Ok(data) => {
                // A shrunk (rotated/truncated) file restarts the tail.
                if data.len() < consumed {
                    consumed = 0;
                }
                let fresh = &data[consumed..];
                // Only complete lines; a partial tail stays unconsumed.
                if let Some(last_nl) = fresh.rfind('\n') {
                    for line in fresh[..=last_nl].lines() {
                        hub.push_line(line);
                    }
                    consumed += last_nl + 1;
                }
                if first {
                    first = false;
                    if hub.summary().plan_wall_ms.is_some() {
                        hub.close();
                    }
                }
            }
            Err(e) if first => return Err(format!("{path}: {e}")),
            Err(_) => {}
        }
        std::thread::sleep(poll);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hub_reduces_and_replays() {
        let hub = ObsHub::new();
        hub.push_line(
            "{\"t_ms\": 1.0, \"kind\": \"heartbeat\", \"cycle\": 2000, \"cycles\": 2000, \
             \"wall_ms\": 0.5, \"kcycles_per_sec\": 100.0, \"in_flight\": 5, \
             \"completed\": 10, \"active_routers\": 16}",
        );
        hub.push_line("not json at all");
        hub.push_line("");
        assert_eq!(hub.lines_pushed(), 2, "blank dropped, malformed retained");
        let s = hub.summary();
        assert_eq!(s.heartbeats, 1);
        assert_eq!(s.records, 1);
        let (batch, next, finished) = hub.next_lines(0);
        assert_eq!(batch.len(), 2);
        assert_eq!(next, 2);
        assert!(!finished);
        hub.close();
        let (batch, _, finished) = hub.next_lines(2);
        assert!(batch.is_empty());
        assert!(finished);
    }

    #[test]
    fn metrics_text_is_prometheus_shaped() {
        let hub = ObsHub::new();
        hub.push_line(
            "{\"t_ms\": 1.0, \"kind\": \"heartbeat\", \"cycle\": 2000, \"cycles\": 2000, \
             \"wall_ms\": 0.5, \"kcycles_per_sec\": 250.0, \"in_flight\": 7, \
             \"completed\": 10, \"active_routers\": 16}",
        );
        hub.push_line(
            "{\"t_ms\": 2.0, \"kind\": \"shard\", \"cycle\": 2000, \"shard\": 0, \
             \"swept_routers\": 900, \"sweep_ms\": 3.0, \"barrier_ms\": 1.0, \
             \"replay_ops\": 40}",
        );
        hub.push_line(
            "{\"t_ms\": 2.1, \"kind\": \"shard\", \"cycle\": 2000, \"shard\": 1, \
             \"swept_routers\": 700, \"sweep_ms\": 1.0, \"barrier_ms\": 3.0, \
             \"replay_ops\": 20}",
        );
        hub.push_line(
            "{\"t_ms\": 2.5, \"kind\": \"event\", \"event\": \"fault\", \
             \"detail\": \"x\"}",
        );
        let text = hub.metrics_text();
        assert!(text.contains("rfnoc_kcycles_per_sec 250"), "{text}");
        assert!(text.contains("rfnoc_in_flight 7"), "{text}");
        assert!(text.contains("rfnoc_shard_imbalance 1.5"), "{text}");
        assert!(text.contains("rfnoc_shard_sweep_ms{shard=\"0\"} 3"), "{text}");
        assert!(text.contains("rfnoc_events{event=\"fault\"} 1"), "{text}");
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .split_once(' ')
                        .is_some_and(|(name, v)| !name.is_empty() && v.parse::<f64>().is_ok()),
                "unexpected exposition line: {line}"
            );
        }
    }

    #[test]
    fn http_endpoints_respond() {
        let hub = Arc::new(ObsHub::new());
        hub.push_line(
            "{\"t_ms\": 1.0, \"kind\": \"heartbeat\", \"cycle\": 2000, \"cycles\": 2000, \
             \"wall_ms\": 0.5, \"kcycles_per_sec\": 100.0, \"in_flight\": 5, \
             \"completed\": 10, \"active_routers\": 16}",
        );
        let addr = spawn_server(Arc::clone(&hub), 0).expect("bind ephemeral port");
        let get = |path: &str| -> String {
            let mut s = TcpStream::connect(addr).unwrap();
            write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        };
        let health = get("/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"), "{health}");
        assert!(health.ends_with("ok\n"), "{health}");
        let metrics = get("/metrics");
        assert!(metrics.contains("rfnoc_kcycles_per_sec 100"), "{metrics}");
        assert!(metrics.contains("text/plain; version=0.0.4"), "{metrics}");
        let missing = get("/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
    }

    #[test]
    fn sse_replays_then_ends_and_drains() {
        let hub = Arc::new(ObsHub::new());
        hub.push_line("{\"t_ms\": 1.0, \"kind\": \"point_queued\", \"point\": \"a\"}");
        let addr = spawn_server(Arc::clone(&hub), 0).expect("bind ephemeral port");
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET /events HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        // Push one more line live, then close: the subscriber must see
        // both frames and the end event, and the hub must drain.
        hub.push_line("{\"t_ms\": 2.0, \"kind\": \"plan_finish\", \"wall_ms\": 5.0}");
        hub.close();
        assert!(hub.wait_drained(Duration::from_secs(10)), "subscriber must finish");
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        assert!(out.contains("text/event-stream"), "{out}");
        assert!(out.contains("data: {\"t_ms\": 1.0"), "{out}");
        assert!(out.contains("data: {\"t_ms\": 2.0"), "{out}");
        assert!(out.contains("event: end"), "{out}");
        // The data frames replay the pushed lines in order.
        let frames: Vec<&str> = out
            .lines()
            .filter_map(|l| l.strip_prefix("data: "))
            .collect();
        assert_eq!(frames[0], "{\"t_ms\": 1.0, \"kind\": \"point_queued\", \"point\": \"a\"}");
    }

    #[test]
    fn wait_drained_without_subscribers_is_immediate() {
        let hub = ObsHub::new();
        hub.close();
        assert!(hub.wait_drained(Duration::from_millis(1)));
        assert!(hub.is_closed());
    }

    #[test]
    fn tail_reads_finished_file_and_closes() {
        let dir = std::env::temp_dir().join("rfnoc_obs_tail_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("done.jsonl");
        std::fs::write(
            &path,
            "{\"t_ms\": 1.0, \"kind\": \"point_queued\", \"point\": \"a\"}\n\
             {\"t_ms\": 2.0, \"kind\": \"plan_finish\", \"wall_ms\": 5.0}\n",
        )
        .unwrap();
        let hub = Arc::new(ObsHub::new());
        let h2 = Arc::clone(&hub);
        let p = path.to_str().unwrap().to_string();
        // The tail loop never returns on success; give it a thread and
        // watch the hub instead.
        std::thread::spawn(move || {
            let _ = tail_file_into_hub(&p, &h2, Duration::from_millis(10));
        });
        let t0 = Instant::now();
        while !hub.is_closed() && t0.elapsed() < Duration::from_secs(10) {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(hub.is_closed(), "finished file must close the hub");
        assert_eq!(hub.lines_pushed(), 2);
        assert!(
            tail_file_into_hub("/nonexistent/x.jsonl", &ObsHub::new(), Duration::ZERO)
                .is_err()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
