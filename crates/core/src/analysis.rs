//! Analytical zero-load latency model.
//!
//! A closed-form estimate of message latency in the absence of contention,
//! derived from the paper's router pipeline (§3.1): each hop costs the
//! 5-cycle head pipeline (route computation, VC allocation, switch
//! allocation, switch traversal, link traversal), the destination router
//! adds one more pipeline traversal for ejection, body/tail flits stream
//! one per cycle behind the head, and injection adds one cycle of local
//! link traversal.
//!
//! Useful for quick what-if topology studies (evaluating a shortcut set
//! without simulating) and as a validation oracle for the simulator's
//! zero-load behaviour.

use rfnoc_power::LinkWidth;
use rfnoc_topology::{DistanceMatrix, PairWeights};

/// Zero-load latency model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZeroLoadModel {
    /// Cycles per hop for the head flit (the paper's 5-stage pipeline).
    pub head_cycles_per_hop: u64,
    /// Injection overhead in cycles (local link traversal).
    pub injection_cycles: u64,
}

impl Default for ZeroLoadModel {
    fn default() -> Self {
        Self { head_cycles_per_hop: 5, injection_cycles: 1 }
    }
}

impl ZeroLoadModel {
    /// Zero-load latency in cycles for a message of `bytes` crossing
    /// `hops` network hops at the given link width.
    ///
    /// `hops + 1` router traversals (the destination router ejects), plus
    /// serialization of the body flits.
    pub fn message_latency(&self, hops: u32, bytes: u32, width: LinkWidth) -> f64 {
        let flits = width.flits_for(bytes);
        (self.injection_cycles
            + self.head_cycles_per_hop * (hops as u64 + 1)
            + (flits as u64 - 1)) as f64
    }

    /// Expected zero-load latency over a traffic distribution: the
    /// `weights`-weighted mean of per-pair latency under `dist`.
    ///
    /// Returns 0.0 when the weights are all zero.
    ///
    /// # Panics
    ///
    /// Panics if the matrix and weights disagree on node count.
    pub fn expected_latency(
        &self,
        dist: &DistanceMatrix,
        weights: &PairWeights,
        bytes: u32,
        width: LinkWidth,
    ) -> f64 {
        let n = dist.node_count();
        assert_eq!(weights.node_count(), n, "node count mismatch");
        let mut total_w = 0.0;
        let mut total_l = 0.0;
        for x in 0..n {
            for y in 0..n {
                if x == y {
                    continue;
                }
                let w = weights.get(x, y);
                if w > 0.0 {
                    total_w += w;
                    total_l += w * self.message_latency(dist.get(x, y), bytes, width);
                }
            }
        }
        if total_w == 0.0 {
            0.0
        } else {
            total_l / total_w
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfnoc_sim::{
        MessageClass, MessageSpec, Network, NetworkSpec, ScriptedWorkload, SimConfig,
    };
    use rfnoc_topology::{FabricSpec, GridDims, GridGraph, Shortcut};

    /// Simulates a single message on `fabric` and returns the measured
    /// latency together with the fabric's base-route hop count — one
    /// source of truth for both, so the simulated network and the model's
    /// hop input can never silently diverge.
    fn simulated_single(
        fabric: FabricSpec,
        src: usize,
        dst: usize,
        class: MessageClass,
        width: LinkWidth,
    ) -> (f64, u32) {
        let mut cfg = SimConfig::paper_baseline().with_link_width(width);
        cfg.warmup_cycles = 0;
        cfg.measure_cycles = 100;
        let hops = fabric.base_route_len(src, dst);
        let spec = NetworkSpec::with_fabric(fabric, cfg, Vec::new());
        let mut network = Network::new(spec);
        let stats = network
            .run(&mut ScriptedWorkload::new(vec![(0, MessageSpec::unicast(src, dst, class))]));
        assert_eq!(stats.completed_messages, 1);
        (stats.avg_message_latency(), hops)
    }

    #[test]
    fn model_matches_simulator_zero_load() {
        let model = ZeroLoadModel::default();
        for fabric in [
            FabricSpec::mesh(GridDims::new(10, 10)),
            FabricSpec::ring_mesh(GridDims::new(8, 8), 4),
        ] {
            let n = fabric.dims().nodes();
            for (src, dst, class, width) in [
                (0usize, n - 1, MessageClass::Data, LinkWidth::B16),
                (0, 9, MessageClass::Request, LinkWidth::B16),
                (5, n - 13, MessageClass::Memory, LinkWidth::B4),
                (22, 23, MessageClass::Data, LinkWidth::B8),
            ] {
                let (sim, hops) = simulated_single(fabric, src, dst, class, width);
                let predicted = model.message_latency(hops, class.bytes(), width);
                let err = (sim - predicted).abs();
                assert!(
                    err <= 3.0,
                    "{} {src}->{dst} {class:?} @{width}: sim {sim}, model {predicted}",
                    fabric.name()
                );
            }
        }
    }

    #[test]
    fn expected_latency_drops_with_shortcuts() {
        let model = ZeroLoadModel::default();
        let dims = GridDims::new(10, 10);
        let weights = PairWeights::uniform(100);
        let mesh = GridGraph::mesh(dims);
        let base = model.expected_latency(
            &mesh.distances(),
            &weights,
            MessageClass::Data.bytes(),
            LinkWidth::B16,
        );
        let mut with_sc = mesh.clone();
        with_sc.add_shortcut(Shortcut::new(0, 99));
        with_sc.add_shortcut(Shortcut::new(99, 0));
        with_sc.add_shortcut(Shortcut::new(9, 90));
        with_sc.add_shortcut(Shortcut::new(90, 9));
        let cut = model.expected_latency(
            &with_sc.distances(),
            &weights,
            MessageClass::Data.bytes(),
            LinkWidth::B16,
        );
        assert!(cut < base, "{cut} vs {base}");
    }

    #[test]
    fn zero_weights_yield_zero() {
        let model = ZeroLoadModel::default();
        let dims = GridDims::new(4, 4);
        let dist = GridGraph::mesh(dims).distances();
        let w = PairWeights::zero(16);
        assert_eq!(model.expected_latency(&dist, &w, 39, LinkWidth::B16), 0.0);
    }
}
