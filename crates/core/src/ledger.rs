//! Run-ledger aggregation: reads the JSONL stream the bench runner's
//! ledger sink writes (`results/ledger/<name>.jsonl`) and reduces it to
//! the numbers an operator actually wants — overall throughput, shard
//! balance, barrier-wait share, point-lifecycle progress, event counts.
//!
//! Two front ends in `rfnoc-cli` sit on top:
//!
//! * `rfnoc-cli tail <ledger.jsonl>` renders [`LedgerSummary::render_tail`]
//!   — a compact live view (throughput sparkline, slowest shard, worst
//!   imbalance ratio, ETA from the remaining plan points) — optionally
//!   re-rendering as the file grows (`--follow`).
//! * `rfnoc-cli ledger-summary <ledger.jsonl>` prints
//!   [`LedgerSummary::render_json`] — a flat JSON report whose metric
//!   names carry the [`crate::compare`] direction keywords
//!   (`kcycles_per_sec_*` must not fall; `barrier_wait_frac`,
//!   `*_imbalance` must not rise), so two summaries can be gated with
//!   `rfnoc-cli compare a.json b.json --threshold PCT` like any other
//!   artifact.
//!
//! Every line of the ledger is one flat JSON object tagged with `kind`
//! (`heartbeat` / `shard` / `event` from the engine, `plan_*` / `point_*`
//! from the runner) and stamped with `t_ms`. The reader is strict about
//! JSON well-formedness (a malformed line is an error — a truncated final
//! line, the one legitimate mid-write artifact of `--follow`, is the only
//! exception) and tolerant about unknown kinds, which it counts but
//! otherwise ignores so the schema can grow.

use crate::compare::{parse, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Reads a numeric field of a flat record.
fn num(rec: &Json, key: &str) -> Option<f64> {
    match rec.get(key) {
        Some(Json::Num(v)) => Some(*v),
        _ => None,
    }
}

/// Reads a string field of a flat record.
fn text<'j>(rec: &'j Json, key: &str) -> Option<&'j str> {
    rec.get(key).and_then(Json::as_str)
}

/// Escapes a string for a JSON literal (hand-rolled JSON — no serde in
/// the container; matches the bench artifact conventions).
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as JSON: finite values with 4 decimals, else `null`.
fn jf64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

/// Accumulated totals for one engine shard across every `shard` record.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct ShardTotals {
    /// Total router visits this shard performed.
    pub swept_routers: f64,
    /// Total wall milliseconds spent sweeping.
    pub sweep_ms: f64,
    /// Total wall milliseconds spent waiting at cycle barriers.
    pub barrier_ms: f64,
    /// Total buffered cross-shard operations replayed.
    pub replay_ops: f64,
}

/// The reduced view of one ledger file. Build with
/// [`LedgerSummary::from_file`] or [`LedgerSummary::from_text`].
#[derive(Debug, Default, Clone, PartialEq)]
pub struct LedgerSummary {
    /// Total well-formed records read.
    pub records: usize,
    /// Records with an unrecognised `kind` (counted, otherwise ignored).
    pub unknown_kinds: usize,
    /// First and last `t_ms` stamps seen (0/0 when empty).
    pub t_ms_span: (f64, f64),
    /// Heartbeat count.
    pub heartbeats: usize,
    /// Total simulated cycles covered by heartbeats.
    pub total_cycles: f64,
    /// Per-heartbeat `kcycles_per_sec` readings, in file order (feeds the
    /// tail sparkline).
    pub kcps: Vec<f64>,
    /// Last heartbeat's `in_flight` reading.
    pub in_flight_last: f64,
    /// Per-shard totals, keyed by shard index.
    pub shards: BTreeMap<u64, ShardTotals>,
    /// Timeline event counts keyed by event name (`fault`,
    /// `retune_applied`, ...).
    pub events: BTreeMap<String, usize>,
    /// Unique plan points announced by `plan_start` (dedup already
    /// applied), when a runner wrote this ledger.
    pub points_planned: Option<f64>,
    /// Worker threads the runner announced in `plan_start`.
    pub jobs: Option<f64>,
    /// Dedup cache hits announced in `plan_start`.
    pub dedup_hits: Option<f64>,
    /// Last heartbeat's `completed` reading (cumulative completed
    /// messages inside the current point's engine run).
    pub completed_last: f64,
    /// `point_queued` / `point_start` / `point_finish` record counts.
    pub points_queued: usize,
    /// Points that have started.
    pub points_started: usize,
    /// Points that have finished.
    pub points_finished: usize,
    /// Wall milliseconds of each finished point, in finish order.
    pub point_wall_ms: Vec<f64>,
    /// Total plan wall milliseconds, once `plan_finish` has been written.
    pub plan_wall_ms: Option<f64>,
    /// Schema violations found while reading (heartbeat cycles not
    /// strictly increasing within a point's stream, spans not tiling,
    /// missing required fields). Empty on a healthy ledger.
    pub problems: Vec<String>,
}

impl LedgerSummary {
    /// Reads and reduces a ledger file.
    ///
    /// # Errors
    ///
    /// An unreadable file or a malformed (non-final) JSON line.
    pub fn from_file(path: &str) -> Result<Self, String> {
        let data = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        Self::from_text(&data)
    }

    /// Reduces ledger text (one JSON object per line).
    ///
    /// # Errors
    ///
    /// A malformed JSON line, except a truncated *final* line — under
    /// `--follow` the writer may be mid-line; that line is ignored.
    pub fn from_text(data: &str) -> Result<Self, String> {
        let mut r = LedgerReader::new();
        let lines: Vec<&str> = data.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            match r.push_line(line) {
                Ok(()) => {}
                // A truncated final line is the expected artifact of
                // tailing a live file; anything earlier is corruption.
                Err(_) if i + 1 == lines.len() => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(r.into_summary())
    }

    fn note_heartbeat(
        &mut self,
        rec: &Json,
        point: &str,
        line: usize,
        hb_last: &mut BTreeMap<String, f64>,
    ) {
        self.heartbeats += 1;
        let (Some(cycle), Some(cycles)) = (num(rec, "cycle"), num(rec, "cycles")) else {
            self.problems.push(format!("line {line}: heartbeat missing cycle/cycles"));
            return;
        };
        self.total_cycles += cycles;
        if let Some(k) = num(rec, "kcycles_per_sec") {
            self.kcps.push(k);
        }
        if let Some(f) = num(rec, "in_flight") {
            self.in_flight_last = f;
        }
        if let Some(c) = num(rec, "completed") {
            self.completed_last = c;
        }
        let prev = hb_last.get(point).copied().unwrap_or(0.0);
        if cycle <= prev {
            self.problems.push(format!(
                "line {line}: heartbeat cycle {cycle} not after previous {prev}"
            ));
        } else if (cycle - cycles - prev).abs() > 0.5 {
            self.problems.push(format!(
                "line {line}: heartbeat [{}, {cycle}) does not abut previous end {prev}",
                cycle - cycles
            ));
        }
        hb_last.insert(point.to_string(), cycle);
    }

    fn note_shard(&mut self, rec: &Json, line: usize) {
        let Some(shard) = num(rec, "shard") else {
            self.problems.push(format!("line {line}: shard record missing shard index"));
            return;
        };
        let t = self.shards.entry(shard as u64).or_default();
        t.swept_routers += num(rec, "swept_routers").unwrap_or(0.0);
        t.sweep_ms += num(rec, "sweep_ms").unwrap_or(0.0);
        t.barrier_ms += num(rec, "barrier_ms").unwrap_or(0.0);
        t.replay_ops += num(rec, "replay_ops").unwrap_or(0.0);
    }

    /// Mean of the per-heartbeat throughput readings (0 when none).
    pub fn kcps_mean(&self) -> f64 {
        if self.kcps.is_empty() {
            return 0.0;
        }
        self.kcps.iter().sum::<f64>() / self.kcps.len() as f64
    }

    /// Peak per-heartbeat throughput reading (0 when none).
    pub fn kcps_max(&self) -> f64 {
        self.kcps.iter().copied().fold(0.0, f64::max)
    }

    /// Shard imbalance: max over mean of per-shard total sweep time.
    /// 1.0 is perfect balance; `None` without shard records.
    pub fn shard_imbalance(&self) -> Option<f64> {
        if self.shards.is_empty() {
            return None;
        }
        let times: Vec<f64> = self.shards.values().map(|t| t.sweep_ms).collect();
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        if mean <= 0.0 {
            return Some(1.0);
        }
        Some(times.iter().copied().fold(0.0, f64::max) / mean)
    }

    /// Share of sharded sweep wall time spent waiting at barriers:
    /// `Σ barrier / (Σ barrier + Σ sweep)`. `None` without shard records.
    pub fn barrier_wait_frac(&self) -> Option<f64> {
        if self.shards.is_empty() {
            return None;
        }
        let sweep: f64 = self.shards.values().map(|t| t.sweep_ms).sum();
        let barrier: f64 = self.shards.values().map(|t| t.barrier_ms).sum();
        let total = sweep + barrier;
        if total <= 0.0 {
            return Some(0.0);
        }
        Some(barrier / total)
    }

    /// The shard with the largest total sweep time, with that time.
    pub fn slowest_shard(&self) -> Option<(u64, f64)> {
        self.shards
            .iter()
            .map(|(&id, t)| (id, t.sweep_ms))
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Estimated wall milliseconds to finish the remaining plan points:
    /// mean finished-point wall × remaining ÷ worker threads. `None`
    /// until at least one point has finished, or with no plan records.
    pub fn eta_ms(&self) -> Option<f64> {
        let planned = self.points_planned?;
        let remaining = planned - self.points_finished as f64;
        if remaining <= 0.0 || self.point_wall_ms.is_empty() {
            return None;
        }
        let mean = self.point_wall_ms.iter().sum::<f64>() / self.point_wall_ms.len() as f64;
        Some(mean * remaining / self.jobs.unwrap_or(1.0).max(1.0))
    }

    /// Renders the flat JSON report for `rfnoc-cli ledger-summary`.
    ///
    /// Metric names carry the [`crate::compare::direction_of`] keywords so
    /// two reports diff meaningfully: `kcycles_per_sec_*` is
    /// higher-is-better, `barrier_wait_frac` / `shard_imbalance` /
    /// `*_wall_ms` are lower-is-better, counts are informational. Shards
    /// render as an id-keyed array so `compare` aligns them by shard even
    /// across reordered reports.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"records\": {},", self.records);
        let _ = writeln!(out, "  \"heartbeats\": {},", self.heartbeats);
        let _ = writeln!(out, "  \"total_kcycles\": {},", jf64(self.total_cycles / 1e3));
        let _ = writeln!(out, "  \"kcycles_per_sec_mean\": {},", jf64(self.kcps_mean()));
        let _ = writeln!(out, "  \"kcycles_per_sec_max\": {},", jf64(self.kcps_max()));
        let _ = writeln!(
            out,
            "  \"span_wall_ms\": {},",
            jf64(self.t_ms_span.1 - self.t_ms_span.0)
        );
        if let Some(v) = self.shard_imbalance() {
            let _ = writeln!(out, "  \"shard_imbalance\": {},", jf64(v));
        }
        if let Some(v) = self.barrier_wait_frac() {
            let _ = writeln!(out, "  \"barrier_wait_frac\": {},", jf64(v));
        }
        if !self.shards.is_empty() {
            out.push_str("  \"shards\": [\n");
            let n = self.shards.len();
            for (i, (id, t)) in self.shards.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "    {{\"id\": {}, \"swept_routers\": {}, \"sweep_ms\": {}, \
                     \"barrier_ms\": {}, \"replay_ops\": {}}}{}",
                    jstr(&format!("shard{id}")),
                    jf64(t.swept_routers),
                    jf64(t.sweep_ms),
                    jf64(t.barrier_ms),
                    jf64(t.replay_ops),
                    if i + 1 == n { "" } else { "," },
                );
            }
            out.push_str("  ],\n");
        }
        if let Some(p) = self.points_planned {
            let _ = writeln!(out, "  \"points_planned\": {},", jf64(p));
        }
        let _ = writeln!(out, "  \"points_finished\": {},", self.points_finished);
        if let Some(d) = self.dedup_hits {
            let _ = writeln!(out, "  \"dedup_hits\": {},", jf64(d));
        }
        if let Some(w) = self.plan_wall_ms {
            let _ = writeln!(out, "  \"plan_wall_ms\": {},", jf64(w));
        }
        if !self.events.is_empty() {
            out.push_str("  \"events\": {\n");
            let n = self.events.len();
            for (i, (name, count)) in self.events.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "    {}: {count}{}",
                    jstr(name),
                    if i + 1 == n { "" } else { "," }
                );
            }
            out.push_str("  },\n");
        }
        let _ = writeln!(out, "  \"schema_problems\": {}", self.problems.len());
        out.push_str("}\n");
        out
    }

    /// Renders the compact live view for `rfnoc-cli tail`.
    pub fn render_tail(&self) -> String {
        let mut out = String::new();
        let span_s = (self.t_ms_span.1 - self.t_ms_span.0) / 1e3;
        let _ = writeln!(
            out,
            "records: {} over {:.1} s  ({} heartbeats, {:.0} kcycles simulated)",
            self.records,
            span_s,
            self.heartbeats,
            self.total_cycles / 1e3,
        );
        if let Some(planned) = self.points_planned {
            let running = self.points_started.saturating_sub(self.points_finished);
            let queued =
                self.points_queued.saturating_sub(self.points_started);
            let _ = write!(
                out,
                "points: {}/{} finished ({running} running, {queued} queued",
                self.points_finished, planned as u64,
            );
            if let Some(d) = self.dedup_hits.filter(|&d| d > 0.0) {
                let _ = write!(out, ", dedup {}", d as u64);
            }
            out.push(')');
            match self.eta_ms() {
                Some(eta) => {
                    let _ = writeln!(out, "  ETA ~{:.1} s", eta / 1e3);
                }
                None => out.push('\n'),
            }
        }
        if !self.kcps.is_empty() {
            let _ = writeln!(
                out,
                "throughput: {}  mean {:.0} kcyc/s  max {:.0}  last {:.0}",
                sparkline(&self.kcps, 40),
                self.kcps_mean(),
                self.kcps_max(),
                self.kcps.last().copied().unwrap_or(0.0),
            );
        }
        if let (Some((slow, ms)), Some(imb), Some(bw)) =
            (self.slowest_shard(), self.shard_imbalance(), self.barrier_wait_frac())
        {
            let _ = writeln!(
                out,
                "shards ({}): slowest #{slow} ({ms:.1} ms swept), imbalance {imb:.2}x, \
                 barrier wait {:.1}%",
                self.shards.len(),
                bw * 100.0,
            );
        }
        if !self.events.is_empty() {
            let evs: Vec<String> =
                self.events.iter().map(|(k, v)| format!("{k}\u{d7}{v}")).collect();
            let _ = writeln!(out, "events: {}", evs.join(" "));
        }
        for p in &self.problems {
            let _ = writeln!(out, "PROBLEM: {p}");
        }
        out
    }
}

/// Incremental ledger reduction: feed JSONL lines one at a time and read
/// the running [`LedgerSummary`] between pushes. This is the engine under
/// [`LedgerSummary::from_text`] and under the live observatory hub
/// ([`crate::obs::ObsHub`]), which needs per-record aggregation without
/// re-reading the whole file on every `/metrics` request.
#[derive(Debug, Default, Clone)]
pub struct LedgerReader {
    summary: LedgerSummary,
    /// `point -> last heartbeat cycle` for monotonicity + tiling checks.
    hb_last: BTreeMap<String, f64>,
    /// Lines pushed so far (including blank and rejected ones) — the
    /// 1-based line number used in problem and error messages.
    lines_seen: usize,
}

impl LedgerReader {
    /// A reader with nothing pushed yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// The running reduction over everything pushed so far.
    pub fn summary(&self) -> &LedgerSummary {
        &self.summary
    }

    /// Consumes the reader, yielding the final reduction.
    pub fn into_summary(self) -> LedgerSummary {
        self.summary
    }

    /// Lines pushed so far (blank and malformed lines included).
    pub fn lines_seen(&self) -> usize {
        self.lines_seen
    }

    /// Feeds one ledger line. Blank lines are ignored (but counted for
    /// line numbering).
    ///
    /// # Errors
    ///
    /// Malformed JSON; the summary is unchanged by a rejected line, so
    /// the caller may drop it (truncated tail) or abort (corruption).
    pub fn push_line(&mut self, line: &str) -> Result<(), String> {
        self.lines_seen += 1;
        let line_no = self.lines_seen;
        if line.trim().is_empty() {
            return Ok(());
        }
        let rec = parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
        let s = &mut self.summary;
        s.records += 1;
        if let Some(t) = num(&rec, "t_ms") {
            if s.records == 1 {
                s.t_ms_span.0 = t;
            }
            s.t_ms_span.1 = s.t_ms_span.1.max(t);
        }
        let point = text(&rec, "point").unwrap_or("").to_string();
        match text(&rec, "kind") {
            Some("heartbeat") => s.note_heartbeat(&rec, &point, line_no, &mut self.hb_last),
            Some("shard") => s.note_shard(&rec, line_no),
            Some("event") => {
                let name = text(&rec, "event").unwrap_or("unknown").to_string();
                *s.events.entry(name).or_insert(0) += 1;
            }
            Some("plan_start") => {
                s.points_planned = num(&rec, "unique").or_else(|| num(&rec, "points"));
                s.jobs = num(&rec, "jobs");
                s.dedup_hits = num(&rec, "dedup_hits");
            }
            Some("point_queued") => s.points_queued += 1,
            Some("point_start") => s.points_started += 1,
            Some("point_finish") => {
                s.points_finished += 1;
                if let Some(w) = num(&rec, "wall_ms") {
                    s.point_wall_ms.push(w);
                }
            }
            Some("plan_finish") => s.plan_wall_ms = num(&rec, "wall_ms"),
            _ => s.unknown_kinds += 1,
        }
        Ok(())
    }
}

/// Renders a series as a fixed-width Unicode sparkline: values are
/// bucketed to at most `width` columns (bucket mean), scaled to the
/// series maximum.
pub fn sparkline(values: &[f64], width: usize) -> String {
    const BARS: [char; 8] = ['\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}', '\u{2588}'];
    if values.is_empty() || width == 0 {
        return String::new();
    }
    let cols = width.min(values.len());
    let per = values.len().div_ceil(cols);
    let buckets: Vec<f64> = values
        .chunks(per)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect();
    let max = buckets.iter().copied().fold(0.0, f64::max);
    if max <= 0.0 {
        return BARS[0].to_string().repeat(buckets.len());
    }
    buckets
        .iter()
        .map(|&v| {
            let idx = ((v / max) * 7.0).round().clamp(0.0, 7.0) as usize;
            BARS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        "{\"t_ms\": 0.100, \"kind\": \"plan_start\", \"points\": 4, \"unique\": 3, ",
        "\"dedup_hits\": 1, \"jobs\": 2, \"sim_threads\": 4}\n",
        "{\"t_ms\": 0.200, \"kind\": \"point_queued\", \"point\": \"a\"}\n",
        "{\"t_ms\": 0.210, \"kind\": \"point_queued\", \"point\": \"b\"}\n",
        "{\"t_ms\": 0.220, \"kind\": \"point_queued\", \"point\": \"c\"}\n",
        "{\"t_ms\": 0.300, \"kind\": \"point_start\", \"point\": \"a\"}\n",
        "{\"t_ms\": 1.000, \"point\": \"a\", \"kind\": \"heartbeat\", \"cycle\": 2000, ",
        "\"cycles\": 2000, \"wall_ms\": 0.5, \"kcycles_per_sec\": 100.0, ",
        "\"in_flight\": 5, \"completed\": 10, \"active_routers\": 16}\n",
        "{\"t_ms\": 1.100, \"point\": \"a\", \"kind\": \"shard\", \"cycle\": 2000, ",
        "\"shard\": 0, \"swept_routers\": 900, \"sweep_ms\": 3.0, ",
        "\"barrier_ms\": 1.0, \"replay_ops\": 40}\n",
        "{\"t_ms\": 1.200, \"point\": \"a\", \"kind\": \"shard\", \"cycle\": 2000, ",
        "\"shard\": 1, \"swept_routers\": 700, \"sweep_ms\": 1.0, ",
        "\"barrier_ms\": 3.0, \"replay_ops\": 20}\n",
        "{\"t_ms\": 1.500, \"point\": \"a\", \"kind\": \"event\", \"cycle\": 2100, ",
        "\"event\": \"fault\", \"detail\": \"ShortcutDown { id: 3 }\"}\n",
        "{\"t_ms\": 2.000, \"point\": \"a\", \"kind\": \"heartbeat\", \"cycle\": 3500, ",
        "\"cycles\": 1500, \"wall_ms\": 1.5, \"kcycles_per_sec\": 300.0, ",
        "\"in_flight\": 2, \"completed\": 40, \"active_routers\": 12}\n",
        "{\"t_ms\": 2.500, \"kind\": \"point_finish\", \"point\": \"a\", ",
        "\"wall_ms\": 2.2, \"avg_latency\": 21.5, \"saturated\": false, ",
        "\"healthy\": true}\n",
    );

    #[test]
    fn sample_ledger_reduces() {
        let s = LedgerSummary::from_text(SAMPLE).unwrap();
        assert_eq!(s.records, 11);
        assert_eq!(s.heartbeats, 2);
        assert!((s.total_cycles - 3500.0).abs() < 1e-9);
        assert_eq!(s.kcps, vec![100.0, 300.0]);
        assert!((s.kcps_mean() - 200.0).abs() < 1e-9);
        assert_eq!(s.points_planned, Some(3.0));
        assert_eq!(s.points_queued, 3);
        assert_eq!(s.points_started, 1);
        assert_eq!(s.points_finished, 1);
        assert_eq!(s.events.get("fault"), Some(&1));
        assert!(s.problems.is_empty(), "{:?}", s.problems);
        // Shards: sweep 3+1, barrier 1+3 → imbalance 1.5, wait frac 0.5.
        assert!((s.shard_imbalance().unwrap() - 1.5).abs() < 1e-9);
        assert!((s.barrier_wait_frac().unwrap() - 0.5).abs() < 1e-9);
        assert_eq!(s.slowest_shard(), Some((0, 3.0)));
        // ETA: 2 remaining × 2.2 ms mean ÷ 2 jobs = 2.2 ms.
        assert!((s.eta_ms().unwrap() - 2.2).abs() < 1e-9);
    }

    #[test]
    fn summary_json_is_parseable_and_directional() {
        let s = LedgerSummary::from_text(SAMPLE).unwrap();
        let json = s.render_json();
        let doc = parse(&json).expect("summary must be valid JSON");
        let flat = crate::compare::flatten(&doc);
        assert!(flat.contains_key("kcycles_per_sec_mean"));
        assert!(flat.contains_key("barrier_wait_frac"));
        assert!(flat.contains_key("shards[shard0].sweep_ms"));
        use crate::compare::{direction_of, Direction};
        assert_eq!(direction_of("kcycles_per_sec_mean"), Direction::HigherIsBetter);
        assert_eq!(direction_of("barrier_wait_frac"), Direction::LowerIsBetter);
        assert_eq!(direction_of("shard_imbalance"), Direction::LowerIsBetter);
    }

    #[test]
    fn monotonicity_violations_are_flagged() {
        let bad = concat!(
            "{\"t_ms\": 1.0, \"kind\": \"heartbeat\", \"cycle\": 2000, \"cycles\": 2000, ",
            "\"wall_ms\": 1.0, \"kcycles_per_sec\": 1.0, \"in_flight\": 0, ",
            "\"completed\": 0, \"active_routers\": 0}\n",
            "{\"t_ms\": 2.0, \"kind\": \"heartbeat\", \"cycle\": 1500, \"cycles\": 500, ",
            "\"wall_ms\": 2.0, \"kcycles_per_sec\": 1.0, \"in_flight\": 0, ",
            "\"completed\": 0, \"active_routers\": 0}\n",
        );
        let s = LedgerSummary::from_text(bad).unwrap();
        assert_eq!(s.problems.len(), 1, "{:?}", s.problems);
        // A gap (non-abutting spans) is also flagged.
        let gap = concat!(
            "{\"t_ms\": 1.0, \"kind\": \"heartbeat\", \"cycle\": 2000, \"cycles\": 2000, ",
            "\"wall_ms\": 1.0, \"kcycles_per_sec\": 1.0, \"in_flight\": 0, ",
            "\"completed\": 0, \"active_routers\": 0}\n",
            "{\"t_ms\": 2.0, \"kind\": \"heartbeat\", \"cycle\": 5000, \"cycles\": 1000, ",
            "\"wall_ms\": 2.0, \"kcycles_per_sec\": 1.0, \"in_flight\": 0, ",
            "\"completed\": 0, \"active_routers\": 0}\n",
        );
        assert_eq!(LedgerSummary::from_text(gap).unwrap().problems.len(), 1);
    }

    #[test]
    fn truncated_final_line_is_tolerated() {
        let text = concat!(
            "{\"t_ms\": 1.0, \"kind\": \"point_queued\", \"point\": \"a\"}\n",
            "{\"t_ms\": 2.0, \"kind\": \"point_st",
        );
        let s = LedgerSummary::from_text(text).unwrap();
        assert_eq!(s.records, 1);
        // ... but an early malformed line is an error.
        let bad = concat!(
            "{\"t_ms\": 2.0, \"kind\": \"point_st\n",
            "{\"t_ms\": 1.0, \"kind\": \"point_queued\", \"point\": \"a\"}\n",
        );
        assert!(LedgerSummary::from_text(bad).is_err());
    }

    #[test]
    fn sparkline_buckets_and_scales() {
        assert_eq!(sparkline(&[], 10), "");
        assert_eq!(sparkline(&[0.0, 0.0], 10), "\u{2581}\u{2581}");
        let line = sparkline(&[1.0, 2.0, 4.0, 8.0], 4);
        assert_eq!(line.chars().count(), 4);
        assert!(line.ends_with('\u{2588}'));
        // 8 values into 4 columns: bucketed by pairs.
        assert_eq!(sparkline(&[1.0; 8], 4).chars().count(), 4);
    }

    #[test]
    fn tail_renders_key_lines() {
        let s = LedgerSummary::from_text(SAMPLE).unwrap();
        let tail = s.render_tail();
        assert!(tail.contains("points: 1/3 finished"), "{tail}");
        assert!(tail.contains("ETA"), "{tail}");
        assert!(tail.contains("slowest #0"), "{tail}");
        assert!(tail.contains("barrier wait 50.0%"), "{tail}");
        assert!(tail.contains("fault\u{d7}1"), "{tail}");
    }
}
