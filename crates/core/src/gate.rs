//! Noise-aware regression gating over the [`crate::history`] trend store.
//!
//! The old CI perf gate compared two single runs with a flat percentage
//! threshold, and had to be cranked to a "catastrophic only" 75% because
//! cross-run wall noise on shared CI runners reaches ~25%. This module
//! replaces it with a statistical verdict:
//!
//! * the **new value** of each metric is the median of the N fresh
//!   samples supplied (one artifact is fine; repeated quick runs are
//!   better),
//! * the **expected value** is the rolling median of that metric over
//!   the last [`GateConfig::window`] matching history records, and
//! * the **tolerance band** is
//!   `max(k·MAD, k·noise_prior, rel_floor·|median|)` — the median
//!   absolute deviation of the history widened by any recorded
//!   best-of-N spread (`<metric>_spread_stddev`, see the bench perf
//!   binary) and floored at a relative band so a freakishly quiet
//!   history cannot make ordinary jitter significant.
//!
//! A metric **regresses** when it moves past the band in its worsening
//! direction ([`crate::compare::direction_of`]): throughput-like metrics
//! falling, cost-like metrics rising. Informational metrics are never
//! judged; neither are metrics with fewer than
//! [`GateConfig::min_history`] history points (a young store passes by
//! construction, with a note). Improvements never fail the gate. The
//! comparison is strict (`>`), so an exactly-repeated run — zero MAD,
//! zero movement — always passes.

use crate::compare::{direction_of, Direction};
use crate::history::HistoryRecord;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Gate tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Band width in MADs (and in noise-prior standard deviations).
    pub k: f64,
    /// Relative band floor: the band is at least this fraction of the
    /// history median's magnitude.
    pub rel_floor: f64,
    /// Rolling window: only the newest this-many matching history
    /// records are consulted.
    pub window: usize,
    /// Minimum history points before a metric is judged at all.
    pub min_history: usize,
}

impl Default for GateConfig {
    fn default() -> Self {
        // k=4 over a MAD (≈2.7σ for Gaussian noise) plus a 10% floor
        // tolerates the observed ~25% CI wall jitter once 2+ history
        // points exist, while a genuine 3× slowdown lands far outside.
        Self { k: 4.0, rel_floor: 0.10, window: 12, min_history: 2 }
    }
}

/// One judged metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricVerdict {
    /// Dotted metric path.
    pub path: String,
    /// The metric's direction (never informational here).
    pub direction: Direction,
    /// Median of the fresh samples.
    pub median_new: f64,
    /// Rolling median of the history window.
    pub median_hist: f64,
    /// Median absolute deviation of the history window.
    pub mad: f64,
    /// Median recorded `_spread_stddev` noise prior (0 when absent).
    pub noise_prior: f64,
    /// The tolerance band actually applied.
    pub band: f64,
    /// Direction-signed absolute movement (positive = worse).
    pub worsening: f64,
    /// History points consulted for this metric.
    pub history_points: usize,
    /// Whether the movement is a statistically significant regression.
    pub significant: bool,
}

/// The gate's full output.
#[derive(Debug, Clone, Default)]
pub struct GateReport {
    /// Every judged directional metric.
    pub verdicts: Vec<MetricVerdict>,
    /// Directional metrics skipped for insufficient history.
    pub skipped_insufficient: usize,
    /// Informational metrics skipped (spread fields, counts, ...).
    pub skipped_informational: usize,
    /// History records in the rolling window after quick-flag filtering.
    pub history_used: usize,
    /// Fresh sample artifacts judged.
    pub new_samples: usize,
}

impl GateReport {
    /// The significant regressions, worst (largest band overshoot) first.
    pub fn regressions(&self) -> Vec<&MetricVerdict> {
        let mut out: Vec<&MetricVerdict> =
            self.verdicts.iter().filter(|v| v.significant).collect();
        out.sort_by(|a, b| {
            let ratio = |v: &MetricVerdict| v.worsening / v.band.max(1e-12);
            ratio(b).partial_cmp(&ratio(a)).unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    /// Whether the gate passes (no significant regression).
    pub fn pass(&self) -> bool {
        self.verdicts.iter().all(|v| !v.significant)
    }

    /// Renders the human report.
    pub fn render(&self, cfg: &GateConfig) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "gate: {} metric(s) judged from {} fresh sample(s) against {} history \
             record(s) (window {}, k={}, floor {:.0}%)",
            self.verdicts.len(),
            self.new_samples,
            self.history_used,
            cfg.window,
            cfg.k,
            cfg.rel_floor * 100.0,
        );
        let fmt = |v: &MetricVerdict| {
            format!(
                "{}: {:.4} -> {:.4} ({} {:.4}, band {:.4} = max(k*MAD {:.4}, \
                 k*noise {:.4}, floor {:.4}), {} pts)",
                v.path,
                v.median_hist,
                v.median_new,
                if v.worsening > 0.0 { "worsened" } else { "moved" },
                v.worsening,
                v.band,
                cfg.k * v.mad,
                cfg.k * v.noise_prior,
                cfg.rel_floor * v.median_hist.abs(),
                v.history_points,
            )
        };
        let regressions = self.regressions();
        for v in &regressions {
            let _ = writeln!(out, "  REGRESSION {}", fmt(v));
        }
        // The closest non-significant calls give the operator a feel for
        // the margin without drowning the report.
        let mut close: Vec<&MetricVerdict> =
            self.verdicts.iter().filter(|v| !v.significant && v.worsening > 0.0).collect();
        close.sort_by(|a, b| {
            let ratio = |v: &MetricVerdict| v.worsening / v.band.max(1e-12);
            ratio(b).partial_cmp(&ratio(a)).unwrap_or(std::cmp::Ordering::Equal)
        });
        for v in close.iter().take(3) {
            let _ = writeln!(out, "  within band {}", fmt(v));
        }
        if self.skipped_insufficient > 0 {
            let _ = writeln!(
                out,
                "  note: {} metric(s) skipped — fewer than {} history points",
                self.skipped_insufficient, cfg.min_history,
            );
        }
        let _ = writeln!(
            out,
            "  {}: {} regression(s), {} informational metric(s) ignored",
            if regressions.is_empty() { "PASS" } else { "FAIL" },
            regressions.len(),
            self.skipped_informational,
        );
        out
    }
}

/// Median of a slice (mean of the middle two for even lengths); `None`
/// when empty.
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    Some(if n % 2 == 1 { v[n / 2] } else { (v[n / 2 - 1] + v[n / 2]) / 2.0 })
}

/// Median absolute deviation around `center`.
fn mad(values: &[f64], center: f64) -> f64 {
    let dev: Vec<f64> = values.iter().map(|v| (v - center).abs()).collect();
    median(&dev).unwrap_or(0.0)
}

/// Judges fresh records against the history.
///
/// `history` and `new` are [`HistoryRecord`]s of the same artifact (the
/// caller filters by name; [`crate::history::HistoryStore::load`] does).
/// History records whose `quick` flag contradicts the fresh samples'
/// flag are excluded — quick and full runs measure different workloads.
pub fn gate(history: &[HistoryRecord], new: &[HistoryRecord], cfg: &GateConfig) -> GateReport {
    let mut report = GateReport { new_samples: new.len(), ..GateReport::default() };
    if new.is_empty() {
        return report;
    }
    let new_quick = new.iter().find_map(|r| r.quick);
    let mut window: Vec<&HistoryRecord> = history
        .iter()
        .filter(|h| match (h.quick, new_quick) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        })
        .collect();
    window.sort_by_key(|h| h.unix);
    if window.len() > cfg.window {
        window.drain(..window.len() - cfg.window);
    }
    report.history_used = window.len();

    let paths: BTreeSet<&String> = new.iter().flat_map(|r| r.metrics.keys()).collect();
    for path in paths {
        match direction_of(path) {
            Direction::Informational => {
                report.skipped_informational += 1;
                continue;
            }
            direction => {
                let new_vals: Vec<f64> =
                    new.iter().filter_map(|r| r.metrics.get(path)).copied().collect();
                let hist_vals: Vec<f64> =
                    window.iter().filter_map(|r| r.metrics.get(path)).copied().collect();
                if hist_vals.len() < cfg.min_history {
                    report.skipped_insufficient += 1;
                    continue;
                }
                let median_new = median(&new_vals).expect("path came from new records");
                let median_hist = median(&hist_vals).expect("len checked above");
                let mad = mad(&hist_vals, median_hist);
                // The recorded best-of-N spread of this metric, across
                // history and fresh samples alike, is a floor on how
                // noisy we know the measurement to be.
                let prior_path = format!("{path}_spread_stddev");
                let priors: Vec<f64> = window
                    .iter()
                    .map(|r| &r.metrics)
                    .chain(new.iter().map(|r| &r.metrics))
                    .filter_map(|m| m.get(&prior_path))
                    .copied()
                    .collect();
                let noise_prior = median(&priors).unwrap_or(0.0);
                let band = (cfg.k * mad)
                    .max(cfg.k * noise_prior)
                    .max(cfg.rel_floor * median_hist.abs());
                let worsening = match direction {
                    Direction::HigherIsBetter => median_hist - median_new,
                    Direction::LowerIsBetter => median_new - median_hist,
                    Direction::Informational => unreachable!("filtered above"),
                };
                report.verdicts.push(MetricVerdict {
                    path: path.clone(),
                    direction,
                    median_new,
                    median_hist,
                    mad,
                    noise_prior,
                    band,
                    worsening,
                    history_points: hist_vals.len(),
                    significant: worsening > band,
                });
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn rec(unix: u64, quick: Option<bool>, metrics: &[(&str, f64)]) -> HistoryRecord {
        HistoryRecord {
            artifact: "A".into(),
            git: format!("g{unix}"),
            unix,
            quick,
            metrics: metrics
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect::<BTreeMap<_, _>>(),
        }
    }

    #[test]
    fn median_and_parity() {
        assert_eq!(median(&[]), None);
        assert_eq!(median(&[3.0]), Some(3.0));
        assert_eq!(median(&[1.0, 3.0]), Some(2.0));
        assert_eq!(median(&[5.0, 1.0, 3.0]), Some(3.0));
    }

    #[test]
    fn self_compare_passes_even_with_zero_mad() {
        let hist = vec![
            rec(1, Some(true), &[("cycles_per_sec", 1000.0)]),
            rec(2, Some(true), &[("cycles_per_sec", 1000.0)]),
        ];
        let new = vec![rec(3, Some(true), &[("cycles_per_sec", 1000.0)])];
        let r = gate(&hist, &new, &GateConfig::default());
        assert!(r.pass(), "{:?}", r.regressions());
        assert_eq!(r.verdicts.len(), 1);
    }

    #[test]
    fn noise_within_band_passes_and_collapse_fails() {
        // ~10% jitter history around 1000.
        let hist = vec![
            rec(1, Some(true), &[("cycles_per_sec", 950.0)]),
            rec(2, Some(true), &[("cycles_per_sec", 1050.0)]),
            rec(3, Some(true), &[("cycles_per_sec", 1000.0)]),
        ];
        let cfg = GateConfig::default();
        // Ordinary jitter: well inside max(4*MAD=200, floor=100).
        let ok = vec![rec(4, Some(true), &[("cycles_per_sec", 870.0)])];
        assert!(gate(&hist, &ok, &cfg).pass());
        // A 3x collapse is far beyond any band.
        let bad = vec![rec(4, Some(true), &[("cycles_per_sec", 330.0)])];
        let r = gate(&hist, &bad, &cfg);
        assert!(!r.pass());
        assert_eq!(r.regressions()[0].path, "cycles_per_sec");
        assert!(r.render(&cfg).contains("REGRESSION"));
    }

    #[test]
    fn direction_awareness() {
        let hist = vec![
            rec(1, None, &[("avg_latency_cycles", 40.0), ("cycles_per_sec", 1000.0)]),
            rec(2, None, &[("avg_latency_cycles", 40.0), ("cycles_per_sec", 1000.0)]),
        ];
        let cfg = GateConfig::default();
        // Latency tripling regresses; throughput tripling improves.
        let new = vec![rec(3, None, &[("avg_latency_cycles", 120.0), ("cycles_per_sec", 3000.0)])];
        let r = gate(&hist, &new, &cfg);
        let regs = r.regressions();
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].path, "avg_latency_cycles");
    }

    #[test]
    fn noise_prior_widens_band() {
        // Tight history (MAD 0) but a recorded spread stddev of 100:
        // a 350 drop is within k*noise = 400, so it must pass.
        let hist = vec![
            rec(1, None, &[("cycles_per_sec", 1000.0), ("cycles_per_sec_spread_stddev", 100.0)]),
            rec(2, None, &[("cycles_per_sec", 1000.0), ("cycles_per_sec_spread_stddev", 100.0)]),
        ];
        let new = vec![rec(3, None, &[("cycles_per_sec", 650.0)])];
        let r = gate(&hist, &new, &GateConfig::default());
        assert!(r.pass(), "{:?}", r.regressions());
        // Without the prior the same movement fails.
        let quiet = vec![
            rec(1, None, &[("cycles_per_sec", 1000.0)]),
            rec(2, None, &[("cycles_per_sec", 1000.0)]),
        ];
        assert!(!gate(&quiet, &new, &GateConfig::default()).pass());
        // And the spread field itself is never judged.
        assert!(r.verdicts.iter().all(|v| !v.path.contains("spread")));
    }

    #[test]
    fn quick_flag_filtering_and_insufficient_history() {
        let hist = vec![
            rec(1, Some(false), &[("cycles_per_sec", 9999.0)]),
            rec(2, Some(true), &[("cycles_per_sec", 1000.0)]),
        ];
        let cfg = GateConfig::default();
        let new = vec![rec(3, Some(true), &[("cycles_per_sec", 1000.0)])];
        // Only one matching-quick record < min_history=2: skipped, pass.
        let r = gate(&hist, &new, &cfg);
        assert!(r.pass());
        assert_eq!(r.history_used, 1);
        assert_eq!(r.skipped_insufficient, 1);
        assert!(r.verdicts.is_empty());
        assert!(r.render(&cfg).contains("skipped"));
    }

    #[test]
    fn rolling_window_drops_ancient_records() {
        // 20 ancient records at 100, then 12 recent at 1000: the window
        // of 12 must only see the recent regime.
        let mut hist = Vec::new();
        for i in 0..20 {
            hist.push(rec(i, None, &[("cycles_per_sec", 100.0)]));
        }
        for i in 20..32 {
            hist.push(rec(i, None, &[("cycles_per_sec", 1000.0)]));
        }
        let new = vec![rec(40, None, &[("cycles_per_sec", 950.0)])];
        let r = gate(&hist, &new, &GateConfig::default());
        assert_eq!(r.history_used, 12);
        assert!(r.pass());
        assert!((r.verdicts[0].median_hist - 1000.0).abs() < 1e-9);
    }
}
