//! Builds simulatable networks and physical design specs from a
//! [`SystemConfig`].

use crate::arch::{Architecture, SystemConfig};
use rfnoc_power::{DesignSpec, RouterConfig};
use rfnoc_sim::{McConfig, MulticastMode, NetworkSpec, RoutingKind, VctConfig};
use rfnoc_topology::select::{
    select_application_specific, select_max_cost, SelectionConstraints,
};
use rfnoc_topology::{GridGraph, NodeId, PairWeights, Shortcut};
use rfnoc_traffic::{staggered_rf_routers, Placement};

/// Cycles between coarse-grain multicast-channel arbitration decisions.
///
/// A cluster owns the broadcast band for a whole epoch ("only one of our
/// four cache bank clusters is selected as the sender of multicasts for
/// some fixed amount of time", §3.3). One multicast occupies the band for
/// ~4–9 flit cycles, so a 24-cycle epoch still amortises arbitration over
/// several messages while keeping the worst-case wait for a non-owning
/// cluster well below the mesh traversal it replaces.
pub const DEFAULT_MC_EPOCH: u64 = 24;

/// Latency of a buffered RC wire shortcut in network cycles per mesh hop:
/// a repeated wire crosses the 400 mm² die in ≈4 ns (§2) — 8 cycles at
/// 2 GHz over ~18 hops ≈ 0.45, rounded up for driver overhead.
pub const WIRE_SHORTCUT_CYCLES_PER_HOP: f64 = 0.5;

/// A fully elaborated system, ready to simulate and to cost.
#[derive(Debug, Clone)]
pub struct BuiltSystem {
    /// The simulator specification.
    pub network: NetworkSpec,
    /// The physical design for the power/area models.
    pub design: DesignSpec,
    /// The selected shortcut set (empty for non-shortcut designs).
    pub shortcuts: Vec<Shortcut>,
    /// RF-enabled routers (access points) of the design.
    pub rf_enabled: Vec<NodeId>,
}

/// Number of directed base-fabric links (each undirected link counts
/// twice). On a W×H mesh this is `2·((W−1)·H + (H−1)·W)`; a ring-mesh
/// additionally carries its ring wrap edges and gateway chains.
fn directed_mesh_links(placement: &Placement) -> usize {
    let fabric = placement.fabric();
    (0..fabric.dims().nodes()).map(|r| fabric.neighbors(r).len()).sum()
}

/// Selects the architecture-specific (design-time) shortcut set: uniform
/// weights, max-cost heuristic (Figure 3b), corners excluded (§3.2.1).
pub fn static_shortcuts(placement: &Placement, budget: usize) -> Vec<Shortcut> {
    let graph = GridGraph::from_fabric(&placement.fabric(), &[]);
    let n = graph.node_count();
    let weights = PairWeights::uniform(n);
    let constraints =
        SelectionConstraints::allowing_all(n, budget).excluding_corners(&graph);
    select_max_cost(&graph, &weights, &constraints)
}

/// Selects application-specific shortcuts over the RF-enabled router set
/// using a communication-frequency profile (§3.2.2).
pub fn adaptive_shortcuts(
    placement: &Placement,
    rf_enabled: &[NodeId],
    profile: &PairWeights,
    budget: usize,
) -> Vec<Shortcut> {
    let graph = GridGraph::from_fabric(&placement.fabric(), &[]);
    let n = graph.node_count();
    let constraints = SelectionConstraints::for_enabled(n, budget, rf_enabled)
        .excluding_corners(&graph);
    select_application_specific(&graph, profile, &constraints)
}

/// Per-router port configurations given the shortcut endpoints and the
/// (tunable) access-point set.
fn router_configs(
    placement: &Placement,
    shortcuts: &[Shortcut],
    tunable_aps: &[NodeId],
    extra_tx: &[NodeId],
) -> Vec<RouterConfig> {
    let n = placement.dims().nodes();
    let mut has_tx = vec![false; n];
    let mut has_rx = vec![false; n];
    for s in shortcuts {
        has_tx[s.src] = true;
        has_rx[s.dst] = true;
    }
    for &ap in tunable_aps {
        has_tx[ap] = true;
        has_rx[ap] = true;
    }
    for &t in extra_tx {
        has_tx[t] = true;
    }
    (0..n)
        .map(|r| match (has_rx[r], has_tx[r]) {
            (true, true) => RouterConfig::rf_both(),
            (false, true) => RouterConfig::rf_tx(),
            (true, false) => RouterConfig::rf_rx(),
            (false, false) => RouterConfig::standard(),
        })
        .collect()
}

/// RF multicast configuration: cluster-central cache banks transmit; the
/// given receivers are tuned to the broadcast band.
fn mc_config(placement: &Placement, receivers: Vec<NodeId>) -> McConfig {
    let serving = McConfig::serving_map(placement.dims(), &receivers);
    McConfig {
        transmitters: placement.cluster_centers().to_vec(),
        cluster_of: placement.cluster_map().to_vec(),
        receivers,
        serving,
        epoch_cycles: DEFAULT_MC_EPOCH,
        rf_flit_bytes: 16,
    }
}

/// Elaborates `system` over `placement`.
///
/// Adaptive architectures need a communication-frequency `profile`
/// (see [`crate::WorkloadSpec::profile`]).
///
/// # Panics
///
/// Panics if an adaptive architecture is built without a profile.
pub fn build_system(
    system: &SystemConfig,
    placement: &Placement,
    profile: Option<&PairWeights>,
) -> BuiltSystem {
    let dims = placement.dims();
    let mesh_links = directed_mesh_links(placement);
    let width = system.link_width;
    let sim = system.sim.clone().with_link_width(width);
    let clock = 2.0e9;

    let mut network = NetworkSpec::with_fabric(placement.fabric(), sim, Vec::new());
    let mut shortcuts = Vec::new();
    let mut rf_enabled: Vec<NodeId> = Vec::new();
    let mut design = DesignSpec::mesh_baseline(dims.nodes(), mesh_links, width);

    match &system.arch {
        Architecture::Baseline => {}
        Architecture::StaticShortcuts => {
            shortcuts = static_shortcuts(placement, system.shortcut_budget);
            rf_enabled = shortcut_endpoints(&shortcuts);
            network.shortcuts = shortcuts.clone();
            network.routing = RoutingKind::ShortestPath;
            design.routers = router_configs(placement, &shortcuts, &[], &[]);
            design.rf_provisioned_gbps =
                rfnoc_power::static_provision_gbps(shortcuts.len(), 16, clock);
        }
        Architecture::WireShortcuts => {
            shortcuts = static_shortcuts(placement, system.shortcut_budget);
            rf_enabled = shortcut_endpoints(&shortcuts);
            network.shortcuts = shortcuts.clone();
            network.routing = RoutingKind::ShortestPath;
            network.wire_shortcut_cycles_per_hop = Some(WIRE_SHORTCUT_CYCLES_PER_HOP);
            design.routers = router_configs(placement, &shortcuts, &[], &[]);
            // Wire shortcuts add repeated-wire area/leakage proportional to
            // the base-route length they replace (counted as extra directed
            // links).
            let fabric = placement.fabric();
            let wire_hops: usize = shortcuts
                .iter()
                .map(|s| fabric.base_route_len(s.src, s.dst) as usize)
                .sum();
            design.mesh_links += wire_hops;
        }
        Architecture::AdaptiveShortcuts { access_points } => {
            let profile = profile.expect("adaptive architectures require a traffic profile");
            rf_enabled = staggered_rf_routers(dims, *access_points);
            shortcuts =
                adaptive_shortcuts(placement, &rf_enabled, profile, system.shortcut_budget);
            network.shortcuts = shortcuts.clone();
            network.routing = RoutingKind::ShortestPath;
            design.routers = router_configs(placement, &[], &rf_enabled, &[]);
            design.rf_provisioned_gbps =
                rfnoc_power::adaptive_provision_gbps(*access_points, 16, clock);
        }
        Architecture::VctMulticast => {
            network.multicast = MulticastMode::Vct(VctConfig::default());
            design.vct_tables = true;
        }
        Architecture::RfMulticast { access_points } => {
            rf_enabled = staggered_rf_routers(dims, *access_points);
            let extra_tx: Vec<NodeId> = placement
                .cluster_centers()
                .iter()
                .copied()
                .filter(|t| !rf_enabled.contains(t))
                .collect();
            network.multicast = MulticastMode::Rf;
            network.mc = Some(mc_config(placement, rf_enabled.clone()));
            design.routers = router_configs(placement, &[], &rf_enabled, &extra_tx);
            design.rf_provisioned_gbps =
                rfnoc_power::adaptive_provision_gbps(*access_points, 16, clock)
                    + rfnoc_power::static_provision_gbps(extra_tx.len(), 16, clock);
        }
        Architecture::AdaptiveWithMulticast { access_points, shortcut_budget } => {
            let profile = profile.expect("adaptive architectures require a traffic profile");
            rf_enabled = staggered_rf_routers(dims, *access_points);
            shortcuts = adaptive_shortcuts(placement, &rf_enabled, profile, *shortcut_budget);
            // Receivers not consumed by shortcuts tune to the multicast
            // band (§3.3: "the remaining 35 Rx's are tuned to the multicast
            // channel").
            let shortcut_rx: Vec<NodeId> = shortcuts.iter().map(|s| s.dst).collect();
            let receivers: Vec<NodeId> = rf_enabled
                .iter()
                .copied()
                .filter(|r| !shortcut_rx.contains(r))
                .collect();
            let extra_tx: Vec<NodeId> = placement
                .cluster_centers()
                .iter()
                .copied()
                .filter(|t| !rf_enabled.contains(t))
                .collect();
            network.shortcuts = shortcuts.clone();
            network.routing = RoutingKind::ShortestPath;
            network.multicast = MulticastMode::Rf;
            network.mc = Some(mc_config(placement, receivers));
            design.routers = router_configs(placement, &[], &rf_enabled, &extra_tx);
            design.rf_provisioned_gbps =
                rfnoc_power::adaptive_provision_gbps(*access_points, 16, clock)
                    + rfnoc_power::static_provision_gbps(extra_tx.len(), 16, clock);
        }
    }

    BuiltSystem { network, design, shortcuts, rf_enabled }
}

fn shortcut_endpoints(shortcuts: &[Shortcut]) -> Vec<NodeId> {
    let mut endpoints: Vec<NodeId> =
        shortcuts.iter().flat_map(|s| [s.src, s.dst]).collect();
    endpoints.sort_unstable();
    endpoints.dedup();
    endpoints
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::WorkloadSpec;
    use rfnoc_power::LinkWidth;
    use rfnoc_traffic::{TraceKind, TrafficConfig};

    fn placement() -> Placement {
        Placement::paper_10x10()
    }

    #[test]
    fn baseline_build() {
        let sys = SystemConfig::new(Architecture::Baseline, LinkWidth::B16);
        let built = build_system(&sys, &placement(), None);
        assert!(built.shortcuts.is_empty());
        assert_eq!(built.design.mesh_links, 360);
        assert!(built
            .design
            .routers
            .iter()
            .all(|c| *c == RouterConfig::standard()));
    }

    #[test]
    fn static_build_has_16_shortcuts_and_ports() {
        let sys = SystemConfig::new(Architecture::StaticShortcuts, LinkWidth::B16);
        let built = build_system(&sys, &placement(), None);
        assert_eq!(built.shortcuts.len(), 16);
        let six_port = built
            .design
            .routers
            .iter()
            .filter(|c| **c != RouterConfig::standard())
            .count();
        // 16 Tx + 16 Rx endpoints, all distinct under the port constraints
        // unless a router is both a source and a destination.
        assert!((17..=32).contains(&six_port), "six-port routers: {six_port}");
        assert!((built.design.rf_provisioned_gbps - 4096.0).abs() < 1e-9);
    }

    #[test]
    fn adaptive_build_respects_access_points() {
        let p = placement();
        let spec = WorkloadSpec::Trace(TraceKind::Hotspot1);
        let profile = spec.profile(&p, &TrafficConfig::default(), 2_000);
        let sys = SystemConfig::new(
            Architecture::AdaptiveShortcuts { access_points: 50 },
            LinkWidth::B4,
        );
        let built = build_system(&sys, &p, Some(&profile));
        assert_eq!(built.rf_enabled.len(), 50);
        assert_eq!(built.shortcuts.len(), 16);
        for s in &built.shortcuts {
            assert!(built.rf_enabled.contains(&s.src));
            assert!(built.rf_enabled.contains(&s.dst));
        }
        let both = built
            .design
            .routers
            .iter()
            .filter(|c| **c == RouterConfig::rf_both())
            .count();
        assert_eq!(both, 50);
        assert!((built.design.rf_provisioned_gbps - 12_800.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "require a traffic profile")]
    fn adaptive_without_profile_panics() {
        let sys = SystemConfig::new(
            Architecture::AdaptiveShortcuts { access_points: 50 },
            LinkWidth::B16,
        );
        build_system(&sys, &placement(), None);
    }

    #[test]
    fn mc_plus_sc_splits_receivers() {
        let p = placement();
        let spec = WorkloadSpec::Trace(TraceKind::Uniform);
        let profile = spec.profile(&p, &TrafficConfig::default(), 1_000);
        let sys = SystemConfig::new(
            Architecture::AdaptiveWithMulticast { access_points: 50, shortcut_budget: 15 },
            LinkWidth::B4,
        );
        let built = build_system(&sys, &p, Some(&profile));
        assert_eq!(built.shortcuts.len(), 15);
        let mc = built.network.mc.as_ref().expect("MC config present");
        assert_eq!(mc.receivers.len(), 35, "50 APs minus 15 shortcut Rx");
        assert_eq!(mc.transmitters.len(), 4);
        for s in &built.shortcuts {
            assert!(!mc.receivers.contains(&s.dst), "shortcut Rx not on MC band");
        }
    }

    #[test]
    fn wire_shortcuts_charge_wire_links() {
        let sys = SystemConfig::new(Architecture::WireShortcuts, LinkWidth::B16);
        let built = build_system(&sys, &placement(), None);
        assert!(built.network.wire_shortcut_cycles_per_hop.is_some());
        assert!(built.design.mesh_links > 360, "wire shortcuts add repeater links");
        assert_eq!(built.design.rf_provisioned_gbps, 0.0);
    }

    #[test]
    fn vct_build_sets_tables() {
        let sys = SystemConfig::new(Architecture::VctMulticast, LinkWidth::B16);
        let built = build_system(&sys, &placement(), None);
        assert!(built.design.vct_tables);
        assert!(matches!(built.network.multicast, MulticastMode::Vct(_)));
    }

    #[test]
    fn rf_mc_transmitters_have_tx_ports() {
        let p = placement();
        let sys =
            SystemConfig::new(Architecture::RfMulticast { access_points: 50 }, LinkWidth::B16);
        let built = build_system(&sys, &p, None);
        for &t in p.cluster_centers() {
            let cfg = built.design.routers[t];
            assert!(cfg.out_ports == 6, "transmitter {t} needs an RF Tx port");
        }
    }
}
