//! The cross-run trend store: a content-addressed, append-only history
//! of bench/campaign/sweep artifacts under `results/history/`.
//!
//! Every artifact the bench harness writes (`results/json/*.json`) is a
//! snapshot of one run. This module reduces each snapshot to a
//! [`HistoryRecord`] — provenance (git describe, timestamp, quick flag)
//! plus the flattened numeric metric vector of [`crate::compare`] — and
//! files it as `results/history/<artifact>-<fnv64>.json`, where the hash
//! covers the record's canonical rendering. Content addressing makes
//! ingest idempotent: re-ingesting the same artifact is a no-op, so the
//! bench binaries ingest unconditionally after every write and the store
//! only ever grows by genuinely new runs.
//!
//! Consumers:
//!
//! * `rfnoc-cli trend <metric>` renders per-metric time series across the
//!   stored records (sorted by `generated_unix`).
//! * `rfnoc-cli gate` ([`crate::gate`]) judges a fresh artifact against
//!   the rolling history with a noise-aware median ± k·MAD band.
//!
//! The `RFNOC_HISTORY` environment variable redirects the store (a
//! directory path) or disables automatic ingest entirely (`off` or `0`)
//! — CI uses a throwaway directory so smoke runs never pollute the
//! committed history.

use crate::compare::{flatten, parse, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Current schema version written into every record.
pub const SCHEMA_VERSION: u64 = 1;

/// The default store location, relative to the repo root.
pub const DEFAULT_DIR: &str = "results/history";

/// One run's reduced artifact: provenance plus the flattened metric
/// vector.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryRecord {
    /// Artifact name (`BENCH_sim_throughput`, `BENCH_trajectory`, ...).
    pub artifact: String,
    /// `git describe` of the run that produced the artifact.
    pub git: String,
    /// The artifact's `generated_unix` stamp (0 when absent).
    pub unix: u64,
    /// The artifact's `quick` flag, when it carries one — quick and full
    /// runs measure different workloads, so the gate never mixes them.
    pub quick: Option<bool>,
    /// Flattened `dotted.path -> value` metrics (timestamps excluded).
    pub metrics: BTreeMap<String, f64>,
}

impl HistoryRecord {
    /// Reduces one parsed artifact document to history records.
    ///
    /// A plain artifact yields one record. A trajectory-shaped artifact
    /// (`{"name": ..., "rows": [...]}`) yields one record per row, in
    /// file order — each row is itself a complete artifact with its own
    /// provenance, which is exactly the cross-run series the store
    /// exists to hold.
    ///
    /// # Errors
    ///
    /// No artifact name (neither `name_override` nor a `"name"` field),
    /// or a rows file whose rows are not objects.
    pub fn from_artifact(
        doc: &Json,
        name_override: Option<&str>,
    ) -> Result<Vec<Self>, String> {
        let name = match name_override {
            Some(n) => n.to_string(),
            None => doc
                .get("name")
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or("artifact has no \"name\" field (pass --name)")?,
        };
        if let Some(Json::Arr(rows)) = doc.get("rows") {
            return rows
                .iter()
                .enumerate()
                .map(|(i, row)| match row {
                    Json::Obj(_) => Ok(Self::from_flat(row, &name)),
                    _ => Err(format!("row {i} of {name} is not an object")),
                })
                .collect();
        }
        Ok(vec![Self::from_flat(doc, &name)])
    }

    /// Reduces one flat artifact object (no rows nesting) to a record.
    fn from_flat(doc: &Json, name: &str) -> Self {
        let git = doc
            .get("git")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let unix = match doc.get("generated_unix") {
            Some(Json::Num(v)) if *v >= 0.0 => *v as u64,
            _ => 0,
        };
        let quick = match doc.get("quick") {
            Some(Json::Bool(b)) => Some(*b),
            _ => None,
        };
        let metrics = flatten(doc)
            .into_iter()
            .filter(|(path, v)| {
                v.is_finite()
                    && path.rsplit('.').next().unwrap_or(path) != "generated_unix"
            })
            .collect();
        Self { artifact: name.to_string(), git, unix, quick, metrics }
    }

    /// The canonical JSON rendering — what the content hash covers and
    /// what [`HistoryStore::ingest`] writes to disk.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"schema\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"artifact\": {},", jstr(&self.artifact));
        let _ = writeln!(out, "  \"git\": {},", jstr(&self.git));
        let _ = writeln!(out, "  \"unix\": {},", self.unix);
        let _ = writeln!(
            out,
            "  \"quick\": {},",
            match self.quick {
                Some(true) => "true",
                Some(false) => "false",
                None => "null",
            }
        );
        out.push_str("  \"metrics\": {\n");
        let n = self.metrics.len();
        for (i, (path, v)) in self.metrics.iter().enumerate() {
            // `{v}` is Rust's shortest round-trip float rendering, so the
            // stored value (and thus the content hash) is exact.
            let _ = writeln!(
                out,
                "    {}: {v}{}",
                jstr(path),
                if i + 1 == n { "" } else { "," }
            );
        }
        out.push_str("  }\n}\n");
        out
    }

    /// FNV-1a content hash of the canonical rendering.
    pub fn content_hash(&self) -> u64 {
        fnv1a64(self.render_json().as_bytes())
    }

    /// The record's store filename: `<artifact>-<hash>.json`.
    pub fn filename(&self) -> String {
        format!("{}-{:016x}.json", sanitize(&self.artifact), self.content_hash())
    }

    /// Parses a stored record file back.
    ///
    /// # Errors
    ///
    /// Malformed JSON or a missing/mistyped required field.
    pub fn parse_record(text: &str) -> Result<Self, String> {
        let doc = parse(text).map_err(|e| e.to_string())?;
        let artifact = doc
            .get("artifact")
            .and_then(Json::as_str)
            .ok_or("record has no \"artifact\"")?
            .to_string();
        let git = doc
            .get("git")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string();
        let unix = match doc.get("unix") {
            Some(Json::Num(v)) if *v >= 0.0 => *v as u64,
            _ => 0,
        };
        let quick = match doc.get("quick") {
            Some(Json::Bool(b)) => Some(*b),
            _ => None,
        };
        let mut metrics = BTreeMap::new();
        match doc.get("metrics") {
            Some(Json::Obj(fields)) => {
                for (k, v) in fields {
                    if let Json::Num(v) = v {
                        metrics.insert(k.clone(), *v);
                    }
                }
            }
            _ => return Err("record has no \"metrics\" object".into()),
        }
        Ok(Self { artifact, git, unix, quick, metrics })
    }
}

/// Replaces filesystem-hostile characters in an artifact name.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' { c } else { '_' })
        .collect()
}

/// 64-bit FNV-1a — the same dependency-free hash the golden-stats suite
/// pins simulator output with.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// What [`HistoryStore::ingest`] did with a record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestOutcome {
    /// The record was new and is now stored at this path.
    Added(PathBuf),
    /// An identical record was already stored at this path.
    Duplicate(PathBuf),
}

/// A directory of [`HistoryRecord`] files.
#[derive(Debug, Clone)]
pub struct HistoryStore {
    dir: PathBuf,
}

impl HistoryStore {
    /// A store over `dir` (no filesystem access until ingest/load).
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// The store the `RFNOC_HISTORY` environment variable selects:
    /// `None` when set to `off`/`0` (automatic ingest disabled), the
    /// named directory when set, [`DEFAULT_DIR`] otherwise.
    pub fn from_env() -> Option<Self> {
        match std::env::var("RFNOC_HISTORY") {
            Ok(v) if v == "off" || v == "0" => None,
            Ok(v) if !v.is_empty() => Some(Self::open(v)),
            _ => Some(Self::open(DEFAULT_DIR)),
        }
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Files a record, content-addressed. Idempotent: an already-stored
    /// identical record reports [`IngestOutcome::Duplicate`].
    ///
    /// # Errors
    ///
    /// Directory creation or file write failures.
    pub fn ingest(&self, rec: &HistoryRecord) -> Result<IngestOutcome, String> {
        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("cannot create {}: {e}", self.dir.display()))?;
        let path = self.dir.join(rec.filename());
        if path.exists() {
            return Ok(IngestOutcome::Duplicate(path));
        }
        std::fs::write(&path, rec.render_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(IngestOutcome::Added(path))
    }

    /// Loads every stored record, optionally filtered to one artifact
    /// name, sorted oldest-first by (`unix`, git, content) so rolling
    /// windows and trend lines read chronologically. A missing store
    /// directory is an empty history, not an error.
    ///
    /// # Errors
    ///
    /// An unreadable directory entry or a malformed record file.
    pub fn load(&self, artifact: Option<&str>) -> Result<Vec<HistoryRecord>, String> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(format!("cannot read {}: {e}", self.dir.display())),
        };
        let mut records = Vec::new();
        for entry in entries {
            let entry = entry.map_err(|e| e.to_string())?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            let rec = HistoryRecord::parse_record(&text)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            if artifact.is_none_or(|a| a == rec.artifact) {
                records.push(rec);
            }
        }
        records.sort_by(|a, b| {
            (a.unix, &a.git, &a.metrics)
                .partial_cmp(&(b.unix, &b.git, &b.metrics))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        Ok(records)
    }

    /// The distinct artifact names in the store, with record counts.
    ///
    /// # Errors
    ///
    /// See [`Self::load`].
    pub fn artifacts(&self) -> Result<BTreeMap<String, usize>, String> {
        let mut out = BTreeMap::new();
        for rec in self.load(None)? {
            *out.entry(rec.artifact).or_insert(0) += 1;
        }
        Ok(out)
    }
}

/// Extracts one metric's chronological series from loaded records:
/// `(unix, git, value)` per record that carries the exact path.
pub fn series<'r>(
    records: &'r [HistoryRecord],
    path: &str,
) -> Vec<(u64, &'r str, f64)> {
    records
        .iter()
        .filter_map(|r| r.metrics.get(path).map(|&v| (r.unix, r.git.as_str(), v)))
        .collect()
}

/// The distinct metric paths across records that contain `query` as a
/// substring (or match exactly), in sorted order.
pub fn matching_paths(records: &[HistoryRecord], query: &str) -> Vec<String> {
    let mut out: Vec<String> = records
        .iter()
        .flat_map(|r| r.metrics.keys())
        .filter(|p| p.contains(query))
        .cloned()
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Escapes a string for a JSON literal (shared hand-rolled convention).
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const ARTIFACT: &str = r#"{
        "name": "BENCH_example", "git": "abc123", "generated_unix": 500,
        "quick": true,
        "configs": [
            {"id": "mesh", "cycles_per_sec": 1000.0},
            {"id": "rf", "cycles_per_sec": 800.0}
        ]
    }"#;

    #[test]
    fn artifact_reduces_to_record() {
        let doc = parse(ARTIFACT).unwrap();
        let recs = HistoryRecord::from_artifact(&doc, None).unwrap();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.artifact, "BENCH_example");
        assert_eq!(r.git, "abc123");
        assert_eq!(r.unix, 500);
        assert_eq!(r.quick, Some(true));
        assert_eq!(r.metrics["configs[mesh].cycles_per_sec"], 1000.0);
        assert!(
            !r.metrics.contains_key("generated_unix"),
            "timestamps are provenance, not metrics"
        );
    }

    #[test]
    fn rows_artifact_yields_one_record_per_row() {
        let doc = parse(
            r#"{"name": "BENCH_trajectory", "rows": [
                {"git": "a", "generated_unix": 1, "quick": true,
                 "configs": [{"id": "m", "cycles_per_sec": 10.0}]},
                {"git": "b", "generated_unix": 2, "quick": false,
                 "configs": [{"id": "m", "cycles_per_sec": 20.0}]}
            ]}"#,
        )
        .unwrap();
        let recs = HistoryRecord::from_artifact(&doc, None).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].git, "a");
        assert_eq!(recs[0].quick, Some(true));
        assert_eq!(recs[1].metrics["configs[m].cycles_per_sec"], 20.0);
    }

    #[test]
    fn record_roundtrips_through_canonical_json() {
        let doc = parse(ARTIFACT).unwrap();
        let rec = HistoryRecord::from_artifact(&doc, None).unwrap().remove(0);
        let back = HistoryRecord::parse_record(&rec.render_json()).unwrap();
        assert_eq!(rec, back);
        assert_eq!(rec.content_hash(), back.content_hash());
    }

    #[test]
    fn ingest_is_content_addressed_and_idempotent() {
        let dir = std::env::temp_dir().join("rfnoc_history_test_ingest");
        let _ = std::fs::remove_dir_all(&dir);
        let store = HistoryStore::open(&dir);
        let doc = parse(ARTIFACT).unwrap();
        let rec = HistoryRecord::from_artifact(&doc, None).unwrap().remove(0);
        assert!(matches!(store.ingest(&rec).unwrap(), IngestOutcome::Added(_)));
        assert!(matches!(store.ingest(&rec).unwrap(), IngestOutcome::Duplicate(_)));
        // A different run (new timestamp) is a new record.
        let mut rec2 = rec.clone();
        rec2.unix = 501;
        assert!(matches!(store.ingest(&rec2).unwrap(), IngestOutcome::Added(_)));
        let loaded = store.load(Some("BENCH_example")).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].unix, 500, "sorted oldest-first");
        assert_eq!(store.artifacts().unwrap()["BENCH_example"], 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_store_is_empty_history() {
        let store = HistoryStore::open("/nonexistent/rfnoc_history");
        assert!(store.load(None).unwrap().is_empty());
    }

    #[test]
    fn series_and_matching_paths() {
        let mk = |unix: u64, v: f64| HistoryRecord {
            artifact: "A".into(),
            git: format!("g{unix}"),
            unix,
            quick: None,
            metrics: [("configs[m].cycles_per_sec".to_string(), v)].into(),
        };
        let recs = vec![mk(1, 10.0), mk(2, 20.0)];
        let s = series(&recs, "configs[m].cycles_per_sec");
        assert_eq!(s.len(), 2);
        assert_eq!(s[1], (2, "g2", 20.0));
        assert_eq!(matching_paths(&recs, "cycles_per_sec").len(), 1);
        assert!(matching_paths(&recs, "nope").is_empty());
    }
}
