//! Cross-run artifact diffing: `rfnoc-cli compare A.json B.json`.
//!
//! Every bench binary writes flat, hand-rolled JSON artifacts
//! (`results/json/*.json`). This module parses two of them with a small
//! recursive-descent JSON reader (the container has no serde), flattens
//! each to dotted metric paths — arrays of objects carrying an `"id"`
//! field are keyed by that id, so config lists align across runs even if
//! reordered — and diffs every numeric metric the two runs share.
//!
//! Each metric's *direction* is inferred from its name: throughput-like
//! metrics (`*_per_sec`, `*throughput*`, `*rate*`) should not fall,
//! cost-like metrics (`*latency*`, `*stall*`, `*wait*`, `*wall_ms*`,
//! `*dropped*`, `*fault*`, `*imbalance*`) should not rise, and anything else is
//! informational. A metric whose worsening exceeds the threshold is a
//! **breach**; the CLI exits nonzero if any metric breaches, which is
//! what CI uses to gate simulator-throughput regressions against the
//! committed trajectory baseline.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value (just enough for the repo's flat artifacts).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`; artifact values fit easily).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key of an object value.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A JSON parse error with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What the parser expected or found.
    pub message: String,
    /// Byte offset into the document.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { message: message.into(), offset: self.pos })
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", c as char))
        }
    }

    fn eat_lit(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            self.err(format!("expected '{lit}'"))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => self.err(format!("unexpected '{}'", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or(ParseError {
                        message: "unterminated escape".into(),
                        offset: self.pos,
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            match hex.and_then(char::from_u32) {
                                Some(c) => {
                                    out.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("unknown escape"),
                    }
                }
                Some(_) => {
                    // Copy the full UTF-8 code point starting here.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| ParseError {
                            message: "invalid UTF-8".into(),
                            offset: self.pos,
                        })?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return self.err("unterminated string"),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
        match text.parse::<f64>() {
            Ok(v) => Ok(Json::Num(v)),
            Err(_) => self.err(format!("bad number '{text}'")),
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a [`ParseError`] with a byte offset on malformed input or
/// trailing garbage.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing garbage");
    }
    Ok(v)
}

/// Flattens a document to `dotted.path -> numeric value` metrics.
///
/// Arrays of objects that all carry a string `"id"` field are keyed by
/// id (`configs[mesh10x10_low_load].cycles_per_sec`); other arrays are
/// keyed by index. Strings, booleans, and nulls are skipped — the diff
/// compares numbers.
pub fn flatten(value: &Json) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    walk(value, String::new(), &mut out);
    out
}

fn walk(value: &Json, path: String, out: &mut BTreeMap<String, f64>) {
    match value {
        Json::Num(v) => {
            out.insert(path, *v);
        }
        Json::Obj(fields) => {
            for (k, v) in fields {
                let sub = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                walk(v, sub, out);
            }
        }
        Json::Arr(items) => {
            let by_id = !items.is_empty()
                && items.iter().all(|i| i.get("id").and_then(Json::as_str).is_some());
            for (idx, item) in items.iter().enumerate() {
                let key = if by_id {
                    item.get("id").and_then(Json::as_str).unwrap().to_string()
                } else {
                    idx.to_string()
                };
                walk(item, format!("{path}[{key}]"), out);
            }
        }
        Json::Null | Json::Bool(_) | Json::Str(_) => {}
    }
}

/// Which way a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Falling is a regression (throughput-like).
    HigherIsBetter,
    /// Rising is a regression (latency/cost-like).
    LowerIsBetter,
    /// Reported but never a breach (counts, timestamps, ids).
    Informational,
}

/// Infers a metric's direction from the last segment of its path.
///
/// Noise metadata is checked first: a leaf containing `spread` (the
/// best-of-N min/max/stddev fields the perf benchmark records, e.g.
/// `cycles_per_sec_spread_stddev`) is always informational, even though
/// the stem would otherwise match a directional keyword — run-to-run
/// spread is an input to the noise-aware gate, never a gated metric
/// itself.
pub fn direction_of(path: &str) -> Direction {
    let leaf = path.rsplit('.').next().unwrap_or(path).to_ascii_lowercase();
    const HIGHER: &[&str] = &["per_sec", "throughput", "rate", "coverage"];
    const LOWER: &[&str] =
        &["latency", "stall", "wait", "wall_ms", "dropped", "fault", "retransmit", "imbalance"];
    if leaf.contains("spread") {
        Direction::Informational
    } else if HIGHER.iter().any(|k| leaf.contains(k)) {
        Direction::HigherIsBetter
    } else if LOWER.iter().any(|k| leaf.contains(k)) {
        Direction::LowerIsBetter
    } else {
        Direction::Informational
    }
}

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// Dotted metric path.
    pub path: String,
    /// Value in the baseline document.
    pub base: f64,
    /// Value in the new document.
    pub new: f64,
    /// Inferred direction.
    pub direction: Direction,
    /// Signed worsening in percent (positive = worse), `None` for
    /// informational metrics or a ~zero baseline.
    pub worsening_pct: Option<f64>,
}

impl MetricDelta {
    /// Whether this metric regressed past `threshold_pct`.
    pub fn breaches(&self, threshold_pct: f64) -> bool {
        self.worsening_pct.is_some_and(|w| w > threshold_pct)
    }
}

/// The outcome of comparing two flattened documents.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    /// Every metric present in both documents.
    pub deltas: Vec<MetricDelta>,
    /// Metric paths only in the baseline.
    pub only_base: Vec<String>,
    /// Metric paths only in the new document.
    pub only_new: Vec<String>,
}

impl Comparison {
    /// Metrics breaching `threshold_pct`, worst first.
    pub fn breaches(&self, threshold_pct: f64) -> Vec<&MetricDelta> {
        let mut out: Vec<&MetricDelta> =
            self.deltas.iter().filter(|d| d.breaches(threshold_pct)).collect();
        out.sort_by(|a, b| {
            b.worsening_pct
                .unwrap_or(0.0)
                .partial_cmp(&a.worsening_pct.unwrap_or(0.0))
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }
}

/// Timestamps and provenance differ between any two runs; comparing them
/// is noise.
fn ignored(path: &str) -> bool {
    let leaf = path.rsplit('.').next().unwrap_or(path);
    matches!(leaf, "generated_unix")
}

/// Compares two parsed documents metric-by-metric.
pub fn compare(base: &Json, new: &Json) -> Comparison {
    let base = flatten(base);
    let new = flatten(new);
    let mut cmp = Comparison::default();
    for (path, &b) in &base {
        if ignored(path) {
            continue;
        }
        match new.get(path) {
            None => cmp.only_base.push(path.clone()),
            Some(&n) => {
                let direction = direction_of(path);
                // A ~zero baseline makes percent change meaningless.
                let worsening_pct = if b.abs() < 1e-9 {
                    None
                } else {
                    match direction {
                        Direction::HigherIsBetter => Some(100.0 * (b - n) / b.abs()),
                        Direction::LowerIsBetter => Some(100.0 * (n - b) / b.abs()),
                        Direction::Informational => None,
                    }
                };
                cmp.deltas.push(MetricDelta {
                    path: path.clone(),
                    base: b,
                    new: n,
                    direction,
                    worsening_pct,
                });
            }
        }
    }
    for path in new.keys() {
        if !ignored(path) && !base.contains_key(path) {
            cmp.only_new.push(path.clone());
        }
    }
    cmp
}

/// Reads, parses, and compares two artifact files, printing a report.
/// Returns the number of metrics breaching `threshold_pct`.
///
/// # Errors
///
/// Returns a message on unreadable files or malformed JSON.
pub fn compare_files(
    base_path: &str,
    new_path: &str,
    threshold_pct: f64,
) -> Result<usize, String> {
    let read = |p: &str| -> Result<Json, String> {
        let text =
            std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"))?;
        parse(&text).map_err(|e| format!("{p}: {e}"))
    };
    let cmp = compare(&read(base_path)?, &read(new_path)?);
    let breaches = cmp.breaches(threshold_pct);

    println!("comparing {base_path} (baseline) vs {new_path} (threshold {threshold_pct}%)");
    println!("  {} shared metrics", cmp.deltas.len());
    // Report the largest movements, regressions first.
    let mut moved: Vec<&MetricDelta> = cmp
        .deltas
        .iter()
        .filter(|d| d.worsening_pct.is_some_and(|w| w.abs() > 0.01))
        .collect();
    moved.sort_by(|a, b| {
        b.worsening_pct
            .unwrap_or(0.0)
            .partial_cmp(&a.worsening_pct.unwrap_or(0.0))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for d in moved.iter().take(20) {
        let w = d.worsening_pct.unwrap_or(0.0);
        println!(
            "  {} {:<58} {:>14.4} -> {:>14.4}  ({:+.1}% {})",
            if d.breaches(threshold_pct) { "BREACH" } else { "      " },
            d.path,
            d.base,
            d.new,
            w,
            if w > 0.0 { "worse" } else { "better" },
        );
    }
    if !cmp.only_base.is_empty() || !cmp.only_new.is_empty() {
        println!(
            "  {} metrics only in baseline, {} only in new",
            cmp.only_base.len(),
            cmp.only_new.len()
        );
    }
    if breaches.is_empty() {
        println!("  OK: no metric worsened by more than {threshold_pct}%");
    } else {
        println!("  FAIL: {} metric(s) regressed past {threshold_pct}%", breaches.len());
    }
    Ok(breaches.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
        "name": "BENCH", "git": "abc", "generated_unix": 100,
        "configs": [
            {"id": "mesh", "cycles_per_sec": 1000.0, "avg_latency_cycles": 40.0},
            {"id": "rf", "cycles_per_sec": 800.0, "avg_latency_cycles": 30.0}
        ]
    }"#;

    #[test]
    fn parser_roundtrips_artifact_shapes() {
        let v = parse(BASE).unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("BENCH"));
        let flat = flatten(&v);
        assert_eq!(flat["configs[mesh].cycles_per_sec"], 1000.0);
        assert_eq!(flat["configs[rf].avg_latency_cycles"], 30.0);
        assert!(!flat.contains_key("name"), "strings are not metrics");
        assert!(parse("{\"a\": 1,}").is_err(), "trailing comma rejected");
        assert!(parse("[1, 2] garbage").is_err());
        assert_eq!(
            parse(r#""aA\n""#).unwrap(),
            Json::Str("aA\n".into()),
            "escapes decode"
        );
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
    }

    #[test]
    fn id_keying_survives_reordering() {
        let reordered = r#"{
            "generated_unix": 200,
            "configs": [
                {"id": "rf", "cycles_per_sec": 800.0, "avg_latency_cycles": 30.0},
                {"id": "mesh", "cycles_per_sec": 1000.0, "avg_latency_cycles": 40.0}
            ]
        }"#;
        let cmp = compare(&parse(BASE).unwrap(), &parse(reordered).unwrap());
        assert!(cmp.breaches(0.0).is_empty(), "same values, different order");
        assert!(cmp.deltas.iter().all(|d| (d.base - d.new).abs() < 1e-12));
    }

    #[test]
    fn directions_and_breaches() {
        assert_eq!(direction_of("configs[x].cycles_per_sec"), Direction::HigherIsBetter);
        assert_eq!(direction_of("a.avg_latency_cycles"), Direction::LowerIsBetter);
        assert_eq!(direction_of("runs[0].sa_wait"), Direction::LowerIsBetter);
        assert_eq!(direction_of("completed_messages"), Direction::Informational);

        // A 30% throughput drop and a 50% latency rise.
        let regressed = BASE
            .replace("\"cycles_per_sec\": 1000.0", "\"cycles_per_sec\": 700.0")
            .replace("\"avg_latency_cycles\": 30.0", "\"avg_latency_cycles\": 45.0");
        let cmp = compare(&parse(BASE).unwrap(), &parse(&regressed).unwrap());
        let breaches = cmp.breaches(20.0);
        assert_eq!(breaches.len(), 2);
        assert_eq!(breaches[0].path, "configs[rf].avg_latency_cycles", "worst first");
        assert!(cmp.breaches(60.0).is_empty(), "generous threshold tolerates both");

        // Self-compare never breaches, even at threshold 0.
        let self_cmp = compare(&parse(BASE).unwrap(), &parse(BASE).unwrap());
        assert!(self_cmp.breaches(0.0).is_empty());

        // Improvements never breach.
        let improved = BASE.replace("\"cycles_per_sec\": 1000.0", "\"cycles_per_sec\": 2000.0");
        let cmp = compare(&parse(BASE).unwrap(), &parse(&improved).unwrap());
        assert!(cmp.breaches(0.0).is_empty());
    }

    #[test]
    fn compare_files_self_is_clean_and_regression_counts() {
        let dir = std::env::temp_dir().join("rfnoc_compare_test");
        std::fs::create_dir_all(&dir).unwrap();
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        std::fs::write(&a, BASE).unwrap();
        std::fs::write(&b, BASE.replace("1000.0", "100.0")).unwrap();
        let a = a.to_str().unwrap();
        let b = b.to_str().unwrap();
        assert_eq!(compare_files(a, a, 5.0).unwrap(), 0, "self-compare is clean");
        assert!(compare_files(a, b, 5.0).unwrap() > 0, "synthetic regression caught");
        assert!(compare_files(a, "/nonexistent.json", 5.0).is_err());
        let _ = std::fs::remove_dir_all(dir);
    }
}
