//! Workload specifications: constructible, profilable traffic sources.

use rfnoc_sim::{Destination, Workload};
use rfnoc_topology::{PairWeights, Shortcut};
use rfnoc_traffic::{
    AppProfile, AppWorkload, CombinedWorkload, MulticastConfig, MulticastTraffic, Placement,
    ProbabilisticWorkload, ProfileSpec, ProfileWorkload, TraceKind, TrafficConfig,
};

/// A recipe for a traffic source. Unlike a live [`Workload`] (which is
/// stateful), a spec can be instantiated repeatedly — once to profile
/// communication frequencies for adaptive shortcut selection, and once for
/// the measured run. Deterministic seeds make both instances identical,
/// matching the paper's assumption that "this profile is available for the
/// applications we wish to run" (§3.2.2).
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// One of the Table 1 probabilistic traces.
    Trace(TraceKind),
    /// A synthetic application trace (§4.2 substitution).
    App(AppProfile),
    /// A probabilistic trace augmented with coherence multicasts at the
    /// given destination-set locality (0.2 or 0.5, §5.2).
    TraceWithMulticast {
        /// The underlying unicast trace.
        base: TraceKind,
        /// Fraction of distinct source-to-destination-set pairs.
        locality: f64,
        /// Mean multicasts per cache bank per cycle.
        rate_per_cache: f64,
    },
    /// A seeded resilience-campaign profile (expected / stress /
    /// adversarial). The adversarial shape targets the *built* system's
    /// shortcut set, which only [`crate::Experiment::run`] knows — so
    /// [`WorkloadSpec::instantiate`] realises it against an empty overlay
    /// (degrading to the stress shape) and experiments use
    /// [`WorkloadSpec::instantiate_for`] with the selected shortcuts.
    Profile(ProfileSpec),
}

impl WorkloadSpec {
    /// Human-readable name for reports.
    pub fn name(&self) -> String {
        match self {
            WorkloadSpec::Trace(kind) => kind.name().to_string(),
            WorkloadSpec::App(profile) => profile.name.to_string(),
            WorkloadSpec::TraceWithMulticast { base, locality, .. } => {
                format!("{}+MC{}", base.name(), (locality * 100.0).round() as u32)
            }
            WorkloadSpec::Profile(spec) => spec.profile.label().to_string(),
        }
    }

    /// Builds a fresh workload instance.
    pub fn instantiate(
        &self,
        placement: &Placement,
        traffic: &TrafficConfig,
    ) -> Box<dyn Workload> {
        self.instantiate_for(placement, traffic, &[])
    }

    /// Builds a fresh workload instance against the selected RF-I
    /// shortcut set. Only [`WorkloadSpec::Profile`] reads `shortcuts`
    /// (its adversarial shape concentrates load on them); every other
    /// spec ignores it, so this is identical to
    /// [`WorkloadSpec::instantiate`] for them.
    ///
    /// # Panics
    ///
    /// Panics if a [`WorkloadSpec::Profile`] spec fails validation —
    /// validate with [`rfnoc_traffic::ProfileSpec::validate`] first when
    /// handling untrusted configs.
    pub fn instantiate_for(
        &self,
        placement: &Placement,
        traffic: &TrafficConfig,
        shortcuts: &[Shortcut],
    ) -> Box<dyn Workload> {
        match self {
            WorkloadSpec::Trace(kind) => Box::new(ProbabilisticWorkload::new(
                placement.clone(),
                *kind,
                traffic.clone(),
            )),
            WorkloadSpec::App(profile) => Box::new(AppWorkload::new(
                placement.clone(),
                profile.clone(),
                traffic.injection_rate,
                traffic.seed,
            )),
            WorkloadSpec::TraceWithMulticast { base, locality, rate_per_cache } => {
                let unicast = ProbabilisticWorkload::new(
                    placement.clone(),
                    *base,
                    traffic.clone(),
                );
                let mc = MulticastTraffic::new(
                    placement.clone(),
                    MulticastConfig {
                        rate_per_cache: *rate_per_cache,
                        locality: *locality,
                        seed: traffic.seed ^ 0x5EED,
                        ..MulticastConfig::default()
                    },
                );
                Box::new(CombinedWorkload::new().with(Box::new(unicast)).with(Box::new(mc)))
            }
            WorkloadSpec::Profile(spec) => Box::new(
                ProfileWorkload::new(
                    placement.clone(),
                    spec.clone(),
                    traffic.clone(),
                    shortcuts,
                )
                .expect("invalid profile spec"),
            ),
        }
    }

    /// Profiles inter-router communication frequency `F(x,y)` — the number
    /// of messages sent from router `x` to router `y` — by generating
    /// `cycles` cycles of traffic (the event-counter profile of §3.2.2).
    /// Only unicast messages are counted: shortcuts serve point-to-point
    /// traffic, multicasts ride the broadcast band.
    pub fn profile(
        &self,
        placement: &Placement,
        traffic: &TrafficConfig,
        cycles: u64,
    ) -> PairWeights {
        let mut workload = self.instantiate(placement, traffic);
        let n = placement.dims().nodes();
        let mut weights = PairWeights::zero(n);
        let mut buf = Vec::new();
        for cycle in 0..cycles {
            buf.clear();
            workload.messages_at(cycle, &mut buf);
            for m in &buf {
                if let Destination::Unicast(dst) = m.dest {
                    weights.add(m.src, dst, 1.0);
                }
            }
        }
        weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_reflects_hotspot() {
        let placement = Placement::paper_10x10();
        let spec = WorkloadSpec::Trace(TraceKind::Hotspot1);
        let weights = spec.profile(&placement, &TrafficConfig::default(), 2_000);
        let hot = placement.hotspot_caches(1)[0];
        let top = weights.top_pairs(20);
        let hot_pairs = top.iter().filter(|(s, d, _)| *s == hot || *d == hot).count();
        assert!(hot_pairs >= 15, "hotspot pairs in top-20: {hot_pairs}");
    }

    #[test]
    fn profile_is_reproducible() {
        let placement = Placement::paper_10x10();
        let spec = WorkloadSpec::Trace(TraceKind::BiDf);
        let traffic = TrafficConfig::default();
        let a = spec.profile(&placement, &traffic, 500);
        let b = spec.profile(&placement, &traffic, 500);
        assert_eq!(a, b);
    }

    #[test]
    fn multicast_spec_emits_both_kinds() {
        let placement = Placement::paper_10x10();
        let spec = WorkloadSpec::TraceWithMulticast {
            base: TraceKind::Uniform,
            locality: 0.2,
            rate_per_cache: 0.01,
        };
        let mut w = spec.instantiate(&placement, &TrafficConfig::default());
        let mut out = Vec::new();
        for c in 0..500 {
            w.messages_at(c, &mut out);
        }
        assert!(out.iter().any(|m| matches!(m.dest, Destination::Unicast(_))));
        assert!(out.iter().any(|m| matches!(m.dest, Destination::Multicast(_))));
    }

    #[test]
    fn names_are_informative() {
        assert_eq!(WorkloadSpec::Trace(TraceKind::Uniform).name(), "Uniform");
        assert_eq!(WorkloadSpec::App(AppProfile::x264()).name(), "x264");
        let mc = WorkloadSpec::TraceWithMulticast {
            base: TraceKind::Hotspot1,
            locality: 0.2,
            rate_per_cache: 0.01,
        };
        assert_eq!(mc.name(), "1Hotspot+MC20");
        let adv = WorkloadSpec::Profile(ProfileSpec::new(
            rfnoc_traffic::Profile::Adversarial,
            7,
        ));
        assert_eq!(adv.name(), "adversarial");
    }

    #[test]
    fn profile_spec_targets_given_shortcuts() {
        let placement = Placement::paper_10x10();
        let spec = WorkloadSpec::Profile(ProfileSpec::new(
            rfnoc_traffic::Profile::Adversarial,
            11,
        ));
        let shortcuts = [Shortcut::new(0, 99)];
        let traffic = TrafficConfig::default();
        let mut w = spec.instantiate_for(&placement, &traffic, &shortcuts);
        let mut out = Vec::new();
        for c in 0..20_000 {
            w.messages_at(c, &mut out);
        }
        let to_sink = out
            .iter()
            .filter(|m| matches!(m.dest, Destination::Unicast(99)))
            .count();
        assert!(
            to_sink * 3 > out.len(),
            "shortcut sink draws the bulk of adversarial traffic ({to_sink}/{})",
            out.len()
        );
    }
}
