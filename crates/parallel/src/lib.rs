//! A minimal scoped worker pool.
//!
//! The sharded cycle engine dispatches one short job per simulated cycle,
//! so per-dispatch cost dominates: spawning OS threads each cycle (as
//! `std::thread::scope` would) costs tens of microseconds, while this pool
//! re-dispatches onto parked threads with two barrier waits. The API is a
//! scoped run — `scoped_run` does not return until every worker has
//! finished the job — which is what makes handing the workers references
//! into caller-owned data sound. The lifetime erasure that enables it is
//! the one `unsafe` block in the workspace, kept here behind a safe
//! signature so `rfnoc-sim` can stay `#![forbid(unsafe_code)]`.

#![warn(missing_docs)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread::JoinHandle;

/// The job a worker picks up at the start barrier.
#[derive(Clone, Copy)]
enum Job {
    /// No job published (initial state only; workers never observe it
    /// after a start barrier).
    Idle,
    /// Exit the worker loop.
    Shutdown,
    /// Run the published closure with the worker's index.
    Run(JobPtr),
}

/// A lifetime-erased pointer to the caller's `&(dyn Fn(usize) + Sync)`.
///
/// Soundness: the pointer is published before the start barrier and only
/// dereferenced between the start and end barriers of one `scoped_run`
/// call, which itself borrows the closure for at least that long — so the
/// pointee is alive and the shared borrow rules are respected (`Sync`
/// bounds the concurrent calls).
#[derive(Clone, Copy)]
struct JobPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared access from many threads is part
// of its contract) and outlives every dereference (see `JobPtr` docs), so
// sending the pointer to the worker threads is sound.
unsafe impl Send for JobPtr {}

struct Shared {
    /// Start/end rendezvous for `workers + 1` participants (the caller
    /// counts as worker 0).
    barrier: Barrier,
    job: Mutex<Job>,
    panicked: AtomicBool,
}

/// A fixed-size pool of parked worker threads executing scoped jobs.
///
/// `WorkerPool::new(n)` owns `n - 1` OS threads; the calling thread acts
/// as worker 0 during [`WorkerPool::scoped_run`], so a pool of `n` runs
/// jobs at parallelism `n`.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool").field("workers", &self.workers).finish()
    }
}

impl WorkerPool {
    /// Creates a pool running jobs at parallelism `workers` (spawning
    /// `workers - 1` threads; the caller is worker 0).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a pool needs at least one worker");
        let shared = Arc::new(Shared {
            barrier: Barrier::new(workers),
            job: Mutex::new(Job::Idle),
            panicked: AtomicBool::new(false),
        });
        let handles = (1..workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rfnoc-shard-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn worker thread")
            })
            .collect();
        Self { shared, handles, workers }
    }

    /// Parallelism of this pool (including the calling thread).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f(i)` once for every worker index `i in 0..workers`,
    /// concurrently, and returns only when all calls have finished.
    /// `f(0)` runs on the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if any worker's `f(i)` panicked (after all workers have
    /// reached the end barrier, so the pool stays usable is *not*
    /// guaranteed — treat a panic as fatal to the simulation).
    pub fn scoped_run(&self, f: &(dyn Fn(usize) + Sync)) {
        if self.workers == 1 {
            f(0);
            return;
        }
        // SAFETY: lifetime erasure only — the erased borrow is dereferenced
        // exclusively between the two barrier waits below, while `f` is
        // still borrowed by this call (see `JobPtr`).
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        {
            let mut job = self.shared.job.lock().expect("pool mutex");
            *job = Job::Run(JobPtr(erased));
        }
        self.shared.barrier.wait(); // start: workers read the job
        let caller_panic = catch_unwind(AssertUnwindSafe(|| f(0)));
        self.shared.barrier.wait(); // end: every dereference is done
        if let Err(payload) = caller_panic {
            std::panic::resume_unwind(payload);
        }
        assert!(
            !self.shared.panicked.load(Ordering::SeqCst),
            "a shard worker panicked"
        );
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if self.workers > 1 {
            {
                let mut job = self.shared.job.lock().expect("pool mutex");
                *job = Job::Shutdown;
            }
            self.shared.barrier.wait();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, idx: usize) {
    loop {
        shared.barrier.wait();
        let job = *shared.job.lock().expect("pool mutex");
        match job {
            Job::Shutdown => return,
            Job::Run(ptr) => {
                // SAFETY: see `JobPtr` — alive between the barriers.
                let f = unsafe { &*ptr.0 };
                if catch_unwind(AssertUnwindSafe(|| f(idx))).is_err() {
                    shared.panicked.store(true, Ordering::SeqCst);
                }
                shared.barrier.wait();
            }
            Job::Idle => unreachable!("start barrier without a published job"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_every_worker_exactly_once() {
        let pool = WorkerPool::new(4);
        let hits = [const { AtomicUsize::new(0) }; 4];
        for _ in 0..100 {
            pool.scoped_run(&|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for h in &hits {
            assert_eq!(h.load(Ordering::Relaxed), 100);
        }
    }

    #[test]
    fn single_worker_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        let hit = AtomicUsize::new(0);
        pool.scoped_run(&|i| {
            assert_eq!(i, 0);
            hit.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hit.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn scoped_borrows_of_caller_data_work() {
        let pool = WorkerPool::new(3);
        let data: Vec<Mutex<u64>> = (0..3).map(|_| Mutex::new(0)).collect();
        pool.scoped_run(&|i| {
            *data[i].lock().unwrap() += (i as u64) + 1;
        });
        let total: u64 = data.iter().map(|m| *m.lock().unwrap()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn worker_panic_is_reported() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scoped_run(&|i| {
                if i == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err());
    }
}
