//! Seeded workload profiles for resilience campaigns.
//!
//! A campaign exercises the network under three standard load shapes,
//! each compiled from one master seed:
//!
//! * [`Profile::Expected`] — smooth Bernoulli arrivals at the configured
//!   injection rate between placement endpoints; the benign operating
//!   point the rest of the suite measures.
//! * [`Profile::Stress`] — the same endpoints driven by bursty,
//!   self-similar on/off sources (Pareto-distributed burst and gap
//!   lengths), which raises queueing variance without changing the mean
//!   offered load much.
//! * [`Profile::Adversarial`] — the stress arrival process aimed at the
//!   selected RF-I shortcut set: sources that own a shortcut transmitter
//!   fire down it, and everyone else piles onto the shortcut sinks. This
//!   concentrates load exactly where a fault (a `BandDown`, a regional
//!   storm) hurts the most — the worst-case shape for the paper's
//!   graceful-degradation claim.
//!
//! Per-profile streams are decorrelated by [`derive_seed`]: one campaign
//! seed plus the profile label yields the stream seed, so the three
//! profiles of one campaign never share a random sequence, while the
//! same campaign seed always reproduces the same three streams bit for
//! bit.

use crate::placement::Placement;
use crate::patterns::{class_for, TrafficConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfnoc_sim::{MessageSpec, Workload};
use rfnoc_topology::{NodeId, Shortcut};
use std::fmt;

/// The three campaign traffic profiles, mildest first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// Smooth arrivals at the nominal rate.
    Expected,
    /// Bursty self-similar arrivals, uniform destinations.
    Stress,
    /// Bursty self-similar arrivals concentrated on shortcut endpoints.
    Adversarial,
}

impl Profile {
    /// All profiles, mildest first.
    pub fn all() -> [Profile; 3] {
        [Profile::Expected, Profile::Stress, Profile::Adversarial]
    }

    /// Stable lowercase label used for seed derivation and artifact ids.
    pub fn label(self) -> &'static str {
        match self {
            Profile::Expected => "expected",
            Profile::Stress => "stress",
            Profile::Adversarial => "adversarial",
        }
    }
}

impl fmt::Display for Profile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Derives a per-profile stream seed from one master campaign seed and a
/// profile label: FNV-1a over the label folded into the master seed,
/// finished with a splitmix avalanche so that labels differing in one
/// byte land in unrelated streams.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ master.rotate_left(17);
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let mut z = h.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A profile config that failed validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProfileError {
    /// `burst_gain` must be at least 1 (bursts amplify, never mute).
    BurstGainBelowOne,
    /// `pareto_alpha` must lie in `(1, 2]`: above 1 so burst lengths have
    /// a finite mean, at most 2 so the process stays self-similar.
    AlphaOutOfRange,
    /// Mean burst and gap lengths must be at least one cycle.
    DegenerateBurstShape,
    /// `target_fraction` must lie in `[0, 1]`.
    TargetFractionOutOfRange,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::BurstGainBelowOne => write!(f, "burst_gain must be >= 1"),
            ProfileError::AlphaOutOfRange => {
                write!(f, "pareto_alpha must lie in (1, 2] for a finite-mean self-similar process")
            }
            ProfileError::DegenerateBurstShape => {
                write!(f, "mean_on and mean_off must be at least one cycle")
            }
            ProfileError::TargetFractionOutOfRange => {
                write!(f, "target_fraction must lie in [0, 1]")
            }
        }
    }
}

impl std::error::Error for ProfileError {}

/// Validated parameters of one profile stream.
///
/// Construct with [`ProfileSpec::new`] (per-profile defaults) and
/// customise the public fields; every constructor of a live workload
/// re-validates, so an out-of-range hand-edit is caught at build time
/// rather than silently generating nonsense traffic.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSpec {
    /// Which load shape this stream realises.
    pub profile: Profile,
    /// Master campaign seed; the stream seed is derived per profile.
    pub seed: u64,
    /// Injection multiplier while a source is bursting (≥ 1).
    pub burst_gain: f64,
    /// Pareto tail index of burst/gap lengths, in `(1, 2]`; lower is
    /// burstier.
    pub pareto_alpha: f64,
    /// Mean burst length in cycles.
    pub mean_on: f64,
    /// Mean gap length in cycles.
    pub mean_off: f64,
    /// Adversarial only: fraction of messages aimed at shortcut
    /// endpoints (ignored by the other profiles).
    pub target_fraction: f64,
}

impl ProfileSpec {
    /// Per-profile defaults for master seed `seed`.
    ///
    /// The duty cycle (`mean_on / (mean_on + mean_off)` = 1/5) and burst
    /// gain of 5 are chosen so the stress profiles offer roughly the
    /// same *mean* load as the expected profile — degradation under
    /// stress is then attributable to burstiness, not to extra bytes.
    pub fn new(profile: Profile, seed: u64) -> Self {
        Self {
            profile,
            seed,
            burst_gain: 5.0,
            pareto_alpha: 1.5,
            mean_on: 60.0,
            mean_off: 240.0,
            target_fraction: 0.7,
        }
    }

    /// Checks the parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProfileError`] violated.
    pub fn validate(&self) -> Result<(), ProfileError> {
        if self.burst_gain < 1.0 {
            return Err(ProfileError::BurstGainBelowOne);
        }
        if !(self.pareto_alpha > 1.0 && self.pareto_alpha <= 2.0) {
            return Err(ProfileError::AlphaOutOfRange);
        }
        if self.mean_on < 1.0 || self.mean_off < 1.0 {
            return Err(ProfileError::DegenerateBurstShape);
        }
        if !(0.0..=1.0).contains(&self.target_fraction) {
            return Err(ProfileError::TargetFractionOutOfRange);
        }
        Ok(())
    }

    /// The derived seed of this profile's stream.
    pub fn stream_seed(&self) -> u64 {
        derive_seed(self.seed, self.profile.label())
    }
}

/// Per-source on/off phase of the bursty profiles.
#[derive(Debug, Clone, Copy)]
struct SourcePhase {
    bursting: bool,
    /// First cycle of the *next* phase.
    until: u64,
}

/// A live traffic source realising one [`ProfileSpec`].
///
/// Implements [`Workload`]; the same spec, traffic config, and shortcut
/// set always generate the same message stream. When the shortcut set is
/// empty (a pure-mesh design) the adversarial profile degrades to the
/// stress shape — there is no express path to gang up on.
#[derive(Debug, Clone)]
pub struct ProfileWorkload {
    spec: ProfileSpec,
    traffic: TrafficConfig,
    placement: Placement,
    rng: StdRng,
    /// All injecting routers.
    endpoints: Vec<NodeId>,
    /// Shortcut destination of each router owning an RF transmitter.
    shortcut_dst: Vec<Option<NodeId>>,
    /// Shortcut receivers (the sinks everyone else piles onto).
    sinks: Vec<NodeId>,
    phase: Vec<SourcePhase>,
}

impl ProfileWorkload {
    /// Builds a live source; `shortcuts` is the selected RF-I shortcut
    /// set of the design under test (pass `&[]` for mesh baselines).
    ///
    /// # Errors
    ///
    /// Returns a [`ProfileError`] if the spec fails validation.
    pub fn new(
        placement: Placement,
        spec: ProfileSpec,
        traffic: TrafficConfig,
        shortcuts: &[Shortcut],
    ) -> Result<Self, ProfileError> {
        spec.validate()?;
        let endpoints: Vec<NodeId> = placement.all().collect();
        let mut shortcut_dst = vec![None; placement.dims().nodes()];
        let mut sinks = Vec::new();
        for s in shortcuts {
            shortcut_dst[s.src] = Some(s.dst);
            if !sinks.contains(&s.dst) {
                sinks.push(s.dst);
            }
        }
        let rng = StdRng::seed_from_u64(spec.stream_seed());
        let phase = vec![SourcePhase { bursting: false, until: 0 }; endpoints.len()];
        Ok(Self { spec, traffic, placement, rng, endpoints, shortcut_dst, sinks, phase })
    }

    /// The spec this workload realises.
    pub fn spec(&self) -> &ProfileSpec {
        &self.spec
    }

    /// Samples a Pareto-distributed phase length with the given mean,
    /// clamped to `[1, 100 * mean]` so one extreme draw cannot freeze a
    /// source for a whole run.
    fn phase_len(&mut self, mean: f64) -> u64 {
        let alpha = self.spec.pareto_alpha;
        let scale = mean * (alpha - 1.0) / alpha;
        let u: f64 = 1.0 - self.rng.gen::<f64>();
        let len = scale * u.powf(-1.0 / alpha);
        len.clamp(1.0, mean * 100.0).round() as u64
    }

    /// Whether source index `i` injects this cycle, advancing its on/off
    /// phase machine. The expected profile has no phases — it is plain
    /// Bernoulli at the nominal rate.
    fn arrives(&mut self, i: usize, cycle: u64) -> bool {
        let rate = self.traffic.injection_rate;
        if self.spec.profile == Profile::Expected {
            return rate >= 1.0 || self.rng.gen_bool(rate);
        }
        if cycle >= self.phase[i].until {
            let bursting = !self.phase[i].bursting;
            let mean = if bursting { self.spec.mean_on } else { self.spec.mean_off };
            let len = self.phase_len(mean);
            self.phase[i] = SourcePhase { bursting, until: cycle + len };
        }
        if !self.phase[i].bursting {
            return false;
        }
        let burst_rate = (rate * self.spec.burst_gain).min(1.0);
        burst_rate >= 1.0 || self.rng.gen_bool(burst_rate)
    }

    /// Picks a uniform endpoint other than `src`.
    fn uniform_dest(&mut self, src: NodeId) -> NodeId {
        loop {
            let pick = self.endpoints[self.rng.gen_range(0..self.endpoints.len())];
            if pick != src {
                return pick;
            }
        }
    }

    /// Picks the destination for a message from `src`: adversarial
    /// sources target the shortcut overlay, everything else is uniform.
    fn dest_for(&mut self, src: NodeId) -> NodeId {
        if self.spec.profile != Profile::Adversarial || self.sinks.is_empty() {
            return self.uniform_dest(src);
        }
        if !self.rng.gen_bool(self.spec.target_fraction) {
            return self.uniform_dest(src);
        }
        // A source owning an RF transmitter fires straight down its own
        // shortcut; everyone else converges on a shortcut sink.
        if let Some(dst) = self.shortcut_dst[src] {
            if dst != src {
                return dst;
            }
        }
        loop {
            let pick = self.sinks[self.rng.gen_range(0..self.sinks.len())];
            if pick != src {
                return pick;
            }
            if self.sinks.len() == 1 {
                return self.uniform_dest(src);
            }
        }
    }
}

impl Workload for ProfileWorkload {
    fn messages_at(&mut self, cycle: u64, out: &mut Vec<MessageSpec>) {
        for i in 0..self.endpoints.len() {
            if !self.arrives(i, cycle) {
                continue;
            }
            let src = self.endpoints[i];
            let dst = self.dest_for(src);
            let class = class_for(self.placement.kind(src), self.placement.kind(dst));
            out.push(MessageSpec::unicast(src, dst, class));
        }
    }
}

/// One compiled message trace: `(cycle, message)` in generation order.
pub type CompiledTrace = Vec<(u64, MessageSpec)>;

/// The three compiled traces of one campaign seed — the
/// expected/stress/adversarial bundle a resilience campaign replays.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileBundle {
    /// The benign profile's trace.
    pub expected: CompiledTrace,
    /// The bursty profile's trace.
    pub stress: CompiledTrace,
    /// The shortcut-targeting profile's trace.
    pub adversarial: CompiledTrace,
}

impl ProfileBundle {
    /// The trace of `profile`.
    pub fn trace(&self, profile: Profile) -> &CompiledTrace {
        match profile {
            Profile::Expected => &self.expected,
            Profile::Stress => &self.stress,
            Profile::Adversarial => &self.adversarial,
        }
    }
}

/// Compiles all three profile traces for `cycles` cycles from one master
/// seed. Validation happens once up front; the per-profile streams are
/// decorrelated by [`derive_seed`] and reproducible bit for bit.
///
/// # Errors
///
/// Returns a [`ProfileError`] if any derived spec fails validation.
pub fn compile_profiles(
    placement: &Placement,
    traffic: &TrafficConfig,
    shortcuts: &[Shortcut],
    master_seed: u64,
    cycles: u64,
) -> Result<ProfileBundle, ProfileError> {
    let compile = |profile: Profile| -> Result<CompiledTrace, ProfileError> {
        let spec = ProfileSpec::new(profile, master_seed);
        let mut workload =
            ProfileWorkload::new(placement.clone(), spec, traffic.clone(), shortcuts)?;
        let mut trace = Vec::new();
        let mut buf = Vec::new();
        for cycle in 0..cycles {
            buf.clear();
            workload.messages_at(cycle, &mut buf);
            trace.extend(buf.iter().map(|m| (cycle, *m)));
        }
        Ok(trace)
    };
    Ok(ProfileBundle {
        expected: compile(Profile::Expected)?,
        stress: compile(Profile::Stress)?,
        adversarial: compile(Profile::Adversarial)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Placement, TrafficConfig, Vec<Shortcut>) {
        let placement = Placement::paper_10x10();
        let traffic = TrafficConfig::default();
        let shortcuts = vec![Shortcut::new(0, 99), Shortcut::new(90, 9)];
        (placement, traffic, shortcuts)
    }

    #[test]
    fn derive_seed_separates_labels_and_masters() {
        assert_ne!(derive_seed(1, "expected"), derive_seed(1, "stress"));
        assert_ne!(derive_seed(1, "expected"), derive_seed(2, "expected"));
        assert_eq!(derive_seed(7, "adversarial"), derive_seed(7, "adversarial"));
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut spec = ProfileSpec::new(Profile::Stress, 1);
        spec.burst_gain = 0.5;
        assert_eq!(spec.validate(), Err(ProfileError::BurstGainBelowOne));
        let mut spec = ProfileSpec::new(Profile::Stress, 1);
        spec.pareto_alpha = 1.0;
        assert_eq!(spec.validate(), Err(ProfileError::AlphaOutOfRange));
        let mut spec = ProfileSpec::new(Profile::Stress, 1);
        spec.mean_off = 0.0;
        assert_eq!(spec.validate(), Err(ProfileError::DegenerateBurstShape));
        let mut spec = ProfileSpec::new(Profile::Adversarial, 1);
        spec.target_fraction = 1.5;
        assert_eq!(spec.validate(), Err(ProfileError::TargetFractionOutOfRange));
        assert!(ProfileSpec::new(Profile::Expected, 1).validate().is_ok());
    }

    #[test]
    fn adversarial_concentrates_on_shortcut_endpoints() {
        let (placement, traffic, shortcuts) = setup();
        let bundle =
            compile_profiles(&placement, &traffic, &shortcuts, 0xCA_FE, 20_000).unwrap();
        let sink_share = |trace: &CompiledTrace| {
            let hits = trace
                .iter()
                .filter(|(_, m)| {
                    matches!(m.dest, rfnoc_sim::Destination::Unicast(d)
                        if shortcuts.iter().any(|s| s.dst == d))
                })
                .count();
            hits as f64 / trace.len().max(1) as f64
        };
        assert!(
            sink_share(&bundle.adversarial) > 5.0 * sink_share(&bundle.expected),
            "adversarial sink share {:.3} vs expected {:.3}",
            sink_share(&bundle.adversarial),
            sink_share(&bundle.expected),
        );
    }

    #[test]
    fn adversarial_without_shortcuts_degrades_to_stress_shape() {
        let (placement, traffic, _) = setup();
        let spec = ProfileSpec::new(Profile::Adversarial, 3);
        let mut w =
            ProfileWorkload::new(placement, spec, traffic, &[]).unwrap();
        let mut out = Vec::new();
        for c in 0..5_000 {
            w.messages_at(c, &mut out);
        }
        assert!(!out.is_empty(), "still injects without an overlay");
    }

    #[test]
    fn bundles_are_reproducible_and_profiles_distinct() {
        let (placement, traffic, shortcuts) = setup();
        let a = compile_profiles(&placement, &traffic, &shortcuts, 42, 3_000).unwrap();
        let b = compile_profiles(&placement, &traffic, &shortcuts, 42, 3_000).unwrap();
        assert_eq!(a, b, "same master seed, same bundle");
        assert_ne!(a.expected, a.stress, "profiles draw distinct streams");
        assert_ne!(a.stress, a.adversarial);
    }

    #[test]
    fn stress_mean_load_tracks_expected() {
        let (placement, traffic, shortcuts) = setup();
        let bundle =
            compile_profiles(&placement, &traffic, &shortcuts, 9, 50_000).unwrap();
        let ratio = bundle.stress.len() as f64 / bundle.expected.len().max(1) as f64;
        assert!(
            (0.5..=2.0).contains(&ratio),
            "stress offers a comparable mean load (ratio {ratio:.2})"
        );
    }
}
