//! Traffic generation for the RF-I NoC reproduction.
//!
//! Three families of workloads, all implementing
//! [`rfnoc_sim::Workload`]:
//!
//! * [`ProbabilisticWorkload`] — the seven synthetic traces of the paper's
//!   Table 1 (uniform, uni/bidirectional dataflow, hot dataflow, and 1/2/4
//!   hotspot patterns) over the 10×10 component placement of §3.1.
//! * [`AppWorkload`] — synthetic stand-ins for the paper's PARSEC +
//!   SPECjbb2005 traces, parameterised by the Figure 1 distance histograms
//!   and observed hotspot structure (see `DESIGN.md`, substitutions).
//! * [`MulticastTraffic`] — the §5.2 multicast augmentation with 20%/50%
//!   destination-set locality, combinable with any unicast workload via
//!   [`CombinedWorkload`].
//! * [`ProfileWorkload`] — the seeded expected/stress/adversarial
//!   resilience-campaign profiles (see [`Profile`] and
//!   [`compile_profiles`]); the adversarial shape reads the selected
//!   shortcut set and concentrates bursty, self-similar load on it.
//!
//! # Example
//!
//! ```
//! use rfnoc_traffic::{Placement, ProbabilisticWorkload, TraceKind, TrafficConfig};
//! use rfnoc_sim::Workload;
//!
//! let placement = Placement::paper_10x10();
//! let mut trace = ProbabilisticWorkload::new(
//!     placement,
//!     TraceKind::Hotspot1,
//!     TrafficConfig::default(),
//! );
//! let mut messages = Vec::new();
//! trace.messages_at(0, &mut messages);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod apps;
mod multicast;
mod patterns;
mod placement;
mod profiles;
mod trace;

pub use apps::{AppProfile, AppWorkload};
pub use multicast::{CombinedWorkload, MulticastConfig, MulticastTraffic};
pub use patterns::{class_for, ProbabilisticWorkload, TraceKind, TrafficConfig};
pub use profiles::{
    compile_profiles, derive_seed, CompiledTrace, Profile, ProfileBundle, ProfileError,
    ProfileSpec, ProfileWorkload,
};
pub use placement::{staggered_rf_routers, ComponentKind, Placement};
pub use trace::{ReadTraceError, Trace, TraceWorkload, TRACE_HEADER};
