//! The seven probabilistic trace patterns of Table 1.

use crate::placement::{ComponentKind, Placement};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfnoc_sim::{MessageClass, MessageSpec, Workload};
use rfnoc_topology::NodeId;
use std::fmt;

/// The probabilistic traces of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// Random traffic: components equally likely to communicate with all
    /// other components.
    Uniform,
    /// Unidirectional dataflow: groups biased to talk within their group
    /// and to the next group in the pipeline.
    UniDf,
    /// Bidirectional dataflow: biased to both neighbouring groups.
    BiDf,
    /// Bidirectional dataflow with one disproportionately hot group.
    HotBiDf,
    /// One hot component (a cache bank near (7,0), as in Figure 2c).
    Hotspot1,
    /// Two hot components.
    Hotspot2,
    /// Four hot components, one per cluster.
    Hotspot4,
}

impl TraceKind {
    /// All seven traces, in the paper's presentation order.
    pub fn all() -> [TraceKind; 7] {
        [
            TraceKind::Uniform,
            TraceKind::UniDf,
            TraceKind::BiDf,
            TraceKind::HotBiDf,
            TraceKind::Hotspot1,
            TraceKind::Hotspot2,
            TraceKind::Hotspot4,
        ]
    }

    /// The paper's display name.
    pub fn name(&self) -> &'static str {
        match self {
            TraceKind::Uniform => "Uniform",
            TraceKind::UniDf => "UniDF",
            TraceKind::BiDf => "BiDF",
            TraceKind::HotBiDf => "HotBiDF",
            TraceKind::Hotspot1 => "1Hotspot",
            TraceKind::Hotspot2 => "2Hotspot",
            TraceKind::Hotspot4 => "4Hotspot",
        }
    }

    /// Number of hotspot caches for the hotspot traces.
    pub fn hotspot_count(&self) -> usize {
        match self {
            TraceKind::Hotspot1 => 1,
            TraceKind::Hotspot2 => 2,
            TraceKind::Hotspot4 => 4,
            _ => 0,
        }
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Tunable parameters of the probabilistic generators.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficConfig {
    /// Mean messages injected per component per cycle.
    pub injection_rate: f64,
    /// RNG seed (runs are reproducible for a fixed seed).
    pub seed: u64,
    /// Probability that a biased message targets the hotspot (hotspot
    /// traces) or the hot group (HotBiDF).
    pub hot_fraction: f64,
    /// Injection-rate multiplier of hot components (they also *send*
    /// disproportionately, Table 1).
    pub hot_multiplier: f64,
    /// Injection-rate multiplier of the hot *group* in HotBiDF. Milder
    /// than the single-component multiplier — a whole 25-router quadrant
    /// at the component multiplier would swamp the reduced-bandwidth
    /// meshes outright.
    pub hot_group_multiplier: f64,
    /// Probability that a dataflow message stays within its group.
    pub intra_group: f64,
    /// Probability that a dataflow message goes to a neighbouring group
    /// (split across both neighbours for the bidirectional patterns).
    pub neighbor_group: f64,
    /// Fraction of cache-sourced messages that go to the quadrant's memory
    /// port.
    pub memory_fraction: f64,
    /// When `Some(delay)`, every request triggers its protocol response
    /// (cache → core data for a core's request, memory → cache line for a
    /// cache's fetch) `delay` cycles later — modelling the causal
    /// request/response structure a full-system trace would show instead
    /// of independent draws. `None` keeps the two directions independent.
    pub response_delay: Option<u64>,
}

impl Default for TrafficConfig {
    /// Defaults chosen so the 16B baseline runs at light-to-moderate load
    /// while the reduced-bandwidth 4B mesh and the hotspot ejection ports
    /// run near (but below) saturation — the operating region in which the
    /// paper's latency deltas (Figures 7–8) are visible.
    fn default() -> Self {
        Self {
            injection_rate: 0.008,
            seed: 0xC0FFEE,
            hot_fraction: 0.3,
            hot_multiplier: 4.0,
            hot_group_multiplier: 1.5,
            intra_group: 0.5,
            neighbor_group: 0.4,
            memory_fraction: 0.12,
            // Default None: the Table 1 patterns draw both directions
            // independently, and the paper's power/latency calibration is
            // anchored on that mix. Enable for causal request/response
            // studies (see the `request_response` ablation test).
            response_delay: None,
        }
    }
}

/// Message class for a (source kind, destination kind) pair (paper §4.1):
/// core→cache requests are 7B, data messages between cores and caches (or
/// core to core) are 39B, and cache↔memory transfers are 132B.
pub fn class_for(src: ComponentKind, dst: ComponentKind) -> MessageClass {
    use ComponentKind::*;
    match (src, dst) {
        (Core, Cache) => MessageClass::Request,
        (Cache, Core) | (Core, Core) | (Cache, Cache) => MessageClass::Data,
        (Cache, Memory) | (Memory, Cache) => MessageClass::Memory,
        // Remaining pairs do not occur in the generators; treat as data.
        _ => MessageClass::Data,
    }
}

/// Generator for the Table 1 probabilistic traces.
#[derive(Debug, Clone)]
pub struct ProbabilisticWorkload {
    placement: Placement,
    kind: TraceKind,
    config: TrafficConfig,
    rng: StdRng,
    hotspots: Vec<NodeId>,
    /// Non-memory components (cores + caches), the universe for biased
    /// destination choice.
    endpoints: Vec<NodeId>,
    /// Endpoints per dataflow group.
    group_members: [Vec<NodeId>; 4],
    /// Memory port of each quadrant group.
    group_memory: [NodeId; 4],
    /// Scheduled protocol responses: `(due_cycle, responder, requester,
    /// class)`, kept sorted by insertion order (delays are constant).
    pending_responses: std::collections::VecDeque<(u64, NodeId, NodeId, MessageClass)>,
}

impl ProbabilisticWorkload {
    /// Creates the generator for `kind` over `placement`.
    pub fn new(placement: Placement, kind: TraceKind, config: TrafficConfig) -> Self {
        let hotspots = match kind.hotspot_count() {
            0 => Vec::new(),
            k => placement.hotspot_caches(k),
        };
        let endpoints: Vec<NodeId> = placement
            .all()
            .filter(|&r| placement.kind(r) != ComponentKind::Memory)
            .collect();
        let mut group_members: [Vec<NodeId>; 4] = Default::default();
        for &e in &endpoints {
            group_members[placement.dataflow_group(e)].push(e);
        }
        let mut group_memory = [0usize; 4];
        for &m in placement.memories() {
            group_memory[placement.dataflow_group(m)] = m;
        }
        let rng = StdRng::seed_from_u64(config.seed);
        Self {
            placement,
            kind,
            config,
            rng,
            hotspots,
            endpoints,
            group_members,
            group_memory,
            pending_responses: std::collections::VecDeque::new(),
        }
    }

    /// The hotspot routers of this trace (empty for non-hotspot kinds).
    pub fn hotspots(&self) -> &[NodeId] {
        &self.hotspots
    }

    /// Injection-rate multiplier of component `r` under this trace.
    fn rate_multiplier(&self, r: NodeId) -> f64 {
        match self.kind {
            TraceKind::Hotspot1 | TraceKind::Hotspot2 | TraceKind::Hotspot4
                if self.hotspots.contains(&r) =>
            {
                self.config.hot_multiplier
            }
            TraceKind::HotBiDf if self.placement.dataflow_group(r) == 1 => {
                self.config.hot_group_multiplier
            }
            _ => 1.0,
        }
    }

    fn uniform_endpoint(&mut self, exclude: NodeId) -> NodeId {
        loop {
            let pick = self.endpoints[self.rng.gen_range(0..self.endpoints.len())];
            if pick != exclude {
                return pick;
            }
        }
    }

    fn group_endpoint(&mut self, group: usize, exclude: NodeId) -> NodeId {
        let members = &self.group_members[group];
        if members.len() <= 1 && members.first() == Some(&exclude) {
            return self.uniform_endpoint(exclude);
        }
        loop {
            let pick = members[self.rng.gen_range(0..members.len())];
            if pick != exclude {
                return pick;
            }
        }
    }

    /// Chooses a dataflow-pattern destination group for a source in
    /// `group`.
    fn dataflow_group_for(&mut self, group: usize, bidirectional: bool) -> usize {
        let p: f64 = self.rng.gen();
        let c = &self.config;
        if p < c.intra_group {
            group
        } else if p < c.intra_group + c.neighbor_group {
            if bidirectional {
                if self.rng.gen_bool(0.5) {
                    (group + 1) % 4
                } else {
                    (group + 3) % 4
                }
            } else {
                (group + 1) % 4
            }
        } else {
            // uniform among the remaining groups
            let mut others: Vec<usize> = (0..4).filter(|&g| g != group).collect();
            if !bidirectional {
                others.retain(|&g| g != (group + 1) % 4);
            }
            others[self.rng.gen_range(0..others.len())]
        }
    }

    fn destination_for(&mut self, src: NodeId) -> NodeId {
        let src_kind = self.placement.kind(src);
        let group = self.placement.dataflow_group(src);
        // Memory ports only talk to nearby cache banks (§3.2.1).
        if src_kind == ComponentKind::Memory {
            let caches: Vec<NodeId> = self
                .placement
                .caches()
                .iter()
                .copied()
                .filter(|&c| self.placement.dataflow_group(c) == group)
                .collect();
            return caches[self.rng.gen_range(0..caches.len())];
        }
        // Cache banks occasionally fetch from their quadrant's memory port.
        if src_kind == ComponentKind::Cache && self.rng.gen_bool(self.config.memory_fraction) {
            return self.group_memory[group];
        }
        match self.kind {
            TraceKind::Uniform => self.uniform_endpoint(src),
            TraceKind::UniDf => {
                let g = self.dataflow_group_for(group, false);
                self.group_endpoint(g, src)
            }
            TraceKind::BiDf => {
                let g = self.dataflow_group_for(group, true);
                self.group_endpoint(g, src)
            }
            TraceKind::HotBiDf => {
                if self.rng.gen_bool(self.config.hot_fraction) {
                    self.group_endpoint(1, src)
                } else {
                    let g = self.dataflow_group_for(group, true);
                    self.group_endpoint(g, src)
                }
            }
            TraceKind::Hotspot1 | TraceKind::Hotspot2 | TraceKind::Hotspot4 => {
                if self.rng.gen_bool(self.config.hot_fraction) {
                    let h = self.hotspots[self.rng.gen_range(0..self.hotspots.len())];
                    if h != src {
                        return h;
                    }
                    self.uniform_endpoint(src)
                } else {
                    self.uniform_endpoint(src)
                }
            }
        }
    }
}

impl Workload for ProbabilisticWorkload {
    fn messages_at(&mut self, cycle: u64, out: &mut Vec<MessageSpec>) {
        // Emit due protocol responses first.
        while let Some(&(due, responder, requester, class)) = self.pending_responses.front() {
            if due > cycle {
                break;
            }
            self.pending_responses.pop_front();
            out.push(MessageSpec::unicast(responder, requester, class));
        }
        let n = self.placement.dims().nodes();
        for src in 0..n {
            let mut rate = self.config.injection_rate * self.rate_multiplier(src);
            // Memory ports respond rather than initiate; inject at a
            // reduced rate (and never initiate at all when the protocol
            // response model already generates their replies).
            if self.placement.kind(src) == ComponentKind::Memory {
                if self.config.response_delay.is_some() {
                    continue;
                }
                rate *= 0.5;
            }
            let mut budget = rate;
            while budget > 0.0 {
                let p = budget.min(1.0);
                if p >= 1.0 || self.rng.gen_bool(p) {
                    let dst = self.destination_for(src);
                    let class = class_for(self.placement.kind(src), self.placement.kind(dst));
                    out.push(MessageSpec::unicast(src, dst, class));
                    // Requests pull their response back (§4.1's paired
                    // request/data and cache/memory transfers).
                    if let Some(delay) = self.config.response_delay {
                        let responder_kind = self.placement.kind(dst);
                        let response = match (self.placement.kind(src), responder_kind) {
                            (ComponentKind::Core, ComponentKind::Cache) => {
                                Some(MessageClass::Data)
                            }
                            (ComponentKind::Cache, ComponentKind::Memory) => {
                                Some(MessageClass::Memory)
                            }
                            _ => None,
                        };
                        if let Some(class) = response {
                            self.pending_responses.push_back((cycle + delay, dst, src, class));
                        }
                    }
                }
                budget -= 1.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(kind: TraceKind, cycles: u64) -> Vec<MessageSpec> {
        let mut w =
            ProbabilisticWorkload::new(Placement::paper_10x10(), kind, TrafficConfig::default());
        let mut out = Vec::new();
        for c in 0..cycles {
            w.messages_at(c, &mut out);
        }
        out
    }

    #[test]
    fn injection_rate_is_respected() {
        let msgs = collect(TraceKind::Uniform, 5_000);
        // ~0.008 × 100 comps × 5000 cycles ≈ 4000 (±25%, allowing for the
        // memory-port reduction).
        let count = msgs.len() as f64;
        assert!((3_000.0..5_000.0).contains(&count), "got {count}");
    }

    #[test]
    fn no_self_messages() {
        for kind in TraceKind::all() {
            for m in collect(kind, 300) {
                match m.dest {
                    rfnoc_sim::Destination::Unicast(d) => assert_ne!(d, m.src),
                    _ => panic!("probabilistic traces are unicast"),
                }
            }
        }
    }

    #[test]
    fn hotspot_trace_concentrates_traffic() {
        let p = Placement::paper_10x10();
        let hot = p.hotspot_caches(1)[0];
        let msgs = collect(TraceKind::Hotspot1, 1_000);
        let to_hot = msgs
            .iter()
            .filter(|m| matches!(m.dest, rfnoc_sim::Destination::Unicast(d) if d == hot))
            .count() as f64;
        let frac = to_hot / msgs.len() as f64;
        assert!(frac > 0.2, "hotspot receives {frac:.3} of traffic");
        // The hot cache also sends disproportionately.
        let from_hot = msgs.iter().filter(|m| m.src == hot).count() as f64;
        assert!(from_hot / msgs.len() as f64 > 0.02);
    }

    #[test]
    fn unidf_prefers_forward_group() {
        let p = Placement::paper_10x10();
        let msgs = collect(TraceKind::UniDf, 1_500);
        let mut forward = 0usize;
        let mut backward = 0usize;
        for m in &msgs {
            let rfnoc_sim::Destination::Unicast(d) = m.dest else { continue };
            if p.kind(d) == ComponentKind::Memory || p.kind(m.src) == ComponentKind::Memory {
                continue;
            }
            let gs = p.dataflow_group(m.src);
            let gd = p.dataflow_group(d);
            if gd == (gs + 1) % 4 {
                forward += 1;
            } else if gd == (gs + 3) % 4 {
                backward += 1;
            }
        }
        assert!(
            forward as f64 > 2.0 * backward as f64,
            "forward {forward} vs backward {backward}"
        );
    }

    #[test]
    fn bidf_balances_neighbours() {
        let p = Placement::paper_10x10();
        let msgs = collect(TraceKind::BiDf, 1_500);
        let mut forward = 0usize;
        let mut backward = 0usize;
        for m in &msgs {
            let rfnoc_sim::Destination::Unicast(d) = m.dest else { continue };
            if p.kind(d) == ComponentKind::Memory || p.kind(m.src) == ComponentKind::Memory {
                continue;
            }
            let gs = p.dataflow_group(m.src);
            let gd = p.dataflow_group(d);
            if gd == (gs + 1) % 4 {
                forward += 1;
            } else if gd == (gs + 3) % 4 {
                backward += 1;
            }
        }
        let ratio = forward as f64 / backward.max(1) as f64;
        assert!((0.6..1.6).contains(&ratio), "forward/backward ratio {ratio}");
    }

    #[test]
    fn memory_traffic_uses_memory_class() {
        let p = Placement::paper_10x10();
        for m in collect(TraceKind::Uniform, 800) {
            let rfnoc_sim::Destination::Unicast(d) = m.dest else { continue };
            let pair = (p.kind(m.src), p.kind(d));
            if pair.0 == ComponentKind::Memory || pair.1 == ComponentKind::Memory {
                assert_eq!(m.class, MessageClass::Memory);
            }
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = collect(TraceKind::HotBiDf, 200);
        let b = collect(TraceKind::HotBiDf, 200);
        assert_eq!(a, b);
    }

    #[test]
    fn class_mapping_matches_paper() {
        use ComponentKind::*;
        assert_eq!(class_for(Core, Cache), MessageClass::Request);
        assert_eq!(class_for(Cache, Core), MessageClass::Data);
        assert_eq!(class_for(Core, Core), MessageClass::Data);
        assert_eq!(class_for(Cache, Memory), MessageClass::Memory);
        assert_eq!(class_for(Memory, Cache), MessageClass::Memory);
    }
}

#[cfg(test)]
mod response_tests {
    use super::*;
    use rfnoc_sim::Destination;

    #[test]
    fn responses_follow_requests_after_delay() {
        let placement = Placement::paper_10x10();
        let config = TrafficConfig {
            injection_rate: 0.01,
            response_delay: Some(25),
            ..TrafficConfig::default()
        };
        let mut w = ProbabilisticWorkload::new(placement.clone(), TraceKind::Uniform, config);
        let mut per_cycle: Vec<Vec<MessageSpec>> = Vec::new();
        for cycle in 0..400u64 {
            let mut out = Vec::new();
            w.messages_at(cycle, &mut out);
            per_cycle.push(out);
        }
        // For every core→cache request at cycle t there is a cache→core
        // data response at t+25.
        let mut checked = 0;
        for (t, msgs) in per_cycle.iter().enumerate() {
            for m in msgs {
                let Destination::Unicast(dst) = m.dest else { continue };
                if m.class == MessageClass::Request
                    && placement.kind(m.src) == ComponentKind::Core
                    && placement.kind(dst) == ComponentKind::Cache
                    && t + 25 < per_cycle.len()
                {
                    let response_found = per_cycle[t + 25].iter().any(|r| {
                        r.src == dst
                            && matches!(r.dest, Destination::Unicast(d) if d == m.src)
                            && r.class == MessageClass::Data
                    });
                    assert!(response_found, "request at cycle {t} got no response");
                    checked += 1;
                }
            }
        }
        assert!(checked > 20, "only {checked} request/response pairs observed");
    }

    #[test]
    fn memory_ports_never_initiate_with_responses_on() {
        let placement = Placement::paper_10x10();
        let config = TrafficConfig {
            injection_rate: 0.01,
            response_delay: Some(25),
            ..TrafficConfig::default()
        };
        let mut w = ProbabilisticWorkload::new(placement.clone(), TraceKind::Uniform, config);
        let mut out = Vec::new();
        for cycle in 0..200 {
            w.messages_at(cycle, &mut out);
        }
        for m in &out {
            if placement.kind(m.src) == ComponentKind::Memory {
                // every memory-sourced message is a response to a cache
                let Destination::Unicast(dst) = m.dest else { unreachable!() };
                assert_eq!(placement.kind(dst), ComponentKind::Cache);
                assert_eq!(m.class, MessageClass::Memory);
            }
        }
    }
}
