//! Network-trace recording and replay (paper §4.2).
//!
//! The paper "collected network message injection traces from real
//! applications executed upon a 64 core SPARC processor using Simics, and
//! then executed these traces on our Garnet model. This allows us to
//! evaluate a number of interconnect design choices for a real application
//! without the recurring overhead of full-system simulation."
//!
//! This module provides the same workflow: any [`Workload`] can be
//! recorded to a trace file once and replayed many times across design
//! points. The format is a line-oriented text format:
//!
//! ```text
//! # rfnoc-trace v1
//! <cycle> U <src> <dst> <class>
//! <cycle> M <src> <class> <dst>[,<dst>...]
//! ```
//!
//! where `<class>` is `req`, `data`, `mem`, or `mc`.

use rfnoc_sim::{DestSet, Destination, MessageClass, MessageSpec, Workload};
use std::fmt::Write as _;
use std::io::{BufRead, Write};

/// Magic header line of trace files.
pub const TRACE_HEADER: &str = "# rfnoc-trace v1";

/// A parsed trace: `(cycle, message)` records in non-decreasing cycle
/// order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    records: Vec<(u64, MessageSpec)>,
}

/// Errors while reading a trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem, with the offending line number (1-based).
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            ReadTraceError::Parse { line, reason } => {
                write!(f, "trace parse error at line {line}: {reason}")
            }
        }
    }
}

impl std::error::Error for ReadTraceError {}

impl From<std::io::Error> for ReadTraceError {
    fn from(e: std::io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

fn class_tag(class: MessageClass) -> &'static str {
    match class {
        MessageClass::Request => "req",
        MessageClass::Data => "data",
        MessageClass::Memory => "mem",
        MessageClass::Multicast => "mc",
    }
}

fn parse_class(tag: &str) -> Option<MessageClass> {
    match tag {
        "req" => Some(MessageClass::Request),
        "data" => Some(MessageClass::Data),
        "mem" => Some(MessageClass::Memory),
        "mc" => Some(MessageClass::Multicast),
        _ => None,
    }
}

impl Trace {
    /// Records `cycles` cycles of `workload` into a trace.
    pub fn record(workload: &mut dyn Workload, cycles: u64) -> Self {
        let mut records = Vec::new();
        let mut buf = Vec::new();
        for cycle in 0..cycles {
            buf.clear();
            workload.messages_at(cycle, &mut buf);
            records.extend(buf.iter().map(|m| (cycle, *m)));
        }
        Self { records }
    }

    /// Builds a trace from raw records (sorted by cycle internally).
    pub fn from_records(mut records: Vec<(u64, MessageSpec)>) -> Self {
        records.sort_by_key(|(c, _)| *c);
        Self { records }
    }

    /// Number of messages in the trace.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The recorded `(cycle, message)` records.
    pub fn records(&self) -> &[(u64, MessageSpec)] {
        &self.records
    }

    /// Serialises the trace into `writer`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn write_to<W: Write>(&self, mut writer: W) -> std::io::Result<()> {
        writeln!(writer, "{TRACE_HEADER}")?;
        let mut line = String::new();
        for (cycle, msg) in &self.records {
            line.clear();
            match msg.dest {
                Destination::Unicast(dst) => {
                    let _ = write!(
                        line,
                        "{cycle} U {} {} {}",
                        msg.src,
                        dst,
                        class_tag(msg.class)
                    );
                }
                Destination::Multicast(set) => {
                    let _ = write!(line, "{cycle} M {} {} ", msg.src, class_tag(msg.class));
                    let dests: Vec<String> =
                        set.iter().map(|d| d.to_string()).collect();
                    line.push_str(&dests.join(","));
                }
            }
            writeln!(writer, "{line}")?;
        }
        Ok(())
    }

    /// Parses a trace from `reader`.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] on I/O failure, a missing header, or any
    /// malformed record.
    pub fn read_from<R: BufRead>(reader: R) -> Result<Self, ReadTraceError> {
        let mut lines = reader.lines().enumerate();
        let header = lines
            .next()
            .ok_or_else(|| ReadTraceError::Parse {
                line: 1,
                reason: "empty file".into(),
            })?
            .1?;
        if header.trim() != TRACE_HEADER {
            return Err(ReadTraceError::Parse {
                line: 1,
                reason: format!("expected header {TRACE_HEADER:?}, got {header:?}"),
            });
        }
        let mut records = Vec::new();
        for (idx, line) in lines {
            let line = line?;
            let line_no = idx + 1;
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            let parse = |reason: &str| ReadTraceError::Parse {
                line: line_no,
                reason: reason.to_string(),
            };
            let mut parts = trimmed.split_whitespace();
            let cycle: u64 = parts
                .next()
                .ok_or_else(|| parse("missing cycle"))?
                .parse()
                .map_err(|_| parse("bad cycle"))?;
            let kind = parts.next().ok_or_else(|| parse("missing kind"))?;
            match kind {
                "U" => {
                    let src: usize = parts
                        .next()
                        .ok_or_else(|| parse("missing src"))?
                        .parse()
                        .map_err(|_| parse("bad src"))?;
                    let dst: usize = parts
                        .next()
                        .ok_or_else(|| parse("missing dst"))?
                        .parse()
                        .map_err(|_| parse("bad dst"))?;
                    let class = parse_class(parts.next().ok_or_else(|| parse("missing class"))?)
                        .ok_or_else(|| parse("bad class"))?;
                    records.push((cycle, MessageSpec::unicast(src, dst, class)));
                }
                "M" => {
                    let src: usize = parts
                        .next()
                        .ok_or_else(|| parse("missing src"))?
                        .parse()
                        .map_err(|_| parse("bad src"))?;
                    let _class =
                        parse_class(parts.next().ok_or_else(|| parse("missing class"))?)
                            .ok_or_else(|| parse("bad class"))?;
                    let dest_field = parts.next().ok_or_else(|| parse("missing dests"))?;
                    let mut set = DestSet::empty();
                    for d in dest_field.split(',') {
                        let node: usize =
                            d.parse().map_err(|_| parse("bad multicast dest"))?;
                        if node >= 128 {
                            return Err(parse("multicast dest out of range"));
                        }
                        set.insert(node);
                    }
                    if set.is_empty() {
                        return Err(parse("empty multicast dest set"));
                    }
                    records.push((cycle, MessageSpec::multicast(src, set)));
                }
                other => {
                    return Err(parse(&format!("unknown record kind {other:?}")));
                }
            }
        }
        Ok(Self::from_records(records))
    }

    /// Converts the trace into a replayable workload.
    pub fn into_workload(self) -> TraceWorkload {
        TraceWorkload { records: self.records, pos: 0 }
    }
}

/// Replays a recorded trace as a [`Workload`].
#[derive(Debug, Clone)]
pub struct TraceWorkload {
    records: Vec<(u64, MessageSpec)>,
    pos: usize,
}

impl Workload for TraceWorkload {
    fn messages_at(&mut self, cycle: u64, out: &mut Vec<MessageSpec>) {
        while self.pos < self.records.len() && self.records[self.pos].0 <= cycle {
            out.push(self.records[self.pos].1);
            self.pos += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::patterns::{ProbabilisticWorkload, TraceKind, TrafficConfig};
    use crate::placement::Placement;

    fn sample_trace() -> Trace {
        Trace::from_records(vec![
            (0, MessageSpec::unicast(3, 7, MessageClass::Request)),
            (2, MessageSpec::unicast(9, 1, MessageClass::Memory)),
            (
                5,
                MessageSpec::multicast(4, DestSet::from_nodes([1, 2, 99])),
            ),
        ])
    }

    #[test]
    fn roundtrip_preserves_records() {
        let trace = sample_trace();
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let parsed = Trace::read_from(bytes.as_slice()).unwrap();
        assert_eq!(parsed, trace);
    }

    #[test]
    fn replay_matches_original_workload() {
        let placement = Placement::paper_10x10();
        let mut original = ProbabilisticWorkload::new(
            placement.clone(),
            TraceKind::BiDf,
            TrafficConfig::default(),
        );
        let trace = Trace::record(&mut original, 300);
        assert!(!trace.is_empty());

        // A fresh copy of the workload produces the same messages as the
        // replayed trace (deterministic seeds).
        let mut fresh = ProbabilisticWorkload::new(
            placement,
            TraceKind::BiDf,
            TrafficConfig::default(),
        );
        let mut replay = trace.into_workload();
        for cycle in 0..300 {
            let mut a = Vec::new();
            let mut b = Vec::new();
            fresh.messages_at(cycle, &mut a);
            replay.messages_at(cycle, &mut b);
            assert_eq!(a, b, "cycle {cycle}");
        }
    }

    #[test]
    fn rejects_missing_header() {
        let err = Trace::read_from("0 U 1 2 req\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadTraceError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_malformed_records() {
        for bad in [
            "0 U 1 2",            // missing class
            "0 U 1 two req",      // bad dst
            "x U 1 2 req",        // bad cycle
            "0 Z 1 2 req",        // unknown kind
            "0 M 4 mc",           // missing dests
            "0 M 4 mc 1,bogus",   // bad dest
            "0 M 4 mc 999",       // out of range
        ] {
            let text = format!("{TRACE_HEADER}\n{bad}\n");
            let err = Trace::read_from(text.as_bytes()).unwrap_err();
            assert!(
                matches!(err, ReadTraceError::Parse { line: 2, .. }),
                "{bad:?} should fail at line 2, got {err}"
            );
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = format!("{TRACE_HEADER}\n\n# a comment\n0 U 1 2 data\n");
        let trace = Trace::read_from(text.as_bytes()).unwrap();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn display_of_errors() {
        let err = Trace::read_from("".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }
}
