//! Component placement on the mesh (paper §3.1, Figure 2).
//!
//! The baseline architecture maps 64 processor cores, 32 cache banks, and
//! 4 memory ports onto the 100 routers of a 10×10 mesh: memory ports at
//! the four corners, cache banks in four clusters of eight (one per
//! quadrant, around the quadrant centre, so each cluster has a central
//! bank to act as multicast transmitter), and cores on the remaining
//! routers.

use rfnoc_topology::{Coord, FabricSpec, GridDims, NodeId};

/// The kind of element attached to a router's local port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ComponentKind {
    /// A processor core.
    Core,
    /// A shared-cache bank.
    Cache,
    /// A memory controller port.
    Memory,
}

/// The component-to-router mapping.
///
/// # Example
///
/// ```
/// use rfnoc_traffic::Placement;
/// let p = Placement::paper_10x10();
/// assert_eq!(p.cores().len(), 64);
/// assert_eq!(p.caches().len(), 32);
/// assert_eq!(p.memories().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// The fabric the components are placed on; the grid dimensions are
    /// derived from it.
    fabric: FabricSpec,
    kind: Vec<ComponentKind>,
    cores: Vec<NodeId>,
    caches: Vec<NodeId>,
    memories: Vec<NodeId>,
    /// Cache-cluster id per router (only cache routers have one).
    cluster_of: Vec<Option<usize>>,
    /// Central cache bank of each cluster (the multicast transmitter).
    cluster_centers: Vec<NodeId>,
}

impl Placement {
    /// The paper's 10×10 placement: memory at the corners, four cache
    /// clusters of eight banks around the quadrant centres, cores
    /// elsewhere.
    pub fn paper_10x10() -> Self {
        Self::quadrant_clusters(GridDims::new(10, 10))
    }

    /// Builds a quadrant-cluster placement on any even-sided grid of at
    /// least 6×6.
    ///
    /// Each quadrant hosts one cache cluster: the 3×3 block around the
    /// quadrant centre minus its inner-most corner (8 banks), whose middle
    /// bank is the cluster's central (multicast transmitter) bank.
    ///
    /// # Panics
    ///
    /// Panics if the grid is smaller than 6×6 or has odd dimensions.
    pub fn quadrant_clusters(dims: GridDims) -> Self {
        Self::quadrant_clusters_on(FabricSpec::mesh(dims))
    }

    /// [`Self::quadrant_clusters`] over an arbitrary fabric: the component
    /// geometry is laid out on the fabric's grid coordinates, so the same
    /// placement works on a plain mesh and a ring-mesh of equal size.
    ///
    /// # Panics
    ///
    /// Panics if the fabric's grid is smaller than 6×6 or has odd
    /// dimensions.
    pub fn quadrant_clusters_on(fabric: FabricSpec) -> Self {
        let dims = fabric.dims();
        assert!(
            dims.width() >= 6 && dims.height() >= 6,
            "grid too small for quadrant clusters"
        );
        assert!(
            dims.width().is_multiple_of(2) && dims.height().is_multiple_of(2),
            "quadrant placement requires even dimensions"
        );
        let n = dims.nodes();
        let mut kind = vec![ComponentKind::Core; n];
        let last_x = (dims.width() - 1) as u16;
        let last_y = (dims.height() - 1) as u16;

        // Memory ports at the four corners.
        let memories: Vec<NodeId> = [
            Coord::new(0, 0),
            Coord::new(last_x, 0),
            Coord::new(0, last_y),
            Coord::new(last_x, last_y),
        ]
        .into_iter()
        .map(|c| dims.index_of(c))
        .collect();
        for &m in &memories {
            kind[m] = ComponentKind::Memory;
        }

        // Cache clusters: quadrant centres. Quadrant (qx, qy) spans
        // x ∈ [qx·W/2, (qx+1)·W/2), with centre cell (cx, cy).
        let half_w = dims.width() / 2;
        let half_h = dims.height() / 2;
        let mut caches = Vec::new();
        let mut cluster_of = vec![None; n];
        let mut cluster_centers = Vec::new();
        for qy in 0..2u16 {
            for qx in 0..2u16 {
                let cluster = (qy * 2 + qx) as usize;
                let cx = qx as usize * half_w + half_w / 2;
                let cy = qy as usize * half_h + half_h / 2;
                // 3×3 block around the centre, minus one cell to leave 8
                // banks: normally the corner facing the chip centre, but if
                // the block reaches a grid corner (small grids), that
                // memory-port corner is the one dropped.
                let towards_center_x = if qx == 0 { cx + 1 } else { cx - 1 };
                let towards_center_y = if qy == 0 { cy + 1 } else { cy - 1 };
                let block_has_grid_corner = (-1i32..=1).any(|dy| {
                    (-1i32..=1).any(|dx| {
                        let node = dims.index_of(Coord::new(
                            (cx as i32 + dx) as u16,
                            (cy as i32 + dy) as u16,
                        ));
                        dims.is_corner(node)
                    })
                });
                for dy in -1i32..=1 {
                    for dx in -1i32..=1 {
                        let x = (cx as i32 + dx) as usize;
                        let y = (cy as i32 + dy) as usize;
                        let node = dims.index_of(Coord::new(x as u16, y as u16));
                        let skip = if block_has_grid_corner {
                            dims.is_corner(node)
                        } else {
                            x == towards_center_x && y == towards_center_y
                        };
                        if skip {
                            continue;
                        }
                        assert_eq!(kind[node], ComponentKind::Core, "cluster overlap");
                        kind[node] = ComponentKind::Cache;
                        cluster_of[node] = Some(cluster);
                        caches.push(node);
                    }
                }
                cluster_centers.push(dims.index_of(Coord::new(cx as u16, cy as u16)));
            }
        }

        let cores: Vec<NodeId> =
            (0..n).filter(|&i| kind[i] == ComponentKind::Core).collect();
        Self { fabric, kind, cores, caches, memories, cluster_of, cluster_centers }
    }

    /// A degenerate placement with a core on every router and no caches
    /// or memory ports — for tiny test grids (below the 6×6 floor of
    /// [`Self::quadrant_clusters`]) and rendering fixtures where only the
    /// geometry matters.
    pub fn cores_only(dims: GridDims) -> Self {
        Self::cores_only_on(FabricSpec::mesh(dims))
    }

    /// [`Self::cores_only`] over an arbitrary fabric.
    pub fn cores_only_on(fabric: FabricSpec) -> Self {
        let n = fabric.dims().nodes();
        Self {
            fabric,
            kind: vec![ComponentKind::Core; n],
            cores: (0..n).collect(),
            caches: Vec::new(),
            memories: Vec::new(),
            cluster_of: vec![None; n],
            cluster_centers: Vec::new(),
        }
    }

    /// Grid dimensions (derived from the fabric).
    pub fn dims(&self) -> GridDims {
        self.fabric.dims()
    }

    /// The fabric the components are placed on.
    pub fn fabric(&self) -> FabricSpec {
        self.fabric
    }

    /// The component kind at `router`.
    pub fn kind(&self, router: NodeId) -> ComponentKind {
        self.kind[router]
    }

    /// Routers hosting cores.
    pub fn cores(&self) -> &[NodeId] {
        &self.cores
    }

    /// Routers hosting cache banks.
    pub fn caches(&self) -> &[NodeId] {
        &self.caches
    }

    /// Routers hosting memory ports.
    pub fn memories(&self) -> &[NodeId] {
        &self.memories
    }

    /// Cache-cluster id of `router`, when it hosts a cache bank.
    pub fn cluster_of(&self, router: NodeId) -> Option<usize> {
        self.cluster_of[router]
    }

    /// Per-router cluster map (indexable by router id).
    pub fn cluster_map(&self) -> &[Option<usize>] {
        &self.cluster_of
    }

    /// Central cache bank of each cluster (multicast transmitters, §3.3).
    pub fn cluster_centers(&self) -> &[NodeId] {
        &self.cluster_centers
    }

    /// All component routers (every router hosts something).
    pub fn all(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.dims().nodes()
    }

    /// Quadrant group (0–3) of a router, ordered for the dataflow patterns:
    /// top-left → top-right → bottom-right → bottom-left.
    pub fn dataflow_group(&self, router: NodeId) -> usize {
        let c = self.dims().coord_of(router);
        let right = c.x as usize >= self.dims().width() / 2;
        let bottom = c.y as usize >= self.dims().height() / 2;
        match (right, bottom) {
            (false, false) => 0,
            (true, false) => 1,
            (true, true) => 2,
            (false, true) => 3,
        }
    }

    /// The `count` hotspot cache banks, chosen deterministically: one near
    /// the paper's example hotspot at (7,0) first, then spread across the
    /// other clusters.
    ///
    /// # Panics
    ///
    /// Panics if `count` is 0 or exceeds the number of clusters.
    pub fn hotspot_caches(&self, count: usize) -> Vec<NodeId> {
        assert!(count >= 1 && count <= self.cluster_centers.len());
        // Anchor points per hotspot count; the first matches the paper's
        // 1Hotspot example (cache bank near (7,0)).
        let w = (self.dims().width() - 1) as u16;
        let h = (self.dims().height() - 1) as u16;
        let anchors = [
            Coord::new(w - 2, 0),
            Coord::new(1, h),
            Coord::new(w, h - 2),
            Coord::new(0, 1),
        ];
        let mut picked: Vec<NodeId> = Vec::with_capacity(count);
        for anchor in anchors.iter().take(count) {
            let best = self
                .caches
                .iter()
                .copied()
                .filter(|c| !picked.contains(c))
                .min_by_key(|&c| {
                    (self.dims().coord_of(c).manhattan(*anchor), c)
                })
                .expect("cache list is non-empty");
            picked.push(best);
        }
        picked
    }
}

impl Default for Placement {
    fn default() -> Self {
        Self::paper_10x10()
    }
}

/// RF-enabled router placement: `count` routers "placed in a staggered
/// fashion to minimize the distance any given component would need to
/// travel to reach the RF-I" (§5.1.1).
///
/// * 50 on a 10×10 grid → the checkerboard of routers with even `x+y`.
/// * 25 → routers with even `x` and even `y`.
///
/// Other counts take a deterministic prefix/extension of those patterns.
///
/// # Panics
///
/// Panics if `count` exceeds the number of routers.
pub fn staggered_rf_routers(dims: GridDims, count: usize) -> Vec<NodeId> {
    let n = dims.nodes();
    assert!(count <= n, "cannot enable {count} of {n} routers");
    // Order routers: checkerboard cells first (by a spread-friendly order),
    // then double-even cells first within that.
    let mut order: Vec<NodeId> = (0..n).collect();
    order.sort_by_key(|&i| {
        let c = dims.coord_of(i);
        let checker = (c.x + c.y) % 2; // 0 = on the 50-checkerboard
        let double_even = if c.x.is_multiple_of(2) && c.y.is_multiple_of(2) { 0 } else { 1 };
        (checker, double_even, c.y, c.x)
    });
    let mut picked: Vec<NodeId> = order.into_iter().take(count).collect();
    picked.sort_unstable();
    picked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts() {
        let p = Placement::paper_10x10();
        assert_eq!(p.cores().len(), 64);
        assert_eq!(p.caches().len(), 32);
        assert_eq!(p.memories().len(), 4);
        assert_eq!(p.cluster_centers().len(), 4);
    }

    #[test]
    fn corners_are_memory() {
        let p = Placement::paper_10x10();
        for &m in p.memories() {
            assert!(p.dims().is_corner(m));
            assert_eq!(p.kind(m), ComponentKind::Memory);
        }
    }

    #[test]
    fn cluster_centers_are_caches() {
        let p = Placement::paper_10x10();
        for (i, &c) in p.cluster_centers().iter().enumerate() {
            assert_eq!(p.kind(c), ComponentKind::Cache, "centre of cluster {i}");
            assert_eq!(p.cluster_of(c), Some(i));
        }
    }

    #[test]
    fn clusters_have_eight_banks() {
        let p = Placement::paper_10x10();
        for cluster in 0..4 {
            let count = p
                .caches()
                .iter()
                .filter(|&&c| p.cluster_of(c) == Some(cluster))
                .count();
            assert_eq!(count, 8, "cluster {cluster}");
        }
    }

    #[test]
    fn dataflow_groups_partition_grid() {
        let p = Placement::paper_10x10();
        let mut counts = [0usize; 4];
        for r in p.all() {
            counts[p.dataflow_group(r)] += 1;
        }
        assert_eq!(counts, [25, 25, 25, 25]);
    }

    #[test]
    fn hotspot_selection_near_paper_anchor() {
        let p = Placement::paper_10x10();
        let one = p.hotspot_caches(1);
        assert_eq!(one.len(), 1);
        // near (7,0): must be in the top-right cluster
        assert_eq!(p.cluster_of(one[0]), Some(1));
        let four = p.hotspot_caches(4);
        assert_eq!(four.len(), 4);
        let clusters: std::collections::HashSet<_> =
            four.iter().map(|&c| p.cluster_of(c)).collect();
        assert_eq!(clusters.len(), 4, "4 hotspots spread across clusters");
    }

    #[test]
    fn staggered_50_is_checkerboard() {
        let dims = GridDims::new(10, 10);
        let rf = staggered_rf_routers(dims, 50);
        assert_eq!(rf.len(), 50);
        for &r in &rf {
            let c = dims.coord_of(r);
            assert_eq!((c.x + c.y) % 2, 0, "router {r} not on checkerboard");
        }
    }

    #[test]
    fn staggered_25_is_double_even() {
        let dims = GridDims::new(10, 10);
        let rf = staggered_rf_routers(dims, 25);
        assert_eq!(rf.len(), 25);
        for &r in &rf {
            let c = dims.coord_of(r);
            assert_eq!(c.x % 2, 0);
            assert_eq!(c.y % 2, 0);
        }
    }

    #[test]
    fn every_router_has_a_component() {
        let p = Placement::paper_10x10();
        let total = p.cores().len() + p.caches().len() + p.memories().len();
        assert_eq!(total, 100);
    }
}
