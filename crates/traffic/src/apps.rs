//! Application-profile traces (paper §4.2, Figure 1).
//!
//! The paper replays Simics-captured network traces of PARSEC applications
//! (bodytrack, fluidanimate, streamcluster, x264) and SPECjbb2005. Those
//! traces are proprietary/full-system artifacts, so this reproduction
//! substitutes synthetic generators parameterised by what the paper itself
//! reports about each application:
//!
//! * the message count vs Manhattan-distance histograms of Figure 1
//!   (x264: broad with a mid-distance peak; bodytrack: strongly local with
//!   almost no 14-hop traffic);
//! * the hotspot structure observed by the authors ("bodytrack has two
//!   network hotspots ... x264 has only one");
//! * the message-class mix of §4.1.
//!
//! The NoC experiments consume only `(source, destination, size, time)`
//! streams, so matching these spatial statistics exercises the same
//! adaptive-shortcut and bandwidth-reduction behaviour as the real traces.

use crate::placement::{ComponentKind, Placement};
use crate::patterns::class_for;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfnoc_sim::{MessageSpec, Workload};
use rfnoc_topology::NodeId;

/// Maximum Manhattan distance on the 10×10 mesh.
const MAX_DIST: usize = 18;

/// A synthetic application communication profile.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Application name.
    pub name: &'static str,
    /// Relative message frequency by Manhattan distance (index = hops;
    /// index 0 unused). Normalised internally.
    pub distance_weights: [f64; MAX_DIST + 1],
    /// Number of network hotspots.
    pub hotspot_count: usize,
    /// Fraction of traffic directed at the hotspots.
    pub hot_fraction: f64,
    /// Threads of the original application run (paper Figure 5b: all
    /// applications execute on the 64-core SPARC system).
    pub threads: usize,
    /// Input configuration of the original run (PARSEC `simlarge`, or the
    /// SPECjbb2005 warehouse setup).
    pub input_set: &'static str,
}

impl AppProfile {
    /// x264: broad distance distribution with a mid-range peak and traffic
    /// out to 14 hops; one communication hotspot (Figure 1a).
    pub fn x264() -> Self {
        Self {
            name: "x264",
            distance_weights: [
                0.0, 2.0, 2.5, 3.0, 4.0, 4.2, 4.0, 3.5, 3.0, 2.5, 2.0, 1.5, 1.0, 0.7, 0.5, 0.3,
                0.2, 0.1, 0.1,
            ],
            hotspot_count: 1,
            hot_fraction: 0.25,
            threads: 64,
            input_set: "PARSEC simlarge",
        }
    }

    /// bodytrack: strongly local traffic, a single-hop peak, almost nothing
    /// at 14 hops; two hotspots (Figure 1b).
    pub fn bodytrack() -> Self {
        Self {
            name: "bodytrack",
            distance_weights: [
                0.0, 10.0, 8.0, 6.0, 4.5, 3.5, 2.5, 1.8, 1.2, 0.8, 0.4, 0.2, 0.1, 0.05, 0.01,
                0.0, 0.0, 0.0, 0.0,
            ],
            hotspot_count: 2,
            hot_fraction: 0.3,
            threads: 64,
            input_set: "PARSEC simlarge",
        }
    }

    /// fluidanimate: nearest-neighbour dominated (spatial decomposition).
    pub fn fluidanimate() -> Self {
        Self {
            name: "fluidanimate",
            distance_weights: [
                0.0, 12.0, 7.0, 3.0, 1.5, 0.8, 0.4, 0.2, 0.1, 0.05, 0.02, 0.01, 0.0, 0.0, 0.0,
                0.0, 0.0, 0.0, 0.0,
            ],
            hotspot_count: 0,
            hot_fraction: 0.0,
            threads: 64,
            input_set: "PARSEC simlarge",
        }
    }

    /// streamcluster: moderate locality around a shared centre structure.
    pub fn streamcluster() -> Self {
        Self {
            name: "streamcluster",
            distance_weights: [
                0.0, 5.0, 5.0, 4.5, 4.0, 3.0, 2.0, 1.5, 1.0, 0.6, 0.3, 0.2, 0.1, 0.05, 0.02,
                0.01, 0.0, 0.0, 0.0,
            ],
            hotspot_count: 1,
            hot_fraction: 0.35,
            threads: 64,
            input_set: "PARSEC simlarge",
        }
    }

    /// SPECjbb2005: commercial workload with a near-uniform spread.
    pub fn specjbb() -> Self {
        Self {
            name: "specjbb",
            distance_weights: [
                0.0, 1.0, 1.2, 1.4, 1.5, 1.5, 1.5, 1.4, 1.3, 1.2, 1.0, 0.8, 0.6, 0.4, 0.3, 0.2,
                0.1, 0.05, 0.02,
            ],
            hotspot_count: 0,
            hot_fraction: 0.0,
            threads: 64,
            input_set: "SPECjbb2005 warehouses",
        }
    }

    /// All five applications evaluated in the paper (§4.2).
    pub fn paper_suite() -> Vec<AppProfile> {
        vec![
            Self::specjbb(),
            Self::bodytrack(),
            Self::fluidanimate(),
            Self::streamcluster(),
            Self::x264(),
        ]
    }
}

/// Synthetic application-trace generator.
#[derive(Debug, Clone)]
pub struct AppWorkload {
    placement: Placement,
    profile: AppProfile,
    injection_rate: f64,
    rng: StdRng,
    hotspots: Vec<NodeId>,
    /// `buckets[src][d]` = non-memory components at Manhattan distance `d`
    /// from `src`.
    buckets: Vec<Vec<Vec<NodeId>>>,
    /// Cumulative per-source sampling weights over distances with non-empty
    /// buckets.
    cumulative: Vec<Vec<(f64, usize)>>,
}

impl AppWorkload {
    /// Creates the generator.
    pub fn new(placement: Placement, profile: AppProfile, injection_rate: f64, seed: u64) -> Self {
        let dims = placement.dims();
        let n = dims.nodes();
        let endpoints: Vec<NodeId> = placement
            .all()
            .filter(|&r| placement.kind(r) != ComponentKind::Memory)
            .collect();
        let mut buckets = vec![vec![Vec::new(); MAX_DIST + 1]; n];
        for (src, by_dist) in buckets.iter_mut().enumerate() {
            for &e in &endpoints {
                if e != src {
                    let d = dims.manhattan(src, e) as usize;
                    by_dist[d.min(MAX_DIST)].push(e);
                }
            }
        }
        let mut cumulative = Vec::with_capacity(n);
        for by_dist in &buckets {
            let mut acc = 0.0;
            let mut cum = Vec::new();
            for (d, w) in profile.distance_weights.iter().enumerate() {
                if *w > 0.0 && !by_dist[d].is_empty() {
                    acc += w;
                    cum.push((acc, d));
                }
            }
            cumulative.push(cum);
        }
        let hotspots = match profile.hotspot_count {
            0 => Vec::new(),
            k => placement.hotspot_caches(k),
        };
        Self {
            placement,
            profile,
            injection_rate,
            rng: StdRng::seed_from_u64(seed),
            hotspots,
            buckets,
            cumulative,
        }
    }

    /// The application profile driving this workload.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    fn sample_destination(&mut self, src: NodeId) -> Option<NodeId> {
        if !self.hotspots.is_empty() && self.rng.gen_bool(self.profile.hot_fraction) {
            let h = self.hotspots[self.rng.gen_range(0..self.hotspots.len())];
            if h != src {
                return Some(h);
            }
        }
        let cum = &self.cumulative[src];
        let total = cum.last()?.0;
        let pick: f64 = self.rng.gen_range(0.0..total);
        let d = cum
            .iter()
            .find(|(acc, _)| pick < *acc)
            .map(|(_, d)| *d)
            .unwrap_or(cum.last()?.1);
        let bucket = &self.buckets[src][d];
        Some(bucket[self.rng.gen_range(0..bucket.len())])
    }
}

impl Workload for AppWorkload {
    fn messages_at(&mut self, _cycle: u64, out: &mut Vec<MessageSpec>) {
        let n = self.placement.dims().nodes();
        for src in 0..n {
            if self.placement.kind(src) == ComponentKind::Memory {
                continue; // app profiles cover core/cache traffic only
            }
            if self.rng.gen_bool(self.injection_rate.min(1.0)) {
                if let Some(dst) = self.sample_destination(src) {
                    let class =
                        class_for(self.placement.kind(src), self.placement.kind(dst));
                    out.push(MessageSpec::unicast(src, dst, class));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(profile: AppProfile, cycles: u64) -> Vec<u64> {
        let placement = Placement::paper_10x10();
        let dims = placement.dims();
        let mut w = AppWorkload::new(placement, profile, 0.05, 7);
        let mut out = Vec::new();
        for c in 0..cycles {
            w.messages_at(c, &mut out);
        }
        let mut hist = vec![0u64; MAX_DIST + 1];
        for m in &out {
            let rfnoc_sim::Destination::Unicast(d) = m.dest else { continue };
            hist[dims.manhattan(m.src, d) as usize] += 1;
        }
        hist
    }

    #[test]
    fn bodytrack_is_local_x264_is_not() {
        let bt = histogram(AppProfile::bodytrack(), 1_000);
        let x = histogram(AppProfile::x264(), 1_000);
        let short = |h: &Vec<u64>| h[1..=2].iter().sum::<u64>() as f64;
        let total = |h: &Vec<u64>| h.iter().sum::<u64>() as f64;
        let bt_local = short(&bt) / total(&bt);
        let x_local = short(&x) / total(&x);
        assert!(
            bt_local > 2.0 * x_local,
            "bodytrack local share {bt_local:.3} vs x264 {x_local:.3}"
        );
        // Figure 1b: bodytrack has almost no traffic at 14 hops (a small
        // residue comes from hotspot-directed messages).
        assert!(bt[14] as f64 <= total(&bt) * 0.02);
        assert!(x[10..].iter().sum::<u64>() > 0, "x264 has long-range traffic");
    }

    #[test]
    fn hotspot_profiles_target_hot_caches() {
        let placement = Placement::paper_10x10();
        let hot = placement.hotspot_caches(1)[0];
        let mut w = AppWorkload::new(placement, AppProfile::x264(), 0.05, 7);
        let mut out = Vec::new();
        for c in 0..800 {
            w.messages_at(c, &mut out);
        }
        let to_hot = out
            .iter()
            .filter(|m| matches!(m.dest, rfnoc_sim::Destination::Unicast(d) if d == hot))
            .count() as f64;
        assert!(to_hot / out.len() as f64 > 0.1);
    }

    #[test]
    fn suite_has_five_apps_with_distinct_names() {
        let suite = AppProfile::paper_suite();
        assert_eq!(suite.len(), 5);
        let names: std::collections::HashSet<_> = suite.iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn generator_is_deterministic() {
        let placement = Placement::paper_10x10();
        let run = |seed| {
            let mut w = AppWorkload::new(placement.clone(), AppProfile::specjbb(), 0.05, seed);
            let mut out = Vec::new();
            for c in 0..100 {
                w.messages_at(c, &mut out);
            }
            out
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }
}
