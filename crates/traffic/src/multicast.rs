//! Multicast traffic augmentation (paper §5.2).
//!
//! "To gauge the impact of multicast, we augment our probabilistic traces
//! with special multicast messages that originate at a cache in our
//! topology and are sent to some number of cores. ... we simulate multicast
//! destination reuse by ensuring that some percentage of these messages are
//! identical source-to-destinations pairs."
//!
//! In the 20% case, all multicast messages use `20% · M` distinct
//! source-to-destination pairs (high locality); in the 50% case, `50% · M`
//! (moderate locality).

use crate::placement::Placement;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rfnoc_sim::{DestSet, MessageSpec, Workload};
use rfnoc_topology::NodeId;

/// Configuration of the multicast generator.
#[derive(Debug, Clone, PartialEq)]
pub struct MulticastConfig {
    /// Mean multicast messages per cache bank per cycle.
    pub rate_per_cache: f64,
    /// Fraction of distinct source-to-destination pairs (0.2 = high reuse,
    /// 0.5 = moderate reuse).
    pub locality: f64,
    /// Minimum destination-set size (cores).
    pub min_dests: usize,
    /// Maximum destination-set size (cores).
    pub max_dests: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MulticastConfig {
    /// Defaults model coherence storms: invalidates/fills reach 8–24
    /// sharer cores, and each cache bank multicasts about once per
    /// thousand cycles.
    fn default() -> Self {
        Self { rate_per_cache: 0.001, locality: 0.2, min_dests: 8, max_dests: 24, seed: 99 }
    }
}

/// Generates coherence multicasts (invalidates/fills) from cache banks to
/// random sets of cores, with configurable destination-set reuse.
#[derive(Debug, Clone)]
pub struct MulticastTraffic {
    placement: Placement,
    config: MulticastConfig,
    rng: StdRng,
    /// Pool of distinct (source, destination set) pairs created so far.
    pool: Vec<(NodeId, DestSet)>,
    /// Multicast messages generated so far.
    count: u64,
}

impl MulticastTraffic {
    /// Creates the generator.
    ///
    /// # Panics
    ///
    /// Panics if the destination-size range is empty or locality is not in
    /// `(0, 1]`.
    pub fn new(placement: Placement, config: MulticastConfig) -> Self {
        assert!(config.min_dests >= 1 && config.min_dests <= config.max_dests);
        assert!(config.locality > 0.0 && config.locality <= 1.0);
        let rng = StdRng::seed_from_u64(config.seed);
        Self { placement, config, rng, pool: Vec::new(), count: 0 }
    }

    /// Number of distinct pairs used so far.
    pub fn distinct_pairs(&self) -> usize {
        self.pool.len()
    }

    /// Multicast messages generated so far.
    pub fn generated(&self) -> u64 {
        self.count
    }

    fn fresh_pair(&mut self) -> (NodeId, DestSet) {
        let caches = self.placement.caches();
        let cores = self.placement.cores();
        let src = caches[self.rng.gen_range(0..caches.len())];
        let k = self.rng.gen_range(self.config.min_dests..=self.config.max_dests);
        let mut set = DestSet::empty();
        while (set.len() as usize) < k.min(cores.len()) {
            set.insert(cores[self.rng.gen_range(0..cores.len())]);
        }
        (src, set)
    }

    fn next_multicast(&mut self) -> (NodeId, DestSet) {
        self.count += 1;
        let distinct_target =
            ((self.count as f64 * self.config.locality).ceil() as usize).max(1);
        if self.pool.len() < distinct_target {
            let pair = self.fresh_pair();
            self.pool.push(pair);
            pair
        } else {
            self.pool[self.rng.gen_range(0..self.pool.len())]
        }
    }
}

impl Workload for MulticastTraffic {
    fn messages_at(&mut self, _cycle: u64, out: &mut Vec<MessageSpec>) {
        let caches = self.placement.caches().len();
        let expected = self.config.rate_per_cache * caches as f64;
        let mut budget = expected;
        while budget > 0.0 {
            let p = budget.min(1.0);
            if p >= 1.0 || self.rng.gen_bool(p) {
                let (src, set) = self.next_multicast();
                out.push(MessageSpec::multicast(src, set));
            }
            budget -= 1.0;
        }
    }
}

/// Merges several workloads into one (e.g. a probabilistic trace plus its
/// multicast augmentation).
#[derive(Default)]
pub struct CombinedWorkload {
    parts: Vec<Box<dyn Workload>>,
}

impl std::fmt::Debug for CombinedWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CombinedWorkload({} parts)", self.parts.len())
    }
}

impl CombinedWorkload {
    /// An empty combination.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a workload part.
    #[must_use]
    pub fn with(mut self, part: Box<dyn Workload>) -> Self {
        self.parts.push(part);
        self
    }
}

impl Workload for CombinedWorkload {
    fn messages_at(&mut self, cycle: u64, out: &mut Vec<MessageSpec>) {
        for part in &mut self.parts {
            part.messages_at(cycle, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfnoc_sim::Destination;

    fn gen_multicasts(locality: f64, cycles: u64) -> (MulticastTraffic, Vec<MessageSpec>) {
        let config = MulticastConfig {
            rate_per_cache: 0.02,
            locality,
            ..MulticastConfig::default()
        };
        let mut w = MulticastTraffic::new(Placement::paper_10x10(), config);
        let mut out = Vec::new();
        for c in 0..cycles {
            w.messages_at(c, &mut out);
        }
        (w, out)
    }

    #[test]
    fn sources_are_caches_dests_are_cores() {
        let p = Placement::paper_10x10();
        let (_, msgs) = gen_multicasts(0.5, 300);
        assert!(!msgs.is_empty());
        for m in &msgs {
            assert!(p.caches().contains(&m.src));
            let Destination::Multicast(set) = m.dest else {
                panic!("expected multicast")
            };
            for d in set.iter() {
                assert!(p.cores().contains(&d), "dest {d} is not a core");
            }
        }
    }

    #[test]
    fn locality_bounds_distinct_pairs() {
        let (w20, msgs20) = gen_multicasts(0.2, 1_000);
        let (w50, _) = gen_multicasts(0.5, 1_000);
        assert!(msgs20.len() > 100);
        let frac20 = w20.distinct_pairs() as f64 / w20.generated() as f64;
        let frac50 = w50.distinct_pairs() as f64 / w50.generated() as f64;
        assert!((frac20 - 0.2).abs() < 0.03, "20% case: {frac20:.3}");
        assert!((frac50 - 0.5).abs() < 0.03, "50% case: {frac50:.3}");
    }

    #[test]
    fn dest_set_sizes_in_range() {
        let (_, msgs) = gen_multicasts(0.5, 300);
        for m in &msgs {
            let Destination::Multicast(set) = m.dest else { unreachable!() };
            assert!((8..=24).contains(&(set.len() as usize)));
        }
    }

    #[test]
    fn combined_workload_merges() {
        let p = Placement::paper_10x10();
        let mc = MulticastTraffic::new(
            p.clone(),
            MulticastConfig { rate_per_cache: 0.05, ..Default::default() },
        );
        let uni = crate::patterns::ProbabilisticWorkload::new(
            p,
            crate::patterns::TraceKind::Uniform,
            crate::patterns::TrafficConfig::default(),
        );
        let mut combined = CombinedWorkload::new().with(Box::new(uni)).with(Box::new(mc));
        let mut out = Vec::new();
        for c in 0..200 {
            combined.messages_at(c, &mut out);
        }
        let unicasts = out.iter().filter(|m| matches!(m.dest, Destination::Unicast(_))).count();
        let multicasts =
            out.iter().filter(|m| matches!(m.dest, Destination::Multicast(_))).count();
        assert!(unicasts > 0 && multicasts > 0);
    }
}
