//! Property-based tests over the campaign profile compiler plus the
//! pinned end-to-end resilience scenario: a mid-run `BandDown` under
//! adversarial traffic re-converges within the recorded window.

use proptest::prelude::*;
use rfnoc_sim::{
    Destination, FaultEvent, FaultPlan, Network, NetworkSpec, RecoveryConfig, SimConfig,
    Workload,
};
use rfnoc_topology::{FabricSpec, GridDims, Shortcut};
use rfnoc_traffic::{
    compile_profiles, derive_seed, Placement, Profile, ProfileSpec, ProfileWorkload,
    TrafficConfig,
};

fn profile(idx: usize) -> Profile {
    Profile::all()[idx % 3]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same master seed → bit-identical compiled trace bundle; this is
    /// what makes a campaign point a replayable artifact ID.
    #[test]
    fn bundles_are_deterministic(seed in any::<u64>(), rate in 0.004f64..0.03) {
        let placement = Placement::paper_10x10();
        let traffic =
            TrafficConfig { injection_rate: rate, ..TrafficConfig::default() };
        let shortcuts = [Shortcut::new(3, 96), Shortcut::new(50, 5)];
        let a = compile_profiles(&placement, &traffic, &shortcuts, seed, 1_500).unwrap();
        let b = compile_profiles(&placement, &traffic, &shortcuts, seed, 1_500).unwrap();
        prop_assert_eq!(a, b);
    }

    /// Distinct profile labels draw distinct streams from one master seed,
    /// and distinct master seeds decorrelate the same profile.
    #[test]
    fn derived_streams_are_decorrelated(seed in any::<u64>()) {
        let labels = ["expected", "stress", "adversarial"];
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                prop_assert_ne!(derive_seed(seed, a), derive_seed(seed, b));
            }
            prop_assert_ne!(derive_seed(seed, a), derive_seed(seed.wrapping_add(1), a));
        }
    }

    /// Every profile generates well-formed unicasts: in-range endpoints,
    /// never a self-message, for any seed and shortcut set.
    #[test]
    fn profile_messages_are_well_formed(
        idx in 0usize..3,
        seed in any::<u64>(),
        src in 0usize..100,
        dst in 0usize..100,
    ) {
        prop_assume!(src != dst);
        let placement = Placement::paper_10x10();
        let spec = ProfileSpec::new(profile(idx), seed);
        let mut w = ProfileWorkload::new(
            placement,
            spec,
            TrafficConfig::default(),
            &[Shortcut::new(src, dst)],
        )
        .unwrap();
        let mut out = Vec::new();
        for cycle in 0..400 {
            w.messages_at(cycle, &mut out);
        }
        for m in &out {
            prop_assert!(m.src < 100);
            let Destination::Unicast(d) = m.dest else {
                return Err(TestCaseError::fail("profiles emit unicasts only"));
            };
            prop_assert!(d < 100);
            prop_assert_ne!(d, m.src);
        }
    }
}

/// The pinned resilience scenario: adversarial traffic hammers the
/// shortcut overlay, the whole RF band dies mid-run, and the network's
/// windowed latency re-converges — with the convergence time recorded in
/// the fault's `RecoveryRecord` and bounded by the run. Deterministic:
/// fixed seeds end to end.
#[test]
fn band_down_under_adversarial_traffic_reconverges() {
    let dims = GridDims::new(10, 10);
    let shortcuts = vec![Shortcut::new(0, 99), Shortcut::new(90, 9), Shortcut::new(44, 55)];
    let mut cfg = SimConfig::paper_baseline()
        .with_recovery(RecoveryConfig { window: 64, epsilon: 0.25 });
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 30_000;
    cfg.drain_cycles = 60_000;

    let fault_cycle = 10_000;
    let plan = FaultPlan::validated(vec![(fault_cycle, FaultEvent::BandDown)], &FabricSpec::mesh(dims))
        .expect("a lone BandDown is a valid plan");
    // Moderate adversarial load: enough pressure to feel the band loss,
    // light enough that the mesh absorbs it and latency levels off again.
    let traffic =
        TrafficConfig { injection_rate: 0.004, ..TrafficConfig::default() };
    let spec = ProfileSpec::new(Profile::Adversarial, 0xD15EA5E);
    let mut workload =
        ProfileWorkload::new(Placement::paper_10x10(), spec, traffic, &shortcuts).unwrap();

    let net_spec =
        NetworkSpec::with_shortcuts(dims, cfg, shortcuts).with_fault_plan(plan);
    let mut network = Network::new(net_spec);
    let stats = network.run(&mut workload);

    assert!(stats.is_healthy(), "watchdog fired: {:?}", stats.health);
    assert_eq!(stats.shortcut_faults, 3, "BandDown kills every transmitter");
    assert_eq!(stats.recovery.len(), 1);
    let rec = &stats.recovery[0];
    assert_eq!(rec.fault_cycle, fault_cycle);
    assert!(rec.drain_cycles.is_some(), "BandDown is an RF fault: drain measured");
    assert!(rec.rewrite_cycles.is_some(), "tables rewrite after the drain");
    let conv = rec
        .convergence_cycles
        .expect("windowed mean must re-converge within the run");
    assert!(rec.converged());
    assert!(
        fault_cycle + conv <= stats.end_cycle,
        "recovery window ({conv} cycles from {fault_cycle}) lies within the run \
         (ended {})",
        stats.end_cycle
    );

    // Deterministic replay: the identical seeds reproduce the identical
    // recovery record.
    let mut workload2 = ProfileWorkload::new(
        Placement::paper_10x10(),
        ProfileSpec::new(Profile::Adversarial, 0xD15EA5E),
        TrafficConfig { injection_rate: 0.004, ..TrafficConfig::default() },
        &[Shortcut::new(0, 99), Shortcut::new(90, 9), Shortcut::new(44, 55)],
    )
    .unwrap();
    let mut cfg2 = SimConfig::paper_baseline()
        .with_recovery(RecoveryConfig { window: 64, epsilon: 0.25 });
    cfg2.warmup_cycles = 0;
    cfg2.measure_cycles = 30_000;
    cfg2.drain_cycles = 60_000;
    let spec2 = NetworkSpec::with_shortcuts(
        dims,
        cfg2,
        vec![Shortcut::new(0, 99), Shortcut::new(90, 9), Shortcut::new(44, 55)],
    )
    .with_fault_plan(
        FaultPlan::validated(vec![(fault_cycle, FaultEvent::BandDown)], &FabricSpec::mesh(dims)).unwrap(),
    );
    let stats2 = Network::new(spec2).run(&mut workload2);
    assert_eq!(stats2.recovery, stats.recovery, "same seeds, same recovery record");
}
