//! Property-based tests over the traffic generators.

use proptest::prelude::*;
use rfnoc_sim::{Destination, Workload};
use rfnoc_traffic::{
    AppProfile, AppWorkload, ComponentKind, MulticastConfig, MulticastTraffic, Placement,
    ProbabilisticWorkload, Trace, TraceKind, TrafficConfig,
};

fn trace_kind(idx: usize) -> TraceKind {
    TraceKind::all()[idx % 7]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// No generator ever produces a self-message or an out-of-range node,
    /// for any trace kind, seed, and rate.
    #[test]
    fn generated_messages_are_well_formed(
        kind_idx in 0usize..7,
        seed in any::<u64>(),
        rate in 0.001f64..0.05,
    ) {
        let placement = Placement::paper_10x10();
        let config = TrafficConfig { injection_rate: rate, seed, ..TrafficConfig::default() };
        let mut w = ProbabilisticWorkload::new(placement.clone(), trace_kind(kind_idx), config);
        let mut out = Vec::new();
        for cycle in 0..200 {
            w.messages_at(cycle, &mut out);
        }
        for m in &out {
            prop_assert!(m.src < 100);
            match m.dest {
                Destination::Unicast(d) => {
                    prop_assert!(d < 100);
                    prop_assert_ne!(d, m.src);
                }
                Destination::Multicast(_) => prop_assert!(false, "unexpected multicast"),
            }
        }
    }

    /// Memory ports only ever exchange 132-byte messages with caches.
    #[test]
    fn memory_traffic_is_cache_only(kind_idx in 0usize..7, seed in any::<u64>()) {
        let placement = Placement::paper_10x10();
        let config = TrafficConfig { seed, ..TrafficConfig::default() };
        let mut w = ProbabilisticWorkload::new(placement.clone(), trace_kind(kind_idx), config);
        let mut out = Vec::new();
        for cycle in 0..300 {
            w.messages_at(cycle, &mut out);
        }
        for m in &out {
            let Destination::Unicast(d) = m.dest else { unreachable!() };
            let pair = (placement.kind(m.src), placement.kind(d));
            if pair.0 == ComponentKind::Memory {
                prop_assert_eq!(pair.1, ComponentKind::Cache);
                prop_assert_eq!(m.bytes(), 132);
            }
            if pair.1 == ComponentKind::Memory {
                prop_assert_eq!(pair.0, ComponentKind::Cache);
                prop_assert_eq!(m.bytes(), 132);
            }
        }
    }

    /// Any recorded trace survives a serialize → parse round trip exactly.
    #[test]
    fn trace_file_roundtrip(kind_idx in 0usize..7, seed in any::<u64>(), mc_rate in 0.0f64..0.05) {
        let placement = Placement::paper_10x10();
        let config = TrafficConfig { seed, ..TrafficConfig::default() };
        let mut uni = ProbabilisticWorkload::new(placement.clone(), trace_kind(kind_idx), config);
        let trace = if mc_rate > 0.0 {
            let mut mc = MulticastTraffic::new(
                placement,
                MulticastConfig { rate_per_cache: mc_rate, seed, ..MulticastConfig::default() },
            );
            let mut records = Vec::new();
            let mut buf = Vec::new();
            for cycle in 0..100u64 {
                buf.clear();
                uni.messages_at(cycle, &mut buf);
                mc.messages_at(cycle, &mut buf);
                records.extend(buf.iter().map(|m| (cycle, *m)));
            }
            Trace::from_records(records)
        } else {
            Trace::record(&mut uni, 100)
        };
        let mut bytes = Vec::new();
        trace.write_to(&mut bytes).unwrap();
        let parsed = Trace::read_from(bytes.as_slice()).unwrap();
        prop_assert_eq!(parsed, trace);
    }

    /// App workloads respect the zero-weight tail: a profile with no
    /// long-range weight never emits messages beyond its cut-off (modulo
    /// hotspot redirection, disabled here).
    #[test]
    fn app_distance_cutoff_respected(seed in any::<u64>()) {
        let placement = Placement::paper_10x10();
        let dims = placement.dims();
        let mut profile = AppProfile::fluidanimate();
        profile.hotspot_count = 0;
        profile.hot_fraction = 0.0;
        // fluidanimate has zero weight beyond 11 hops
        let cutoff = 11u32;
        let mut w = AppWorkload::new(placement, profile, 0.05, seed);
        let mut out = Vec::new();
        for cycle in 0..300 {
            w.messages_at(cycle, &mut out);
        }
        prop_assert!(!out.is_empty());
        for m in &out {
            let Destination::Unicast(d) = m.dest else { unreachable!() };
            prop_assert!(dims.manhattan(m.src, d) <= cutoff);
        }
    }

    /// The multicast pool honours its locality bound for any locality.
    #[test]
    fn multicast_locality_bound(locality in 0.05f64..1.0, seed in any::<u64>()) {
        let placement = Placement::paper_10x10();
        let config = MulticastConfig {
            rate_per_cache: 0.05,
            locality,
            seed,
            ..MulticastConfig::default()
        };
        let mut w = MulticastTraffic::new(placement, config);
        let mut out = Vec::new();
        for cycle in 0..300 {
            w.messages_at(cycle, &mut out);
        }
        prop_assert!(w.generated() > 0);
        let bound = (w.generated() as f64 * locality).ceil() as usize;
        prop_assert!(w.distinct_pairs() <= bound.max(1));
    }
}
