//! End-to-end tests of the run ledger through the bench runner: a plan
//! executed with `--ledger` must write a JSONL file whose every line
//! parses, whose point lifecycle is balanced, and whose engine heartbeat
//! and shard records ride the same timeline — and the instrumented run's
//! statistics must be bit-identical to an uninstrumented one.

use rfnoc::ledger::LedgerSummary;
use rfnoc::{Architecture, WorkloadSpec};
use rfnoc_bench::plan::{labeled, Design, Plan, SweepSpec};
use rfnoc_bench::runner::{run_plan, RunnerConfig};
use rfnoc_power::LinkWidth;
use rfnoc_sim::SimConfig;
use rfnoc_traffic::TraceKind;

fn small_plan() -> Plan {
    let mut sim = SimConfig::paper_baseline();
    sim.warmup_cycles = 200;
    sim.measure_cycles = 1_500;
    sim.drain_cycles = 500;
    SweepSpec::new("ledger_e2e")
        .designs(vec![
            Design::new("base", Architecture::Baseline, LinkWidth::B4),
            Design::new("static", Architecture::StaticShortcuts, LinkWidth::B4),
        ])
        .workloads(vec![
            labeled("Uniform", WorkloadSpec::Trace(TraceKind::Uniform)),
            labeled("1Hotspot", WorkloadSpec::Trace(TraceKind::Hotspot1)),
        ])
        .sims(vec![labeled("short", sim)])
        .expand()
}

fn temp_ledger(name: &str) -> String {
    let dir = std::env::temp_dir().join("rfnoc_ledger_e2e");
    let _ = std::fs::create_dir_all(&dir);
    dir.join(format!("{name}.jsonl")).to_str().unwrap().to_string()
}

/// The written ledger parses line-by-line, the lifecycle is balanced
/// (every unique point queued, started, and finished; plan bracketed by
/// `plan_start`/`plan_finish`), engine heartbeats are present and
/// well-formed per point, and — at `sim_threads > 1` — shard records
/// appear. [`LedgerSummary`] is the same reader `rfnoc-cli tail` and
/// `ledger-summary` use, so this is the full schema round-trip.
#[test]
fn runner_ledger_schema_roundtrip() {
    let path = temp_ledger("roundtrip");
    let plan = small_plan();
    let cfg = RunnerConfig {
        jobs: 2,
        sim_threads: 2,
        quiet: true,
        ledger: Some(path.clone()),
        ..RunnerConfig::default()
    };
    let results = run_plan(&plan, &cfg);
    assert_eq!(results.results.len(), plan.len());

    let summary = LedgerSummary::from_file(&path).expect("ledger parses");
    assert!(summary.problems.is_empty(), "schema problems: {:?}", summary.problems);
    let unique = results.unique_runs as f64;
    assert_eq!(summary.points_planned, Some(unique));
    assert_eq!(summary.points_queued, results.unique_runs);
    assert_eq!(summary.points_started, results.unique_runs);
    assert_eq!(summary.points_finished, results.unique_runs);
    assert_eq!(summary.point_wall_ms.len(), results.unique_runs);
    assert!(summary.plan_wall_ms.is_some(), "plan_finish must close the stream");
    assert!(summary.heartbeats >= results.unique_runs, "each run heartbeats at least once");
    assert!(summary.kcps_mean() > 0.0);
    assert!(!summary.shards.is_empty(), "sharded runs must stream shard records");
    assert!(summary.shard_imbalance().is_some());
    assert!(summary.barrier_wait_frac().is_some());
    let _ = std::fs::remove_file(&path);
}

/// Runner-level inertness: running the same plan with and without the
/// ledger produces bit-identical statistics for every point (the ledger
/// report itself aside), serial and sharded.
#[test]
fn ledger_does_not_change_runner_results() {
    let plan = small_plan();
    for sim_threads in [1usize, 2] {
        let plain = run_plan(
            &plan,
            &RunnerConfig { jobs: 2, sim_threads, quiet: true, ..RunnerConfig::default() },
        );
        let path = temp_ledger(&format!("inert_t{sim_threads}"));
        let ledgered = run_plan(
            &plan,
            &RunnerConfig {
                jobs: 2,
                sim_threads,
                quiet: true,
                ledger: Some(path.clone()),
                ..RunnerConfig::default()
            },
        );
        for (a, b) in plain.iter().zip(ledgered.iter()) {
            assert_eq!(a.point.id, b.point.id);
            let mut sa = a.report.stats.clone();
            let mut sb = b.report.stats.clone();
            assert!(sb.ledger.is_some(), "{}: ledgered run carries a report", b.point.id);
            sa.ledger = None;
            sb.ledger = None;
            assert_eq!(sa, sb, "ledger perturbed {} at {sim_threads} sim threads", a.point.id);
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// `--quiet` plus `--ledger`: the quiet flag silences stderr only — the
/// ledger file must still be written in full.
#[test]
fn quiet_still_writes_the_ledger() {
    let path = temp_ledger("quiet");
    let plan = small_plan();
    let cfg = RunnerConfig {
        jobs: 1,
        quiet: true,
        ledger: Some(path.clone()),
        ..RunnerConfig::default()
    };
    let _ = run_plan(&plan, &cfg);
    let summary = LedgerSummary::from_file(&path).expect("ledger parses");
    assert!(summary.records > 0, "quiet must not suppress the ledger file");
    assert!(summary.plan_wall_ms.is_some());
    let _ = std::fs::remove_file(&path);
}

/// Blocking HTTP GET against the observatory server; returns the body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr).expect("connect");
    write!(s, "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).expect("read response");
    let (head, body) = buf.split_once("\r\n\r\n").expect("header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    body.to_string()
}

/// Full observatory e2e: a plan run with `--obs-port 0` serves
/// `/healthz`, a `/metrics` exposition carrying the headline series, and
/// an `/events` SSE replay whose data frames are exactly the records in
/// the ledger file — file and socket tee from one sink.
#[test]
fn obs_endpoints_mirror_the_ledger_file() {
    let path = temp_ledger("obs_e2e");
    let plan = small_plan();
    let cfg = RunnerConfig {
        jobs: 2,
        sim_threads: 2,
        quiet: true,
        ledger: Some(path.clone()),
        obs_port: Some(0),
    };
    let sink = rfnoc_bench::ledger::LedgerSink::from_config(&cfg);
    let addr = sink.obs_addr().expect("obs server bound");
    let results = rfnoc_bench::runner::run_plan_with(&plan, &cfg, &sink);
    assert_eq!(results.results.len(), plan.len());

    assert_eq!(http_get(addr, "/healthz"), "ok\n");
    let metrics = http_get(addr, "/metrics");
    for series in [
        "rfnoc_kcycles_per_sec",
        "rfnoc_in_flight",
        "rfnoc_shard_imbalance",
        "rfnoc_points_finished",
        "rfnoc_ledger_records",
    ] {
        assert!(metrics.contains(series), "missing {series} in:\n{metrics}");
    }

    // The SSE replay starts from record zero, so attaching after the run
    // still yields the full stream; dropping the sink closes the hub and
    // terminates the stream with an `event: end`.
    let events = std::thread::spawn(move || http_get(addr, "/events"));
    drop(sink);
    let sse = events.join().expect("events reader");
    assert!(sse.contains("event: end"), "stream must terminate:\n{sse}");
    let streamed: Vec<&str> = sse
        .lines()
        .filter_map(|l| l.strip_prefix("data: "))
        .filter(|l| l.starts_with('{'))
        .collect();
    let file = std::fs::read_to_string(&path).expect("ledger file");
    let on_disk: Vec<&str> = file.lines().collect();
    assert_eq!(streamed, on_disk, "socket and file must see the same records");
    let _ = std::fs::remove_file(&path);
}
