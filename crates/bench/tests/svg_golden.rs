//! Golden-string tests of the renderers on a tiny 2×2 fixture, pinning
//! element counts, the legend, and the utilization-to-stroke mapping of
//! the link heatmap, plus the Perfetto trace writer's event inventory —
//! so a rendering regression shows up as a diff here, not as a subtly
//! wrong artifact nobody looks at.

use rfnoc_bench::perfetto::{render_trace, TraceSpec};
use rfnoc_bench::svg::{render_link_heatmap, LinkHeatFigure};
use rfnoc_sim::{
    MessageClass, MessageSpec, Network, NetworkSpec, ScriptedWorkload, SimConfig,
    TelemetryConfig,
};
use rfnoc_topology::{GridDims, Shortcut};
use rfnoc_traffic::Placement;

fn count(haystack: &str, needle: &str) -> usize {
    haystack.matches(needle).count()
}

/// 2×2 heatmap: 4 mesh edges, 4 routers, a 10-swatch legend, and the
/// documented utilization-to-stroke mapping.
#[test]
fn link_heatmap_2x2_golden() {
    let placement = Placement::cores_only(GridDims::new(2, 2));
    // Port order N,S,E,W,Local,RF. Router 0's east port at 0.5; router 3
    // ejecting at full pressure; everything else idle.
    let mut port_util = vec![0.0; 4 * 6];
    port_util[2] = 0.5; // router 0, east port (edge 0-1)
    port_util[3 * 6 + 4] = 1.0; // router 3, local
    let shortcuts = [Shortcut::new(0, 3)];
    let figure = LinkHeatFigure {
        shortcuts: &shortcuts,
        port_util: &port_util,
        shortcut_util: &[1.0],
        title: "2x2 golden".into(),
    };
    let svg = render_link_heatmap(&placement, &figure);

    // Element inventory: 2 horizontal + 2 vertical mesh edges; 1
    // background + 4 router boxes + 10 legend swatches; 1 shortcut arc;
    // title + legend caption.
    assert_eq!(count(&svg, "<line "), 4, "2x2 mesh has 4 undirected edges");
    assert_eq!(count(&svg, "<rect "), 1 + 4 + 10);
    assert_eq!(count(&svg, "<path "), 1, "one shortcut arc");
    assert_eq!(count(&svg, "<text "), 2);
    assert!(svg.contains("link utilization 0 to 1"), "legend caption present");
    assert!(svg.starts_with("<svg "));
    assert!(svg.trim_end().ends_with("</svg>"));

    // Stroke mapping 1.0 + 5.0·u: the hot edge (u = 0.5) at 3.50, the
    // three idle edges at 1.00; the full-utilization arc at 4.50 width
    // and full opacity.
    assert_eq!(count(&svg, r#"stroke-width="3.50""#), 1);
    assert_eq!(count(&svg, r#"<line"#), 4);
    assert_eq!(
        svg.lines().filter(|l| l.starts_with("<line") && l.contains(r#"stroke-width="1.00""#)).count(),
        3,
        "idle edges at base width"
    );
    assert!(svg.contains(r#"stroke-width="4.50" stroke-opacity="1.000""#));

    // Colour ramp endpoints: idle grey and the saturated-red router fill.
    assert!(svg.contains("rgb(215,215,215)"));
    assert!(svg.contains(r#"fill="rgb(214,39,40)""#), "router 3 ejects at full pressure");
}

/// Degenerate inputs stay well-formed: no shortcuts, all-idle ports.
#[test]
fn link_heatmap_2x2_idle_no_shortcuts() {
    let placement = Placement::cores_only(GridDims::new(2, 2));
    let port_util = vec![0.0; 4 * 6];
    let figure = LinkHeatFigure {
        shortcuts: &[],
        port_util: &port_util,
        shortcut_util: &[],
        title: "idle".into(),
    };
    let svg = render_link_heatmap(&placement, &figure);
    assert_eq!(count(&svg, "<path "), 0);
    assert_eq!(count(&svg, "<line "), 4);
    assert_eq!(count(&svg, "<rect "), 15);
}

fn profiled_2x2_run() -> rfnoc_sim::RunStats {
    let mut cfg = SimConfig::paper_baseline();
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 50;
    cfg.drain_cycles = 2_000;
    cfg.telemetry = Some(TelemetryConfig::profiling(64));
    let spec = NetworkSpec::mesh_baseline(GridDims::new(2, 2), cfg);
    let mut network = Network::new(spec);
    let mut workload = ScriptedWorkload::new(vec![(
        0,
        MessageSpec::unicast(0, 3, MessageClass::Data),
    )]);
    network.run(&mut workload)
}

/// Perfetto trace of a single 0→3 packet on a 2×2 mesh: pinned metadata
/// and span inventory, valid event phases, no RF process.
#[test]
fn perfetto_trace_2x2_golden() {
    let stats = profiled_2x2_run();
    let tel = stats.telemetry.as_ref().expect("telemetry enabled");
    // 0→3 is two links, so the chain holds three hop records.
    assert_eq!(tel.hops.len(), 3);

    let spec = TraceSpec { dims: GridDims::new(2, 2), shortcuts: &[], max_span_events: 100 };
    let trace = render_trace(tel, &spec);

    assert!(trace.starts_with("{\"traceEvents\": ["));
    assert_eq!(count(&trace, "\"ph\": \"X\""), 3, "one span per hop record");
    // 1 process_name + 4 router thread_names; no band process without
    // shortcuts.
    assert_eq!(count(&trace, "\"ph\": \"M\""), 5);
    assert_eq!(count(&trace, "\"ph\": \"i\""), 0, "no faults, no truncation");
    assert!(!trace.contains("rf bands"));
    assert!(trace.contains("\"process_name\""));
    assert!(trace.contains("router (0, 0)") || trace.contains("router (0,0)"));
    // The injection hop enters on the local port and leaves on a mesh
    // port; waits are spelled out in args.
    assert!(trace.contains("pkt 0 Local->"));
    assert!(trace.contains("\"va_wait\":"));
    assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    assert_eq!(trace.matches('[').count(), trace.matches(']').count());
}

/// Truncation is visible in the trace, never silent.
#[test]
fn perfetto_trace_truncation_is_announced() {
    let stats = profiled_2x2_run();
    let tel = stats.telemetry.as_ref().expect("telemetry enabled");
    let spec = TraceSpec { dims: GridDims::new(2, 2), shortcuts: &[], max_span_events: 1 };
    let trace = render_trace(tel, &spec);
    assert_eq!(count(&trace, "\"ph\": \"X\""), 1);
    assert!(trace.contains("trace truncated: 2 hop spans omitted"));
    assert_eq!(count(&trace, "\"ph\": \"i\""), 1);
}

/// With shortcuts, RF hops are mirrored onto their band's track.
#[test]
fn perfetto_trace_band_tracks() {
    let dims = GridDims::new(6, 6);
    let shortcuts = vec![Shortcut::new(0, 35), Shortcut::new(35, 0)];
    let mut cfg = SimConfig::paper_baseline();
    cfg.warmup_cycles = 0;
    cfg.measure_cycles = 200;
    cfg.drain_cycles = 5_000;
    cfg.telemetry = Some(TelemetryConfig::profiling(64));
    let spec = NetworkSpec::with_shortcuts(dims, cfg, shortcuts.clone());
    let mut network = Network::new(spec);
    let events: Vec<(u64, MessageSpec)> =
        (0..20).map(|i| (i * 4, MessageSpec::unicast(0, 35, MessageClass::Data))).collect();
    let stats = network.run(&mut ScriptedWorkload::new(events));
    let tel = stats.telemetry.as_ref().expect("telemetry enabled");
    let rf_hops = tel.hops.iter().filter(|h| h.port_out == 5).count();
    assert!(rf_hops > 0, "corner traffic rides the shortcut");

    let spec = TraceSpec { dims, shortcuts: &shortcuts, max_span_events: 100_000 };
    let trace = render_trace(tel, &spec);
    assert!(trace.contains("rf bands"));
    assert!(trace.contains("band (0, 0) -> (5, 5)") || trace.contains("band (0,0) -> (5,5)"));
    assert_eq!(count(&trace, "on band"), rf_hops, "every RF hop lands on a band track");
    assert_eq!(
        count(&trace, "\"ph\": \"X\""),
        tel.hops.len() + rf_hops,
        "router spans plus mirrored band spans"
    );
}
