//! The parallel runner must be an execution-order detail, never a
//! results detail: `--jobs 8` has to produce bit-identical statistics to
//! a serial run, and deduplicated points must share one report.

use rfnoc::{Architecture, WorkloadSpec};
use rfnoc_bench::plan::{labeled, BaselineSel, Design, Plan, SweepSpec};
use rfnoc_bench::runner::{run_plan, RunnerConfig};
use rfnoc_power::LinkWidth;
use rfnoc_sim::SimConfig;
use rfnoc_traffic::TraceKind;

/// A small but representative plan: two designs (one adaptive, so the
/// profiling pass is covered), two workloads, short windows, and a
/// baseline pairing.
fn small_plan() -> Plan {
    let mut sim = SimConfig::paper_baseline();
    sim.warmup_cycles = 200;
    sim.measure_cycles = 1_500;
    sim.drain_cycles = 500;
    SweepSpec::new("determinism")
        .designs(vec![
            Design::new("base", Architecture::Baseline, LinkWidth::B4),
            Design::new(
                "adaptive",
                Architecture::AdaptiveShortcuts { access_points: 20 },
                LinkWidth::B4,
            ),
        ])
        .workloads(vec![
            labeled("Uniform", WorkloadSpec::Trace(TraceKind::Uniform)),
            labeled("1Hotspot", WorkloadSpec::Trace(TraceKind::Hotspot1)),
        ])
        .sims(vec![labeled("short", sim)])
        .profile_cycles(500)
        .baseline(BaselineSel::design("base"))
        .expand()
}

#[test]
fn parallel_results_are_bit_identical_to_serial() {
    let plan = small_plan();
    let serial = run_plan(&plan, &RunnerConfig { jobs: 1, quiet: true, ..RunnerConfig::default() });
    let parallel = run_plan(&plan, &RunnerConfig { jobs: 8, quiet: true, ..RunnerConfig::default() });

    assert_eq!(serial.results.len(), plan.len());
    assert_eq!(parallel.results.len(), plan.len());
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.point.id, p.point.id, "plan order must be preserved");
        // RunStats includes every message latency, histogram bucket, and
        // activity counter — bit-identical stats mean identical runs.
        assert_eq!(s.report.stats, p.report.stats, "stats diverge at {}", s.point.id);
        assert_eq!(s.normalized, p.normalized, "normalisation diverges at {}", s.point.id);
    }
}

#[test]
fn duplicate_experiments_run_once_and_share_reports() {
    // The same spec under two names — every experiment appears twice.
    let plan = Plan::merge([small_plan(), {
        let mut copy = small_plan();
        for point in &mut copy.points {
            point.id = format!("copy/{}", point.id);
            if let Some(b) = &mut point.baseline_id {
                *b = format!("copy/{b}");
            }
        }
        copy
    }]);
    let results = run_plan(&plan, &RunnerConfig { jobs: 4, quiet: true, ..RunnerConfig::default() });

    assert_eq!(plan.len(), 8);
    assert_eq!(results.unique_runs, 4, "duplicates must be deduplicated");
    for r in results.iter().take(4) {
        let copy = results.expect(&format!("copy/{}", r.point.id));
        assert_eq!(r.report.stats, copy.report.stats);
        assert_eq!(r.wall, copy.wall, "deduplicated points share one timed run");
    }
}

#[test]
fn baseline_pairing_yields_finite_ratios() {
    let results = run_plan(&small_plan(), &RunnerConfig { jobs: 2, quiet: true, ..RunnerConfig::default() });
    for r in results.iter() {
        if r.point.is_baseline {
            assert_eq!(r.normalized, None, "baselines are not normalised to themselves");
        } else {
            let (lat, pow) = r.normalized.expect("non-baselines are paired");
            assert!(lat > 0.0 && pow > 0.0 && lat.is_finite() && pow.is_finite());
        }
    }
}
