//! The paper-suite registry: every plan-based figure/table/ablation as a
//! declarative plan builder plus a table formatter.
//!
//! Each `src/bin/` harness binary is a thin wrapper over one [`Figure`]
//! here ([`main_for`]); the `run_all` binary merges every suite figure
//! into a single plan and executes it in one parallel pass
//! ([`run_all_main`]).

use crate::artifact;
use crate::campaign;
use crate::plan::{labeled, BaselineSel, Design, Labeled, Plan, SweepSpec};
use crate::runner::{run_plan, PlanResults, RunnerConfig};
use crate::{geomean, multicast_workload, print_table};
use rfnoc::{Architecture, FaultSpec, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_sim::{FaultRates, SimConfig};
use rfnoc_topology::{FabricSpec, GridDims};
use rfnoc_traffic::{AppProfile, Placement, TraceKind, TrafficConfig};

/// Options shared by every figure builder.
#[derive(Debug, Clone, Copy, Default)]
pub struct SuiteOptions {
    /// Restrict trace sets and shorten simulation windows — for smoke
    /// tests and CI, not for regenerating the paper numbers.
    pub quick: bool,
}

/// One regenerable figure/table of the paper suite: a plan builder and a
/// renderer over its results.
pub struct Figure {
    /// Short name — binary name, plan-ID prefix, and artifact file stem.
    pub name: &'static str,
    /// Human title printed above the tables.
    pub title: &'static str,
    /// Whether `run_all` includes it by default (probes opt out).
    pub in_suite: bool,
    /// Builds the figure's plan.
    pub build: fn(&SuiteOptions) -> Plan,
    /// Prints tables / writes CSVs from the figure's results.
    pub render: fn(&PlanResults, &SuiteOptions),
}

/// Every plan-based figure, in paper order.
pub fn figures() -> Vec<Figure> {
    vec![
        Figure {
            name: "fig1",
            title: "Figure 1: traffic by Manhattan distance (baseline 16B mesh)",
            in_suite: true,
            build: build_fig1,
            render: render_fig1,
        },
        Figure {
            name: "fig7",
            title: "Figure 7: number of RF-enabled routers vs performance (16B mesh)",
            in_suite: true,
            build: build_fig7,
            render: render_fig7,
        },
        Figure {
            name: "fig8",
            title: "Figure 8: mesh bandwidth reduction (normalised to 16B baseline)",
            in_suite: true,
            build: build_fig8,
            render: render_fig8,
        },
        Figure {
            name: "fig9",
            title: "Figure 9: multicast power and performance (16B mesh)",
            in_suite: true,
            build: build_fig9,
            render: render_fig9,
        },
        Figure {
            name: "fig10",
            title: "Figure 10: overall power vs performance comparison",
            in_suite: true,
            build: build_fig10,
            render: render_fig10,
        },
        Figure {
            name: "app_traces",
            title: "Application traces: adaptive RF-I @4B vs 16B baseline",
            in_suite: true,
            build: build_app_traces,
            render: render_app_traces,
        },
        Figure {
            name: "ablation_injection",
            title: "Ablation: latency vs offered load (Uniform trace)",
            in_suite: true,
            build: build_ablation_injection,
            render: render_ablation_injection,
        },
        Figure {
            name: "ablation_escape_vcs",
            title: "Ablation: escape VC count (adaptive shortcuts @16B)",
            in_suite: true,
            build: build_ablation_escape_vcs,
            render: render_ablation_escape_vcs,
        },
        Figure {
            name: "ablation_adaptive_routing",
            title: "Ablation: shortcut contention-avoidance routing (1Hotspot, 4B mesh)",
            in_suite: true,
            build: build_ablation_adaptive_routing,
            render: render_ablation_adaptive_routing,
        },
        Figure {
            name: "mesh_scaling",
            title: "Scaling: fabrics x RF overlay from 10x10 to 64x64",
            in_suite: true,
            build: build_mesh_scaling,
            render: render_mesh_scaling,
        },
        Figure {
            name: "fault_sweep",
            title: "Fault-injection sweep: graceful degradation under RF and mesh faults",
            in_suite: true,
            build: build_fault_sweep,
            render: render_fault_sweep,
        },
        Figure {
            name: "resilience",
            title: "Resilience campaign: seeded profiles under correlated fault storms",
            in_suite: true,
            build: build_resilience,
            render: render_resilience,
        },
        Figure {
            name: "tune_load",
            title: "Load-tuning probe: injection rate and hotspot intensity",
            in_suite: false,
            build: build_tune_load,
            render: render_tune_load,
        },
    ]
}

/// The figure with the given name.
pub fn figure(name: &str) -> Option<Figure> {
    figures().into_iter().find(|f| f.name == name)
}

// ---------------------------------------------------------------- helpers

fn traces(opts: &SuiteOptions) -> Vec<TraceKind> {
    if opts.quick {
        vec![TraceKind::Uniform, TraceKind::BiDf, TraceKind::Hotspot1]
    } else {
        TraceKind::all().to_vec()
    }
}

fn trace_workloads(opts: &SuiteOptions) -> Vec<Labeled<WorkloadSpec>> {
    traces(opts)
        .into_iter()
        .map(|t| labeled(t.name(), WorkloadSpec::Trace(t)))
        .collect()
}

/// The paper-default simulator, with shortened windows in quick mode.
fn default_sim(opts: &SuiteOptions) -> Vec<Labeled<SimConfig>> {
    vec![labeled("default", windows(opts, SimConfig::paper_baseline(), 10_000, 100_000))]
}

/// Applies (warmup, measure) windows, quartered in quick mode.
pub(crate) fn windows(
    opts: &SuiteOptions,
    mut sim: SimConfig,
    warmup: u64,
    measure: u64,
) -> SimConfig {
    let div = if opts.quick { 4 } else { 1 };
    sim.warmup_cycles = warmup / div;
    sim.measure_cycles = measure / div;
    sim
}

fn adaptive50() -> Architecture {
    Architecture::AdaptiveShortcuts { access_points: 50 }
}

fn fmt_gm_pair(lats: &[f64], pows: &[f64]) -> String {
    match (geomean(lats), geomean(pows)) {
        (Some(l), Some(p)) => format!("{l:.2}/{p:.2}"),
        _ => "-".into(),
    }
}

fn fmt_lat(r: &crate::runner::PointResult) -> String {
    format!(
        "{:.1}{}",
        r.report.avg_latency(),
        if r.report.stats.saturated { "*" } else { "" }
    )
}

// ------------------------------------------------------------------ fig1

fn build_fig1(_opts: &SuiteOptions) -> Plan {
    SweepSpec::new("fig1")
        .designs(vec![Design::new("Baseline", Architecture::Baseline, LinkWidth::B16)])
        .workloads(
            [AppProfile::x264(), AppProfile::bodytrack()]
                .into_iter()
                .map(|p| labeled(p.name, WorkloadSpec::App(p)))
                .collect(),
        )
        .expand()
}

fn render_fig1(results: &PlanResults, _opts: &SuiteOptions) {
    for r in results.iter() {
        let hist = &r.report.stats.distance_histogram;
        let relevant = &hist[1..=14.min(hist.len() - 1)];
        let mut sorted: Vec<u64> = relevant.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let max = relevant.iter().copied().max().unwrap_or(1).max(1);
        let rows: Vec<Vec<String>> = relevant
            .iter()
            .enumerate()
            .map(|(i, &count)| {
                let bar_len = (count * 40 / max) as usize;
                vec![
                    format!("{}", i + 1),
                    count.to_string(),
                    format!(
                        "{}{}",
                        "#".repeat(bar_len),
                        if count > 0 && bar_len == 0 { "." } else { "" }
                    ),
                ]
            })
            .collect();
        print_table(
            &format!(
                "{} traffic by manhattan distance (median = {median} msgs)",
                r.point.labels.workload
            ),
            &["hops", "messages", "profile"],
            &rows,
        );
    }
    println!(
        "\nPaper shape check: bodytrack sends a much greater proportion of \
         single-hop traffic and almost none at 14 hops; x264 peaks at \
         mid-range distances with a long tail."
    );
}

// ------------------------------------------------------------------ fig7

fn build_fig7(opts: &SuiteOptions) -> Plan {
    SweepSpec::new("fig7")
        .designs(vec![
            Design::new("Baseline", Architecture::Baseline, LinkWidth::B16),
            Design::new("Static", Architecture::StaticShortcuts, LinkWidth::B16),
            Design::new("Adaptive-50", adaptive50(), LinkWidth::B16),
            Design::new(
                "Adaptive-25",
                Architecture::AdaptiveShortcuts { access_points: 25 },
                LinkWidth::B16,
            ),
        ])
        .workloads(trace_workloads(opts))
        .sims(default_sim(opts))
        .baseline(BaselineSel::design("Baseline"))
        .expand()
}

/// Renders a "rows = workloads, columns = non-baseline designs" table of
/// normalised latency/power pairs, with a geometric-mean row, and writes
/// the CSV — the shape of Figures 7, 8, and 9.
fn norm_table(
    title: &str,
    results: &PlanResults,
    select: impl Fn(&crate::runner::PointResult) -> bool,
    csv: &str,
) {
    let mut designs: Vec<String> = Vec::new();
    let mut workloads: Vec<String> = Vec::new();
    for r in results.iter().filter(|r| select(r)) {
        if r.normalized.is_some() && !designs.contains(&r.point.labels.design) {
            designs.push(r.point.labels.design.clone());
        }
        if !workloads.contains(&r.point.labels.workload) {
            workloads.push(r.point.labels.workload.clone());
        }
    }
    let mut rows = Vec::new();
    let mut norms: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); designs.len()];
    for workload in &workloads {
        let mut row = vec![workload.clone()];
        for (i, design) in designs.iter().enumerate() {
            let point = results.iter().find(|r| {
                select(r)
                    && r.point.labels.workload == *workload
                    && r.point.labels.design == *design
            });
            match point.and_then(|r| r.normalized) {
                Some((lat, pow)) => {
                    norms[i].0.push(lat);
                    norms[i].1.push(pow);
                    row.push(format!("{lat:.2}/{pow:.2}"));
                }
                None => row.push("-".into()),
            }
        }
        rows.push(row);
    }
    let mut avg = vec!["**average**".to_string()];
    for (lats, pows) in &norms {
        avg.push(fmt_gm_pair(lats, pows));
    }
    rows.push(avg);
    let headers: Vec<String> =
        std::iter::once("trace".to_string()).chain(designs.iter().cloned()).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table(title, &header_refs, &rows);
    artifact::write_csv_logged(csv, &header_refs, &rows);
}

fn render_fig7(results: &PlanResults, _opts: &SuiteOptions) {
    norm_table(
        "Normalised (latency / power) vs 16B baseline",
        results,
        |_| true,
        "results/csv/fig7.csv",
    );
    println!(
        "\nPaper averages: Static 0.80 / 1.11, Adaptive-50 0.68 / 1.24, Adaptive-25 0.72 / 1.15"
    );
}

// ------------------------------------------------------------------ fig8

fn build_fig8(opts: &SuiteOptions) -> Plan {
    SweepSpec::new("fig8")
        .designs(Design::cross(
            &[
                ("Baseline", Architecture::Baseline),
                ("Static", Architecture::StaticShortcuts),
                ("Adaptive", adaptive50()),
            ],
            &LinkWidth::all(),
        ))
        .workloads(trace_workloads(opts))
        .sims(default_sim(opts))
        .baseline(BaselineSel::design(format!("Baseline @{}", LinkWidth::B16)))
        .expand()
}

fn render_fig8(results: &PlanResults, _opts: &SuiteOptions) {
    // Include the 16B baseline column itself (normalised 1.00/1.00).
    let mut designs: Vec<String> = Vec::new();
    let mut workloads: Vec<String> = Vec::new();
    for r in results.iter() {
        if !designs.contains(&r.point.labels.design) {
            designs.push(r.point.labels.design.clone());
        }
        if !workloads.contains(&r.point.labels.workload) {
            workloads.push(r.point.labels.workload.clone());
        }
    }
    let mut rows = Vec::new();
    let mut norms: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); designs.len()];
    for workload in &workloads {
        let mut row = vec![workload.clone()];
        for (i, design) in designs.iter().enumerate() {
            let r = results
                .iter()
                .find(|r| {
                    r.point.labels.workload == *workload && r.point.labels.design == *design
                })
                .expect("full cross product");
            let (lat, pow) = r.normalized.unwrap_or((1.0, 1.0));
            norms[i].0.push(lat);
            norms[i].1.push(pow);
            row.push(format!("{lat:.2}/{pow:.2}"));
        }
        rows.push(row);
    }
    let mut avg = vec!["**average**".to_string()];
    for (lats, pows) in &norms {
        avg.push(fmt_gm_pair(lats, pows));
    }
    rows.push(avg);
    let headers: Vec<String> =
        std::iter::once("trace".to_string()).chain(designs.iter().cloned()).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table("Normalised latency/power", &header_refs, &rows);
    artifact::write_csv_logged("results/csv/fig8.csv", &header_refs, &rows);
    println!("\nPaper anchors (averages over the probabilistic traces):");
    println!("  Baseline 8B: 1.04 / 0.52      Baseline 4B: 1.27 / 0.28");
    println!("  Static   4B: 1.11 / 0.33      Adaptive 4B: 0.99 / 0.38");
}

// ------------------------------------------------------------------ fig9

const FIG9_LOCALITIES: [f64; 2] = [0.2, 0.5];

fn build_fig9(opts: &SuiteOptions) -> Plan {
    let mut workloads = Vec::new();
    for &locality in &FIG9_LOCALITIES {
        let tag = (locality * 100.0) as u32;
        for trace in traces(opts) {
            workloads.push(labeled(
                format!("{}+MC{tag}", trace.name()),
                multicast_workload(trace, locality),
            ));
        }
    }
    SweepSpec::new("fig9")
        .designs(vec![
            Design::new("Baseline", Architecture::Baseline, LinkWidth::B16),
            Design::new("VCT", Architecture::VctMulticast, LinkWidth::B16),
            Design::new(
                "MC",
                Architecture::RfMulticast { access_points: 50 },
                LinkWidth::B16,
            ),
            Design::new(
                "MC+SC",
                Architecture::AdaptiveWithMulticast { access_points: 50, shortcut_budget: 15 },
                LinkWidth::B16,
            ),
        ])
        .workloads(workloads)
        .sims(default_sim(opts))
        .baseline(BaselineSel::design("Baseline"))
        .expand()
}

fn render_fig9(results: &PlanResults, _opts: &SuiteOptions) {
    for &locality in &FIG9_LOCALITIES {
        let tag = (locality * 100.0) as u32;
        let suffix = format!("+MC{tag}");
        norm_table(
            &format!("Locality {tag}% — normalised latency/power vs 16B baseline"),
            results,
            |r| r.point.labels.workload.ends_with(&suffix),
            &format!("results/csv/fig9_loc{tag}.csv"),
        );
    }
    println!("\nPaper averages: VCT-20 ≈ 0.97/1.0, MC ≈ 0.86/1.11, MC+SC ≈ 0.63/1.25");
}

// ----------------------------------------------------------------- fig10

fn build_fig10(opts: &SuiteOptions) -> Plan {
    let unicast = SweepSpec::new("fig10a")
        .designs(Design::cross(
            &[
                ("Mesh Baseline", Architecture::Baseline),
                ("Mesh Wire Shortcuts", Architecture::WireShortcuts),
                ("Mesh Static Shortcuts", Architecture::StaticShortcuts),
                ("Mesh Adaptive Shortcuts", adaptive50()),
            ],
            &LinkWidth::all(),
        ))
        .workloads(trace_workloads(opts))
        .sims(default_sim(opts))
        .baseline(BaselineSel::design(format!("Mesh Baseline @{}", LinkWidth::B16)))
        .expand();
    let mc_workloads: Vec<Labeled<WorkloadSpec>> = traces(opts)
        .into_iter()
        .map(|t| labeled(format!("{}+MC20", t.name()), multicast_workload(t, 0.2)))
        .collect();
    let multicast = SweepSpec::new("fig10b")
        .designs(Design::cross(
            &[
                ("Mesh Baseline", Architecture::Baseline),
                ("RF Multicast", Architecture::RfMulticast { access_points: 50 }),
                ("Adaptive Shortcuts", adaptive50()),
                (
                    "Adaptive + RF Multicast",
                    Architecture::AdaptiveWithMulticast {
                        access_points: 50,
                        shortcut_budget: 15,
                    },
                ),
            ],
            &LinkWidth::all(),
        ))
        .workloads(mc_workloads)
        .sims(default_sim(opts))
        .baseline(BaselineSel::design(format!("Mesh Baseline @{}", LinkWidth::B16)))
        .expand();
    Plan::merge([unicast, multicast])
}

fn render_fig10(results: &PlanResults, _opts: &SuiteOptions) {
    for (prefix, title) in [
        ("fig10a/", "Figure 10a: unicast architectures"),
        ("fig10b/", "Figure 10b: multicast architectures (traces + coherence multicasts)"),
    ] {
        let mut designs: Vec<String> = Vec::new();
        for r in results.iter().filter(|r| r.point.id.starts_with(prefix)) {
            if !designs.contains(&r.point.labels.design) {
                designs.push(r.point.labels.design.clone());
            }
        }
        let mut rows = Vec::new();
        for design in &designs {
            let (mut lats, mut pows) = (Vec::new(), Vec::new());
            for r in results.iter().filter(|r| {
                r.point.id.starts_with(prefix) && r.point.labels.design == *design
            }) {
                let (lat, pow) = r.normalized.unwrap_or((1.0, 1.0));
                lats.push(lat);
                pows.push(pow);
            }
            // Figure 10 plots normalised *performance* (1/latency) on the
            // x-axis and normalised power on the y-axis.
            let (Some(latency), Some(power)) = (geomean(&lats), geomean(&pows)) else {
                continue;
            };
            rows.push(vec![
                design.clone(),
                format!("{:.2}", 1.0 / latency),
                format!("{power:.2}"),
                format!("{latency:.2}"),
            ]);
        }
        let headers = ["design", "norm. performance", "norm. power", "norm. latency"];
        print_table(title, &headers, &rows);
        artifact::write_csv_logged(
            &format!("results/csv/{}.csv", prefix.trim_end_matches('/')),
            &headers,
            &rows,
        );
    }
    println!(
        "\nPaper headline: adaptive RF-I on a 4B mesh ≈ baseline performance at \
         ~35% power; adaptive + RF multicast on 4B ≈ +15% performance at ~31% power."
    );
}

// ------------------------------------------------------------ app_traces

fn build_app_traces(opts: &SuiteOptions) -> Plan {
    let mut apps = AppProfile::paper_suite();
    if opts.quick {
        apps.truncate(2);
    }
    SweepSpec::new("app_traces")
        .designs(vec![
            Design::new("Baseline", Architecture::Baseline, LinkWidth::B16),
            Design::new("Adaptive @4B", adaptive50(), LinkWidth::B4),
        ])
        .workloads(apps.into_iter().map(|p| labeled(p.name, WorkloadSpec::App(p))).collect())
        .sims(default_sim(opts))
        .baseline(BaselineSel::design("Baseline"))
        .expand()
}

fn render_app_traces(results: &PlanResults, _opts: &SuiteOptions) {
    let mut rows = Vec::new();
    let (mut lats, mut pows) = (Vec::new(), Vec::new());
    for r in results.iter().filter(|r| r.point.labels.design == "Adaptive @4B") {
        let baseline =
            results.expect(r.point.baseline_id.as_deref().expect("paired"));
        let (lat, pow) = r.normalized.expect("paired");
        lats.push(lat);
        pows.push(pow);
        rows.push(vec![
            r.point.labels.workload.clone(),
            format!("{:.1}", baseline.report.avg_latency()),
            format!("{:.1}", r.report.avg_latency()),
            format!("{lat:.2}"),
            format!("{:.0}%", (1.0 - pow) * 100.0),
        ]);
    }
    rows.push(vec![
        "**average**".to_string(),
        String::new(),
        String::new(),
        geomean(&lats).map_or("-".into(), |g| format!("{g:.2}")),
        geomean(&pows).map_or("-".into(), |g| format!("{:.0}%", (1.0 - g) * 100.0)),
    ]);
    let headers =
        ["app", "base lat (cyc)", "adaptive lat (cyc)", "norm. latency", "power saving"];
    print_table("Adaptive @4B normalised to 16B baseline", &headers, &rows);
    artifact::write_csv_logged("results/csv/app_traces.csv", &headers, &rows);
    println!("\nPaper: ~67% average power saving at comparable latency.");
}

// -------------------------------------------------- ablation_injection

fn injection_rates(opts: &SuiteOptions) -> Vec<f64> {
    if opts.quick {
        vec![0.004, 0.012]
    } else {
        vec![0.002, 0.004, 0.008, 0.012, 0.016, 0.020]
    }
}

fn rate_traffics(rates: &[f64]) -> Vec<Labeled<TrafficConfig>> {
    rates
        .iter()
        .map(|&rate| {
            labeled(
                format!("{rate}"),
                TrafficConfig { injection_rate: rate, ..TrafficConfig::default() },
            )
        })
        .collect()
}

fn build_ablation_injection(opts: &SuiteOptions) -> Plan {
    SweepSpec::new("ablation_injection")
        .designs(vec![
            Design::new("base 16B", Architecture::Baseline, LinkWidth::B16),
            Design::new("base 4B", Architecture::Baseline, LinkWidth::B4),
            Design::new("static 16B", Architecture::StaticShortcuts, LinkWidth::B16),
            Design::new("adaptive 4B", adaptive50(), LinkWidth::B4),
        ])
        .workloads(vec![labeled("Uniform", WorkloadSpec::Trace(TraceKind::Uniform))])
        .sims(vec![labeled(
            "default",
            windows(opts, SimConfig::paper_baseline(), 2_000, 25_000),
        )])
        .traffics(rate_traffics(&injection_rates(opts)))
        .expand()
}

fn render_ablation_injection(results: &PlanResults, opts: &SuiteOptions) {
    let designs = ["base 16B", "base 4B", "static 16B", "adaptive 4B"];
    let mut rows = Vec::new();
    for rate in injection_rates(opts) {
        let mut row = vec![format!("{rate}")];
        for design in designs {
            let r = results
                .iter()
                .find(|r| {
                    r.point.labels.traffic == format!("{rate}")
                        && r.point.labels.design == design
                })
                .expect("full cross product");
            row.push(fmt_lat(r));
        }
        rows.push(row);
    }
    print_table(
        "Average message latency in cycles (* = saturated)",
        &["rate (msg/node/cyc)", "base 16B", "base 4B", "static 16B", "adaptive 4B"],
        &rows,
    );
    println!(
        "\nExpectation: the 4B baseline saturates earliest; adaptive RF-I\n\
         pushes the 4B mesh's saturation point back toward the 16B baseline's."
    );
}

// ------------------------------------------------- ablation_escape_vcs

fn escape_counts(opts: &SuiteOptions) -> Vec<usize> {
    if opts.quick {
        vec![2, 8]
    } else {
        vec![1, 2, 4, 8, 12]
    }
}

fn build_ablation_escape_vcs(opts: &SuiteOptions) -> Plan {
    let sims = escape_counts(opts)
        .into_iter()
        .map(|escape| {
            let mut sim = windows(opts, SimConfig::paper_baseline(), 2_000, 30_000);
            sim.vcs_escape = escape;
            labeled(format!("{escape}"), sim)
        })
        .collect();
    SweepSpec::new("ablation_escape_vcs")
        .designs(vec![Design::new("Adaptive-50", adaptive50(), LinkWidth::B16)])
        .workloads(vec![labeled("1Hotspot", WorkloadSpec::Trace(TraceKind::Hotspot1))])
        .sims(sims)
        .traffics(vec![labeled(
            "0.01",
            TrafficConfig { injection_rate: 0.01, ..TrafficConfig::default() },
        )])
        .expand()
}

fn render_ablation_escape_vcs(results: &PlanResults, _opts: &SuiteOptions) {
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.point.labels.sim.clone(),
                format!("{:.1}", r.report.avg_latency()),
                format!("{:.3}", r.report.stats.completion_rate()),
                if r.report.stats.saturated { "yes".into() } else { "no".into() },
            ]
        })
        .collect();
    print_table(
        "1Hotspot at elevated load (0.01 msg/node/cycle)",
        &["escape VCs", "latency (cyc)", "completion rate", "saturated"],
        &rows,
    );
    println!("\nThe paper's choice of 8 escape VCs sits on the flat part of the curve.");
}

// ------------------------------------------- ablation_adaptive_routing

fn detour_rates(opts: &SuiteOptions) -> Vec<f64> {
    if opts.quick {
        vec![0.008, 0.016]
    } else {
        vec![0.004, 0.008, 0.012, 0.016]
    }
}

fn build_ablation_adaptive_routing(opts: &SuiteOptions) -> Plan {
    let sims = [("detour on", true), ("detour off", false)]
        .into_iter()
        .map(|(label, detour)| {
            let mut sim = windows(opts, SimConfig::paper_baseline(), 2_000, 25_000);
            sim.adaptive_shortcut_routing = detour;
            labeled(label, sim)
        })
        .collect();
    SweepSpec::new("ablation_adaptive_routing")
        .designs(vec![Design::new("Adaptive-50 @4B", adaptive50(), LinkWidth::B4)])
        .workloads(vec![labeled("1Hotspot", WorkloadSpec::Trace(TraceKind::Hotspot1))])
        .sims(sims)
        .traffics(rate_traffics(&detour_rates(opts)))
        .baseline(BaselineSel::sim("detour on"))
        .expand()
}

fn render_ablation_adaptive_routing(results: &PlanResults, opts: &SuiteOptions) {
    let mut rows = Vec::new();
    for rate in detour_rates(opts) {
        let traffic = format!("{rate}");
        let find = |sim: &str| {
            results
                .iter()
                .find(|r| r.point.labels.traffic == traffic && r.point.labels.sim == sim)
                .expect("full cross product")
        };
        let with = find("detour on");
        let without = find("detour off");
        let benefit = without.normalized.map_or(0.0, |(lat, _)| (lat - 1.0) * 100.0);
        rows.push(vec![
            traffic.clone(),
            fmt_lat(with),
            fmt_lat(without),
            format!("{benefit:+.1}%"),
        ]);
    }
    print_table(
        "Average latency with/without the mesh detour (* = saturated)",
        &["rate (msg/node/cyc)", "detour on", "detour off", "detour benefit"],
        &rows,
    );
}

// ------------------------------------------------------- mesh_scaling

/// Grid sides of the scaling sweep. Quick mode keeps the paper size plus
/// 32x32 — large enough to exercise the incremental selector and the
/// ring-mesh gateways end-to-end, small enough for CI.
fn scaling_sides(opts: &SuiteOptions) -> Vec<usize> {
    if opts.quick {
        vec![10, 32]
    } else {
        vec![10, 16, 32, 64]
    }
}

/// Ring-mesh tile edge for a given side: 5 divides the paper's 10, every
/// other swept side is a multiple of 4.
fn ring_tile(side: usize) -> usize {
    if side.is_multiple_of(4) {
        4
    } else {
        5
    }
}

/// Both fabrics at one size, labelled for the placement dimension.
fn scaling_fabrics(side: usize) -> Vec<(String, FabricSpec)> {
    let dims = GridDims::new(side, side);
    vec![
        (format!("{side}x{side}-mesh"), FabricSpec::mesh(dims)),
        (format!("{side}x{side}-ring"), FabricSpec::ring_mesh(dims, ring_tile(side))),
    ]
}

fn build_mesh_scaling(opts: &SuiteOptions) -> Plan {
    let plans = scaling_sides(opts).into_iter().map(|side| {
        let nodes = side * side;
        SweepSpec::new(format!("mesh_scaling/{side}x{side}"))
            .designs(vec![
                Design::new("mesh-only", Architecture::Baseline, LinkWidth::B16),
                // Static rather than adaptive: it runs the same
                // shortcut selection without the O(n^2) pair-weight
                // profiling pass, which is what keeps 64x64 tractable.
                Design::new("RF overlay", Architecture::StaticShortcuts, LinkWidth::B16),
            ])
            .workloads(vec![labeled("Uniform", WorkloadSpec::Trace(TraceKind::Uniform))])
            .sims(vec![labeled(
                "default",
                windows(opts, SimConfig::paper_baseline(), 2_000, 25_000),
            )])
            .traffics(vec![labeled(
                "scaled",
                // Keep total offered load roughly constant as the fabric
                // grows, so large grids measure distance, not saturation.
                TrafficConfig {
                    injection_rate: 0.008 * 100.0 / nodes as f64,
                    ..TrafficConfig::default()
                },
            )])
            .placements(
                scaling_fabrics(side)
                    .into_iter()
                    .map(|(label, fabric)| {
                        labeled(label, Placement::quadrant_clusters_on(fabric))
                    })
                    .collect(),
            )
            .baseline(BaselineSel::design("mesh-only"))
            .expand()
    });
    Plan::merge(plans)
}

fn render_mesh_scaling(results: &PlanResults, opts: &SuiteOptions) {
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut points = Vec::new();
    let mut trajectory: Vec<(String, f64, f64)> = Vec::new();
    for side in scaling_sides(opts) {
        for (placement, _) in scaling_fabrics(side) {
            let fabric_kind = placement.split('-').next_back().unwrap_or("mesh");
            let find = |design: &str| {
                results
                    .iter()
                    .find(|r| {
                        r.point.labels.placement == placement
                            && r.point.labels.design == design
                    })
                    .expect("full cross product")
            };
            let base = find("mesh-only");
            let rf = find("RF overlay");

            // Build time is not part of the runner's report (it measures
            // the simulated window), so rebuild the RF design's system
            // here and time it — this is the shortcut-selection path the
            // incremental selector has to keep in seconds at 64x64.
            let started = std::time::Instant::now();
            let built = rf.point.experiment.build();
            let build_ms = started.elapsed().as_secs_f64() * 1e3;
            let shortcuts = built.shortcuts.len();

            let throughput = |r: &crate::runner::PointResult| {
                let wall = r.wall.as_secs_f64().max(1e-9);
                let grants: u64 = r.report.stats.port_flits.iter().sum();
                (r.report.stats.end_cycle as f64 / wall, grants as f64 / wall)
            };
            let (cps, gps) = throughput(rf);
            let norm_lat = rf
                .normalized
                .map_or_else(|| "-".into(), |(lat, _)| format!("{lat:.2}"));
            rows.push(vec![
                format!("{side}x{side}"),
                fabric_kind.to_string(),
                format!("{:.1}", base.report.avg_latency()),
                norm_lat.clone(),
                format!("{:.2}", base.report.stats.avg_hops()),
                format!("{:.2}", rf.report.stats.avg_hops()),
                format!("{build_ms:.0}"),
                format!("{:.0}k", cps / 1e3),
            ]);
            csv.push(vec![
                side.to_string(),
                fabric_kind.to_string(),
                format!("{:.3}", base.report.avg_latency()),
                format!("{:.3}", rf.report.avg_latency()),
                norm_lat,
                format!("{:.3}", base.report.stats.avg_hops()),
                format!("{:.3}", rf.report.stats.avg_hops()),
                shortcuts.to_string(),
                format!("{build_ms:.1}"),
                format!("{cps:.0}"),
            ]);
            for (label, r) in [("mesh-only", base), ("rf", rf)] {
                let (cps, gps) = throughput(r);
                points.push(format!(
                    "{{\"side\": {side}, \"fabric\": {}, \"design\": {}, \
                     \"avg_latency_cycles\": {}, \"avg_hops\": {}, \
                     \"saturated\": {}, \"shortcuts\": {shortcuts}, \
                     \"build_ms\": {}, \"sim_wall_ms\": {}, \
                     \"cycles_per_sec\": {}, \"flit_grants_per_sec\": {}}}",
                    artifact::json_str(fabric_kind),
                    artifact::json_str(label),
                    artifact::json_f64(r.report.avg_latency()),
                    artifact::json_f64(r.report.stats.avg_hops()),
                    r.report.stats.saturated,
                    artifact::json_f64(build_ms),
                    artifact::json_f64(r.wall.as_secs_f64() * 1e3),
                    artifact::json_f64(cps),
                    artifact::json_f64(gps),
                ));
            }
            trajectory.push((format!("mesh_scaling_{side}x{side}_{fabric_kind}_rf"), cps, gps));
        }
    }
    print_table(
        "Uniform trace, 16B links, load scaled to keep total injection constant",
        &[
            "grid",
            "fabric",
            "base lat (cyc)",
            "rf lat (norm)",
            "base hops",
            "rf hops",
            "rf build (ms)",
            "sim cyc/s",
        ],
        &rows,
    );
    artifact::write_csv_logged(
        "results/csv/mesh_scaling.csv",
        &[
            "side",
            "fabric",
            "base_latency",
            "rf_latency",
            "rf_latency_norm",
            "base_hops",
            "rf_hops",
            "shortcuts",
            "rf_build_ms",
            "sim_cycles_per_sec",
        ],
        &csv,
    );
    write_scaling_artifact(opts, &points);
    let refs: Vec<artifact::TrajectoryPoint> = trajectory
        .iter()
        .map(|(id, c, g)| artifact::TrajectoryPoint::new(id.as_str(), *c, *g))
        .collect();
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    artifact::append_trajectory(&artifact::git_describe(), unix, opts.quick, &refs);
    println!(
        "\nExpectation: normalised RF latency falls as the grid grows\n\
         (single-cycle shortcuts replace ever-longer multi-hop paths), the\n\
         ring-mesh trades a few extra hops for half the base links, and the\n\
         RF build column stays in seconds even at 64x64 thanks to the\n\
         incremental selector."
    );
}

/// Writes `results/json/BENCH_mesh_scaling.json`: the build-time and
/// simulator-throughput record of the scaling sweep, validated by the CI
/// `scaling-smoke` job.
fn write_scaling_artifact(opts: &SuiteOptions, points: &[String]) {
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut out = String::from("{\n  \"name\": \"BENCH_mesh_scaling\",\n");
    out.push_str(&format!("  \"git\": {},\n", artifact::json_str(&artifact::git_describe())));
    out.push_str(&format!("  \"generated_unix\": {unix},\n"));
    out.push_str(&format!("  \"quick\": {},\n", opts.quick));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str("    ");
        out.push_str(p);
        out.push_str(if i + 1 < points.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    let path = "results/json/BENCH_mesh_scaling.json";
    if let Some(dir) = std::path::Path::new(path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(path, out) {
        Ok(()) => {
            eprintln!("artifact: wrote {path}");
            artifact::ingest_history(std::path::Path::new(path));
        }
        Err(e) => eprintln!("artifact: cannot write {path}: {e}"),
    }
}

// -------------------------------------------------------- fault_sweep

const FAULT_SEED: u64 = 0xF00D;

fn fault_factors(opts: &SuiteOptions) -> Vec<f64> {
    if opts.quick {
        vec![0.0, 2.0]
    } else {
        vec![0.0, 1.0, 2.0, 4.0]
    }
}

/// Baseline expected event counts at fault factor 1.0.
fn base_fault_rates() -> FaultRates {
    FaultRates {
        shortcut_failures: 2.0,
        mesh_link_failures: 1.0,
        glitches: 8.0,
        repair_after: None,
    }
}

fn build_fault_sweep(opts: &SuiteOptions) -> Plan {
    // The fault dimension rides the campaign machinery: factor 0.0 is the
    // fault-free baseline, positive factors scale the random-rate plan.
    let faults = campaign::fault_dimension(&fault_factors(opts), |factor| {
        FaultSpec::Random { seed: FAULT_SEED, rates: base_fault_rates().scaled(factor) }
    });
    SweepSpec::new("fault_sweep")
        .designs(vec![
            Design::new("static", Architecture::StaticShortcuts, LinkWidth::B16),
            Design::new("adaptive", adaptive50(), LinkWidth::B16),
        ])
        .workloads(vec![labeled("1Hotspot", WorkloadSpec::Trace(TraceKind::Hotspot1))])
        .sims(vec![labeled(
            "default",
            windows(opts, SimConfig::paper_baseline(), 2_000, 30_000),
        )])
        .faults(faults)
        .baseline(BaselineSel::fault(campaign::intensity_label(0.0)))
        .expand()
}

fn render_fault_sweep(results: &PlanResults, _opts: &SuiteOptions) {
    let mut rows = Vec::new();
    for r in results.iter() {
        let stats = &r.report.stats;
        let clean = r
            .point
            .baseline_id
            .as_deref()
            .map_or(r, |id| results.expect(id));
        let throughput_x = if clean.report.stats.completed_messages > 0 {
            stats.completed_messages as f64 / clean.report.stats.completed_messages as f64
        } else {
            1.0
        };
        rows.push(vec![
            r.point.labels.design.clone(),
            r.point.labels.fault.clone(),
            format!("{}/{}", stats.shortcut_faults, stats.mesh_link_faults),
            format!("{:.1}", r.report.avg_latency()),
            format!("{:.3}", r.normalized.map_or(1.0, |(lat, _)| lat)),
            format!("{throughput_x:.3}"),
            format!("{:.4}", stats.completion_rate()),
            match &stats.health {
                Some(h) => h.diagnosis.to_string(),
                None => "-".into(),
            },
        ]);
    }
    let headers = [
        "design",
        "fault factor",
        "SC/mesh faults",
        "latency (cyc)",
        "latency vs clean",
        "throughput vs clean",
        "completion",
        "health",
    ];
    print_table("Graceful degradation (1Hotspot, 16B mesh)", &headers, &rows);
    artifact::write_csv_logged("results/csv/fault_sweep.csv", &headers, &rows);
    println!(
        "\nThe full per-point data (tail latencies, wall times, provenance) \
         is in results/json/fault_sweep.json."
    );
}

// --------------------------------------------------------- resilience

fn build_resilience(opts: &SuiteOptions) -> Plan {
    campaign::CampaignSpec::resilience(opts).plan()
}

fn render_resilience(results: &PlanResults, opts: &SuiteOptions) {
    campaign::render_campaign(results, opts);
}

// ---------------------------------------------------------- tune_load

fn tune_points(opts: &SuiteOptions) -> Vec<(f64, f64, f64)> {
    if opts.quick {
        vec![(0.006, 0.30, 4.0), (0.010, 0.30, 4.0)]
    } else {
        vec![
            (0.004, 0.25, 4.0),
            (0.006, 0.30, 4.0),
            (0.008, 0.30, 4.0),
            (0.008, 0.35, 5.0),
            (0.010, 0.30, 4.0),
        ]
    }
}

fn build_tune_load(opts: &SuiteOptions) -> Plan {
    let traffics = tune_points(opts)
        .into_iter()
        .map(|(rate, hot_frac, hot_mult)| {
            labeled(
                format!("rate {rate}, hot_frac {hot_frac}, hot_mult {hot_mult}"),
                TrafficConfig {
                    injection_rate: rate,
                    hot_fraction: hot_frac,
                    hot_multiplier: hot_mult,
                    ..TrafficConfig::default()
                },
            )
        })
        .collect();
    SweepSpec::new("tune_load")
        .designs(vec![
            Design::new("base 16B", Architecture::Baseline, LinkWidth::B16),
            Design::new("static 16B", Architecture::StaticShortcuts, LinkWidth::B16),
            Design::new("adapt 16B", adaptive50(), LinkWidth::B16),
            Design::new("base 4B", Architecture::Baseline, LinkWidth::B4),
            Design::new("adapt 4B", adaptive50(), LinkWidth::B4),
        ])
        .workloads(vec![
            labeled("Uniform", WorkloadSpec::Trace(TraceKind::Uniform)),
            labeled("1Hotspot", WorkloadSpec::Trace(TraceKind::Hotspot1)),
        ])
        .sims(default_sim(opts))
        .traffics(traffics)
        .baseline(BaselineSel::design("base 16B"))
        .expand()
}

fn render_tune_load(results: &PlanResults, _opts: &SuiteOptions) {
    let mut traffics: Vec<String> = Vec::new();
    for r in results.iter() {
        if !traffics.contains(&r.point.labels.traffic) {
            traffics.push(r.point.labels.traffic.clone());
        }
    }
    for traffic in &traffics {
        println!("=== {traffic} ===");
        for workload in ["Uniform", "1Hotspot"] {
            let find = |design: &str| {
                results
                    .iter()
                    .find(|r| {
                        r.point.labels.traffic == *traffic
                            && r.point.labels.workload == workload
                            && r.point.labels.design == design
                    })
                    .expect("full cross product")
            };
            let base16 = find("base 16B");
            let n = |design: &str| {
                let r = find(design);
                format!(
                    "{:.2}{}",
                    r.normalized.map_or(1.0, |(lat, _)| lat),
                    if r.report.stats.saturated { "*" } else { "" }
                )
            };
            println!(
                "  {workload:<10} base16 {:.1}cyc | static16 {} adapt16 {} base4 {} adapt4 {}",
                base16.report.avg_latency(),
                n("static 16B"),
                n("adapt 16B"),
                n("base 4B"),
                n("adapt 4B"),
            );
        }
    }
}

// -------------------------------------------------------- entry points

/// Parses `--quick` out of the process arguments.
fn quick_from_args() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// The shared main of every plan-based figure binary: parse `--jobs`/
/// `--quick`, build the figure's plan, run it in parallel, render the
/// tables, and write the JSON artifact.
///
/// # Panics
///
/// Panics when `name` is not a registered figure.
pub fn main_for(name: &str) {
    let fig = figure(name).unwrap_or_else(|| panic!("unknown figure {name:?}"));
    let opts = SuiteOptions { quick: quick_from_args() };
    let cfg = RunnerConfig::from_args();
    println!("# {}", fig.title);
    let plan = (fig.build)(&opts);
    let results = run_plan(&plan, &cfg);
    (fig.render)(&results, &opts);
    artifact::write_json(fig.name, &results);
    eprintln!(
        "{}: {} points in {:.2?} on {} thread(s) (serial cost {:.2?})",
        fig.name, plan.len(), results.total_wall, results.jobs, results.points_wall
    );
}

/// The `run_all` binary: merge every suite figure (optionally filtered by
/// `--filter <substring>`, extended with `--all` to include probes) into
/// one plan, execute it as a single parallel run, then render each
/// figure's tables and artifacts from the shared results.
pub fn run_all_main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = SuiteOptions { quick: quick_from_args() };
    let cfg = RunnerConfig::from_args();
    let include_probes = args.iter().any(|a| a == "--all");
    let filters: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--filter")
        .filter_map(|(i, _)| args.get(i + 1).map(String::as_str))
        .collect();

    let selected: Vec<Figure> = figures()
        .into_iter()
        .filter(|f| f.in_suite || include_probes || !filters.is_empty())
        .filter(|f| filters.is_empty() || filters.iter().any(|flt| f.name.contains(flt)))
        .collect();
    if selected.is_empty() {
        eprintln!("run_all: no figures match the filter(s) {filters:?}");
        std::process::exit(2);
    }
    eprintln!(
        "run_all: regenerating {} figure(s){}{}",
        selected.len(),
        if opts.quick { " [quick]" } else { "" },
        if filters.is_empty() { String::new() } else { format!(" (filters {filters:?})") },
    );

    let plans: Vec<Plan> = selected.iter().map(|f| (f.build)(&opts)).collect();
    let merged = Plan::merge(plans.iter().cloned());
    let results = run_plan(&merged, &cfg);

    for (fig, plan) in selected.iter().zip(&plans) {
        println!("\n# {}", fig.title);
        let sub = results.subset(plan);
        (fig.render)(&sub, &opts);
        artifact::write_json(fig.name, &sub);
    }
    artifact::write_json("run_all", &results);
    let speedup = results.points_wall.as_secs_f64() / results.total_wall.as_secs_f64().max(1e-9);
    println!(
        "\nrun_all: {} points ({} unique experiments) in {:.2?} on {} thread(s); \
         serial cost {:.2?} ({speedup:.2}x)",
        merged.len(),
        results.unique_runs,
        results.total_wall,
        results.jobs,
        results.points_wall,
    );
}
