//! Monte-Carlo resilience campaigns: seeds × profiles × loads × correlated
//! fault intensities, executed on the parallel plan machinery and
//! summarised into a `RESILIENCE_*` artifact.
//!
//! A campaign crosses the three seeded traffic profiles
//! ([`Profile::Expected`] / `Stress` / `Adversarial`) with a ladder of
//! offered loads and a ladder of correlated-fault intensities (regional
//! mesh storms, load-scaled glitch bursts, and a band-down-during-retune
//! race — see `FaultPlan::correlated`). Every intensity ladder includes
//! `0.0`, which maps to a fault-free run and is the per-point baseline
//! ([`BaselineSel::fault`]), so degradation is always measured against the
//! same profile/seed/load without faults.
//!
//! [`summarize`] reduces the plan results to per-profile saturation
//! points, per-intensity degradation envelopes, recovery-time aggregates
//! (drain, table rewrite, latency re-convergence — see `RecoveryRecord`),
//! and worst-case replay IDs. The artifact deliberately contains no wall
//! times: two runs with the same seeds produce byte-identical summaries
//! (modulo the `generated_unix` stamp, which `rfnoc-cli compare`
//! ignores), so CI can regenerate and diff it as a determinism and
//! regression gate.

use crate::artifact::{git_describe, json_f64, json_str, write_csv_logged};
use crate::plan::{labeled, BaselineSel, Design, Labeled, Plan, SweepSpec};
use crate::runner::{PlanResults, PointResult};
use crate::suite::SuiteOptions;
use crate::{geomean, print_table};
use rfnoc::{Architecture, FaultSpec, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_sim::{RecoveryConfig, RecoveryRecord, SimConfig};
use rfnoc_traffic::{Profile, ProfileSpec, TrafficConfig};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::{SystemTime, UNIX_EPOCH};

/// Master seed for the correlated fault plans of the standard campaign.
pub const CAMPAIGN_FAULT_SEED: u64 = 0x57_0821;

/// The stable label of a fault-intensity rung (`0.0`, `1.0`, …) — shared
/// by the campaign and the fault sweep so baselines pair identically.
pub fn intensity_label(value: f64) -> String {
    format!("{value:.1}")
}

/// Expands an intensity ladder into a fault dimension: `0.0` maps to
/// [`FaultSpec::None`] (the baseline), every positive rung through `mk`.
/// Pair with `BaselineSel::fault(intensity_label(0.0))`.
pub fn fault_dimension<F>(intensities: &[f64], mk: F) -> Vec<Labeled<FaultSpec>>
where
    F: Fn(f64) -> FaultSpec,
{
    intensities
        .iter()
        .map(|&v| {
            let spec = if v > 0.0 { mk(v) } else { FaultSpec::None };
            labeled(intensity_label(v), spec)
        })
        .collect()
}

/// One resilience campaign: the cross product it sweeps and the simulator
/// it runs under. Build the runnable plan with [`CampaignSpec::plan`].
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// Plan name; prefixes every point ID and the artifact file stem.
    pub name: String,
    /// Designs under test (the adversarial profile targets each design's
    /// own selected shortcut set).
    pub designs: Vec<Design>,
    /// Master campaign seeds; each crosses all three profiles.
    pub seeds: Vec<u64>,
    /// Offered loads (injection rates) — the saturation ladder.
    pub loads: Vec<f64>,
    /// Correlated-fault intensities; must include `0.0` (the baseline).
    pub intensities: Vec<f64>,
    /// Seed of the correlated fault plans.
    pub fault_seed: u64,
    /// Simulator config (recovery tracking should be on).
    pub sim: SimConfig,
}

impl CampaignSpec {
    /// The standard resilience campaign: the adaptive-50 RF-I design,
    /// shrunk to one seed and 2×2 load/intensity ladders in quick mode.
    pub fn resilience(opts: &SuiteOptions) -> Self {
        let (seeds, loads, intensities) = if opts.quick {
            (vec![1], vec![0.008, 0.020], vec![0.0, 1.0])
        } else {
            (vec![1, 2], vec![0.006, 0.010, 0.020], vec![0.0, 0.5, 2.0])
        };
        let sim = crate::suite::windows(opts, SimConfig::paper_baseline(), 2_000, 30_000)
            .with_recovery(RecoveryConfig::slo());
        Self {
            name: "resilience".into(),
            designs: vec![Design::new(
                "adaptive",
                Architecture::AdaptiveShortcuts { access_points: 50 },
                LinkWidth::B16,
            )],
            seeds,
            loads,
            intensities,
            fault_seed: CAMPAIGN_FAULT_SEED,
            sim,
        }
    }

    /// profiles × seeds, labelled `"{profile} s{seed}"` — the seed is part
    /// of the point ID, which is the replay handle for worst cases.
    fn workloads(&self) -> Vec<Labeled<WorkloadSpec>> {
        self.seeds
            .iter()
            .flat_map(|&seed| {
                Profile::all().into_iter().map(move |p| {
                    labeled(
                        format!("{} s{seed}", p.label()),
                        WorkloadSpec::Profile(ProfileSpec::new(p, seed)),
                    )
                })
            })
            .collect()
    }

    fn traffics(&self) -> Vec<Labeled<TrafficConfig>> {
        self.loads
            .iter()
            .map(|&rate| {
                labeled(
                    format!("{rate:.3}"),
                    TrafficConfig { injection_rate: rate, ..TrafficConfig::default() },
                )
            })
            .collect()
    }

    /// Expands the campaign into a runnable plan, every point baselined
    /// against its own fault-free (`0.0` intensity) twin.
    ///
    /// # Panics
    ///
    /// Panics when `intensities` does not include `0.0` (the baseline
    /// must be part of the sweep) or when dimension labels collide.
    pub fn plan(&self) -> Plan {
        let seed = self.fault_seed;
        SweepSpec::new(self.name.clone())
            .designs(self.designs.clone())
            .workloads(self.workloads())
            .sims(vec![labeled("default", self.sim.clone())])
            .traffics(self.traffics())
            .faults(fault_dimension(&self.intensities, |intensity| {
                FaultSpec::Correlated { seed, intensity }
            }))
            .baseline(BaselineSel::fault(intensity_label(0.0)))
            .expand()
    }
}

// ------------------------------------------------------------- summary

/// Running mean/max over `u64` samples (`mean()` is NaN when empty,
/// which the JSON writer renders as `null`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MeanMax {
    /// Samples absorbed.
    pub count: usize,
    /// Sum of samples.
    pub sum: u64,
    /// Largest sample.
    pub max: u64,
}

impl MeanMax {
    fn push(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
    }

    /// Mean of the absorbed samples (NaN when none).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Recovery-time aggregates over every [`RecoveryRecord`] of a result
/// subset: drain, table-rewrite, and latency re-convergence durations.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecoveryAggregate {
    /// Fault recoveries tracked.
    pub records: usize,
    /// Recoveries whose windowed latency re-converged within ε.
    pub converged: usize,
    /// Drain durations (fault → retune applied).
    pub drain: MeanMax,
    /// Table-rewrite durations (retune applied → tables rewritten).
    pub rewrite: MeanMax,
    /// Convergence durations (fault → windowed mean back within ε).
    pub convergence: MeanMax,
}

impl RecoveryAggregate {
    fn absorb(&mut self, records: &[RecoveryRecord]) {
        for r in records {
            self.records += 1;
            if r.converged() {
                self.converged += 1;
            }
            if let Some(d) = r.drain_cycles {
                self.drain.push(d);
            }
            if let Some(w) = r.rewrite_cycles {
                self.rewrite.push(w);
            }
            if let Some(c) = r.convergence_cycles {
                self.convergence.push(c);
            }
        }
    }
}

/// One rung of a profile's degradation envelope: all runs of one fault
/// intensity, across seeds and loads.
#[derive(Debug, Clone)]
pub struct IntensitySummary {
    /// Intensity label (`"0.0"`, `"1.0"`, …).
    pub label: String,
    /// Runs aggregated.
    pub runs: usize,
    /// Runs that saturated.
    pub saturated_runs: usize,
    /// Geometric mean of latency normalised to the fault-free twin.
    pub mean_norm_latency: f64,
    /// Worst normalised latency.
    pub max_norm_latency: f64,
    /// Arithmetic mean completion rate.
    pub mean_completion: f64,
    /// Recovery-time aggregates of these runs.
    pub recovery: RecoveryAggregate,
}

/// One profile's campaign outcome.
#[derive(Debug, Clone)]
pub struct ProfileSummary {
    /// The traffic profile.
    pub profile: Profile,
    /// Lowest offered load at which a *fault-free* run of this profile
    /// saturated (`None`: never within the swept ladder).
    pub saturation_rate: Option<f64>,
    /// Plan-point ID of the worst normalised-latency run — the replay
    /// handle (its labels carry the seed, load, and intensity).
    pub worst_point: Option<String>,
    /// That run's normalised latency.
    pub worst_norm_latency: f64,
    /// Degradation envelope, one rung per intensity, mildest first.
    pub degradation: Vec<IntensitySummary>,
}

/// The whole campaign, reduced.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// Per-profile outcomes, mildest profile first.
    pub profiles: Vec<ProfileSummary>,
    /// Worst adversarial degradation minus worst expected degradation
    /// (normalised-latency delta) — how much harder the shortcut-seeking
    /// shape is hit by the same faults.
    pub degradation_delta: f64,
    /// Whether the adversarial profile saturates at an offered load no
    /// higher than the expected profile (never-saturated = ∞).
    pub adversarial_saturates_no_later: bool,
}

fn profile_of(workload_label: &str) -> Option<Profile> {
    Profile::all().into_iter().find(|p| workload_label.starts_with(p.label()))
}

fn norm_latency(r: &PointResult) -> f64 {
    r.normalized.map_or(1.0, |(lat, _)| lat)
}

/// Reduces campaign results to the per-profile summary. Points whose
/// workload label is not a campaign profile are ignored, so this also
/// works on a merged suite run's subset.
pub fn summarize(results: &PlanResults) -> CampaignSummary {
    let mut profiles = Vec::new();
    for profile in Profile::all() {
        let points: Vec<&PointResult> = results
            .iter()
            .filter(|r| profile_of(&r.point.labels.workload) == Some(profile))
            .collect();
        if points.is_empty() {
            continue;
        }
        let mut intensity_labels: Vec<String> = Vec::new();
        for p in &points {
            if !intensity_labels.contains(&p.point.labels.fault) {
                intensity_labels.push(p.point.labels.fault.clone());
            }
        }
        intensity_labels.sort_by(|a, b| {
            a.parse::<f64>().unwrap_or(0.0).total_cmp(&b.parse::<f64>().unwrap_or(0.0))
        });
        let degradation = intensity_labels
            .iter()
            .map(|label| {
                let subset: Vec<&&PointResult> =
                    points.iter().filter(|p| p.point.labels.fault == *label).collect();
                let norms: Vec<f64> = subset.iter().map(|p| norm_latency(p)).collect();
                let mut recovery = RecoveryAggregate::default();
                for p in &subset {
                    recovery.absorb(&p.report.stats.recovery);
                }
                IntensitySummary {
                    label: label.clone(),
                    runs: subset.len(),
                    saturated_runs: subset
                        .iter()
                        .filter(|p| p.report.stats.saturated)
                        .count(),
                    mean_norm_latency: geomean(&norms).unwrap_or(f64::NAN),
                    max_norm_latency: norms.iter().copied().fold(f64::NAN, f64::max),
                    mean_completion: subset
                        .iter()
                        .map(|p| p.report.stats.completion_rate())
                        .sum::<f64>()
                        / subset.len().max(1) as f64,
                    recovery,
                }
            })
            .collect();
        let baseline_label = intensity_labels.first().cloned().unwrap_or_default();
        let mut saturation_rate: Option<f64> = None;
        for p in &points {
            if p.point.labels.fault == baseline_label && p.report.stats.saturated {
                if let Ok(rate) = p.point.labels.traffic.parse::<f64>() {
                    saturation_rate =
                        Some(saturation_rate.map_or(rate, |s| s.min(rate)));
                }
            }
        }
        let worst = points
            .iter()
            .max_by(|a, b| norm_latency(a).total_cmp(&norm_latency(b)))
            .copied();
        profiles.push(ProfileSummary {
            profile,
            saturation_rate,
            worst_point: worst.map(|p| p.point.id.clone()),
            worst_norm_latency: worst.map_or(1.0, norm_latency),
            degradation,
        });
    }
    let find = |p: Profile| profiles.iter().find(|s| s.profile == p);
    let (degradation_delta, adversarial_saturates_no_later) =
        match (find(Profile::Adversarial), find(Profile::Expected)) {
            (Some(adv), Some(exp)) => (
                adv.worst_norm_latency - exp.worst_norm_latency,
                adv.saturation_rate.unwrap_or(f64::INFINITY)
                    <= exp.saturation_rate.unwrap_or(f64::INFINITY),
            ),
            _ => (0.0, true),
        };
    CampaignSummary { profiles, degradation_delta, adversarial_saturates_no_later }
}

// ------------------------------------------------------------ artifact

/// Renders the `RESILIENCE_*` JSON. No wall times: same seeds, same
/// bytes (modulo `generated_unix`), so CI can diff two regenerations.
pub fn render_resilience_json(name: &str, quick: bool, summary: &CampaignSummary) -> String {
    let unix =
        SystemTime::now().duration_since(UNIX_EPOCH).map_or(0, |d| d.as_secs());
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"name\": {},", json_str(&format!("RESILIENCE_{name}")));
    let _ = writeln!(out, "  \"git\": {},", json_str(&git_describe()));
    let _ = writeln!(out, "  \"generated_unix\": {unix},");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(
        out,
        "  \"degradation_delta\": {},",
        json_f64(summary.degradation_delta)
    );
    let _ = writeln!(
        out,
        "  \"adversarial_saturates_no_later\": {},",
        summary.adversarial_saturates_no_later
    );
    out.push_str("  \"profiles\": [\n");
    for (i, p) in summary.profiles.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(out, "\"id\": {}, ", json_str(p.profile.label()));
        match p.saturation_rate {
            Some(rate) => {
                let _ = write!(out, "\"saturation_rate\": {}, ", json_f64(rate));
            }
            None => out.push_str("\"saturation_rate\": null, "),
        }
        match &p.worst_point {
            Some(id) => {
                let _ = write!(out, "\"worst_point\": {}, ", json_str(id));
            }
            None => out.push_str("\"worst_point\": null, "),
        }
        let _ = write!(
            out,
            "\"worst_norm_latency\": {},\n     \"degradation\": [",
            json_f64(p.worst_norm_latency)
        );
        for (j, d) in p.degradation.iter().enumerate() {
            if j > 0 {
                out.push_str(",\n        ");
            } else {
                out.push_str("\n        ");
            }
            let r = &d.recovery;
            out.push('{');
            let _ = write!(out, "\"id\": {}, ", json_str(&d.label));
            let _ = write!(out, "\"runs\": {}, ", d.runs);
            let _ = write!(out, "\"saturated_runs\": {}, ", d.saturated_runs);
            let _ = write!(
                out,
                "\"mean_norm_latency\": {}, ",
                json_f64(d.mean_norm_latency)
            );
            let _ =
                write!(out, "\"max_norm_latency\": {}, ", json_f64(d.max_norm_latency));
            let _ = write!(
                out,
                "\"mean_completion_rate\": {}, ",
                json_f64(d.mean_completion)
            );
            let _ = write!(out, "\"recovery_records\": {}, ", r.records);
            let _ = write!(out, "\"recovery_converged\": {}, ", r.converged);
            let _ =
                write!(out, "\"mean_drain_cycles\": {}, ", json_f64(r.drain.mean()));
            let _ = write!(out, "\"max_drain_cycles\": {}, ", r.drain.max);
            let _ = write!(
                out,
                "\"mean_rewrite_cycles\": {}, ",
                json_f64(r.rewrite.mean())
            );
            let _ = write!(out, "\"max_rewrite_cycles\": {}, ", r.rewrite.max);
            let _ = write!(
                out,
                "\"mean_convergence_cycles\": {}, ",
                json_f64(r.convergence.mean())
            );
            let _ = write!(out, "\"max_convergence_cycles\": {}", r.convergence.max);
            out.push('}');
        }
        out.push_str("]}");
        out.push_str(if i + 1 < summary.profiles.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the summary to `results/json/RESILIENCE_<name>.json`, logging
/// (not propagating) I/O failures; returns the path on success.
pub fn write_resilience_json(
    name: &str,
    quick: bool,
    summary: &CampaignSummary,
) -> Option<PathBuf> {
    let path = PathBuf::from(format!("results/json/RESILIENCE_{name}.json"));
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("artifact: cannot create {}: {e}", dir.display());
            return None;
        }
    }
    match std::fs::write(&path, render_resilience_json(name, quick, summary)) {
        Ok(()) => {
            eprintln!("artifact: wrote {}", path.display());
            crate::artifact::ingest_history(&path);
            Some(path)
        }
        Err(e) => {
            eprintln!("artifact: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// The campaign figure renderer: summary tables, CSV, and the
/// `RESILIENCE_*` artifact.
pub fn render_campaign(results: &PlanResults, opts: &SuiteOptions) {
    let summary = summarize(results);
    let fmt_mm = |m: &MeanMax| {
        if m.count == 0 {
            "-".to_string()
        } else {
            format!("{:.0}/{}", m.mean(), m.max)
        }
    };
    let mut rows = Vec::new();
    for p in &summary.profiles {
        for d in &p.degradation {
            rows.push(vec![
                p.profile.label().to_string(),
                d.label.clone(),
                format!("{}/{}", d.saturated_runs, d.runs),
                format!("{:.3}", d.mean_norm_latency),
                format!("{:.3}", d.max_norm_latency),
                format!("{:.4}", d.mean_completion),
                format!("{}/{}", d.recovery.converged, d.recovery.records),
                fmt_mm(&d.recovery.drain),
                fmt_mm(&d.recovery.rewrite),
                fmt_mm(&d.recovery.convergence),
            ]);
        }
    }
    let headers = [
        "profile",
        "intensity",
        "saturated",
        "gm lat vs clean",
        "max lat vs clean",
        "completion",
        "recovered",
        "drain (mean/max)",
        "rewrite (mean/max)",
        "converge (mean/max)",
    ];
    print_table("Resilience campaign: degradation and recovery", &headers, &rows);
    write_csv_logged("results/csv/resilience.csv", &headers, &rows);
    for p in &summary.profiles {
        let sat = p
            .saturation_rate
            .map_or("beyond swept loads".into(), |r| format!("at load {r:.3}"));
        println!(
            "{}: saturates {sat}; worst run {} ({:.3}x clean latency)",
            p.profile.label(),
            p.worst_point.as_deref().unwrap_or("-"),
            p.worst_norm_latency,
        );
    }
    println!(
        "adversarial-vs-expected degradation delta: {:+.3}x; adversarial \
         saturates no later than expected: {}",
        summary.degradation_delta, summary.adversarial_saturates_no_later,
    );
    write_resilience_json("resilience", opts.quick, &summary);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{run_plan, RunnerConfig};

    #[test]
    fn fault_dimension_zero_is_faultless() {
        let dim = fault_dimension(&[0.0, 1.5], |v| FaultSpec::Correlated {
            seed: 7,
            intensity: v,
        });
        assert_eq!(dim[0].label, "0.0");
        assert_eq!(dim[0].value, FaultSpec::None);
        assert_eq!(dim[1].label, "1.5");
        assert!(matches!(dim[1].value, FaultSpec::Correlated { intensity, .. }
            if (intensity - 1.5).abs() < 1e-12));
    }

    #[test]
    fn resilience_plan_shape() {
        let opts = SuiteOptions { quick: true };
        let plan = CampaignSpec::resilience(&opts).plan();
        // 3 profiles × 1 seed × 2 loads × 2 intensities on 1 design.
        assert_eq!(plan.len(), 12);
        for point in &plan.points {
            if point.labels.fault == "0.0" {
                assert!(point.is_baseline, "{}", point.id);
            } else {
                assert!(point.baseline_id.is_some(), "{}", point.id);
            }
        }
    }

    #[test]
    fn tiny_campaign_summarizes_and_renders() {
        let mut spec = CampaignSpec::resilience(&SuiteOptions { quick: true });
        spec.loads = vec![0.02];
        spec.sim.warmup_cycles = 200;
        spec.sim.measure_cycles = 2_000;
        let results =
            run_plan(&spec.plan(), &RunnerConfig { jobs: 2, quiet: true, ..RunnerConfig::default() });
        let summary = summarize(&results);
        assert_eq!(summary.profiles.len(), 3);
        for p in &summary.profiles {
            assert_eq!(p.degradation.len(), 2);
            assert_eq!(p.degradation[0].label, "0.0");
            assert!(p.worst_point.is_some());
            // Fault-free rung normalises to exactly 1.0 (its own baseline).
            assert!((p.degradation[0].mean_norm_latency - 1.0).abs() < 1e-9);
            // The correlated plan fired something at intensity 1.0.
            assert!(p.degradation[1].recovery.records > 0, "{:?}", p.profile);
        }
        let json = render_resilience_json("t", true, &summary);
        assert!(json.contains("\"id\": \"adversarial\""));
        assert!(json.contains("\"degradation_delta\""));
        assert!(!json.contains("wall_ms"), "artifact must stay wall-time free");
    }

    #[test]
    fn mean_max_null_when_empty() {
        let mm = MeanMax::default();
        assert!(mm.mean().is_nan());
        assert_eq!(json_f64(mm.mean()), "null");
        let mut mm = MeanMax::default();
        mm.push(4);
        mm.push(8);
        assert!((mm.mean() - 6.0).abs() < 1e-12);
        assert_eq!(mm.max, 8);
    }
}
