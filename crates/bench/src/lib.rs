//! Shared helpers for the paper-reproduction benchmark harness.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md`'s experiment index). Most are thin wrappers over the
//! sweep harness: [`plan`] declares cross-product sweeps, [`runner`]
//! executes them across worker threads, [`artifact`] writes structured
//! JSON/CSV results, and [`suite`] registers every figure's plan builder
//! and table formatter. This root module holds the remaining common
//! plumbing (tables, CSV, geometric means).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod campaign;
pub mod ledger;
pub mod perfetto;
pub mod plan;
pub mod profile;
pub mod runner;
pub mod scenarios;
pub mod suite;
pub mod svg;
pub mod telemetry;

use rfnoc::{Architecture, Experiment, RunReport, SystemConfig, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_traffic::TraceKind;

/// Builds the standard experiment for an architecture/width/workload
/// triple with paper-default parameters.
pub fn experiment(arch: Architecture, width: LinkWidth, workload: WorkloadSpec) -> Experiment {
    Experiment::new(SystemConfig::new(arch, width), workload)
}

/// Runs one experiment, printing a progress line to stderr.
pub fn run_logged(arch: Architecture, width: LinkWidth, workload: WorkloadSpec) -> RunReport {
    eprintln!("  running {} @{width} on {} ...", arch.name(), workload.name());
    let report = experiment(arch, width, workload).run();
    if report.stats.saturated {
        eprintln!("    WARNING: saturated (latency is a lower bound)");
    }
    report
}

/// The multicast-augmented workload used by the Figure 9/10b experiments.
pub fn multicast_workload(base: TraceKind, locality: f64) -> WorkloadSpec {
    WorkloadSpec::TraceWithMulticast { base, locality, rate_per_cache: 0.001 }
}

/// Formats a normalised `(latency, power)` pair.
pub fn fmt_norm(pair: (f64, f64)) -> String {
    format!("{:.2}x lat  {:.2}x pow", pair.0, pair.1)
}

/// Geometric-mean helper for averaging normalised results across traces
/// (ratios should be averaged geometrically). Returns `None` on an empty
/// slice or any non-positive value, where the mean is undefined.
pub fn geomean(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|&v| v <= 0.0) {
        return None;
    }
    Some((values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp())
}

/// Prints a Markdown-style table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    println!("| {} |", headers.join(" | "));
    println!("|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!((geomean(&[0.5, 0.5]).unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[1.0, 0.0]), None);
    }

    #[test]
    fn fmt_norm_renders() {
        assert_eq!(fmt_norm((0.991, 0.352)), "0.99x lat  0.35x pow");
    }
}

/// Writes rows as CSV next to the Markdown output (for plotting).
///
/// Cells containing commas or quotes are quoted per RFC 4180.
///
/// # Errors
///
/// Propagates I/O errors from creating or writing the file.
pub fn write_csv(
    path: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(dir) = std::path::Path::new(path).parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    let escape = |cell: &str| {
        if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
            format!("\"{}\"", cell.replace('"', "\"\""))
        } else {
            cell.to_string()
        }
    };
    writeln!(file, "{}", headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","))?;
    for row in rows {
        writeln!(
            file,
            "{}",
            row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod csv_tests {
    #[test]
    fn csv_roundtrip_escaping() {
        let dir = std::env::temp_dir().join("rfnoc_csv_test");
        let path = dir.join("t.csv");
        let path_str = path.to_str().unwrap();
        super::write_csv(
            path_str,
            &["a", "b"],
            &[vec!["plain".into(), "with,comma".into()], vec!["q\"uote".into(), "x".into()]],
        )
        .unwrap();
        let text = std::fs::read_to_string(path_str).unwrap();
        assert_eq!(text, "a,b\nplain,\"with,comma\"\n\"q\"\"uote\",x\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
