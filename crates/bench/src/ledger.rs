//! The run-ledger sink: streams the runner's point-lifecycle records and
//! the engine's heartbeat/shard records onto one JSONL timeline.
//!
//! The sink is the single outlet for runner progress. It tees three ways:
//!
//! * **human one-liners** to stderr (suppressed by `--quiet`),
//! * **structured JSONL** to `results/ledger/<name>.jsonl` when `--ledger
//!   <name>` is set — one flat object per line, every line stamped with
//!   `t_ms` (wall milliseconds since the sink was created) so records
//!   from concurrent workers and from inside the engine share one
//!   timeline. `--ledger -` streams the same JSONL to **stdout** instead
//!   of a file (pipe it into `jq`, `rfnoc-cli tail -`, or a collector).
//!   Human one-liners always go to *stderr*, so stdout stays pure JSONL;
//!   add `--quiet` only to silence the human channel — it never affects
//!   the ledger stream itself, and
//! * **the observatory hub** when `--obs-port <p>` is set: every record
//!   is mirrored into an in-process [`rfnoc::obs::ObsHub`] serving
//!   `/metrics`, `/healthz`, and `/events` over HTTP while the run is
//!   live. File and socket see the same records in the same order; the
//!   sink's `Drop` closes the hub and briefly waits for connected
//!   `/events` subscribers to drain.
//!
//! Lines are flushed as they are emitted so `rfnoc-cli tail --follow`
//! (or plain `tail -f`) sees them live.

use crate::artifact::json_str;
use crate::runner::RunnerConfig;
use rfnoc::obs::ObsHub;
use std::io::Write;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Heartbeat interval (cycles) for the engine-level ledger the runner
/// enables on each experiment when a ledger file is being written: two
/// thousand cycles keeps tens of heartbeats per standard measurement
/// window without measurable overhead.
pub const ENGINE_HEARTBEAT_CYCLES: u64 = 2_000;

/// How long a dropping sink waits for live `/events` subscribers to
/// receive the final records before the process moves on.
const OBS_DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// A runner progress sink: human one-liners on stderr plus an optional
/// JSONL ledger stream (file or stdout) and an optional live HTTP
/// observatory. Shared by the runner's worker threads (the stream writer
/// sits behind a mutex; stderr is line-atomic already).
pub struct LedgerSink {
    out: Option<Mutex<Box<dyn Write + Send>>>,
    path: Option<PathBuf>,
    hub: Option<Arc<ObsHub>>,
    obs_addr: Option<SocketAddr>,
    quiet: bool,
    start: Instant,
}

impl std::fmt::Debug for LedgerSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LedgerSink")
            .field("out", &self.out.as_ref().map(|_| "..."))
            .field("path", &self.path)
            .field("obs_addr", &self.obs_addr)
            .field("quiet", &self.quiet)
            .finish()
    }
}

impl LedgerSink {
    /// A sink with no ledger stream: human output only (or nothing, when
    /// `quiet`).
    pub fn disabled(quiet: bool) -> Self {
        Self {
            out: None,
            path: None,
            hub: None,
            obs_addr: None,
            quiet,
            start: Instant::now(),
        }
    }

    /// Builds the sink a [`RunnerConfig`] asks for: a JSONL file under
    /// `results/ledger/` when `--ledger <name>` was given (a name
    /// containing `/` or ending in `.jsonl` is taken as a path verbatim;
    /// `-` streams to stdout), stderr teeing unless `--quiet`, and a live
    /// observatory server when `--obs-port <p>` was given (`0` picks a
    /// free port). Stream-creation and bind failures are reported and
    /// degrade rather than aborting the run.
    pub fn from_config(cfg: &RunnerConfig) -> Self {
        let mut sink = Self::disabled(cfg.quiet);
        if let Some(port) = cfg.obs_port {
            let hub = Arc::new(ObsHub::new());
            match rfnoc::obs::spawn_server(Arc::clone(&hub), port) {
                Ok(addr) => {
                    sink.hub = Some(hub);
                    sink.obs_addr = Some(addr);
                    sink.human(&format!(
                        "obs: serving http://{addr}/metrics /healthz /events"
                    ));
                }
                Err(e) => eprintln!("obs: cannot bind port {port}: {e}"),
            }
        }
        let Some(name) = &cfg.ledger else { return sink };
        if name == "-" {
            sink.out = Some(Mutex::new(Box::new(std::io::stdout())));
            return sink;
        }
        let path = if name.contains('/') || name.ends_with(".jsonl") {
            PathBuf::from(name)
        } else {
            PathBuf::from(format!("results/ledger/{name}.jsonl"))
        };
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("ledger: cannot create {}: {e}", dir.display());
                return sink;
            }
        }
        match std::fs::File::create(&path) {
            Ok(f) => {
                sink.out = Some(Mutex::new(Box::new(std::io::BufWriter::new(f))));
                sink.path = Some(path);
            }
            Err(e) => eprintln!("ledger: cannot create {}: {e}", path.display()),
        }
        sink
    }

    /// Whether ledger records go anywhere (file, stdout, or observatory):
    /// the runner enables the engine-level ledger on each experiment only
    /// when this is true.
    pub fn enabled(&self) -> bool {
        self.out.is_some() || self.hub.is_some()
    }

    /// The ledger file's path, when one is being written (`None` for
    /// stdout streaming).
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The observatory hub, when `--obs-port` started one.
    pub fn hub(&self) -> Option<&Arc<ObsHub>> {
        self.hub.as_ref()
    }

    /// The bound observatory address, when `--obs-port` started one.
    pub fn obs_addr(&self) -> Option<SocketAddr> {
        self.obs_addr
    }

    /// Wall milliseconds since the sink was created — the `t_ms` stamp.
    pub fn t_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Appends one record to the ledger stream and observatory hub
    /// (no-op without either). `fields` is the record's inner JSON —
    /// `"kind": ..., ...` — without braces; the sink prepends the `t_ms`
    /// stamp and wraps the object. Each line is flushed so followers see
    /// it immediately.
    pub fn emit(&self, fields: &str) {
        if self.out.is_none() && self.hub.is_none() {
            return;
        }
        let line = format!("{{\"t_ms\": {:.3}, {fields}}}", self.t_ms());
        if let Some(out) = &self.out {
            let mut w = out.lock().expect("ledger writer");
            if w.write_all(line.as_bytes())
                .and_then(|()| w.write_all(b"\n"))
                .and_then(|()| w.flush())
                .is_err()
            {
                // A dead ledger stream (disk full, closed pipe) must not
                // kill the run; the error surfaces once via stderr below.
                drop(w);
                eprintln!("ledger: write failed; further records may be lost");
            }
        }
        if let Some(hub) = &self.hub {
            hub.push_line(&line);
        }
    }

    /// Emits a `"kind"`-tagged record: `extra` is appended after the kind
    /// tag (pass `""` for none).
    pub fn emit_kind(&self, kind: &str, extra: &str) {
        if extra.is_empty() {
            self.emit(&format!("\"kind\": {}", json_str(kind)));
        } else {
            self.emit(&format!("\"kind\": {}, {extra}", json_str(kind)));
        }
    }

    /// Prints a human progress line to stderr unless `--quiet`.
    pub fn human(&self, line: &str) {
        if !self.quiet {
            eprintln!("{line}");
        }
    }
}

impl Drop for LedgerSink {
    fn drop(&mut self) {
        if let Some(hub) = &self.hub {
            hub.close();
            if !hub.wait_drained(OBS_DRAIN_TIMEOUT) {
                eprintln!("obs: subscribers still attached after drain timeout");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_sink(name: &str) -> (LedgerSink, PathBuf) {
        let path = std::env::temp_dir()
            .join("rfnoc_ledger_sink_test")
            .join(format!("{name}.jsonl"));
        let cfg = RunnerConfig {
            ledger: Some(path.to_str().unwrap().to_string()),
            quiet: true,
            ..RunnerConfig::default()
        };
        (LedgerSink::from_config(&cfg), path)
    }

    #[test]
    fn sink_writes_stamped_jsonl() {
        let (sink, path) = temp_sink("stamped");
        assert!(sink.enabled());
        sink.emit_kind("plan_start", "\"points\": 3");
        sink.emit_kind("plan_finish", "");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with("{\"t_ms\": "), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"kind\": \"plan_start\", \"points\": 3"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disabled_sink_is_inert() {
        let sink = LedgerSink::disabled(true);
        assert!(!sink.enabled());
        assert!(sink.path().is_none());
        assert!(sink.hub().is_none());
        sink.emit_kind("heartbeat", "\"cycle\": 1"); // must not panic
    }

    #[test]
    fn stdout_sink_is_enabled_without_a_path() {
        let cfg = RunnerConfig {
            ledger: Some("-".to_string()),
            quiet: true,
            ..RunnerConfig::default()
        };
        let sink = LedgerSink::from_config(&cfg);
        assert!(sink.enabled());
        assert!(sink.path().is_none(), "stdout streaming has no file path");
    }

    #[test]
    fn obs_hub_sees_emitted_records() {
        let cfg = RunnerConfig {
            obs_port: Some(0),
            quiet: true,
            ..RunnerConfig::default()
        };
        let sink = LedgerSink::from_config(&cfg);
        assert!(sink.enabled(), "a hub alone enables the sink");
        assert!(sink.obs_addr().is_some());
        sink.emit_kind("plan_start", "\"points\": 1");
        sink.emit_kind("plan_finish", "\"wall_ms\": 1.0");
        let hub = sink.hub().unwrap();
        assert_eq!(hub.lines_pushed(), 2);
        let summary = hub.summary();
        assert!(summary.plan_wall_ms.is_some());
    }
}
