//! The run-ledger sink: streams the runner's point-lifecycle records and
//! the engine's heartbeat/shard records onto one JSONL timeline.
//!
//! The sink is the single outlet for runner progress. It tees two ways:
//!
//! * **human one-liners** to stderr (suppressed by `--quiet`), and
//! * **structured JSONL** to `results/ledger/<name>.jsonl` when `--ledger
//!   <name>` is set — one flat object per line, every line stamped with
//!   `t_ms` (wall milliseconds since the sink was created) so records
//!   from concurrent workers and from inside the engine share one
//!   timeline.
//!
//! `--quiet` therefore means "human output off"; the ledger file, when
//! configured, is still written. Lines are flushed as they are emitted so
//! `rfnoc-cli tail --follow` (or plain `tail -f`) sees them live.

use crate::artifact::json_str;
use crate::runner::RunnerConfig;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// Heartbeat interval (cycles) for the engine-level ledger the runner
/// enables on each experiment when a ledger file is being written: two
/// thousand cycles keeps tens of heartbeats per standard measurement
/// window without measurable overhead.
pub const ENGINE_HEARTBEAT_CYCLES: u64 = 2_000;

/// A runner progress sink: human one-liners on stderr plus an optional
/// JSONL ledger file. Shared by the runner's worker threads (the file
/// writer sits behind a mutex; stderr is line-atomic already).
#[derive(Debug)]
pub struct LedgerSink {
    file: Option<Mutex<std::io::BufWriter<std::fs::File>>>,
    path: Option<PathBuf>,
    quiet: bool,
    start: Instant,
}

impl LedgerSink {
    /// A sink with no ledger file: human output only (or nothing, when
    /// `quiet`).
    pub fn disabled(quiet: bool) -> Self {
        Self { file: None, path: None, quiet, start: Instant::now() }
    }

    /// Builds the sink a [`RunnerConfig`] asks for: a JSONL file under
    /// `results/ledger/` when `--ledger <name>` was given (a name
    /// containing `/` or ending in `.jsonl` is taken as a path verbatim),
    /// stderr teeing unless `--quiet`. File-creation failures are
    /// reported and degrade to a file-less sink rather than aborting the
    /// run.
    pub fn from_config(cfg: &RunnerConfig) -> Self {
        let mut sink = Self::disabled(cfg.quiet);
        let Some(name) = &cfg.ledger else { return sink };
        let path = if name.contains('/') || name.ends_with(".jsonl") {
            PathBuf::from(name)
        } else {
            PathBuf::from(format!("results/ledger/{name}.jsonl"))
        };
        if let Some(dir) = path.parent() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("ledger: cannot create {}: {e}", dir.display());
                return sink;
            }
        }
        match std::fs::File::create(&path) {
            Ok(f) => {
                sink.file = Some(Mutex::new(std::io::BufWriter::new(f)));
                sink.path = Some(path);
            }
            Err(e) => eprintln!("ledger: cannot create {}: {e}", path.display()),
        }
        sink
    }

    /// Whether a ledger file is being written.
    pub fn enabled(&self) -> bool {
        self.file.is_some()
    }

    /// The ledger file's path, when one is being written.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Wall milliseconds since the sink was created — the `t_ms` stamp.
    pub fn t_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Appends one record to the ledger file (no-op without one).
    /// `fields` is the record's inner JSON — `"kind": ..., ...` — without
    /// braces; the sink prepends the `t_ms` stamp and wraps the object.
    /// Each line is flushed so followers see it immediately.
    pub fn emit(&self, fields: &str) {
        let Some(file) = &self.file else { return };
        let line = format!("{{\"t_ms\": {:.3}, {fields}}}\n", self.t_ms());
        let mut w = file.lock().expect("ledger writer");
        if w.write_all(line.as_bytes()).and_then(|()| w.flush()).is_err() {
            // A dead ledger file (disk full, deleted directory) must not
            // kill the run; the error surfaces once via stderr below.
            drop(w);
            eprintln!("ledger: write failed; further records may be lost");
        }
    }

    /// Emits a `"kind"`-tagged record: `extra` is appended after the kind
    /// tag (pass `""` for none).
    pub fn emit_kind(&self, kind: &str, extra: &str) {
        if extra.is_empty() {
            self.emit(&format!("\"kind\": {}", json_str(kind)));
        } else {
            self.emit(&format!("\"kind\": {}, {extra}", json_str(kind)));
        }
    }

    /// Prints a human progress line to stderr unless `--quiet`.
    pub fn human(&self, line: &str) {
        if !self.quiet {
            eprintln!("{line}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_sink(name: &str) -> (LedgerSink, PathBuf) {
        let path = std::env::temp_dir()
            .join("rfnoc_ledger_sink_test")
            .join(format!("{name}.jsonl"));
        let cfg = RunnerConfig {
            ledger: Some(path.to_str().unwrap().to_string()),
            quiet: true,
            ..RunnerConfig::default()
        };
        (LedgerSink::from_config(&cfg), path)
    }

    #[test]
    fn sink_writes_stamped_jsonl() {
        let (sink, path) = temp_sink("stamped");
        assert!(sink.enabled());
        sink.emit_kind("plan_start", "\"points\": 3");
        sink.emit_kind("plan_finish", "");
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            assert!(line.starts_with("{\"t_ms\": "), "{line}");
            assert!(line.ends_with('}'), "{line}");
        }
        assert!(lines[0].contains("\"kind\": \"plan_start\", \"points\": 3"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disabled_sink_is_inert() {
        let sink = LedgerSink::disabled(true);
        assert!(!sink.enabled());
        assert!(sink.path().is_none());
        sink.emit_kind("heartbeat", "\"cycle\": 1"); // must not panic
    }

}
