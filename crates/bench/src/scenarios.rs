//! Canonical instrumented operating points shared by the observability
//! binaries (`telemetry_report`, `profile_report`).
//!
//! Both reports probe the same fig7-style points on the paper's 10×10
//! system — a low load well under the knee, a load comfortably past the
//! 16B uniform saturation knee, and a mid-run whole-band fault — so their
//! artifacts are comparable run-to-run and report-to-report. This module
//! is the single definition of those points.

use rfnoc::{Architecture, Experiment, SystemConfig, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_sim::{FaultEvent, FaultPlan, TelemetryConfig};
use rfnoc_traffic::{TraceKind, TrafficConfig};

/// Injection rate (messages/node/cycle) of the low-load operating point:
/// far below the knee, so queueing is negligible and latency is mostly
/// pipeline.
pub const LOW_LOAD_RATE: f64 = 0.008;

/// Injection rate of the saturated operating point: comfortably past the
/// 16B uniform saturation knee, where contention dominates latency.
pub const SATURATED_RATE: f64 = 0.14;

/// Simulation windows: `(warmup, measure, drain, telemetry interval)`.
pub fn windows(quick: bool) -> (u64, u64, u64, u64) {
    if quick {
        (500, 4_000, 10_000, 250)
    } else {
        (2_000, 20_000, 20_000, 1_000)
    }
}

/// The cycle at which the canonical fault scenario kills the RF band:
/// the middle of the measurement window.
pub fn fault_cycle(quick: bool) -> u64 {
    let (warmup, measure, _, _) = windows(quick);
    warmup + measure / 2
}

/// An instrumented experiment at one operating point: `arch` at 16B on
/// the Uniform trace, telemetry sampling every interval. `profile`
/// additionally enables the per-hop delay-attribution channel.
pub fn instrumented_experiment(
    arch: Architecture,
    quick: bool,
    injection_rate: f64,
    profile: bool,
) -> Experiment {
    let (warmup, measure, drain, interval) = windows(quick);
    let mut system = SystemConfig::new(arch, LinkWidth::B16);
    system.sim.warmup_cycles = warmup;
    system.sim.measure_cycles = measure;
    system.sim.drain_cycles = drain;
    system.sim.telemetry = Some(if profile {
        TelemetryConfig::profiling(interval)
    } else {
        TelemetryConfig::every(interval)
    });
    let traffic = TrafficConfig { injection_rate, ..TrafficConfig::default() };
    Experiment::new(system, WorkloadSpec::Trace(TraceKind::Uniform)).with_traffic(traffic)
}

/// The canonical fault scenario: `arch` at [`LOW_LOAD_RATE`] with the
/// whole RF band failing at [`fault_cycle`].
pub fn fault_experiment(arch: Architecture, quick: bool, profile: bool) -> Experiment {
    instrumented_experiment(arch, quick, LOW_LOAD_RATE, profile)
        .with_fault_plan(FaultPlan::new(vec![(fault_cycle(quick), FaultEvent::BandDown)]))
}

/// Per-cycle flit capacity of the RF band under the paper baseline, for
/// normalising RF-port utilization.
pub fn rf_capacity() -> u32 {
    rfnoc_sim::SimConfig::paper_baseline().rf_flits_per_cycle()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operating_points_are_ordered() {
        let low = instrumented_experiment(Architecture::Baseline, true, LOW_LOAD_RATE, false);
        let sat = instrumented_experiment(Architecture::Baseline, true, SATURATED_RATE, false);
        assert!(low.traffic.injection_rate < sat.traffic.injection_rate);
        for quick in [true, false] {
            let (warmup, measure, _, interval) = windows(quick);
            assert!(fault_cycle(quick) > warmup);
            assert!(fault_cycle(quick) < warmup + measure);
            assert!(interval > 0);
        }
    }

    #[test]
    fn profile_flag_selects_the_profiling_channel() {
        use rfnoc_sim::ChannelMask;
        let plain = instrumented_experiment(Architecture::StaticShortcuts, true, 0.01, false);
        let prof = instrumented_experiment(Architecture::StaticShortcuts, true, 0.01, true);
        let chan = |e: &Experiment| e.system.sim.telemetry.as_ref().unwrap().channels;
        assert!(!chan(&plain).contains(ChannelMask::PROFILE));
        assert!(chan(&prof).contains(ChannelMask::PROFILE));
        assert!(chan(&prof).contains(ChannelMask::SPANS), "attribution needs spans");
    }
}
