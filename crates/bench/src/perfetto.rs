//! Perfetto/Chrome `trace_event` export of a profiled run.
//!
//! Converts a [`TelemetryReport`] recorded with the PROFILE channel into
//! the JSON trace-event format that `ui.perfetto.dev` (and Chrome's
//! `about:tracing`) loads directly: one track per router (pid 1, tid =
//! router id) and one per RF band (pid 2, tid = band index), a complete
//! `ph:"X"` span per recorded hop (duration = the head flit's occupancy
//! of that router, with the VA/SA/credit wait split in `args`), and a
//! `ph:"i"` instant per fault/retune timeline event. Cycle numbers are
//! emitted as microsecond timestamps, so 1 µs on the Perfetto ruler reads
//! as 1 simulated cycle.

use crate::artifact::json_str;
use crate::telemetry::{event_label, port_name};
use rfnoc_sim::TelemetryReport;
use rfnoc_topology::{GridDims, Shortcut};
use std::path::PathBuf;

/// Synthetic process ids grouping the tracks.
const PID_ROUTERS: u32 = 1;
const PID_BANDS: u32 = 2;

/// Static description of the traced system: geometry for track names and
/// the shortcut set for the per-band tracks.
pub struct TraceSpec<'a> {
    /// Mesh geometry (names the router tracks by coordinate).
    pub dims: GridDims,
    /// RF shortcuts; hops granted to the RF port are mirrored onto the
    /// band track of their source router.
    pub shortcuts: &'a [Shortcut],
    /// Hop spans to emit at most (a Perfetto UI comfort cap, not a data
    /// cap); truncation is surfaced as an instant event in the trace.
    pub max_span_events: usize,
}

impl TraceSpec<'_> {
    fn band_of(&self, router: u32) -> Option<usize> {
        self.shortcuts.iter().position(|s| s.src == router as usize)
    }
}

/// Renders the trace JSON (`{"traceEvents": [...]}`) for one run.
pub fn render_trace(report: &TelemetryReport, spec: &TraceSpec<'_>) -> String {
    let mut out = String::from("{\"traceEvents\": [\n");
    let mut first = true;
    let mut push = |out: &mut String, event: String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str("  ");
        out.push_str(&event);
    };

    // Metadata: name the processes and one thread per router track.
    push(&mut out, meta_event(PID_ROUTERS, None, "process_name", "routers"));
    for r in 0..spec.dims.nodes() {
        let name = format!("router {}", spec.dims.coord_of(r));
        push(&mut out, meta_event(PID_ROUTERS, Some(r as u32), "thread_name", &name));
    }
    if !spec.shortcuts.is_empty() {
        push(&mut out, meta_event(PID_BANDS, None, "process_name", "rf bands"));
        for (b, s) in spec.shortcuts.iter().enumerate() {
            let name = format!(
                "band {} -> {}",
                spec.dims.coord_of(s.src),
                spec.dims.coord_of(s.dst)
            );
            push(&mut out, meta_event(PID_BANDS, Some(b as u32), "thread_name", &name));
        }
    }

    // One complete span per recorded hop, on its router's track; RF hops
    // are mirrored onto their band's track.
    let truncated = report.hops.len().saturating_sub(spec.max_span_events);
    for h in report.hops.iter().take(spec.max_span_events) {
        let span = span_event(
            PID_ROUTERS,
            h.router,
            h.arrived_at,
            h.occupancy().max(1),
            &format!(
                "pkt {} {}->{}",
                h.packet,
                port_name(report, h.port_in as usize),
                port_name(report, h.port_out as usize)
            ),
            h.va_wait(),
            h.sa_wait(),
            h.credit_waits,
        );
        push(&mut out, span);
        if h.port_out as usize == report.ports - 1 {
            if let Some(b) = spec.band_of(h.router) {
                let band_span = span_event(
                    PID_BANDS,
                    b as u32,
                    h.arrived_at,
                    h.occupancy().max(1),
                    &format!("pkt {} on band", h.packet),
                    h.va_wait(),
                    h.sa_wait(),
                    h.credit_waits,
                );
                push(&mut out, band_span);
            }
        }
    }

    // Fault/retune instants on the router process's first track.
    for e in &report.events {
        let ev = format!(
            "{{\"ph\": \"i\", \"pid\": {PID_ROUTERS}, \"tid\": 0, \"ts\": {}, \"s\": \"g\", \"name\": {}}}",
            e.cycle,
            json_str(&event_label(&e.kind))
        );
        push(&mut out, ev);
    }
    if truncated > 0 || report.dropped_hops > 0 {
        let note = format!(
            "trace truncated: {truncated} hop spans omitted, {} dropped at capture",
            report.dropped_hops
        );
        let ev = format!(
            "{{\"ph\": \"i\", \"pid\": {PID_ROUTERS}, \"tid\": 0, \"ts\": 0, \"s\": \"g\", \"name\": {}}}",
            json_str(&note)
        );
        push(&mut out, ev);
    }

    out.push_str("\n]}\n");
    out
}

fn meta_event(pid: u32, tid: Option<u32>, kind: &str, name: &str) -> String {
    let tid = tid.unwrap_or(0);
    format!(
        "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": {tid}, \"name\": {}, \"args\": {{\"name\": {}}}}}",
        json_str(kind),
        json_str(name)
    )
}

#[allow(clippy::too_many_arguments)]
fn span_event(
    pid: u32,
    tid: u32,
    ts: u64,
    dur: u64,
    name: &str,
    va_wait: u64,
    sa_wait: u64,
    credit_waits: u32,
) -> String {
    format!(
        "{{\"ph\": \"X\", \"pid\": {pid}, \"tid\": {tid}, \"ts\": {ts}, \"dur\": {dur}, \
         \"name\": {}, \"args\": {{\"va_wait\": {va_wait}, \"sa_wait\": {sa_wait}, \
         \"credit_waits\": {credit_waits}}}}}",
        json_str(name)
    )
}

/// Writes the trace to `results/json/<name>.json`, logging (not
/// propagating) I/O failures; returns the path on success.
pub fn write_trace(
    name: &str,
    report: &TelemetryReport,
    spec: &TraceSpec<'_>,
) -> Option<PathBuf> {
    let path = PathBuf::from(format!("results/json/{name}.json"));
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("perfetto: cannot create {}: {e}", dir.display());
            return None;
        }
    }
    match std::fs::write(&path, render_trace(report, spec)) {
        Ok(()) => {
            eprintln!("perfetto: wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("perfetto: cannot write {}: {e}", path.display());
            None
        }
    }
}
