//! Delay-attribution artifacts: aggregates per-packet [`DelayBreakdown`]s
//! into a per-component cycle budget and renders `PROFILE_*.json`.
//!
//! A profiled run (telemetry with the PROFILE channel) yields one exact
//! decomposition per completed unicast packet: source queueing, route
//! compute, VA wait, switch traversal, SA wait, link traversal, and tail
//! serialization, summing to the end-to-end latency cycle-for-cycle.
//! This module sums those budgets — overall and split by whether the
//! packet rode an RF shortcut — and computes the mesh-vs-RF contention
//! comparison on *shortcut-covered pairs*: the (src, dest) pairs that
//! actually took a shortcut in the RF run, measured in both runs.

use crate::artifact::{git_describe, json_f64, json_str};
use crate::telemetry::port_name;
use rfnoc_sim::{RunStats, TelemetryReport};
use std::collections::HashSet;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Summed delay components over a set of attributed packets, in cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BreakdownAgg {
    /// Packets aggregated.
    pub packets: u64,
    /// Summed end-to-end latency.
    pub total: u64,
    /// Cycles queued at the source before the head entered its router.
    pub source_queue: u64,
    /// Route-computation pipeline cycles.
    pub route: u64,
    /// Cycles stalled waiting for a virtual channel.
    pub va_wait: u64,
    /// Switch-traversal pipeline cycles.
    pub switch: u64,
    /// Cycles stalled waiting for switch allocation.
    pub sa_wait: u64,
    /// The subset of `sa_wait` spent on empty credit counters.
    pub credit_wait: u64,
    /// Link-traversal cycles between routers (and into the ejection port).
    pub link: u64,
    /// Cycles draining body/tail flits after the head ejected.
    pub tail_serialization: u64,
}

impl BreakdownAgg {
    fn add(&mut self, b: &rfnoc_sim::DelayBreakdown) {
        self.packets += 1;
        self.total += b.total;
        self.source_queue += b.source_queue;
        self.route += b.route;
        self.va_wait += b.va_wait;
        self.switch += b.switch;
        self.sa_wait += b.sa_wait;
        self.credit_wait += b.credit_wait;
        self.link += b.link;
        self.tail_serialization += b.tail_serialization;
    }

    /// Sum of the additive components; equals [`Self::total`] exactly
    /// because every per-packet breakdown reconciles.
    pub fn component_sum(&self) -> u64 {
        self.source_queue
            + self.route
            + self.va_wait
            + self.switch
            + self.sa_wait
            + self.link
            + self.tail_serialization
    }

    /// Contention cycles (VA + SA waits).
    pub fn contention(&self) -> u64 {
        self.va_wait + self.sa_wait
    }

    /// Mean contention cycles per packet (0.0 when empty).
    pub fn avg_contention(&self) -> f64 {
        if self.packets == 0 {
            0.0
        } else {
            self.contention() as f64 / self.packets as f64
        }
    }

    fn render(&self) -> String {
        format!(
            "{{\"packets\": {}, \"total_cycles\": {}, \"component_sum\": {}, \
             \"source_queue\": {}, \"route\": {}, \"va_wait\": {}, \"switch\": {}, \
             \"sa_wait\": {}, \"credit_wait\": {}, \"link\": {}, \
             \"tail_serialization\": {}}}",
            self.packets,
            self.total,
            self.component_sum(),
            self.source_queue,
            self.route,
            self.va_wait,
            self.switch,
            self.sa_wait,
            self.credit_wait,
            self.link,
            self.tail_serialization
        )
    }
}

/// One run's aggregated attribution: overall and split by RF usage.
#[derive(Debug, Clone, Default)]
pub struct ProfileSummary {
    /// Every attributed packet.
    pub all: BreakdownAgg,
    /// Packets that rode an RF shortcut.
    pub rf: BreakdownAgg,
    /// Packets that stayed on the mesh.
    pub mesh: BreakdownAgg,
    /// Complete spans that could not be attributed (multicast trees,
    /// truncated hop capture).
    pub unattributed: u64,
}

/// Aggregates every attributable packet of a profiled report.
pub fn summarize(report: &TelemetryReport) -> ProfileSummary {
    let mut s = ProfileSummary::default();
    for span in report.spans.iter().filter(|s| s.is_complete()) {
        match report.attribution(span.packet) {
            Some(b) => {
                s.all.add(&b);
                if b.took_rf {
                    s.rf.add(&b);
                } else {
                    s.mesh.add(&b);
                }
            }
            None => s.unattributed += 1,
        }
    }
    s
}

/// The (src, dest) pairs whose packets rode an RF shortcut in this run —
/// the pairs "covered" by the shortcut overlay under this workload.
pub fn rf_covered_pairs(report: &TelemetryReport) -> HashSet<(u32, u32)> {
    report
        .spans
        .iter()
        .filter(|s| s.took_rf && s.is_complete())
        .map(|s| (s.src, s.dest))
        .collect()
}

/// Aggregates attribution over only the packets whose (src, dest) pair is
/// in `pairs` — used to measure the same traffic subset in two runs.
pub fn summarize_pairs(report: &TelemetryReport, pairs: &HashSet<(u32, u32)>) -> BreakdownAgg {
    let mut agg = BreakdownAgg::default();
    for span in report.spans.iter().filter(|s| s.is_complete()) {
        if pairs.contains(&(span.src, span.dest)) {
            if let Some(b) = report.attribution(span.packet) {
                agg.add(&b);
            }
        }
    }
    agg
}

/// The `k` most-blamed output ports: `(router, port, stall cycles)` in
/// descending order, from [`TelemetryReport::contention_blame`].
pub fn top_blame(report: &TelemetryReport, k: usize) -> Vec<(usize, usize, u64)> {
    let blame = report.contention_blame();
    let mut ports: Vec<(usize, usize, u64)> = blame
        .iter()
        .enumerate()
        .filter(|&(_, &b)| b > 0)
        .map(|(i, &b)| (i / report.ports, i % report.ports, b))
        .collect();
    ports.sort_by_key(|&(_, _, b)| std::cmp::Reverse(b));
    ports.truncate(k);
    ports
}

/// One profiled run to include in the artifact.
pub struct ProfiledRun<'a> {
    /// Stable label, e.g. `"mesh"` or `"rf"`.
    pub label: &'a str,
    /// Architecture display name.
    pub arch: String,
    /// The run's scalar statistics.
    pub stats: &'a RunStats,
    /// The run's telemetry (must carry PROFILE data).
    pub report: &'a TelemetryReport,
}

/// Renders the `PROFILE_<scenario>.json` artifact: provenance, the
/// scenario's operating point, each run's aggregate attribution (overall
/// and RF/mesh split, plus the most-blamed ports), and the mesh-vs-RF
/// contention comparison on shortcut-covered pairs.
pub fn render_json(name: &str, injection_rate: f64, runs: &[ProfiledRun<'_>]) -> String {
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"name\": {},", json_str(name));
    let _ = writeln!(out, "  \"git\": {},", json_str(&git_describe()));
    let _ = writeln!(out, "  \"generated_unix\": {unix},");
    let _ = writeln!(out, "  \"injection_rate\": {},", json_f64(injection_rate));

    // The shortcut-covered pairs come from the RF run; both runs are then
    // measured on exactly that traffic subset.
    let covered = runs
        .iter()
        .find(|r| r.label == "rf")
        .map(|r| rf_covered_pairs(r.report))
        .unwrap_or_default();

    out.push_str("  \"runs\": [\n");
    for (i, run) in runs.iter().enumerate() {
        let s = summarize(run.report);
        out.push_str("    {");
        let _ = write!(out, "\"label\": {}, ", json_str(run.label));
        let _ = write!(out, "\"arch\": {}, ", json_str(&run.arch));
        let _ = write!(out, "\"saturated\": {}, ", run.stats.saturated);
        let _ = write!(out, "\"completed_messages\": {}, ", run.stats.completed_messages);
        let _ = write!(out, "\"unattributed\": {}, ", s.unattributed);
        let _ = write!(out, "\"dropped_hops\": {}, ", run.report.dropped_hops);
        let _ = write!(out, "\"attribution\": {}, ", s.all.render());
        let _ = write!(out, "\"rf_packets\": {}, ", s.rf.render());
        let _ = write!(out, "\"mesh_packets\": {}, ", s.mesh.render());
        let on_covered = summarize_pairs(run.report, &covered);
        let _ = write!(out, "\"covered_pairs\": {}, ", on_covered.render());
        out.push_str("\"blame_top\": [");
        for (j, (r, p, b)) in top_blame(run.report, 8).into_iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"router\": {r}, \"port\": {}, \"stall_cycles\": {b}}}",
                json_str(&port_name(run.report, p))
            );
        }
        out.push_str("]}");
        out.push_str(if i + 1 < runs.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");

    // Head-to-head on the covered pairs.
    let mesh_cov = runs
        .iter()
        .find(|r| r.label == "mesh")
        .map(|r| summarize_pairs(r.report, &covered))
        .unwrap_or_default();
    let rf_cov = runs
        .iter()
        .find(|r| r.label == "rf")
        .map(|r| summarize_pairs(r.report, &covered))
        .unwrap_or_default();
    out.push_str("  \"covered_pair_comparison\": {");
    let _ = write!(out, "\"pairs\": {}, ", covered.len());
    let _ = write!(out, "\"mesh_avg_contention\": {}, ", json_f64(mesh_cov.avg_contention()));
    let _ = write!(out, "\"rf_avg_contention\": {}, ", json_f64(rf_cov.avg_contention()));
    let _ = writeln!(
        out,
        "\"rf_reduces_contention\": {}}}",
        rf_cov.avg_contention() < mesh_cov.avg_contention()
    );
    out.push_str("}\n");
    out
}

/// Writes the artifact to `results/json/<name>.json`, logging (not
/// propagating) I/O failures; returns the path on success.
pub fn write_json(
    name: &str,
    injection_rate: f64,
    runs: &[ProfiledRun<'_>],
) -> Option<PathBuf> {
    let path = PathBuf::from(format!("results/json/{name}.json"));
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("profile: cannot create {}: {e}", dir.display());
            return None;
        }
    }
    match std::fs::write(&path, render_json(name, injection_rate, runs)) {
        Ok(()) => {
            eprintln!("profile: wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("profile: cannot write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfnoc_sim::{
        MessageClass, MessageSpec, Network, NetworkSpec, ScriptedWorkload, SimConfig,
        TelemetryConfig,
    };
    use rfnoc_topology::{GridDims, Shortcut};

    fn profiled_run(shortcuts: Vec<Shortcut>) -> RunStats {
        let mut cfg = SimConfig::paper_baseline();
        cfg.warmup_cycles = 0;
        cfg.measure_cycles = 600;
        cfg.drain_cycles = 10_000;
        cfg.telemetry = Some(TelemetryConfig::profiling(128));
        let dims = GridDims::new(6, 6);
        let spec = if shortcuts.is_empty() {
            NetworkSpec::mesh_baseline(dims, cfg)
        } else {
            NetworkSpec::with_shortcuts(dims, cfg, shortcuts)
        };
        let mut network = Network::new(spec);
        let mut events: Vec<(u64, MessageSpec)> = (0..200u64)
            .map(|i| {
                let src = (i as usize * 7) % 36;
                let dst = (i as usize * 11 + 1) % 36;
                let dst = if dst == src { (dst + 1) % 36 } else { dst };
                (i * 2, MessageSpec::unicast(src, dst, MessageClass::Data))
            })
            .collect();
        for i in 0..40u64 {
            events.push((i * 4, MessageSpec::unicast(0, 35, MessageClass::Data)));
        }
        events.sort_by_key(|&(t, _)| t);
        network.run(&mut ScriptedWorkload::new(events))
    }

    #[test]
    fn summary_reconciles_and_splits() {
        let stats = profiled_run(vec![Shortcut::new(0, 35), Shortcut::new(35, 0)]);
        let tel = stats.telemetry.as_ref().unwrap();
        let s = summarize(tel);
        assert!(s.all.packets > 0);
        assert_eq!(s.all.component_sum(), s.all.total, "aggregate reconciles");
        assert_eq!(s.all.packets, s.rf.packets + s.mesh.packets);
        assert_eq!(s.all.total, s.rf.total + s.mesh.total);
        assert!(s.rf.packets > 0, "corner traffic rides the shortcut");
        assert!(s.all.credit_wait <= s.all.sa_wait, "credit waits nest in SA waits");
        let covered = rf_covered_pairs(tel);
        assert!(covered.contains(&(0, 35)));
        let cov = summarize_pairs(tel, &covered);
        assert!(cov.packets >= 40, "covered pairs include the corner stream");
        assert!(cov.packets <= s.all.packets);
    }

    #[test]
    fn artifact_shape_is_valid_and_reconciled() {
        let stats = profiled_run(vec![Shortcut::new(0, 35), Shortcut::new(35, 0)]);
        let tel = stats.telemetry.as_ref().unwrap();
        let runs = [
            ProfiledRun { label: "mesh", arch: "Baseline".into(), stats: &stats, report: tel },
            ProfiledRun { label: "rf", arch: "Static".into(), stats: &stats, report: tel },
        ];
        let json = render_json("PROFILE_test", 0.05, &runs);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"runs\"",
            "\"attribution\"",
            "\"component_sum\"",
            "\"covered_pair_comparison\"",
            "\"blame_top\"",
            "\"tail_serialization\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn top_blame_is_sorted_and_bounded() {
        let stats = profiled_run(Vec::new());
        let tel = stats.telemetry.as_ref().unwrap();
        let top = top_blame(tel, 5);
        assert!(top.len() <= 5);
        for w in top.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
        assert!(top.iter().all(|&(_, _, b)| b > 0));
    }
}
