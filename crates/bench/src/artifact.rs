//! Structured result artifacts: machine-readable JSON (with provenance)
//! and CSV written alongside the printed tables.
//!
//! Every plan-based bench binary writes `results/json/<name>.json`
//! describing the plan, per-point summaries (latency, tail percentiles,
//! power, area, normalisation, wall time), and run provenance (git
//! describe, timestamp, thread count) — so regenerated figures carry
//! their own methodology. JSON is hand-rolled; the container has no
//! serde and the schema is flat.

use crate::runner::PlanResults;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Escapes a string for a JSON literal.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as JSON: finite values with 4 decimals, else `null`
/// (JSON has no NaN/Infinity).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git is unavailable — the provenance stamp of every artifact.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Renders the full JSON artifact for one named plan's results.
pub fn render_json(name: &str, results: &PlanResults) -> String {
    let unix = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"name\": {},", json_str(name));
    let _ = writeln!(out, "  \"git\": {},", json_str(&git_describe()));
    let _ = writeln!(out, "  \"generated_unix\": {unix},");
    let _ = writeln!(out, "  \"jobs\": {},", results.jobs);
    let _ = writeln!(out, "  \"points_total\": {},", results.results.len());
    let _ = writeln!(out, "  \"unique_experiments\": {},", results.unique_runs);
    let _ = writeln!(
        out,
        "  \"wall_ms\": {},",
        json_f64(results.total_wall.as_secs_f64() * 1e3)
    );
    let _ = writeln!(
        out,
        "  \"points_wall_ms\": {},",
        json_f64(results.points_wall.as_secs_f64() * 1e3)
    );
    out.push_str("  \"points\": [\n");
    for (i, r) in results.iter().enumerate() {
        let stats = &r.report.stats;
        let (p50, p95, p99) = stats.latency_tail();
        let labels = &r.point.labels;
        out.push_str("    {");
        let _ = write!(out, "\"id\": {}, ", json_str(&r.point.id));
        let _ = write!(out, "\"design\": {}, ", json_str(&labels.design));
        let _ = write!(out, "\"workload\": {}, ", json_str(&labels.workload));
        let _ = write!(out, "\"sim\": {}, ", json_str(&labels.sim));
        let _ = write!(out, "\"traffic\": {}, ", json_str(&labels.traffic));
        let _ = write!(out, "\"placement\": {}, ", json_str(&labels.placement));
        let _ = write!(out, "\"fault\": {}, ", json_str(&labels.fault));
        match &r.point.baseline_id {
            Some(b) => {
                let _ = write!(out, "\"baseline_id\": {}, ", json_str(b));
            }
            None => out.push_str("\"baseline_id\": null, "),
        }
        let _ = write!(out, "\"wall_ms\": {}, ", json_f64(r.wall.as_secs_f64() * 1e3));
        let _ = write!(out, "\"avg_latency_cycles\": {}, ", json_f64(r.report.avg_latency()));
        let _ = write!(
            out,
            "\"avg_flit_latency_cycles\": {}, ",
            json_f64(r.report.avg_flit_latency())
        );
        let _ = write!(out, "\"p50_latency_cycles\": {}, ", json_f64(p50));
        let _ = write!(out, "\"p95_latency_cycles\": {}, ", json_f64(p95));
        let _ = write!(out, "\"p99_latency_cycles\": {}, ", json_f64(p99));
        let _ = write!(out, "\"avg_hops\": {}, ", json_f64(stats.avg_hops()));
        let _ = write!(out, "\"injected_messages\": {}, ", stats.injected_messages);
        let _ = write!(out, "\"completed_messages\": {}, ", stats.completed_messages);
        let _ = write!(out, "\"completion_rate\": {}, ", json_f64(stats.completion_rate()));
        let _ = write!(out, "\"power_w\": {}, ", json_f64(r.report.total_power_w()));
        let _ = write!(out, "\"area_mm2\": {}, ", json_f64(r.report.total_area_mm2()));
        let _ = write!(out, "\"saturated\": {}, ", stats.saturated);
        match &stats.health {
            Some(h) => {
                let _ = write!(out, "\"health\": {}, ", json_str(&h.diagnosis.to_string()));
            }
            None => out.push_str("\"health\": null, "),
        }
        let _ = write!(out, "\"shortcut_faults\": {}, ", stats.shortcut_faults);
        let _ = write!(out, "\"mesh_link_faults\": {}, ", stats.mesh_link_faults);
        match r.normalized {
            Some((lat, pow)) => {
                let _ = write!(
                    out,
                    "\"normalized_latency\": {}, \"normalized_power\": {}",
                    json_f64(lat),
                    json_f64(pow)
                );
            }
            None => {
                out.push_str("\"normalized_latency\": null, \"normalized_power\": null");
            }
        }
        out.push('}');
        out.push_str(if i + 1 < results.results.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the JSON artifact to `results/json/<name>.json`, logging (not
/// propagating) I/O failures; returns the path on success.
pub fn write_json(name: &str, results: &PlanResults) -> Option<PathBuf> {
    let path = PathBuf::from(format!("results/json/{name}.json"));
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("artifact: cannot create {}: {e}", dir.display());
            return None;
        }
    }
    match std::fs::write(&path, render_json(name, results)) {
        Ok(()) => {
            eprintln!("artifact: wrote {}", path.display());
            ingest_history(&path);
            Some(path)
        }
        Err(e) => {
            eprintln!("artifact: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// Best-effort ingest of a freshly written artifact into the cross-run
/// trend store ([`rfnoc::history`]). Controlled by `RFNOC_HISTORY`:
/// unset files records under `results/history/`, a path redirects the
/// store, and `off`/`0` disables ingestion entirely. Failures are logged,
/// never propagated — observability must not fail the run. Re-ingesting
/// an unchanged artifact is a no-op (records are content-addressed).
pub fn ingest_history(path: &Path) {
    let Some(store) = rfnoc::history::HistoryStore::from_env() else { return };
    let records = std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|text| rfnoc::compare::parse(&text).map_err(|e| e.to_string()))
        .and_then(|doc| rfnoc::history::HistoryRecord::from_artifact(&doc, None));
    let records = match records {
        Ok(r) => r,
        Err(e) => {
            eprintln!("history: cannot ingest {}: {e}", path.display());
            return;
        }
    };
    let mut added = 0usize;
    for rec in &records {
        match store.ingest(rec) {
            Ok(rfnoc::history::IngestOutcome::Added(_)) => added += 1,
            Ok(rfnoc::history::IngestOutcome::Duplicate(_)) => {}
            Err(e) => {
                eprintln!("history: cannot ingest {}: {e}", path.display());
                return;
            }
        }
    }
    if added > 0 {
        eprintln!(
            "history: {added} new record(s) from {} into {}",
            path.display(),
            store.dir().display()
        );
    }
}

/// The wall-clock noise envelope of a best-of-N timed metric: the spread
/// of the repeat samples behind the reported best value. Stored alongside
/// the metric so the regression gate has a per-row noise prior instead of
/// assuming every row is equally (un)reliable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricSpread {
    /// Smallest repeat sample.
    pub min: f64,
    /// Largest repeat sample.
    pub max: f64,
    /// Population standard deviation of the repeat samples.
    pub stddev: f64,
}

impl MetricSpread {
    /// The spread of `samples`, or `None` when fewer than two repeats
    /// were timed (a single sample has no measurable spread).
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.len() < 2 {
            return None;
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / samples.len() as f64;
        Some(Self { min, max, stddev: var.sqrt() })
    }
}

/// One configuration's headline metrics in a BENCH_trajectory row.
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryPoint {
    /// Configuration id (`mesh10x10_low_load`, `mesh64x64_saturated_t4`).
    pub id: String,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Switch-allocator flit grants per wall-clock second.
    pub flit_grants_per_sec: f64,
    /// Max-over-mean per-shard sweep time on the sharded engine; `None`
    /// on serial configs or when the run was not ledger-instrumented.
    pub shard_imbalance: Option<f64>,
    /// Barrier-wait share of the sharded sweep wall time (`None` like
    /// `shard_imbalance`).
    pub barrier_wait_frac: Option<f64>,
    /// Spread of the `cycles_per_sec` repeat samples (best-of-N runs);
    /// `None` on single-repeat configs. The `_spread_*` metric names
    /// contain "spread", which `rfnoc::compare` treats as informational,
    /// so the noise metadata itself is never gated.
    pub spread: Option<MetricSpread>,
}

impl TrajectoryPoint {
    /// A point with throughput metrics only (the serial-engine shape).
    pub fn new(id: impl Into<String>, cycles_per_sec: f64, flit_grants_per_sec: f64) -> Self {
        Self {
            id: id.into(),
            cycles_per_sec,
            flit_grants_per_sec,
            shard_imbalance: None,
            barrier_wait_frac: None,
            spread: None,
        }
    }
}

/// Renders one BENCH_trajectory row: provenance plus the headline
/// throughput of each config. The row is itself a complete artifact, so a
/// row extracted from the trajectory diffs cleanly against another row.
pub fn trajectory_row(git: &str, unix: u64, quick: bool, configs: &[TrajectoryPoint]) -> String {
    let mut row = String::new();
    let _ = write!(
        row,
        "{{\"git\": {}, \"generated_unix\": {unix}, \"quick\": {quick}, \"configs\": [",
        json_str(git)
    );
    for (i, p) in configs.iter().enumerate() {
        let _ = write!(
            row,
            "{}{{\"id\": {}, \"cycles_per_sec\": {}, \"flit_grants_per_sec\": {}",
            if i == 0 { "" } else { ", " },
            json_str(&p.id),
            json_f64(p.cycles_per_sec),
            json_f64(p.flit_grants_per_sec),
        );
        if let Some(v) = p.shard_imbalance {
            let _ = write!(row, ", \"shard_imbalance\": {}", json_f64(v));
        }
        if let Some(v) = p.barrier_wait_frac {
            let _ = write!(row, ", \"barrier_wait_frac\": {}", json_f64(v));
        }
        if let Some(s) = p.spread {
            let _ = write!(
                row,
                ", \"cycles_per_sec_spread_min\": {}, \"cycles_per_sec_spread_max\": {}, \
                 \"cycles_per_sec_spread_stddev\": {}",
                json_f64(s.min),
                json_f64(s.max),
                json_f64(s.stddev),
            );
        }
        row.push('}');
    }
    row.push_str("]}");
    row
}

/// Appends a row to `results/json/BENCH_trajectory.json`, creating the
/// file on first run. The file is a `{"rows": [...]}` object appended by
/// string splice (no JSON reader needed: the writer owns the format).
pub fn append_trajectory(git: &str, unix: u64, quick: bool, configs: &[TrajectoryPoint]) {
    const PATH: &str = "results/json/BENCH_trajectory.json";
    const TAIL: &str = "\n  ]\n}\n";
    let row = trajectory_row(git, unix, quick, configs);
    let fresh = format!("{{\n  \"name\": \"BENCH_trajectory\",\n  \"rows\": [\n    {row}{TAIL}");
    let content = match std::fs::read_to_string(PATH) {
        Ok(existing) => match existing.strip_suffix(TAIL) {
            Some(head) => format!("{head},\n    {row}{TAIL}"),
            None => {
                eprintln!("WARNING: {PATH} has an unexpected tail; rewriting fresh");
                fresh
            }
        },
        Err(_) => fresh,
    };
    match std::fs::write(PATH, content) {
        Ok(()) => {
            eprintln!("appended trajectory row to {PATH}");
            // Idempotent: rows already in the store hash to the same
            // filename, so only the fresh row actually lands.
            ingest_history(Path::new(PATH));
        }
        Err(e) => eprintln!("WARNING: could not write {PATH}: {e}"),
    }
}

/// Writes a CSV next to the printed table, logging (not propagating)
/// failures — the shared replacement for each binary's hand-rolled
/// `write_csv(...).unwrap_or_else(eprintln!)`.
pub fn write_csv_logged(path: &str, headers: &[&str], rows: &[Vec<String>]) {
    if let Err(e) = crate::write_csv(path, headers, rows) {
        eprintln!("csv: cannot write {path}: {e}");
    } else {
        eprintln!("csv: wrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(1.5), "1.5000");
    }

    #[test]
    fn git_describe_never_empty() {
        assert!(!git_describe().is_empty());
    }

    #[test]
    fn metric_spread_needs_two_samples() {
        assert_eq!(MetricSpread::of(&[]), None);
        assert_eq!(MetricSpread::of(&[5.0]), None);
        let s = MetricSpread::of(&[10.0, 14.0]).unwrap();
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 14.0);
        assert!((s.stddev - 2.0).abs() < 1e-12);
    }

    #[test]
    fn trajectory_row_renders_spread_fields() {
        let mut p = TrajectoryPoint::new("mesh", 100.0, 50.0);
        p.spread = MetricSpread::of(&[90.0, 100.0]);
        let row = trajectory_row("g", 1, true, std::slice::from_ref(&p));
        assert!(row.contains("\"cycles_per_sec_spread_min\": 90.0000"), "{row}");
        assert!(row.contains("\"cycles_per_sec_spread_max\": 100.0000"), "{row}");
        assert!(row.contains("\"cycles_per_sec_spread_stddev\": 5.0000"), "{row}");
        let bare = trajectory_row("g", 1, true, &[TrajectoryPoint::new("m", 1.0, 1.0)]);
        assert!(!bare.contains("spread"), "{bare}");
    }
}
