//! Parallel plan execution: a work-stealing runner over scoped threads.
//!
//! The runner executes every [`RunPoint`] of a [`Plan`] across `--jobs`
//! worker threads (scoped `std::thread` — no dependencies), deduplicating
//! identical experiments (merged suite plans repeat baselines across
//! figures), scheduling the most expensive points first, and reporting
//! per-point timing and live progress on stderr. Results come back in plan
//! order regardless of execution interleaving, and each point's simulation
//! is bit-identical to a serial run — plan-level parallelism never touches
//! simulator state, only which thread runs which self-contained experiment.
//! `--sim-threads N` additionally steps each experiment's router sweep on
//! `N` sharded-engine threads (also bit-identical); the runner then caps
//! `--jobs` so `jobs × sim_threads` stays within the machine's
//! parallelism.

use crate::artifact::{json_f64, json_str};
use crate::ledger::{LedgerSink, ENGINE_HEARTBEAT_CYCLES};
use crate::plan::{Plan, RunPoint};
use rfnoc::RunReport;
use rfnoc_sim::LedgerConfig;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Runner knobs, usually parsed from the command line.
#[derive(Debug, Clone)]
pub struct RunnerConfig {
    /// Worker threads (`--jobs N`; defaults to the available parallelism).
    pub jobs: usize,
    /// Simulator worker threads per experiment (`--sim-threads N`; the
    /// sharded cycle engine, bit-identical at any count). Defaults to 1.
    pub sim_threads: usize,
    /// Suppress human progress lines on stderr (`--quiet`). Quiet means
    /// "human output off", not "no observability": when [`Self::ledger`]
    /// is also set, the structured JSONL ledger is still written in full.
    pub quiet: bool,
    /// Stream a structured run ledger (`--ledger <name>`): point
    /// lifecycle records plus each experiment's engine heartbeats and
    /// per-shard sweep metrics, as JSONL in `results/ledger/<name>.jsonl`
    /// (a value containing `/` or ending in `.jsonl` is used as a path
    /// verbatim; `-` streams JSONL to stdout). `None` (the default)
    /// writes no ledger.
    pub ledger: Option<String>,
    /// Serve the live observatory endpoints (`--obs-port P`): `/metrics`
    /// (Prometheus text), `/healthz`, and `/events` (SSE ledger tail) on
    /// `127.0.0.1:P` for the duration of the run. `0` picks a free port
    /// (printed on stderr). `None` (the default) serves nothing.
    pub obs_port: Option<u16>,
}

impl Default for RunnerConfig {
    fn default() -> Self {
        Self {
            jobs: default_jobs(),
            sim_threads: 1,
            quiet: false,
            ledger: None,
            obs_port: None,
        }
    }
}

/// The machine's available parallelism (1 when unknown).
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

impl RunnerConfig {
    /// Parses `--jobs N` (or `-j N`, or `--jobs=N`), `--sim-threads N`
    /// (or `--sim-threads=N`), `--quiet`, `--ledger NAME` (or
    /// `--ledger=NAME`), and `--obs-port P` (or `--obs-port=P`) out of
    /// the process arguments; every other argument is ignored.
    ///
    /// Exits with status 2 on `--sim-threads 0` — the simulator rejects a
    /// zero thread count ([`rfnoc_sim::ConfigError::ZeroSimThreads`]), so
    /// fail before any experiment runs.
    pub fn from_args() -> Self {
        let mut cfg = Self::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            if arg == "--jobs" || arg == "-j" {
                if let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    cfg.jobs = n;
                    i += 1;
                }
            } else if let Some(v) = arg.strip_prefix("--jobs=") {
                if let Ok(n) = v.parse() {
                    cfg.jobs = n;
                }
            } else if arg == "--sim-threads" {
                if let Some(n) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    cfg.sim_threads = n;
                    i += 1;
                }
            } else if let Some(v) = arg.strip_prefix("--sim-threads=") {
                if let Ok(n) = v.parse() {
                    cfg.sim_threads = n;
                }
            } else if arg == "--ledger" {
                if let Some(name) = args.get(i + 1) {
                    cfg.ledger = Some(name.clone());
                    i += 1;
                }
            } else if let Some(name) = arg.strip_prefix("--ledger=") {
                cfg.ledger = Some(name.to_string());
            } else if arg == "--obs-port" {
                if let Some(p) = args.get(i + 1).and_then(|v| v.parse().ok()) {
                    cfg.obs_port = Some(p);
                    i += 1;
                }
            } else if let Some(v) = arg.strip_prefix("--obs-port=") {
                if let Ok(p) = v.parse() {
                    cfg.obs_port = Some(p);
                }
            } else if arg == "--quiet" {
                cfg.quiet = true;
            }
            i += 1;
        }
        cfg.jobs = cfg.jobs.max(1);
        if cfg.sim_threads == 0 {
            eprintln!("runner: {}", rfnoc_sim::ConfigError::ZeroSimThreads);
            std::process::exit(2);
        }
        cfg
    }

    /// Plan-level worker threads after the simulator-thread budget:
    /// `jobs` is capped so `jobs × sim_threads` does not oversubscribe
    /// the machine's available parallelism.
    pub fn effective_jobs(&self) -> usize {
        let budget = default_jobs() / self.sim_threads.max(1);
        self.jobs.min(budget.max(1))
    }
}

/// One executed point: the point, its report, and how long it took.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// The plan point this result belongs to.
    pub point: RunPoint,
    /// The experiment's report.
    pub report: RunReport,
    /// Wall-clock time of the (deduplicated) experiment run.
    pub wall: Duration,
    /// `(latency, power)` normalised to the point's designated baseline,
    /// when the plan paired one.
    pub normalized: Option<(f64, f64)>,
}

/// All results of a plan, in plan order.
#[derive(Debug, Clone)]
pub struct PlanResults {
    /// Per-point results, index-aligned with the plan's points.
    pub results: Vec<PointResult>,
    /// Wall-clock time of the whole run.
    pub total_wall: Duration,
    /// Worker threads used.
    pub jobs: usize,
    /// Experiments actually executed after deduplication.
    pub unique_runs: usize,
    /// Sum of per-experiment wall times — the serial cost the parallel
    /// run replaced (deduplicated runs counted once).
    pub points_wall: Duration,
}

impl PlanResults {
    /// The result for a point ID.
    pub fn get(&self, id: &str) -> Option<&PointResult> {
        self.results.iter().find(|r| r.point.id == id)
    }

    /// The result for a point ID.
    ///
    /// # Panics
    ///
    /// Panics when the ID is not in the plan — a bug in the caller's
    /// formatter, so fail loudly with the ID.
    pub fn expect(&self, id: &str) -> &PointResult {
        self.get(id).unwrap_or_else(|| panic!("no result for plan point {id:?}"))
    }

    /// Iterates the results in plan order.
    pub fn iter(&self) -> impl Iterator<Item = &PointResult> {
        self.results.iter()
    }

    /// The subset of results belonging to `plan` (by point ID), in that
    /// plan's order — splits a merged suite run back into per-figure
    /// result sets.
    pub fn subset(&self, plan: &Plan) -> PlanResults {
        let results: Vec<PointResult> = plan
            .points
            .iter()
            .map(|p| self.expect(&p.id).clone())
            .collect();
        PlanResults {
            results,
            total_wall: self.total_wall,
            jobs: self.jobs,
            unique_runs: self.unique_runs,
            points_wall: self.points_wall,
        }
    }
}

/// Executes every point of the plan on `cfg.jobs` worker threads and
/// returns results in plan order.
///
/// Identical experiments (by value) run once and share their report.
/// Unique experiments are scheduled longest-estimated-first through an
/// atomic work queue, so stragglers start early and the workers
/// self-balance.
///
/// # Panics
///
/// Panics if a worker thread panics (the panic is propagated).
pub fn run_plan(plan: &Plan, cfg: &RunnerConfig) -> PlanResults {
    let sink = LedgerSink::from_config(cfg);
    run_plan_with(plan, cfg, &sink)
}

/// [`run_plan`] against an explicit progress/ledger sink — the variant
/// for embedders that share one sink across several plans (a campaign's
/// phases on one timeline).
///
/// # Panics
///
/// Panics if a worker thread panics (the panic is propagated).
pub fn run_plan_with(plan: &Plan, cfg: &RunnerConfig, sink: &LedgerSink) -> PlanResults {
    let start = Instant::now();
    // Deduplicate by experiment value; points index into `unique`.
    let mut unique: Vec<&RunPoint> = Vec::new();
    let mut point_to_unique: Vec<usize> = Vec::with_capacity(plan.points.len());
    for point in &plan.points {
        match unique.iter().position(|u| u.experiment == point.experiment) {
            Some(i) => point_to_unique.push(i),
            None => {
                unique.push(point);
                point_to_unique.push(unique.len() - 1);
            }
        }
    }

    // Longest-first schedule over the unique experiments.
    let mut order: Vec<usize> = (0..unique.len()).collect();
    order.sort_by(|&a, &b| {
        unique[b]
            .experiment
            .cost_estimate()
            .total_cmp(&unique[a].experiment.cost_estimate())
            .then(a.cmp(&b))
    });

    let jobs = cfg.effective_jobs().clamp(1, unique.len().max(1));
    sink.human(&format!(
        "plan: {} points ({} unique experiments) on {} thread{}",
        plan.len(),
        unique.len(),
        jobs,
        if jobs == 1 { "" } else { "s" }
    ));
    sink.emit_kind(
        "plan_start",
        &format!(
            "\"points\": {}, \"unique\": {}, \"dedup_hits\": {}, \
             \"jobs\": {jobs}, \"sim_threads\": {}",
            plan.len(),
            unique.len(),
            plan.len() - unique.len(),
            cfg.sim_threads,
        ),
    );
    if sink.enabled() {
        for &u in &order {
            sink.emit_kind(
                "point_queued",
                &format!("\"point\": {}", json_str(&unique[u].id)),
            );
        }
    }

    let slots: Vec<OnceLock<(RunReport, Duration)>> =
        (0..unique.len()).map(|_| OnceLock::new()).collect();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                loop {
                    let k = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&u) = order.get(k) else { break };
                    let point = unique[u];
                    sink.emit_kind(
                        "point_start",
                        &format!("\"point\": {}", json_str(&point.id)),
                    );
                    let t0 = Instant::now();
                    // The engine-level ledger rides along only when a
                    // ledger file is being written — enabling it (like
                    // sim-threads) needs a mutated experiment copy, and
                    // neither changes simulated results (bit-identical).
                    let report = if cfg.sim_threads > 1 || sink.enabled() {
                        let mut exp = point.experiment.clone();
                        if cfg.sim_threads > 1 {
                            exp.system.sim.threads = cfg.sim_threads;
                        }
                        if sink.enabled() {
                            exp.system.sim.ledger =
                                Some(LedgerConfig::every(ENGINE_HEARTBEAT_CYCLES));
                        }
                        exp.run()
                    } else {
                        point.experiment.run()
                    };
                    let wall = t0.elapsed();
                    let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                    sink.human(&format!(
                        "  [{finished}/{}] {} — {:.1} cyc, {:.2?}{}{}",
                        unique.len(),
                        point.id,
                        report.avg_latency(),
                        wall,
                        if report.stats.saturated {
                            " [SATURATED: latency is a lower bound]"
                        } else {
                            ""
                        },
                        if report.stats.is_healthy() { "" } else { " [WATCHDOG]" },
                    ));
                    if sink.enabled() {
                        // Forward the experiment's engine stream onto the
                        // shared timeline, each record tagged with the
                        // point it belongs to.
                        if let Some(led) = &report.stats.ledger {
                            for rec in &led.records {
                                sink.emit(&format!(
                                    "\"point\": {}, {}",
                                    json_str(&point.id),
                                    rec.render_fields()
                                ));
                            }
                        }
                        sink.emit_kind(
                            "point_finish",
                            &format!(
                                "\"point\": {}, \"wall_ms\": {}, \
                                 \"avg_latency\": {}, \"saturated\": {}, \
                                 \"healthy\": {}",
                                json_str(&point.id),
                                json_f64(wall.as_secs_f64() * 1e3),
                                json_f64(report.avg_latency()),
                                report.stats.saturated,
                                report.stats.is_healthy(),
                            ),
                        );
                    }
                    slots[u].set((report, wall)).expect("each unique point runs once");
                }
            });
        }
    });

    // Assemble in plan order and resolve baseline normalisation.
    let reports: Vec<&(RunReport, Duration)> =
        slots.iter().map(|s| s.get().expect("all points ran")).collect();
    let results: Vec<PointResult> = plan
        .points
        .iter()
        .zip(&point_to_unique)
        .map(|(point, &u)| {
            let (report, wall) = reports[u];
            let normalized = point.baseline_id.as_ref().map(|bid| {
                let bidx = plan
                    .index_of(bid)
                    .unwrap_or_else(|| panic!("baseline {bid:?} missing from plan"));
                let (baseline, _) = reports[point_to_unique[bidx]];
                report.normalized_to(baseline)
            });
            PointResult { point: point.clone(), report: report.clone(), wall: *wall, normalized }
        })
        .collect();
    let total_wall = start.elapsed();
    let points_wall: Duration = reports.iter().map(|(_, wall)| *wall).sum();
    sink.emit_kind(
        "plan_finish",
        &format!(
            "\"points\": {}, \"unique\": {}, \"wall_ms\": {}, \"points_wall_ms\": {}",
            plan.len(),
            unique.len(),
            json_f64(total_wall.as_secs_f64() * 1e3),
            json_f64(points_wall.as_secs_f64() * 1e3),
        ),
    );
    PlanResults {
        results,
        total_wall,
        jobs,
        unique_runs: unique.len(),
        points_wall,
    }
}
