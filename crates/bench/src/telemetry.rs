//! Telemetry artifacts: JSON export, link-utilization helpers, and a
//! terminal timeline table for [`rfnoc_sim::TelemetryReport`] time series.
//!
//! The simulator's telemetry layer produces interval samples, packet
//! spans, and a fault/retune event timeline; this module turns one run's
//! report into the repo's standard artifacts: `results/json/<name>.json`
//! (hand-rolled flat JSON, like `artifact.rs`) and a per-interval table
//! on stdout. The SVG congestion heatmap lives in [`crate::svg`].

use crate::artifact::{git_describe, json_f64, json_str};
use rfnoc_sim::{
    latency_bucket_bounds, RunStats, TelemetryReport, TimelineEventKind, LATENCY_BUCKETS,
};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Output ports per router on the plain mesh (N, S, E, W, Local, RF) —
/// mirrors the simulator's mesh port order. Reports from other fabrics
/// carry their own stride in [`TelemetryReport::ports`]; use
/// [`port_name`] instead of indexing [`PORT_NAMES`] directly.
pub const NUM_PORTS: usize = 6;

/// Display names of the six mesh output ports.
pub const PORT_NAMES: [&str; NUM_PORTS] = ["N", "S", "E", "W", "Local", "RF"];

/// Index of the first non-mesh port (Local) on the plain mesh; ports
/// `0..MESH_PORTS` are the four conventional mesh links.
pub const MESH_PORTS: usize = 4;

/// Display name of output port `port` for a report's fabric: the mesh
/// names when the stride matches the mesh, generic `p<N>` slots otherwise
/// (ring-mesh routers have per-router degrees, so flat slots have no
/// single global meaning).
pub fn port_name(report: &TelemetryReport, port: usize) -> String {
    if report.ports == NUM_PORTS && port < NUM_PORTS {
        PORT_NAMES[port].to_string()
    } else {
        format!("p{port}")
    }
}

/// Number of fabric (non local/RF) port slots in a report's stride.
fn fabric_slots(report: &TelemetryReport) -> usize {
    report.ports.saturating_sub(2)
}

/// Cycles covered by the report's samples (the whole run, warmup and
/// drain included).
pub fn covered_cycles(report: &TelemetryReport) -> u64 {
    report.samples.iter().map(|s| s.cycles).sum()
}

/// Whole-run utilization of one output port from the telemetry time
/// series: total grants over total cycles, against a per-cycle flit
/// capacity. Returns 0.0 when the links channel was off.
pub fn port_utilization(report: &TelemetryReport, r: usize, port: usize, capacity: u32) -> f64 {
    let cycles = covered_cycles(report);
    let totals = report.total_port_grants();
    if cycles == 0 || totals.is_empty() {
        return 0.0;
    }
    totals[r * report.ports + port] as f64 / (cycles as f64 * f64::from(capacity.max(1)))
}

/// Per-router mean mesh-link utilization — the heat vector for
/// [`crate::svg::render_topology`], scaled so ~35% saturates the colour.
pub fn mesh_heat(report: &TelemetryReport) -> Vec<f64> {
    let slots = fabric_slots(report).max(1);
    (0..report.routers)
        .map(|r| {
            let mesh: f64 = (0..slots)
                .map(|p| port_utilization(report, r, p, 1))
                .sum::<f64>()
                / slots as f64;
            (mesh / 0.35).min(1.0)
        })
        .collect()
}

/// Flattened directed per-port utilization (`router * report.ports +
/// port`, capacity 1) for the link heatmap. Empty when the links channel
/// was off.
pub fn link_utilization(report: &TelemetryReport) -> Vec<f64> {
    let cycles = covered_cycles(report).max(1) as f64;
    report
        .total_port_grants()
        .iter()
        .map(|&g| g as f64 / cycles)
        .collect()
}

/// The `k` hottest output ports by total grants: `(router, port, grants)`
/// in descending order.
pub fn hottest_ports(report: &TelemetryReport, k: usize) -> Vec<(usize, usize, u64)> {
    let totals = report.total_port_grants();
    let mut ports: Vec<(usize, usize, u64)> = totals
        .iter()
        .enumerate()
        .map(|(i, &g)| (i / report.ports, i % report.ports, g))
        .collect();
    ports.sort_by_key(|&(_, _, g)| std::cmp::Reverse(g));
    ports.truncate(k);
    ports
}

/// Mean mesh-link utilization of one interval sample (ports N/S/E/W over
/// every router, capacity 1 flit/cycle).
pub fn sample_mesh_utilization(report: &TelemetryReport, i: usize) -> f64 {
    let s = &report.samples[i];
    if s.cycles == 0 || s.port_grants.is_empty() {
        return 0.0;
    }
    let slots = fabric_slots(report).max(1);
    let ports = report.ports;
    let mesh: u64 = (0..report.routers)
        .flat_map(|r| (0..slots).map(move |p| s.port_grants[r * ports + p]))
        .sum();
    mesh as f64 / (s.cycles as f64 * (report.routers * slots) as f64)
}

/// A short stable label for a timeline event, used in JSON and tables.
pub fn event_label(kind: &TimelineEventKind) -> String {
    match kind {
        TimelineEventKind::Fault(e) => format!("fault: {e:?}"),
        TimelineEventKind::RetuneApplied { installed } => {
            format!("retune_applied({installed} shortcuts)")
        }
        TimelineEventKind::TablesRewritten => "tables_rewritten".into(),
        TimelineEventKind::WatchdogFired => "watchdog_fired".into(),
        TimelineEventKind::RecoveryConverged { fault_cycle, after } => {
            format!("recovery_converged(fault@{fault_cycle} after {after})")
        }
    }
}

/// Renders the full telemetry JSON artifact for one run.
///
/// The schema is flat: run provenance, whole-run link totals, the
/// per-endpoint completion counters from `stats`, a span digest, the
/// interval time series, and the event timeline.
pub fn render_json(name: &str, stats: &RunStats, report: &TelemetryReport) -> String {
    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"name\": {},", json_str(name));
    let _ = writeln!(out, "  \"git\": {},", json_str(&git_describe()));
    let _ = writeln!(out, "  \"generated_unix\": {unix},");
    let _ = writeln!(out, "  \"interval\": {},", report.interval);
    let _ = writeln!(out, "  \"routers\": {},", report.routers);
    let _ = writeln!(out, "  \"channels\": {},", report.channels.0);
    let _ = writeln!(out, "  \"end_cycle\": {},", stats.end_cycle);
    let _ = writeln!(out, "  \"saturated\": {},", stats.saturated);
    let _ = writeln!(out, "  \"injected_messages\": {},", stats.injected_messages);
    let _ = writeln!(out, "  \"completed_messages\": {},", stats.completed_messages);

    let join_u64 = |v: &[u64]| {
        v.iter().map(u64::to_string).collect::<Vec<_>>().join(", ")
    };
    let _ = writeln!(
        out,
        "  \"per_source\": [{}],",
        stats.per_source.iter().map(u32::to_string).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(
        out,
        "  \"per_dest\": [{}],",
        stats.per_dest.iter().map(u32::to_string).collect::<Vec<_>>().join(", ")
    );
    let _ = writeln!(out, "  \"link_grants\": [{}],", join_u64(&report.total_port_grants()));
    let _ = writeln!(
        out,
        "  \"link_utilization\": [{}],",
        link_utilization(report).iter().map(|&u| json_f64(u)).collect::<Vec<_>>().join(", ")
    );
    let rf_total: u64 = report.samples.iter().map(|s| s.rf_grants).sum();
    let rf_mc_total: u64 = report.samples.iter().map(|s| s.rf_mc_flits).sum();
    let _ = writeln!(out, "  \"rf_grants_total\": {rf_total},");
    let _ = writeln!(out, "  \"rf_mc_flits_total\": {rf_mc_total},");

    let completed_spans = report.spans.iter().filter(|s| s.is_complete()).count();
    let rf_spans = report.spans.iter().filter(|s| s.took_rf).count();
    let latency_sum: u64 =
        report.spans.iter().filter_map(rfnoc_sim::PacketSpan::latency).sum();
    let avg_span_latency = if completed_spans > 0 {
        latency_sum as f64 / completed_spans as f64
    } else {
        f64::NAN
    };
    out.push_str("  \"spans\": {");
    let _ = write!(out, "\"recorded\": {}, ", report.spans.len());
    let _ = write!(out, "\"dropped\": {}, ", report.dropped_spans);
    let _ = write!(out, "\"completed\": {completed_spans}, ");
    let _ = write!(out, "\"took_rf\": {rf_spans}, ");
    let _ = writeln!(out, "\"avg_latency_cycles\": {}}},", json_f64(avg_span_latency));

    let edges: Vec<String> = (0..LATENCY_BUCKETS)
        .map(|i| latency_bucket_bounds(i).0.to_string())
        .collect();
    let _ = writeln!(out, "  \"latency_bucket_lower_edges\": [{}],", edges.join(", "));

    out.push_str("  \"samples\": [\n");
    for (i, s) in report.samples.iter().enumerate() {
        out.push_str("    {");
        let _ = write!(out, "\"start\": {}, ", s.start);
        let _ = write!(out, "\"cycles\": {}, ", s.cycles);
        let _ = write!(out, "\"injected\": {}, ", s.injected);
        let _ = write!(out, "\"ejected_flits\": {}, ", s.ejected_flits);
        let _ = write!(out, "\"completed_packets\": {}, ", s.completed_packets);
        let _ = write!(out, "\"in_flight_end\": {}, ", s.in_flight_end);
        let _ = write!(out, "\"rf_grants\": {}, ", s.rf_grants);
        let _ = write!(out, "\"rf_mc_flits\": {}, ", s.rf_mc_flits);
        let _ = write!(out, "\"va_stalls\": {}, ", s.va_stalls);
        let _ = write!(out, "\"sa_stalls\": {}, ", s.sa_stalls);
        let _ = write!(out, "\"credit_stalls\": {}, ", s.credit_stalls);
        let _ = write!(
            out,
            "\"mesh_utilization\": {}, ",
            json_f64(sample_mesh_utilization(report, i))
        );
        let peak = s.buffered_peak.iter().copied().max().unwrap_or(0);
        let _ = write!(out, "\"peak_buffered\": {peak}, ");
        let _ = write!(out, "\"latency_hist\": [{}]", join_u64(&s.latency_hist));
        out.push('}');
        out.push_str(if i + 1 < report.samples.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");

    out.push_str("  \"events\": [\n");
    for (i, e) in report.events.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"cycle\": {}, \"kind\": {}}}",
            e.cycle,
            json_str(&event_label(&e.kind))
        );
        out.push_str(if i + 1 < report.events.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the telemetry JSON artifact to `results/json/<name>.json`,
/// logging (not propagating) I/O failures; returns the path on success.
pub fn write_json(name: &str, stats: &RunStats, report: &TelemetryReport) -> Option<PathBuf> {
    let path = PathBuf::from(format!("results/json/{name}.json"));
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("telemetry: cannot create {}: {e}", dir.display());
            return None;
        }
    }
    match std::fs::write(&path, render_json(name, stats, report)) {
        Ok(()) => {
            eprintln!("telemetry: wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("telemetry: cannot write {}: {e}", path.display());
            None
        }
    }
}

/// Prints the per-interval timeline table: rates, mesh utilization, peak
/// occupancy, stall mix, and the events that fell inside each interval.
/// Long runs are subsampled to at most `max_rows` evenly spaced rows
/// (event-bearing intervals are always kept).
pub fn print_timeline(report: &TelemetryReport, max_rows: usize) {
    println!(
        "\n{:>14} {:>8} {:>8} {:>9} {:>8} {:>8} {:>18}  events",
        "interval", "inj/cyc", "cmp/cyc", "mesh-util", "rf/cyc", "peak-buf", "va/sa/credit"
    );
    let n = report.samples.len();
    let stride = n.div_ceil(max_rows.max(1)).max(1);
    for (i, s) in report.samples.iter().enumerate() {
        let events: Vec<String> =
            report.events_in_sample(i).map(|e| event_label(&e.kind)).collect();
        if i % stride != 0 && events.is_empty() && i + 1 != n {
            continue;
        }
        let cycles = s.cycles.max(1) as f64;
        let peak = s.buffered_peak.iter().copied().max().unwrap_or(0);
        println!(
            "{:>14} {:>8.3} {:>8.3} {:>8.1}% {:>8.3} {:>8} {:>18}  {}",
            format!("[{}, {})", s.start, s.start + s.cycles),
            s.injected as f64 / cycles,
            s.completed_packets as f64 / cycles,
            sample_mesh_utilization(report, i) * 100.0,
            s.rf_grants as f64 / cycles,
            peak,
            format!("{}/{}/{}", s.va_stalls, s.sa_stalls, s.credit_stalls),
            if events.is_empty() { "-".to_string() } else { events.join("; ") },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfnoc_sim::{
        MessageClass, MessageSpec, Network, NetworkSpec, ScriptedWorkload, SimConfig,
        TelemetryConfig,
    };
    use rfnoc_topology::GridDims;

    fn telemetry_run() -> RunStats {
        let mut cfg = SimConfig::paper_baseline();
        cfg.warmup_cycles = 0;
        cfg.measure_cycles = 400;
        cfg.drain_cycles = 5_000;
        cfg.telemetry = Some(TelemetryConfig::every(128));
        let spec = NetworkSpec::mesh_baseline(GridDims::new(4, 4), cfg);
        let mut network = Network::new(spec);
        // dst = 5·src+1 mod 16 never equals src (4·src+1 is odd).
        let events: Vec<(u64, MessageSpec)> = (0..60u64)
            .map(|i| {
                let src = (i % 16) as usize;
                let dst = ((i * 5 + 1) % 16) as usize;
                (i * 4, MessageSpec::unicast(src, dst, MessageClass::Data))
            })
            .collect();
        network.run(&mut ScriptedWorkload::new(events))
    }

    #[test]
    fn json_artifact_is_parseable_shape() {
        let stats = telemetry_run();
        let report = stats.telemetry.as_ref().expect("telemetry on");
        let json = render_json("TELEMETRY_test", &stats, report);
        // Structural smoke checks: balanced braces/brackets and the keys
        // the CI schema validator requires.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        for key in [
            "\"interval\"",
            "\"samples\"",
            "\"events\"",
            "\"link_utilization\"",
            "\"per_source\"",
            "\"per_dest\"",
            "\"spans\"",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
        assert!(!json.contains("NaN"), "JSON must not contain bare NaN");
    }

    #[test]
    fn utilization_helpers_are_consistent() {
        let stats = telemetry_run();
        let report = stats.telemetry.as_ref().expect("telemetry on");
        assert_eq!(covered_cycles(report), stats.end_cycle);
        let util = link_utilization(report);
        assert_eq!(report.ports, NUM_PORTS, "mesh run has the mesh stride");
        assert_eq!(util.len(), report.routers * report.ports);
        assert!(util.iter().all(|&u| u >= 0.0));
        assert!(util.iter().sum::<f64>() > 0.0, "traffic must show up");
        let hot = hottest_ports(report, 5);
        assert_eq!(hot.len(), 5);
        assert!(hot[0].2 >= hot[4].2, "sorted descending");
        let heat = mesh_heat(report);
        assert_eq!(heat.len(), report.routers);
        assert!(heat.iter().all(|&h| (0.0..=1.0).contains(&h)));
    }
}
