//! Declarative sweep plans: cross-product experiment specifications that
//! expand into flat, stably-identified lists of runnable points.
//!
//! Every paper figure is some cross-product of design points (architecture
//! × link width) with workloads, simulator variants, traffic loads,
//! placements, and fault schedules, normalised against a designated
//! baseline. [`SweepSpec`] declares that product once; [`SweepSpec::expand`]
//! flattens it into a [`Plan`] of [`RunPoint`]s with stable IDs and
//! automatic baseline pairing, which the parallel [`crate::runner`]
//! executes and the table formatters and [`crate::artifact`] writers
//! consume.

use rfnoc::{Architecture, Experiment, FaultSpec, SystemConfig, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_sim::SimConfig;
use rfnoc_traffic::{Placement, TrafficConfig};

/// A labelled architecture + link-width design point (one table column /
/// scatter point of a figure).
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    /// Column/series label, also the ID segment for this design.
    pub label: String,
    /// The architecture to build.
    pub arch: Architecture,
    /// Conventional mesh link width.
    pub width: LinkWidth,
}

impl Design {
    /// A labelled design point.
    pub fn new(label: impl Into<String>, arch: Architecture, width: LinkWidth) -> Self {
        Self { label: label.into(), arch, width }
    }

    /// The cross product of architectures and widths, labelled
    /// `"{name} @{width}"` — the shape of Figures 8 and 10.
    pub fn cross(archs: &[(&str, Architecture)], widths: &[LinkWidth]) -> Vec<Design> {
        archs
            .iter()
            .flat_map(|(name, arch)| {
                widths
                    .iter()
                    .map(move |w| Design::new(format!("{name} @{w}"), arch.clone(), *w))
            })
            .collect()
    }
}

/// A labelled value along one sweep dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct Labeled<T> {
    /// Display label, also the ID segment for this value.
    pub label: String,
    /// The dimension value.
    pub value: T,
}

/// Shorthand constructor for [`Labeled`] dimension values.
pub fn labeled<T>(label: impl Into<String>, value: T) -> Labeled<T> {
    Labeled { label: label.into(), value }
}

/// Designates the baseline run each point is normalised against: the plan
/// point whose labels match the point's own, with the pinned dimensions
/// substituted. Pin only `design` and every point pairs with that design
/// under its own workload/traffic/… (Figures 7–10); pin only `fault` and
/// every design pairs with its own fault-free run (the fault sweep).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BaselineSel {
    /// Pin the design label.
    pub design: Option<String>,
    /// Pin the workload label.
    pub workload: Option<String>,
    /// Pin the simulator-variant label.
    pub sim: Option<String>,
    /// Pin the traffic label.
    pub traffic: Option<String>,
    /// Pin the placement label.
    pub placement: Option<String>,
    /// Pin the fault label.
    pub fault: Option<String>,
}

impl BaselineSel {
    /// Baseline = the named design, per workload/sim/traffic/placement/
    /// fault combination.
    pub fn design(label: impl Into<String>) -> Self {
        Self { design: Some(label.into()), ..Self::default() }
    }

    /// Baseline = the named fault schedule (usually the fault-free one),
    /// per design/workload/… combination.
    pub fn fault(label: impl Into<String>) -> Self {
        Self { fault: Some(label.into()), ..Self::default() }
    }

    /// Baseline = the named simulator variant, per design/workload/…
    /// combination.
    pub fn sim(label: impl Into<String>) -> Self {
        Self { sim: Some(label.into()), ..Self::default() }
    }
}

/// A declarative cross-product sweep: one spec per figure (or figure
/// panel). `expand()` produces the runnable [`Plan`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// Plan name; prefixes every point ID (`"fig7"` → `"fig7/..."`).
    pub name: String,
    /// Design points (architecture × width columns).
    pub designs: Vec<Design>,
    /// Workloads (table rows).
    pub workloads: Vec<Labeled<WorkloadSpec>>,
    /// Simulator variants (defaults to one paper-baseline entry).
    pub sims: Vec<Labeled<SimConfig>>,
    /// Traffic-generator variants (defaults to one default-config entry).
    pub traffics: Vec<Labeled<TrafficConfig>>,
    /// Placements (defaults to the paper 10×10).
    pub placements: Vec<Labeled<Placement>>,
    /// Fault schedules (defaults to fault-free).
    pub faults: Vec<Labeled<FaultSpec>>,
    /// Override for [`Experiment::profile_cycles`] on every point.
    pub profile_cycles: Option<u64>,
    /// Baseline designation for automatic `normalized_to` pairing.
    pub baseline: Option<BaselineSel>,
}

impl SweepSpec {
    /// An empty spec with single default entries on the sim / traffic /
    /// placement / fault dimensions.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            designs: Vec::new(),
            workloads: Vec::new(),
            sims: vec![labeled("default", SimConfig::paper_baseline())],
            traffics: vec![labeled("default", TrafficConfig::default())],
            placements: vec![labeled("10x10", Placement::paper_10x10())],
            faults: vec![labeled("none", FaultSpec::None)],
            profile_cycles: None,
            baseline: None,
        }
    }

    /// Sets the design points.
    #[must_use]
    pub fn designs(mut self, designs: Vec<Design>) -> Self {
        self.designs = designs;
        self
    }

    /// Sets the workloads.
    #[must_use]
    pub fn workloads(mut self, workloads: Vec<Labeled<WorkloadSpec>>) -> Self {
        self.workloads = workloads;
        self
    }

    /// Replaces the simulator-variant dimension.
    #[must_use]
    pub fn sims(mut self, sims: Vec<Labeled<SimConfig>>) -> Self {
        self.sims = sims;
        self
    }

    /// Replaces the traffic dimension.
    #[must_use]
    pub fn traffics(mut self, traffics: Vec<Labeled<TrafficConfig>>) -> Self {
        self.traffics = traffics;
        self
    }

    /// Replaces the placement dimension.
    #[must_use]
    pub fn placements(mut self, placements: Vec<Labeled<Placement>>) -> Self {
        self.placements = placements;
        self
    }

    /// Replaces the fault dimension.
    #[must_use]
    pub fn faults(mut self, faults: Vec<Labeled<FaultSpec>>) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the adaptive-profiling cycle count on every point.
    #[must_use]
    pub fn profile_cycles(mut self, cycles: u64) -> Self {
        self.profile_cycles = Some(cycles);
        self
    }

    /// Sets the baseline designation.
    #[must_use]
    pub fn baseline(mut self, baseline: BaselineSel) -> Self {
        self.baseline = Some(baseline);
        self
    }

    /// Expands the cross product into a flat plan.
    ///
    /// Point order is deterministic: placements → sims → traffics → faults
    /// → workloads → designs, innermost last, so per-workload groups stay
    /// contiguous as in the hand-rolled loops this layer replaced. IDs are
    /// `name/segments…` where a dimension contributes a segment only when
    /// the spec sweeps it (more than one entry), keeping IDs stable when
    /// unrelated single-valued dimensions are present.
    ///
    /// # Panics
    ///
    /// Panics when a [`BaselineSel`] pins a label that no plan point
    /// carries (the baseline must be part of the sweep), or when the
    /// expansion would produce duplicate IDs (duplicate dimension labels).
    pub fn expand(&self) -> Plan {
        let mut points = Vec::new();
        for placement in &self.placements {
            for sim in &self.sims {
                for traffic in &self.traffics {
                    for fault in &self.faults {
                        for workload in &self.workloads {
                            for design in &self.designs {
                                points.push(self.point(
                                    design, workload, sim, traffic, placement, fault,
                                ));
                            }
                        }
                    }
                }
            }
        }
        let plan = Plan { points };
        plan.assert_unique_ids();
        if self.baseline.is_some() {
            plan.assert_baselines_resolve();
        }
        plan
    }

    fn point(
        &self,
        design: &Design,
        workload: &Labeled<WorkloadSpec>,
        sim: &Labeled<SimConfig>,
        traffic: &Labeled<TrafficConfig>,
        placement: &Labeled<Placement>,
        fault: &Labeled<FaultSpec>,
    ) -> RunPoint {
        let labels = PointLabels {
            design: design.label.clone(),
            workload: workload.label.clone(),
            sim: sim.label.clone(),
            traffic: traffic.label.clone(),
            placement: placement.label.clone(),
            fault: fault.label.clone(),
        };
        let system = SystemConfig::new(design.arch.clone(), design.width)
            .with_sim(sim.value.clone());
        let mut experiment = Experiment::new(system, workload.value.clone());
        experiment.traffic = traffic.value.clone();
        experiment.placement = placement.value.clone();
        experiment.faults = fault.value.clone();
        if let Some(cycles) = self.profile_cycles {
            experiment.profile_cycles = cycles;
        }
        let baseline_labels = self.baseline.as_ref().map(|b| labels.pinned(b));
        let is_baseline = baseline_labels.as_ref() == Some(&labels);
        let baseline_id = baseline_labels
            .filter(|b| *b != labels)
            .map(|b| self.id_for(&b));
        RunPoint { id: self.id_for(&labels), labels, experiment, baseline_id, is_baseline }
    }

    /// The stable ID for a label combination under this spec.
    fn id_for(&self, labels: &PointLabels) -> String {
        let mut id = slug(&self.name);
        let mut push = |swept: bool, label: &str| {
            if swept {
                id.push('/');
                id.push_str(&slug(label));
            }
        };
        push(self.designs.len() > 1, &labels.design);
        push(self.workloads.len() > 1, &labels.workload);
        push(self.sims.len() > 1, &labels.sim);
        push(self.traffics.len() > 1, &labels.traffic);
        push(self.placements.len() > 1, &labels.placement);
        push(self.faults.len() > 1, &labels.fault);
        id
    }
}

/// Lowercases and collapses non-alphanumerics to single dashes:
/// `"Adaptive - 50 RF-Enabled @16B"` → `"adaptive-50-rf-enabled-16b"`.
/// `/` is kept so spec names can namespace (`"mesh_scaling/8x8"`).
pub fn slug(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    let mut dash = false;
    for c in label.chars() {
        if c.is_ascii_alphanumeric() || c == '/' {
            if dash && !out.is_empty() && !out.ends_with('/') {
                out.push('-');
            }
            dash = false;
            out.push(c.to_ascii_lowercase());
        } else {
            dash = true;
        }
    }
    out
}

/// The labels of one point along every sweep dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointLabels {
    /// Design (architecture × width) label.
    pub design: String,
    /// Workload label.
    pub workload: String,
    /// Simulator-variant label.
    pub sim: String,
    /// Traffic label.
    pub traffic: String,
    /// Placement label.
    pub placement: String,
    /// Fault-schedule label.
    pub fault: String,
}

impl PointLabels {
    /// These labels with the baseline's pinned dimensions substituted.
    fn pinned(&self, baseline: &BaselineSel) -> PointLabels {
        PointLabels {
            design: baseline.design.clone().unwrap_or_else(|| self.design.clone()),
            workload: baseline.workload.clone().unwrap_or_else(|| self.workload.clone()),
            sim: baseline.sim.clone().unwrap_or_else(|| self.sim.clone()),
            traffic: baseline.traffic.clone().unwrap_or_else(|| self.traffic.clone()),
            placement: baseline.placement.clone().unwrap_or_else(|| self.placement.clone()),
            fault: baseline.fault.clone().unwrap_or_else(|| self.fault.clone()),
        }
    }
}

/// One fully-resolved runnable point of a plan.
#[derive(Debug, Clone, PartialEq)]
pub struct RunPoint {
    /// Stable identifier (`"fig7/adaptive-50-rf-enabled/uniform"`).
    pub id: String,
    /// The labels this point carries along every dimension.
    pub labels: PointLabels,
    /// The experiment to run.
    pub experiment: Experiment,
    /// ID of the plan point this one is normalised against, when the spec
    /// designated a baseline and this point is not it.
    pub baseline_id: Option<String>,
    /// Whether this point *is* a baseline for itself (its pinned labels
    /// are its own).
    pub is_baseline: bool,
}

/// A flat, ordered list of runnable points — the unit the parallel runner
/// executes and artifacts describe.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Plan {
    /// The points, in deterministic expansion order.
    pub points: Vec<RunPoint>,
}

impl Plan {
    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Concatenates plans (e.g. every figure of the paper suite) into one.
    ///
    /// # Panics
    ///
    /// Panics if two plans contain the same point ID — give sub-plans
    /// distinct spec names.
    pub fn merge(plans: impl IntoIterator<Item = Plan>) -> Plan {
        let merged =
            Plan { points: plans.into_iter().flat_map(|p| p.points).collect() };
        merged.assert_unique_ids();
        merged
    }

    /// Index of the point with the given ID.
    pub fn index_of(&self, id: &str) -> Option<usize> {
        self.points.iter().position(|p| p.id == id)
    }

    fn assert_unique_ids(&self) {
        let mut ids: Vec<&str> = self.points.iter().map(|p| p.id.as_str()).collect();
        ids.sort_unstable();
        if let Some(w) = ids.windows(2).find(|w| w[0] == w[1]) {
            panic!("duplicate plan point id {:?} — dimension labels must be unique", w[0]);
        }
    }

    fn assert_baselines_resolve(&self) {
        for point in &self.points {
            if let Some(baseline_id) = &point.baseline_id {
                assert!(
                    self.index_of(baseline_id).is_some(),
                    "point {:?} pairs with baseline {:?}, which is not in the plan — \
                     include the baseline design/fault/… in the sweep",
                    point.id,
                    baseline_id
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rfnoc_traffic::TraceKind;

    fn trace(kind: TraceKind) -> Labeled<WorkloadSpec> {
        labeled(kind.name(), WorkloadSpec::Trace(kind))
    }

    fn spec() -> SweepSpec {
        SweepSpec::new("t")
            .designs(vec![
                Design::new("Base", Architecture::Baseline, LinkWidth::B16),
                Design::new("Static", Architecture::StaticShortcuts, LinkWidth::B16),
            ])
            .workloads(vec![trace(TraceKind::Uniform), trace(TraceKind::Hotspot1)])
    }

    #[test]
    fn expansion_is_a_full_cross_product() {
        let plan = spec().expand();
        assert_eq!(plan.len(), 4);
        let ids: Vec<&str> = plan.points.iter().map(|p| p.id.as_str()).collect();
        assert_eq!(
            ids,
            ["t/base/uniform", "t/static/uniform", "t/base/1hotspot", "t/static/1hotspot"]
        );
    }

    #[test]
    fn singleton_dimensions_do_not_lengthen_ids() {
        // sims/traffics/placements/faults are all single-entry defaults.
        let plan = spec().expand();
        assert!(plan.points.iter().all(|p| p.id.matches('/').count() == 2), "{plan:?}");
    }

    #[test]
    fn baseline_pairing_by_design() {
        let plan = spec().baseline(BaselineSel::design("Base")).expand();
        let static_uniform = &plan.points[plan.index_of("t/static/uniform").unwrap()];
        assert_eq!(static_uniform.baseline_id.as_deref(), Some("t/base/uniform"));
        assert!(!static_uniform.is_baseline);
        let base_uniform = &plan.points[plan.index_of("t/base/uniform").unwrap()];
        assert!(base_uniform.is_baseline);
        assert_eq!(base_uniform.baseline_id, None);
    }

    #[test]
    fn baseline_pairing_by_fault() {
        let plan = spec()
            .faults(vec![
                labeled("none", FaultSpec::None),
                labeled(
                    "f1",
                    FaultSpec::Random {
                        seed: 1,
                        rates: rfnoc_sim::FaultRates {
                            shortcut_failures: 1.0,
                            mesh_link_failures: 0.0,
                            glitches: 0.0,
                            repair_after: None,
                        },
                    },
                ),
            ])
            .baseline(BaselineSel::fault("none"))
            .expand();
        assert_eq!(plan.len(), 8);
        let faulted = &plan.points[plan.index_of("t/static/uniform/f1").unwrap()];
        // Pairs with its own design's fault-free run, not a fixed design.
        assert_eq!(faulted.baseline_id.as_deref(), Some("t/static/uniform/none"));
    }

    #[test]
    #[should_panic(expected = "not in the plan")]
    fn dangling_baseline_panics() {
        let _ = spec().baseline(BaselineSel::design("NoSuchDesign")).expand();
    }

    #[test]
    #[should_panic(expected = "duplicate plan point id")]
    fn duplicate_labels_panic() {
        let _ = SweepSpec::new("t")
            .designs(vec![
                Design::new("Same", Architecture::Baseline, LinkWidth::B16),
                Design::new("Same", Architecture::StaticShortcuts, LinkWidth::B16),
            ])
            .workloads(vec![trace(TraceKind::Uniform)])
            .expand();
    }

    #[test]
    fn merge_concatenates_and_checks_ids() {
        let a = spec().expand();
        let mut b = spec();
        b.name = "u".into();
        let merged = Plan::merge([a.clone(), b.expand()]);
        assert_eq!(merged.len(), 8);
        assert_eq!(merged.index_of("t/base/uniform"), Some(0));
        assert_eq!(merged.index_of("u/base/uniform"), Some(4));
        assert!(Plan::merge([a]).index_of("t/static/1hotspot").is_some());
    }

    #[test]
    fn design_cross_labels() {
        let designs = Design::cross(
            &[("Base", Architecture::Baseline)],
            &[LinkWidth::B16, LinkWidth::B4],
        );
        assert_eq!(designs.len(), 2);
        assert_eq!(designs[0].label, format!("Base @{}", LinkWidth::B16));
    }

    #[test]
    fn slugs_are_stable() {
        assert_eq!(slug("Adaptive - 50 RF-Enabled @16B"), "adaptive-50-rf-enabled-16b");
        assert_eq!(slug("mesh_scaling/8x8"), "mesh-scaling/8x8");
        assert_eq!(slug("1Hotspot+MC20"), "1hotspot-mc20");
    }
}
