//! SVG rendering of topologies and utilization maps.
//!
//! Produces publication-style figures: the mesh with its components, the
//! RF-I overlay (access points and shortcut arcs, Figure 2's visual
//! language), and per-router utilization shading. Pure string generation —
//! no graphics dependencies.

use rfnoc_sim::RunStats;
use rfnoc_topology::{NodeId, Shortcut};
use rfnoc_traffic::{ComponentKind, Placement};
use std::fmt::Write as _;

/// Grid pitch in SVG user units.
const PITCH: f64 = 48.0;
/// Router box size.
const BOX: f64 = 30.0;
/// Outer margin.
const MARGIN: f64 = 36.0;

fn center(placement: &Placement, node: NodeId) -> (f64, f64) {
    let c = placement.dims().coord_of(node);
    (
        MARGIN + c.x as f64 * PITCH + BOX / 2.0,
        MARGIN + c.y as f64 * PITCH + BOX / 2.0,
    )
}

fn component_fill(kind: ComponentKind) -> &'static str {
    match kind {
        ComponentKind::Core => "#ffffff",
        ComponentKind::Cache => "#c8c8c8",
        ComponentKind::Memory => "#404040",
    }
}

/// Options for [`render_topology`].
#[derive(Debug, Clone, Default)]
pub struct TopologyFigure<'a> {
    /// RF-enabled routers to mark with a diagonal stub (Figure 2a style).
    pub rf_enabled: &'a [NodeId],
    /// Shortcut arcs to draw.
    pub shortcuts: &'a [Shortcut],
    /// Per-router fill-opacity overlay (0.0–1.0, e.g. utilization); length
    /// must equal the router count when non-empty.
    pub heat: Vec<f64>,
    /// Figure caption.
    pub title: String,
}

/// Renders a placement (and optional RF overlay / heat map) as an SVG
/// document.
///
/// # Panics
///
/// Panics if `heat` is non-empty and does not cover every router.
pub fn render_topology(placement: &Placement, figure: &TopologyFigure<'_>) -> String {
    let dims = placement.dims();
    if !figure.heat.is_empty() {
        assert_eq!(figure.heat.len(), dims.nodes(), "heat map must cover all routers");
    }
    let width = MARGIN * 2.0 + dims.width() as f64 * PITCH;
    let height = MARGIN * 2.0 + dims.height() as f64 * PITCH + 24.0;
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"##
    );
    let _ = writeln!(
        svg,
        r##"<rect width="{width}" height="{height}" fill="white"/>
<text x="{MARGIN}" y="22" font-family="sans-serif" font-size="14">{}</text>"##,
        figure.title
    );
    // Mesh links.
    for node in 0..dims.nodes() {
        let (x, y) = center(placement, node);
        let c = dims.coord_of(node);
        if (c.x as usize) < dims.width() - 1 {
            let (x2, y2) = center(placement, node + 1);
            let _ = writeln!(
                svg,
                r##"<line x1="{x}" y1="{y}" x2="{x2}" y2="{y2}" stroke="#999" stroke-width="1.5"/>"##
            );
        }
        if (c.y as usize) < dims.height() - 1 {
            let (x2, y2) = center(placement, node + dims.width());
            let _ = writeln!(
                svg,
                r##"<line x1="{x}" y1="{y}" x2="{x2}" y2="{y2}" stroke="#999" stroke-width="1.5"/>"##
            );
        }
    }
    // Shortcut arcs (quadratic curves bulging toward the grid centre).
    let (gx, gy) = (
        MARGIN + dims.width() as f64 * PITCH / 2.0,
        MARGIN + dims.height() as f64 * PITCH / 2.0,
    );
    for s in figure.shortcuts {
        let (x1, y1) = center(placement, s.src);
        let (x2, y2) = center(placement, s.dst);
        let (mx, my) = ((x1 + x2) / 2.0, (y1 + y2) / 2.0);
        let (cx, cy) = (mx + (gx - mx) * 0.25, my + (gy - my) * 0.25);
        let _ = writeln!(
            svg,
            r##"<path d="M {x1} {y1} Q {cx} {cy} {x2} {y2}" fill="none" stroke="#d22" stroke-width="2" marker-end="url(#arrow)"/>"##
        );
    }
    if !figure.shortcuts.is_empty() {
        let _ = writeln!(
            svg,
            r##"<defs><marker id="arrow" markerWidth="8" markerHeight="8" refX="7" refY="3" orient="auto"><path d="M0,0 L7,3 L0,6 z" fill="#d22"/></marker></defs>"##
        );
    }
    // Routers.
    for node in 0..dims.nodes() {
        let (x, y) = center(placement, node);
        let (bx, by) = (x - BOX / 2.0, y - BOX / 2.0);
        let fill = component_fill(placement.kind(node));
        let _ = writeln!(
            svg,
            r##"<rect x="{bx}" y="{by}" width="{BOX}" height="{BOX}" fill="{fill}" stroke="#333" stroke-width="1"/>"##
        );
        if let Some(&heat) = figure.heat.get(node) {
            let clamped = heat.clamp(0.0, 1.0);
            if clamped > 0.0 {
                let _ = writeln!(
                    svg,
                    r##"<rect x="{bx}" y="{by}" width="{BOX}" height="{BOX}" fill="#d22" fill-opacity="{clamped:.3}"/>"##
                );
            }
        }
        if figure.rf_enabled.contains(&node) {
            let _ = writeln!(
                svg,
                r##"<line x1="{}" y1="{}" x2="{}" y2="{}" stroke="#06c" stroke-width="2.5"/>"##,
                bx + BOX,
                by,
                bx + BOX + 7.0,
                by - 7.0
            );
        }
    }
    svg.push_str("</svg>\n");
    svg
}

/// Options for [`render_link_heatmap`].
#[derive(Debug, Clone, Default)]
pub struct LinkHeatFigure<'a> {
    /// Shortcut arcs to draw, shaded by `shortcut_util`.
    pub shortcuts: &'a [Shortcut],
    /// Directed per-port utilization (`router * 6 + port`, 0.0–1.0); the
    /// two directions of a mesh edge are collapsed to their maximum.
    /// Length must be `routers * 6`.
    pub port_util: &'a [f64],
    /// Utilization per shortcut arc, parallel to `shortcuts` (0.0–1.0).
    /// May be empty, drawing the arcs at full strength.
    pub shortcut_util: &'a [f64],
    /// Figure caption.
    pub title: String,
}

/// Interpolates a utilization in 0.0–1.0 to a grey→red ramp.
fn heat_color(util: f64) -> String {
    let u = util.clamp(0.0, 1.0);
    let lerp = |a: f64, b: f64| (a + (b - a) * u).round() as u8;
    format!("rgb({},{},{})", lerp(215.0, 214.0), lerp(215.0, 39.0), lerp(215.0, 40.0))
}

/// Renders a per-link congestion heatmap: mesh edges stroked by
/// utilization (colour ramp + width), RF shortcut arcs shaded by their
/// band utilization, and ejection (local-port) pressure as router fill.
/// Port order matches the simulator: N, S, E, W, Local, RF.
///
/// # Panics
///
/// Panics if `port_util` does not cover every router's six ports.
pub fn render_link_heatmap(placement: &Placement, figure: &LinkHeatFigure<'_>) -> String {
    let dims = placement.dims();
    assert_eq!(
        figure.port_util.len(),
        dims.nodes() * 6,
        "port utilization must cover routers x 6 ports"
    );
    let width = MARGIN * 2.0 + dims.width() as f64 * PITCH;
    let height = MARGIN * 2.0 + dims.height() as f64 * PITCH + 24.0;
    let mut svg = String::new();
    let _ = writeln!(
        svg,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"##
    );
    let _ = writeln!(
        svg,
        r##"<rect width="{width}" height="{height}" fill="white"/>
<text x="{MARGIN}" y="22" font-family="sans-serif" font-size="14">{}</text>"##,
        figure.title
    );
    // Mesh edges: for each undirected edge, the hotter of the two directed
    // ports sets the colour and stroke weight. Ports: N=0, S=1, E=2, W=3.
    let port = |node: usize, p: usize| figure.port_util[node * 6 + p];
    for node in 0..dims.nodes() {
        let (x, y) = center(placement, node);
        let c = dims.coord_of(node);
        let mut edge = |other: usize, out_p: usize, back_p: usize| {
            let (x2, y2) = center(placement, other);
            let u = port(node, out_p).max(port(other, back_p)).clamp(0.0, 1.0);
            let w = 1.0 + 5.0 * u;
            let _ = writeln!(
                svg,
                r##"<line x1="{x}" y1="{y}" x2="{x2}" y2="{y2}" stroke="{}" stroke-width="{w:.2}"/>"##,
                heat_color(u)
            );
        };
        if (c.x as usize) < dims.width() - 1 {
            edge(node + 1, 2, 3); // east out, neighbour's west back
        }
        if (c.y as usize) < dims.height() - 1 {
            edge(node + dims.width(), 1, 0); // south out, neighbour's north back
        }
    }
    // RF shortcut arcs shaded by band utilization.
    let (gx, gy) = (
        MARGIN + dims.width() as f64 * PITCH / 2.0,
        MARGIN + dims.height() as f64 * PITCH / 2.0,
    );
    for (i, s) in figure.shortcuts.iter().enumerate() {
        let u = figure.shortcut_util.get(i).copied().unwrap_or(1.0).clamp(0.0, 1.0);
        let (x1, y1) = center(placement, s.src);
        let (x2, y2) = center(placement, s.dst);
        let (mx, my) = ((x1 + x2) / 2.0, (y1 + y2) / 2.0);
        let (cx, cy) = (mx + (gx - mx) * 0.25, my + (gy - my) * 0.25);
        let _ = writeln!(
            svg,
            r##"<path d="M {x1} {y1} Q {cx} {cy} {x2} {y2}" fill="none" stroke="#06c" stroke-width="{:.2}" stroke-opacity="{:.3}"/>"##,
            1.5 + 3.0 * u,
            0.25 + 0.75 * u,
        );
    }
    // Routers, filled by ejection (local-port) pressure.
    for node in 0..dims.nodes() {
        let (x, y) = center(placement, node);
        let (bx, by) = (x - BOX / 2.0, y - BOX / 2.0);
        let local = port(node, 4).clamp(0.0, 1.0);
        let _ = writeln!(
            svg,
            r##"<rect x="{bx}" y="{by}" width="{BOX}" height="{BOX}" fill="{}" stroke="#333" stroke-width="1"/>"##,
            heat_color(local)
        );
    }
    // Colour-ramp legend.
    let ly = height - 14.0;
    for i in 0..10 {
        let u = (i as f64 + 0.5) / 10.0;
        let lx = MARGIN + i as f64 * 12.0;
        let _ = writeln!(
            svg,
            r##"<rect x="{lx}" y="{}" width="12" height="8" fill="{}"/>"##,
            ly - 8.0,
            heat_color(u)
        );
    }
    let _ = writeln!(
        svg,
        r##"<text x="{}" y="{ly}" font-family="sans-serif" font-size="10">link utilization 0 to 1</text>"##,
        MARGIN + 128.0
    );
    svg.push_str("</svg>\n");
    svg
}

/// Builds the per-router heat vector (mean mesh-port utilization) from run
/// statistics.
pub fn utilization_heat(stats: &RunStats, routers: usize) -> Vec<f64> {
    (0..routers)
        .map(|r| {
            let mesh: f64 = (0..4).map(|p| stats.port_utilization(r, p, 1)).sum::<f64>() / 4.0;
            // Scale so that ~35% utilization saturates the colour.
            (mesh / 0.35).min(1.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn svg_structure_is_wellformed() {
        let placement = Placement::paper_10x10();
        let shortcuts = vec![Shortcut::new(1, 98), Shortcut::new(90, 9)];
        let figure = TopologyFigure {
            rf_enabled: &[0, 2, 4],
            shortcuts: &shortcuts,
            heat: vec![0.5; 100],
            title: "test figure".into(),
        };
        let svg = render_topology(&placement, &figure);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 1 + 100 + 100, "bg + boxes + heat");
        assert_eq!(svg.matches(" Q ").count(), 2, "two shortcut arcs");
        assert!(svg.contains("test figure"));
        // balanced tags for the elements we emit
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
    }

    #[test]
    #[should_panic(expected = "heat map must cover")]
    fn heat_length_checked() {
        let placement = Placement::paper_10x10();
        let figure = TopologyFigure { heat: vec![0.1; 5], ..Default::default() };
        render_topology(&placement, &figure);
    }

    #[test]
    fn link_heatmap_is_wellformed() {
        let placement = Placement::paper_10x10();
        let shortcuts = vec![Shortcut::new(1, 98)];
        let mut port_util = vec![0.0; 600];
        port_util[2] = 0.8; // router 0, east port
        let figure = LinkHeatFigure {
            shortcuts: &shortcuts,
            port_util: &port_util,
            shortcut_util: &[0.5],
            title: "link heat".into(),
        };
        let svg = render_link_heatmap(&placement, &figure);
        assert!(svg.starts_with("<svg") && svg.trim_end().ends_with("</svg>"));
        // 10x10 mesh has 180 undirected edges.
        assert_eq!(svg.matches("<line").count(), 180);
        assert_eq!(svg.matches(" Q ").count(), 1, "one shortcut arc");
        // bg + 100 routers + 10 legend swatches
        assert_eq!(svg.matches("<rect").count(), 1 + 100 + 10);
        assert!(svg.contains("rgb(214,39,40)") || svg.contains("rgb("));
    }

    #[test]
    #[should_panic(expected = "port utilization must cover")]
    fn link_heatmap_length_checked() {
        let placement = Placement::paper_10x10();
        let figure = LinkHeatFigure { port_util: &[0.1; 5], ..Default::default() };
        render_link_heatmap(&placement, &figure);
    }

    #[test]
    fn heat_from_stats_is_bounded() {
        let stats = RunStats::new(100, 18);
        let heat = utilization_heat(&stats, 100);
        assert_eq!(heat.len(), 100);
        assert!(heat.iter().all(|&h| (0.0..=1.0).contains(&h)));
    }
}
