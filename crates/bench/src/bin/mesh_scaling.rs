//! Scaling sweep: {10x10..64x64} x {mesh, ring-mesh} x {mesh-only, RF
//! overlay}, recording per-size build time and simulator throughput.
//!
//! Thin wrapper over the suite harness: the plan builder and renderer
//! live in `rfnoc_bench::suite`. Flags: `--jobs N`, `--quick`, `--quiet`.

fn main() {
    rfnoc_bench::suite::main_for("mesh_scaling");
}
