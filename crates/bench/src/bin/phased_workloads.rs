//! Phased-workload demonstration: the value of *re*-configuration.
//!
//! The paper's adaptive NoC retunes its RF-I shortcuts per application
//! (§3.2). This harness runs a sequence of application phases with very
//! different communication patterns and compares three strategies on the
//! same adaptive hardware, plus the static design:
//!
//! * **retune per phase** — the paper's policy (99-cycle table update per
//!   switch, overlapped with the context switch);
//! * **freeze first** — tune once for the first phase and keep it;
//! * **static** — the design-time shortcut set.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin phased_workloads
//! ```

use rfnoc::{
    Architecture, PhasedExperiment, ReconfigPolicy, SystemConfig, WorkloadSpec,
};
use rfnoc_bench::print_table;
use rfnoc_power::LinkWidth;
use rfnoc_traffic::{AppProfile, TraceKind};

fn main() {
    println!("# Phased workloads: per-application RF-I reconfiguration");
    let phases = vec![
        WorkloadSpec::Trace(TraceKind::Hotspot1),
        WorkloadSpec::App(AppProfile::bodytrack()),
        WorkloadSpec::Trace(TraceKind::BiDf),
        WorkloadSpec::App(AppProfile::x264()),
        WorkloadSpec::Trace(TraceKind::Hotspot4),
    ];
    let adaptive = SystemConfig::new(
        Architecture::AdaptiveShortcuts { access_points: 50 },
        LinkWidth::B16,
    );
    let static_sys = SystemConfig::new(Architecture::StaticShortcuts, LinkWidth::B16);

    let strategies: Vec<(&str, PhasedExperiment)> = vec![
        (
            "adaptive, retuned per phase",
            PhasedExperiment::new(adaptive.clone(), phases.clone(), ReconfigPolicy::PerPhase),
        ),
        (
            "adaptive, frozen after phase 1",
            PhasedExperiment::new(adaptive, phases.clone(), ReconfigPolicy::FreezeFirst),
        ),
        (
            "static shortcuts",
            PhasedExperiment::new(static_sys, phases.clone(), ReconfigPolicy::PerPhase),
        ),
    ];

    let mut rows = Vec::new();
    for (name, experiment) in strategies {
        eprintln!("running strategy: {name} ...");
        let report = experiment.run();
        let mut row = vec![name.to_string()];
        for phase in &report.phases {
            row.push(format!("{:.1}", phase.avg_latency()));
        }
        row.push(format!("{:.1}", report.avg_latency()));
        row.push(report.reconfigurations.to_string());
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["strategy".into()];
    headers.extend(phases.iter().map(|p| p.name()));
    headers.push("mean".into());
    headers.push("reconfigs".into());
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table("Per-phase average latency (cycles)", &header_refs, &rows);
    println!(
        "\nExpectation: retuning tracks each phase's hotspots; the frozen\n\
         tuning decays on later phases; 99 cycles per reconfiguration is\n\
         negligible against millions of execution cycles."
    );
}
