//! Figure 9: multicast power and performance — VCT, RF multicast (MC),
//! and RF multicast + 15 adaptive shortcuts (MC+SC), at 20% and 50%
//! destination-set locality, on the seven probabilistic traces augmented
//! with coherence multicasts; normalised to the 16B baseline mesh (which
//! expands multicasts into unicasts).
//!
//! Paper expectations (averages): VCT ≈ −3% latency at high locality but
//! worse at moderate locality; MC ≈ −14% latency / +11% power; MC+SC ≈
//! −37% latency / +25% power. (This reproduction's power model credits
//! the broadcast's retransmission savings, so its MC power lands *below*
//! baseline — see EXPERIMENTS.md.)
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin fig9_multicast
//! ```

use rfnoc::Architecture;
use rfnoc_bench::{geomean, multicast_workload, print_table, run_logged};
use rfnoc_power::LinkWidth;
use rfnoc_traffic::TraceKind;

fn main() {
    println!("# Figure 9: multicast power and performance (16B mesh)");
    let archs = [
        ("VCT", Architecture::VctMulticast),
        ("MC", Architecture::RfMulticast { access_points: 50 }),
        (
            "MC+SC",
            Architecture::AdaptiveWithMulticast { access_points: 50, shortcut_budget: 15 },
        ),
    ];
    for &locality in &[0.2, 0.5] {
        let tag = (locality * 100.0) as u32;
        let mut rows = Vec::new();
        let mut norms: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); archs.len()];
        for trace in TraceKind::all() {
            let workload = multicast_workload(trace, locality);
            let baseline = run_logged(Architecture::Baseline, LinkWidth::B16, workload.clone());
            let mut row = vec![trace.name().to_string()];
            for (i, (_, arch)) in archs.iter().enumerate() {
                let report = run_logged(arch.clone(), LinkWidth::B16, workload.clone());
                let (lat, pow) = report.normalized_to(&baseline);
                norms[i].0.push(lat);
                norms[i].1.push(pow);
                row.push(format!("{lat:.2}/{pow:.2}"));
            }
            rows.push(row);
        }
        let mut avg = vec!["**average**".to_string()];
        for (lats, pows) in &norms {
            avg.push(format!("{:.2}/{:.2}", geomean(lats), geomean(pows)));
        }
        rows.push(avg);
        let headers = ["trace", "VCT", "MC", "MC+SC"];
        print_table(
            &format!("Locality {tag}% — normalised latency/power vs 16B baseline"),
            &headers,
            &rows,
        );
        if let Err(e) =
            rfnoc_bench::write_csv(&format!("results/csv/fig9_loc{tag}.csv"), &headers, &rows)
        {
            eprintln!("csv write failed: {e}");
        }
    }
    println!("\nPaper averages: VCT-20 ≈ 0.97/1.0, MC ≈ 0.86/1.11, MC+SC ≈ 0.63/1.25");
}
