//! Figure 7: number of RF-enabled routers vs performance and power.
//!
//! Thin wrapper over the suite harness: the plan builder and renderer
//! live in `rfnoc_bench::suite`. Flags: `--jobs N`, `--quick`, `--quiet`.

fn main() {
    rfnoc_bench::suite::main_for("fig7");
}
