//! Figure 7: tradeoff between the number of RF-enabled routers and
//! performance — static shortcuts vs adaptive with 50 vs 25 access points,
//! on all seven probabilistic traces, normalised to the no-RF baseline
//! (all at 16B mesh links).
//!
//! Paper expectations: static ≈ −20% latency / +11% power on average;
//! adaptive-50 ≈ −32% / +24%; adaptive-25 ≈ −28% / +15%.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin fig7_rf_router_count
//! ```

use rfnoc::{Architecture, WorkloadSpec};
use rfnoc_bench::{geomean, print_table, run_logged};
use rfnoc_power::LinkWidth;
use rfnoc_traffic::TraceKind;

fn main() {
    println!("# Figure 7: number of RF-enabled routers vs performance (16B mesh)");
    let archs = [
        ("Static Shortcuts", Architecture::StaticShortcuts),
        ("Adaptive - 50 RF-Enabled", Architecture::AdaptiveShortcuts { access_points: 50 }),
        ("Adaptive - 25 RF-Enabled", Architecture::AdaptiveShortcuts { access_points: 25 }),
    ];
    let mut rows = Vec::new();
    let mut norms: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); archs.len()];
    for trace in TraceKind::all() {
        let workload = WorkloadSpec::Trace(trace);
        let baseline = run_logged(Architecture::Baseline, LinkWidth::B16, workload.clone());
        let mut row = vec![trace.name().to_string()];
        for (i, (_, arch)) in archs.iter().enumerate() {
            let report = run_logged(arch.clone(), LinkWidth::B16, workload.clone());
            let (lat, pow) = report.normalized_to(&baseline);
            norms[i].0.push(lat);
            norms[i].1.push(pow);
            row.push(format!("{lat:.2} / {pow:.2}"));
        }
        rows.push(row);
    }
    let mut avg_row = vec!["**average**".to_string()];
    for (lats, pows) in &norms {
        avg_row.push(format!("{:.2} / {:.2}", geomean(lats), geomean(pows)));
    }
    rows.push(avg_row);
    let headers = ["trace", "Static", "Adaptive-50", "Adaptive-25"];
    print_table("Normalised (latency / power) vs 16B baseline", &headers, &rows);
    if let Err(e) = rfnoc_bench::write_csv("results/csv/fig7.csv", &headers, &rows) {
        eprintln!("csv write failed: {e}");
    }
    println!(
        "\nPaper averages: Static 0.80 / 1.11, Adaptive-50 0.68 / 1.24, Adaptive-25 0.72 / 1.15"
    );
}
