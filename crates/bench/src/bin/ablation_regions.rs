//! Ablation: region-based vs pure pair-based application-specific
//! selection (§3.2.2).
//!
//! The paper motivates region-to-region placement by the port limit: "once
//! a shortcut is selected, its source and destination are removed from
//! further consideration. However, if a communication hotspot exists, this
//! restriction prevents more than one shortcut from being placed at this
//! hotspot." This harness compares the full region-aware heuristic against
//! the pure max-`F·W` pair heuristic on the hotspot traces.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin ablation_regions
//! ```

use rfnoc::{Architecture, SystemConfig, WorkloadSpec};
use rfnoc_bench::print_table;
use rfnoc_power::LinkWidth;
use rfnoc_sim::{Network, NetworkSpec, RoutingKind, SimConfig};
use rfnoc_topology::select::{
    select_application_specific, select_max_cost, SelectionConstraints,
};
use rfnoc_topology::{GridGraph, Shortcut};
use rfnoc_traffic::{staggered_rf_routers, Placement, TraceKind, TrafficConfig};

fn simulate(shortcuts: Vec<Shortcut>, trace: TraceKind) -> f64 {
    let placement = Placement::paper_10x10();
    let mut cfg = SimConfig::paper_baseline().with_link_width(LinkWidth::B16);
    cfg.warmup_cycles = 2_000;
    cfg.measure_cycles = 30_000;
    let mut spec = NetworkSpec::with_shortcuts(placement.dims(), cfg, shortcuts);
    if spec.shortcuts.is_empty() {
        spec.routing = RoutingKind::Xy;
    }
    let mut network = Network::new(spec);
    let mut workload = rfnoc_traffic::ProbabilisticWorkload::new(
        placement,
        trace,
        TrafficConfig::default(),
    );
    network.run(&mut workload).avg_message_latency()
}

fn main() {
    println!("# Ablation: region-based vs pair-based application-specific selection");
    let placement = Placement::paper_10x10();
    let graph = GridGraph::mesh(placement.dims());
    let rf50 = staggered_rf_routers(placement.dims(), 50);
    let mut rows = Vec::new();
    for trace in [TraceKind::Hotspot1, TraceKind::Hotspot2, TraceKind::Hotspot4, TraceKind::Uniform]
    {
        // the profile matches the workload (same generator seed)
        let profile = WorkloadSpec::Trace(trace).profile(
            &placement,
            &TrafficConfig::default(),
            rfnoc::DEFAULT_PROFILE_CYCLES,
        );
        let constraints = SelectionConstraints::for_enabled(
            100,
            SystemConfig::new(Architecture::Baseline, LinkWidth::B16).shortcut_budget,
            &rf50,
        )
        .excluding_corners(&graph);
        let region_based = select_application_specific(&graph, &profile, &constraints);
        let pair_based = select_max_cost(&graph, &profile, &constraints);
        let base = simulate(Vec::new(), trace);
        let region_lat = simulate(region_based.clone(), trace);
        let pair_lat = simulate(pair_based.clone(), trace);
        rows.push(vec![
            trace.name().to_string(),
            format!("{base:.1}"),
            format!("{pair_lat:.1} ({:.2}x)", pair_lat / base),
            format!("{region_lat:.1} ({:.2}x)", region_lat / base),
            format!("{} / {}", pair_based.len(), region_based.len()),
        ]);
    }
    print_table(
        "Simulated latency (16B mesh, cycles)",
        &["trace", "baseline", "pair-based", "region-based", "#shortcuts (pair/region)"],
        &rows,
    );
    println!(
        "\nExpectation: the pure pair-based heuristic runs out of positive-\n\
         frequency pairs once the hotspot's two ports are consumed; region-\n\
         based selection keeps placing shortcuts at neighbouring routers and\n\
         wins on the hotspot traces."
    );
}
