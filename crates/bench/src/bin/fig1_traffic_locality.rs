//! Figure 1: traffic locality in the baseline mesh, for x264 and
//! bodytrack — number of messages by source→destination Manhattan
//! distance, plus the median line the paper draws.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin fig1_traffic_locality
//! ```

use rfnoc::{Architecture, WorkloadSpec};
use rfnoc_bench::{print_table, run_logged};
use rfnoc_power::LinkWidth;
use rfnoc_traffic::AppProfile;

fn main() {
    println!("# Figure 1: traffic by Manhattan distance (baseline 16B mesh)");
    for profile in [AppProfile::x264(), AppProfile::bodytrack()] {
        let name = profile.name;
        let report = run_logged(
            Architecture::Baseline,
            LinkWidth::B16,
            WorkloadSpec::App(profile),
        );
        let hist = &report.stats.distance_histogram;
        let relevant = &hist[1..=14.min(hist.len() - 1)];
        let mut sorted: Vec<u64> = relevant.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let max = relevant.iter().copied().max().unwrap_or(1).max(1);
        let rows: Vec<Vec<String>> = relevant
            .iter()
            .enumerate()
            .map(|(i, &count)| {
                let bar_len = (count * 40 / max) as usize;
                vec![
                    format!("{}", i + 1),
                    count.to_string(),
                    format!("{}{}", "#".repeat(bar_len), if count > 0 && bar_len == 0 { "." } else { "" }),
                ]
            })
            .collect();
        print_table(
            &format!("{name} traffic by manhattan distance (median = {median} msgs)"),
            &["hops", "messages", "profile"],
            &rows,
        );
    }
    println!(
        "\nPaper shape check: bodytrack sends a much greater proportion of \
         single-hop traffic and almost none at 14 hops; x264 peaks at \
         mid-range distances with a long tail."
    );
}
