//! Figure 1: traffic distribution by Manhattan distance on the baseline mesh.
//!
//! Thin wrapper over the suite harness: the plan builder and renderer
//! live in `rfnoc_bench::suite`. Flags: `--jobs N`, `--quick`, `--quiet`.

fn main() {
    rfnoc_bench::suite::main_for("fig1");
}
