//! Ablation: RF-I benefit as the mesh scales from 8x8 to 14x14.
//!
//! Thin wrapper over the suite harness: the plan builder and renderer
//! live in `rfnoc_bench::suite`. Flags: `--jobs N`, `--quick`, `--quiet`.

fn main() {
    rfnoc_bench::suite::main_for("ablation_mesh_scaling");
}
