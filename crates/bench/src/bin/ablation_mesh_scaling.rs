//! Ablation: does the RF-I advantage grow with mesh size?
//!
//! The paper's motivation (§1) is scaling: "As CMPs scale to tens or
//! hundreds of cores ... power in particular is a concern". With a *fixed*
//! 256B aggregate RF-I budget (16 shortcuts), cross-chip distances grow
//! with the mesh while shortcut latency stays one cycle — so the latency
//! reduction from the overlay should widen as the mesh grows.
//!
//! Sweeps square meshes from 8×8 to 14×14 with the quadrant-cluster
//! placement scaled accordingly (half the routers RF-enabled, budget fixed
//! at 16 shortcuts).
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin ablation_mesh_scaling
//! ```

use rfnoc::{Architecture, Experiment, SystemConfig, WorkloadSpec};
use rfnoc_bench::print_table;
use rfnoc_power::LinkWidth;
use rfnoc_sim::SimConfig;
use rfnoc_traffic::{Placement, TraceKind, TrafficConfig};
use rfnoc_topology::GridDims;

fn main() {
    println!("# Ablation: RF-I benefit vs mesh size (fixed 256B RF budget)");
    let mut rows = Vec::new();
    for side in [8usize, 10, 12, 14] {
        let dims = GridDims::new(side, side);
        let placement = Placement::quadrant_clusters(dims);
        let nodes = dims.nodes();
        // Keep total offered load roughly constant as the mesh grows.
        let traffic = TrafficConfig {
            injection_rate: 0.008 * 100.0 / nodes as f64,
            ..TrafficConfig::default()
        };
        let mut sim = SimConfig::paper_baseline();
        sim.warmup_cycles = 2_000;
        sim.measure_cycles = 25_000;
        let run = |arch: Architecture| {
            let system = SystemConfig::new(arch, LinkWidth::B16).with_sim(sim.clone());
            let mut exp = Experiment::new(system, WorkloadSpec::Trace(TraceKind::Uniform));
            exp.placement = placement.clone();
            exp.traffic = traffic.clone();
            exp.profile_cycles = 8_000;
            exp.run()
        };
        eprintln!("running {side}x{side} ...");
        let base = run(Architecture::Baseline);
        let static_sc = run(Architecture::StaticShortcuts);
        let adaptive = run(Architecture::AdaptiveShortcuts { access_points: nodes / 2 });
        rows.push(vec![
            format!("{side}x{side} ({nodes} routers)"),
            format!("{:.1}", base.avg_latency()),
            format!("{:.2}", static_sc.avg_latency() / base.avg_latency()),
            format!("{:.2}", adaptive.avg_latency() / base.avg_latency()),
            format!("{:.2}", base.stats.avg_hops()),
            format!("{:.2}", adaptive.stats.avg_hops()),
        ]);
    }
    print_table(
        "Uniform trace, 16B links, 16 shortcuts",
        &[
            "mesh",
            "base lat (cyc)",
            "static lat (norm)",
            "adaptive lat (norm)",
            "base hops",
            "adaptive hops",
        ],
        &rows,
    );
    println!(
        "\nExpectation: the normalised latency of the RF-I designs falls as\n\
         the mesh grows — single-cycle shortcuts replace ever-longer\n\
         multi-hop paths, which is the scaling argument of the paper's\n\
         introduction."
    );
}
