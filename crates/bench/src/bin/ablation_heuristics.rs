//! Ablation: the two shortcut-selection heuristics of Figure 3.
//!
//! The paper: "We have tried both heuristics and found the resulting set
//! of shortcuts to perform comparably well. Therefore ... we shall use the
//! latter, less complex approach." This harness checks that claim: it
//! compares the exhaustive permutation-graph greedy (Figure 3a, O(B·V⁵)
//! naively) against the max-cost greedy (Figure 3b, O(B·V³)) on the
//! uniform-weight objective and on end-to-end simulated latency.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin ablation_heuristics
//! ```

use rfnoc_bench::print_table;
use rfnoc_power::LinkWidth;
use rfnoc_sim::{Network, NetworkSpec, SimConfig};
use rfnoc_topology::select::{
    select_exhaustive_greedy, select_max_cost, SelectionConstraints,
};
use rfnoc_topology::{GridGraph, PairWeights, Shortcut};
use rfnoc_traffic::{Placement, ProbabilisticWorkload, TraceKind, TrafficConfig};
use std::time::Instant;

fn simulate(shortcuts: Vec<Shortcut>) -> f64 {
    let placement = Placement::paper_10x10();
    let mut cfg = SimConfig::paper_baseline().with_link_width(LinkWidth::B16);
    cfg.warmup_cycles = 2_000;
    cfg.measure_cycles = 30_000;
    let spec = if shortcuts.is_empty() {
        NetworkSpec::mesh_baseline(placement.dims(), cfg)
    } else {
        NetworkSpec::with_shortcuts(placement.dims(), cfg, shortcuts)
    };
    let mut network = Network::new(spec);
    let mut workload = ProbabilisticWorkload::new(
        placement,
        TraceKind::Uniform,
        TrafficConfig::default(),
    );
    network.run(&mut workload).avg_message_latency()
}

fn main() {
    println!("# Ablation: Figure 3a (exhaustive greedy) vs Figure 3b (max-cost)");
    let graph = GridGraph::mesh(Placement::paper_10x10().dims());
    let weights = PairWeights::uniform(100);
    let constraints = SelectionConstraints::allowing_all(100, 16).excluding_corners(&graph);

    let t0 = Instant::now();
    let max_cost = select_max_cost(&graph, &weights, &constraints);
    let t_max_cost = t0.elapsed();
    let t0 = Instant::now();
    let exhaustive = select_exhaustive_greedy(&graph, &weights, &constraints);
    let t_exhaustive = t0.elapsed();

    let objective = |set: &[Shortcut]| {
        let g = GridGraph::with_shortcuts(graph.dims(), set);
        GridGraph::total_cost(&g.distances(), weights.as_slice())
    };
    let base_obj = objective(&[]);
    let rows = vec![
        vec![
            "max-cost (Fig 3b)".into(),
            format!("{:.0}", objective(&max_cost)),
            format!("{:.1}%", (1.0 - objective(&max_cost) / base_obj) * 100.0),
            format!("{:.2?}", t_max_cost),
            format!("{:.1}", simulate(max_cost.clone())),
        ],
        vec![
            "exhaustive (Fig 3a)".into(),
            format!("{:.0}", objective(&exhaustive)),
            format!("{:.1}%", (1.0 - objective(&exhaustive) / base_obj) * 100.0),
            format!("{:.2?}", t_exhaustive),
            format!("{:.1}", simulate(exhaustive.clone())),
        ],
        vec![
            "no shortcuts".into(),
            format!("{base_obj:.0}"),
            "0.0%".into(),
            "-".into(),
            format!("{:.1}", simulate(Vec::new())),
        ],
    ];
    print_table(
        "Uniform-weight objective Σ W(x,y), selection time, simulated latency (Uniform trace)",
        &["heuristic", "objective", "reduction", "time", "latency (cyc)"],
        &rows,
    );
    println!(
        "\nExpectation (paper §3.2.1): both heuristics perform comparably well;\n\
         the exhaustive version buys a slightly better objective at vastly\n\
         higher selection cost."
    );
}
