//! Congestion telemetry report: where and *when* the network saturates.
//!
//! Runs two instrumented scenarios on the paper's 10×10 system and
//! renders the telemetry layer's artifacts:
//!
//! 1. **Congestion** — a saturating uniform load on the static-shortcut
//!    design. Writes `results/json/TELEMETRY_congestion.json` (interval
//!    time series, per-link utilization, per-band RF utilization, span
//!    digest) and `results/svg/TELEMETRY_link_heatmap.svg` (mesh links
//!    stroked by utilization, RF arcs shaded by band utilization).
//! 2. **Fault timeline** — the same design at moderate load with the
//!    whole RF band failing mid-run. Writes
//!    `results/json/TELEMETRY_fault_timeline.json`; the printed timeline
//!    shows the fault event in the interval where RF utilization drops.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin telemetry_report [--quick]
//! ```

use rfnoc::Architecture;
use rfnoc_bench::scenarios::{
    fault_cycle, fault_experiment, instrumented_experiment, rf_capacity, SATURATED_RATE,
};
use rfnoc_bench::svg::{render_link_heatmap, LinkHeatFigure};
use rfnoc_bench::telemetry::{
    self, covered_cycles, event_label, hottest_ports, link_utilization, print_timeline,
    PORT_NAMES,
};
use rfnoc_sim::TelemetryReport;
use rfnoc_traffic::Placement;

fn write_svg(name: &str, svg: &str) {
    let dir = "results/svg";
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("telemetry_report: cannot create {dir}: {e}");
        return;
    }
    let path = format!("{dir}/{name}.svg");
    match std::fs::write(&path, svg) {
        Ok(()) => eprintln!("telemetry_report: wrote {path}"),
        Err(e) => eprintln!("telemetry_report: cannot write {path}: {e}"),
    }
}

fn congestion_scenario(quick: bool) {
    // A load comfortably past the 16B uniform saturation knee, so the
    // heatmap shows the congested steady state (fig7's saturated region).
    let experiment =
        instrumented_experiment(Architecture::StaticShortcuts, quick, SATURATED_RATE, false);
    let built = experiment.build();
    eprintln!("telemetry_report: congestion run ({})", experiment.summary());
    let report = experiment.run();
    let stats = &report.stats;
    let tel = stats.telemetry.as_ref().expect("telemetry was enabled");

    println!("# Congestion telemetry: {} on Uniform (saturating load)", report.system);
    println!(
        "  {} cycles in {} samples, {} spans ({} dropped), saturated: {}",
        covered_cycles(tel),
        tel.samples.len(),
        tel.spans.len(),
        tel.dropped_spans,
        stats.saturated,
    );
    print_timeline(tel, 16);
    print_hot_ports(tel);

    telemetry::write_json("TELEMETRY_congestion", stats, tel);

    // Heatmap: mesh links at flit/cycle utilization, RF arcs at band
    // utilization (per shortcut source, since sources are unique).
    let placement = Placement::paper_10x10();
    let util = scaled_link_util(tel);
    let shortcut_util: Vec<f64> = built
        .shortcuts
        .iter()
        .map(|s| telemetry::port_utilization(tel, s.src, 5, rf_capacity()))
        .collect();
    let figure = LinkHeatFigure {
        shortcuts: &built.shortcuts,
        port_util: &util,
        shortcut_util: &shortcut_util,
        title: format!(
            "Link utilization: {} on Uniform, saturating load (scale x{HEAT_SCALE})",
            report.system
        ),
    };
    write_svg("TELEMETRY_link_heatmap", &render_link_heatmap(&placement, &figure));
}

/// Colour gain: mesh links saturate the ramp at 1/HEAT_SCALE flits/cycle.
const HEAT_SCALE: f64 = 2.5;

fn scaled_link_util(tel: &TelemetryReport) -> Vec<f64> {
    link_utilization(tel).iter().map(|u| (u * HEAT_SCALE).min(1.0)).collect()
}

fn print_hot_ports(tel: &TelemetryReport) {
    let dims = Placement::paper_10x10().dims();
    let cycles = covered_cycles(tel).max(1);
    println!("\nhottest output ports:");
    for (r, p, grants) in hottest_ports(tel, 8) {
        println!(
            "    {} port {:<5} {:>9} flits  ({:.1}% of cycles)",
            dims.coord_of(r),
            PORT_NAMES[p],
            grants,
            100.0 * grants as f64 / cycles as f64
        );
    }
}

fn fault_scenario(quick: bool) {
    let fault_at = fault_cycle(quick);
    let experiment = fault_experiment(Architecture::StaticShortcuts, quick, false);
    eprintln!("telemetry_report: fault run (BandDown at cycle {fault_at})");
    let report = experiment.run();
    let stats = &report.stats;
    let tel = stats.telemetry.as_ref().expect("telemetry was enabled");

    println!("\n# Fault timeline: whole RF band down at cycle {fault_at}");
    print_timeline(tel, 24);
    telemetry::write_json("TELEMETRY_fault_timeline", stats, tel);

    // Sanity narration: RF utilization before vs after the fault interval.
    if let Some(i) = tel.sample_index_at(fault_at) {
        let rate = |s: &rfnoc_sim::IntervalSample| s.rf_grants as f64 / s.cycles.max(1) as f64;
        let before: f64 = tel.samples[..i].iter().map(rate).sum::<f64>() / i.max(1) as f64;
        let after: f64 = tel.samples[i + 1..]
            .iter()
            .map(rate)
            .sum::<f64>()
            / tel.samples.len().saturating_sub(i + 1).max(1) as f64;
        println!(
            "\nRF grants/cycle: {before:.3} before the fault interval, {after:.3} after"
        );
        for e in tel.events_in_sample(i) {
            println!("  event in interval {i}: cycle {} {}", e.cycle, event_label(&e.kind));
        }
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    congestion_scenario(quick);
    fault_scenario(quick);
}
