//! Figure 8: impact of mesh bandwidth reduction — baseline, static, and
//! adaptive shortcut architectures at 16B/8B/4B links on all seven
//! probabilistic traces, normalised to the 16B baseline.
//!
//! Paper expectations (averages): 8B baseline −48% power / +4% latency;
//! 4B baseline −72% power / +27% latency; static @4B −67% power / +11%
//! latency; **adaptive @4B ≈ −62% power at −1% latency** (hotspot traces
//! gain up to 13%).
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin fig8_bandwidth_reduction
//! ```

use rfnoc::{Architecture, WorkloadSpec};
use rfnoc_bench::{geomean, print_table, run_logged};
use rfnoc_power::LinkWidth;
use rfnoc_traffic::TraceKind;

fn main() {
    println!("# Figure 8: mesh bandwidth reduction (normalised to 16B baseline)");
    let configs: Vec<(String, Architecture, LinkWidth)> = LinkWidth::all()
        .into_iter()
        .flat_map(|w| {
            [
                (format!("Baseline {w}"), Architecture::Baseline, w),
                (format!("Static {w}"), Architecture::StaticShortcuts, w),
                (
                    format!("Adaptive {w}"),
                    Architecture::AdaptiveShortcuts { access_points: 50 },
                    w,
                ),
            ]
        })
        .collect();

    let mut norms: Vec<(Vec<f64>, Vec<f64>)> = vec![(Vec::new(), Vec::new()); configs.len()];
    let mut rows = Vec::new();
    for trace in TraceKind::all() {
        let workload = WorkloadSpec::Trace(trace);
        let baseline = run_logged(Architecture::Baseline, LinkWidth::B16, workload.clone());
        let mut row = vec![trace.name().to_string()];
        for (i, (_, arch, width)) in configs.iter().enumerate() {
            let report = if *arch == Architecture::Baseline && *width == LinkWidth::B16 {
                baseline.clone()
            } else {
                run_logged(arch.clone(), *width, workload.clone())
            };
            let (lat, pow) = report.normalized_to(&baseline);
            norms[i].0.push(lat);
            norms[i].1.push(pow);
            row.push(format!("{lat:.2}/{pow:.2}"));
        }
        rows.push(row);
    }
    let mut avg = vec!["**average**".to_string()];
    for (lats, pows) in &norms {
        avg.push(format!("{:.2}/{:.2}", geomean(lats), geomean(pows)));
    }
    rows.push(avg);

    let headers: Vec<String> =
        std::iter::once("trace".to_string()).chain(configs.iter().map(|c| c.0.clone())).collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    print_table("Normalised latency/power", &header_refs, &rows);
    if let Err(e) = rfnoc_bench::write_csv("results/csv/fig8.csv", &header_refs, &rows) {
        eprintln!("csv write failed: {e}");
    }

    println!("\nPaper anchors (averages over the probabilistic traces):");
    println!("  Baseline 8B: 1.04 / 0.52      Baseline 4B: 1.27 / 0.28");
    println!("  Static   4B: 1.11 / 0.33      Adaptive 4B: 0.99 / 0.38");
}
