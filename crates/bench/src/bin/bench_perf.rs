//! Simulator-throughput benchmark: times the raw cycle engine on a set of
//! fixed configurations and writes `results/json/BENCH_sim_throughput.json`
//! — the repo's tracked perf trajectory.
//!
//! Unlike the figure binaries this does not measure the *network*; it
//! measures the *simulator*: cycles per second and flit grants per second
//! of `Network::run` on a 10×10 mesh at several load points. The vendored
//! criterion crate is an API stub, so timing is hand-rolled with
//! `std::time::Instant`, exactly like the sweep runner.
//!
//! Usage: `bench_perf [--quick] [--telemetry] [--ledger] [--sim-threads N]`
//!   --quick        one short repetition per config (CI smoke)
//!   --telemetry    enable the telemetry layer (all channels, 1k-cycle
//!                  interval) and write the artifact as
//!                  `BENCH_sim_throughput_telemetry.json` — CI compares its
//!                  cycles/sec against the telemetry-off run to bound the
//!                  observation overhead
//!   --ledger       enable the run ledger (1k-cycle heartbeats) on every
//!                  timed run and write the artifact as
//!                  `BENCH_sim_throughput_ledger.json` — CI compares its
//!                  cycles/sec against the ledger-off run the same way
//!   --sim-threads  step every simulation on N sharded-engine threads
//!                  (bit-identical to serial; 0 is rejected)
//!
//! Besides the fixed 10×10 configs, a saturated 64×64 mesh is timed at 1
//! thread and — when `--sim-threads N > 1` — again at N threads; both land
//! in the artifact and the BENCH_trajectory row (ids
//! `mesh64x64_saturated_t<threads>`), so the trajectory records wall time
//! against thread count for the scaling workload. Threaded scale rows also
//! carry `shard_imbalance` (max/mean per-shard sweep time) and
//! `barrier_wait_frac` (barrier share of the sweep wall), measured by one
//! extra ledger-instrumented run so the timed run stays un-instrumented.
//!
//! Best-of-N rows additionally record the repeat-sample spread
//! (`cycles_per_sec_spread_{min,max,stddev}`) — the wall-clock noise
//! envelope behind the reported best, which `rfnoc-cli gate` uses as a
//! per-row noise prior when judging regressions. Artifacts and trajectory
//! rows are also filed into the cross-run trend store (`results/history/`,
//! override or disable with `RFNOC_HISTORY`).

use rfnoc_bench::artifact::{
    append_trajectory, git_describe, ingest_history, json_f64, json_str, MetricSpread,
    TrajectoryPoint,
};
use rfnoc_sim::{
    LedgerConfig, LedgerRecord, McConfig, MessageClass, MessageSpec, MulticastMode, Network,
    NetworkSpec, RunStats, SimConfig, TelemetryConfig, Workload,
};
use rfnoc_topology::{GridDims, Shortcut};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Deterministic xorshift-driven synthetic traffic, mirroring the golden
/// determinism suite: per-node Bernoulli injection at `load_256`/256
/// messages per node per cycle.
struct SyntheticWorkload {
    state: u64,
    nodes: usize,
    load_256: u64,
    until: u64,
}

impl SyntheticWorkload {
    fn new(seed: u64, nodes: usize, load_256: u64, until: u64) -> Self {
        Self { state: seed, nodes, load_256, until }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

impl Workload for SyntheticWorkload {
    fn messages_at(&mut self, cycle: u64, out: &mut Vec<MessageSpec>) {
        if cycle >= self.until {
            return;
        }
        for src in 0..self.nodes {
            if self.next() % 256 >= self.load_256 {
                continue;
            }
            let mut dst = (self.next() % self.nodes as u64) as usize;
            if dst == src {
                dst = (dst + 1) % self.nodes;
            }
            let class = match self.next() % 3 {
                0 => MessageClass::Request,
                1 => MessageClass::Data,
                _ => MessageClass::Memory,
            };
            out.push(MessageSpec::unicast(src, dst, class));
        }
    }
}

/// One benchmark configuration: a network builder plus its traffic load.
struct BenchConfig {
    id: &'static str,
    description: &'static str,
    /// Injection probability per node per cycle, in 1/256ths.
    load_256: u64,
    /// Builds the network spec for the given measurement window.
    build: fn(SimConfig) -> NetworkSpec,
}

const DIMS_W: usize = 10;
const DIMS_H: usize = 10;

fn dims() -> GridDims {
    GridDims::new(DIMS_W, DIMS_H)
}

fn shortcut_set() -> Vec<Shortcut> {
    let d = dims();
    let n = d.nodes();
    let w = d.width();
    vec![
        Shortcut::new(0, n - 1),
        Shortcut::new(n - 1, 0),
        Shortcut::new(w - 1, n - w),
        Shortcut::new(n - w, w - 1),
        Shortcut::new(n / 2 - w / 2, n - 1 - w / 2),
        Shortcut::new(n - 1 - w / 2, n / 2 - w / 2),
    ]
}

fn mesh(cfg: SimConfig) -> NetworkSpec {
    NetworkSpec::mesh_baseline(dims(), cfg)
}

fn rf(cfg: SimConfig) -> NetworkSpec {
    NetworkSpec::with_shortcuts(dims(), cfg, shortcut_set())
}

fn rf_mc(cfg: SimConfig) -> NetworkSpec {
    let d = dims();
    let receivers: Vec<usize> = (0..d.nodes()).filter(|i| i % 2 == 0).collect();
    let serving = McConfig::serving_map(d, &receivers);
    let transmitters = vec![22, 27, 72, 77];
    let mut cluster_of = vec![None; d.nodes()];
    for (cluster, &tx) in transmitters.iter().enumerate() {
        cluster_of[tx] = Some(cluster);
        cluster_of[tx + 1] = Some(cluster);
    }
    let mc = McConfig {
        transmitters,
        cluster_of,
        receivers,
        serving,
        epoch_cycles: 1_000,
        rf_flit_bytes: 16,
    };
    let mut spec = mesh(cfg);
    spec.multicast = MulticastMode::Rf;
    spec.mc = Some(mc);
    spec
}

const CONFIGS: &[BenchConfig] = &[
    BenchConfig {
        id: "mesh10x10_low_load",
        description: "10x10 mesh, XY, ~0.4% per-node injection (mostly-idle network)",
        load_256: 1,
        build: mesh,
    },
    BenchConfig {
        id: "mesh10x10_mid_load",
        description: "10x10 mesh, XY, ~1.5% per-node injection (paper low-load sweep point)",
        load_256: 4,
        build: mesh,
    },
    BenchConfig {
        id: "mesh10x10_saturated",
        description: "10x10 mesh, XY, saturating injection",
        load_256: 96,
        build: mesh,
    },
    BenchConfig {
        id: "rf10x10_mid_load",
        description: "10x10 mesh + 6 RF shortcuts, shortest-path + adaptive, mid load",
        load_256: 24,
        build: rf,
    },
    BenchConfig {
        id: "rf10x10_mc_broadcast",
        description: "10x10 mesh, RF multicast broadcast channel, low load",
        load_256: 8,
        build: rf_mc,
    },
];

/// One timed run: the statistics plus the wall time of `Network::run`.
struct Sample {
    stats: RunStats,
    wall: Duration,
}

fn run_once(
    bc: &BenchConfig,
    measure_cycles: u64,
    telemetry: bool,
    ledger: bool,
    threads: usize,
) -> Sample {
    let mut cfg = SimConfig::paper_baseline().with_threads(threads);
    cfg.warmup_cycles = 500;
    cfg.measure_cycles = measure_cycles;
    cfg.drain_cycles = 20_000;
    cfg.watchdog_cycles = 0;
    if telemetry {
        cfg.telemetry = Some(TelemetryConfig::every(1_000));
    }
    if ledger {
        cfg.ledger = Some(LedgerConfig::every(1_000));
    }
    let horizon = cfg.warmup_cycles + cfg.measure_cycles;
    let spec = (bc.build)(cfg);
    let mut network = Network::new(spec);
    let mut workload = SyntheticWorkload::new(0xb_e4c4 ^ bc.load_256, dims().nodes(), bc.load_256, horizon);
    let t0 = Instant::now();
    let stats = network.run(&mut workload);
    Sample { stats, wall: t0.elapsed() }
}

/// The thread-scaling workload: a saturated 64×64 mesh, the configuration
/// where the sharded engine has enough routers per shard to amortise the
/// cycle-boundary barriers.
fn run_scale(threads: usize, measure_cycles: u64, quick: bool, ledger: bool) -> Sample {
    let d = GridDims::new(64, 64);
    let mut cfg = SimConfig::paper_baseline().with_threads(threads);
    cfg.warmup_cycles = if quick { 100 } else { 200 };
    cfg.measure_cycles = measure_cycles;
    // The wall-time ratio is the metric; a saturated 64×64 never fully
    // drains anyway, so cap the tail hard in quick mode.
    cfg.drain_cycles = if quick { 400 } else { 3_000 };
    cfg.watchdog_cycles = 0;
    if ledger {
        cfg.ledger = Some(LedgerConfig::every(1_000));
    }
    let horizon = cfg.warmup_cycles + cfg.measure_cycles;
    let spec = NetworkSpec::mesh_baseline(d, cfg);
    let mut network = Network::new(spec);
    let mut workload = SyntheticWorkload::new(0xb164, d.nodes(), 96, horizon);
    let t0 = Instant::now();
    let stats = network.run(&mut workload);
    Sample { stats, wall: t0.elapsed() }
}

/// Reduces a ledger-instrumented run's shard records to the two scaling
/// metrics: `(shard_imbalance, barrier_wait_frac)` — max/mean per-shard
/// total sweep time, and the barrier share of the sweep-phase wall.
/// `(None, None)` without a ledger or without shard records (serial run).
fn shard_metrics(stats: &RunStats) -> (Option<f64>, Option<f64>) {
    let Some(report) = &stats.ledger else { return (None, None) };
    let mut per_shard: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
    let (mut sweep_total, mut barrier_total) = (0.0f64, 0.0f64);
    for r in &report.records {
        if let LedgerRecord::Shard { shard, sweep_ms, barrier_ms, .. } = r {
            *per_shard.entry(*shard).or_insert(0.0) += sweep_ms;
            sweep_total += sweep_ms;
            barrier_total += barrier_ms;
        }
    }
    if per_shard.is_empty() {
        return (None, None);
    }
    let mean = sweep_total / per_shard.len() as f64;
    let max = per_shard.values().copied().fold(0.0, f64::max);
    let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
    let total = sweep_total + barrier_total;
    let frac = if total > 0.0 { barrier_total / total } else { 0.0 };
    (Some(imbalance), Some(frac))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let telemetry = args.iter().any(|a| a == "--telemetry");
    let ledger = args.iter().any(|a| a == "--ledger");
    let sim_threads: usize = match args.iter().position(|a| a == "--sim-threads") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse().ok()) {
            Some(0) | None => {
                eprintln!("bench_perf: --sim-threads needs a positive integer");
                std::process::exit(2);
            }
            Some(n) => n,
        },
        None => 1,
    };
    // Quick mode still takes best-of-2: single-rep wall times on the
    // short configs are noisy enough to flake the CI telemetry-overhead
    // comparison.
    let (measure_cycles, reps) = if quick { (4_000, 2) } else { (40_000, 3) };
    let name = if telemetry {
        "BENCH_sim_throughput_telemetry"
    } else if ledger {
        "BENCH_sim_throughput_ledger"
    } else {
        "BENCH_sim_throughput"
    };
    let git = git_describe();
    eprintln!(
        "bench_perf: {} configs x {reps} reps, {measure_cycles} measured cycles each ({}{}{}{})",
        CONFIGS.len(),
        if quick { "quick" } else { "full" },
        if telemetry { ", telemetry on" } else { "" },
        if ledger { ", ledger on" } else { "" },
        if sim_threads > 1 { ", sharded engine" } else { "" },
    );

    let mut rows = String::new();
    let mut trajectory: Vec<TrajectoryPoint> = Vec::new();
    for bc in CONFIGS.iter() {
        // Best-of-N wall time: the least-perturbed run of a deterministic
        // simulation is the most faithful throughput estimate. The spread
        // of the discarded repeats rides along as the row's noise prior.
        let mut best: Option<Sample> = None;
        let mut rep_cps: Vec<f64> = Vec::with_capacity(reps);
        for _ in 0..reps {
            let s = run_once(bc, measure_cycles, telemetry, ledger, sim_threads);
            rep_cps.push(s.stats.end_cycle as f64 / s.wall.as_secs_f64().max(1e-9));
            if best.as_ref().is_none_or(|b| s.wall < b.wall) {
                best = Some(s);
            }
        }
        let spread = MetricSpread::of(&rep_cps);
        let s = best.expect("at least one rep");
        let secs = s.wall.as_secs_f64().max(1e-9);
        let cycles = s.stats.end_cycle;
        let grants: u64 = s.stats.port_flits.iter().sum();
        let cps = cycles as f64 / secs;
        let gps = grants as f64 / secs;
        let mut point = TrajectoryPoint::new(bc.id, cps, gps);
        point.spread = spread;
        trajectory.push(point);
        eprintln!(
            "  {:<22} {:>9.0} kcycles/s  {:>9.0} kgrants/s  ({} cycles in {:.1?}{})",
            bc.id,
            cps / 1e3,
            gps / 1e3,
            cycles,
            s.wall,
            if s.stats.saturated { ", saturated" } else { "" },
        );
        let mut spread_fields = String::new();
        if let Some(sp) = spread {
            let _ = write!(
                spread_fields,
                ", \"cycles_per_sec_spread_min\": {}, \"cycles_per_sec_spread_max\": {}, \
                 \"cycles_per_sec_spread_stddev\": {}",
                json_f64(sp.min),
                json_f64(sp.max),
                json_f64(sp.stddev),
            );
        }
        let _ = writeln!(
            rows,
            "    {{\"id\": {}, \"description\": {}, \"cycles\": {}, \"flit_grants\": {}, \
             \"wall_ms\": {}, \"cycles_per_sec\": {}, \"flit_grants_per_sec\": {}, \
             \"completed_messages\": {}, \"avg_latency_cycles\": {}, \"saturated\": {}{}}},",
            json_str(bc.id),
            json_str(bc.description),
            cycles,
            grants,
            json_f64(secs * 1e3),
            json_f64(cps),
            json_f64(gps),
            s.stats.completed_messages,
            json_f64(s.stats.avg_message_latency()),
            s.stats.saturated,
            spread_fields,
        );
    }

    // Thread-scaling sweep: the saturated 64×64 mesh at 1 thread, and at
    // `--sim-threads N` when N > 1. The serial run always lands in the
    // artifact so consecutive trajectory rows share the t1 metric.
    let scale_cycles = if quick { 600 } else { 10_000 };
    let scale_reps = if quick { 1 } else { 2 };
    let mut scale_threads = vec![1usize];
    if sim_threads > 1 {
        scale_threads.push(sim_threads);
    }
    let mut serial_wall: Option<Duration> = None;
    for (k, &threads) in scale_threads.iter().enumerate() {
        let mut best: Option<Sample> = None;
        let mut rep_cps: Vec<f64> = Vec::with_capacity(scale_reps);
        for _ in 0..scale_reps {
            let s = run_scale(threads, scale_cycles, quick, ledger);
            rep_cps.push(s.stats.end_cycle as f64 / s.wall.as_secs_f64().max(1e-9));
            if best.as_ref().is_none_or(|b| s.wall < b.wall) {
                best = Some(s);
            }
        }
        let spread = MetricSpread::of(&rep_cps);
        let s = best.expect("at least one rep");
        let secs = s.wall.as_secs_f64().max(1e-9);
        let cycles = s.stats.end_cycle;
        let grants: u64 = s.stats.port_flits.iter().sum();
        let (cps, gps) = (cycles as f64 / secs, grants as f64 / secs);
        let id = format!("mesh64x64_saturated_t{threads}");
        let speedup = serial_wall
            .map(|w1| w1.as_secs_f64() / secs)
            .filter(|_| threads > 1);
        if threads == 1 {
            serial_wall = Some(s.wall);
        }
        // Shard balance for threaded rows: read the timed run's ledger if
        // it had one (`--ledger`), else run once more instrumented so the
        // timed wall stays comparable across the trajectory.
        let (imbalance, barrier_frac) = if threads > 1 {
            if ledger {
                shard_metrics(&s.stats)
            } else {
                shard_metrics(&run_scale(threads, scale_cycles, quick, true).stats)
            }
        } else {
            (None, None)
        };
        eprintln!(
            "  {:<22} {:>9.0} kcycles/s  {:>9.0} kgrants/s  ({} cycles in {:.1?}{}{})",
            id,
            cps / 1e3,
            gps / 1e3,
            cycles,
            s.wall,
            match speedup {
                Some(x) => format!(", {x:.2}x vs 1 thread"),
                None => String::new(),
            },
            match (imbalance, barrier_frac) {
                (Some(i), Some(b)) => {
                    format!(", imbalance {i:.2}x, barrier {:.1}%", b * 100.0)
                }
                _ => String::new(),
            },
        );
        let mut shard_fields = String::new();
        if let Some(v) = imbalance {
            let _ = write!(shard_fields, ", \"shard_imbalance\": {}", json_f64(v));
        }
        if let Some(v) = barrier_frac {
            let _ = write!(shard_fields, ", \"barrier_wait_frac\": {}", json_f64(v));
        }
        if let Some(sp) = spread {
            let _ = write!(
                shard_fields,
                ", \"cycles_per_sec_spread_min\": {}, \"cycles_per_sec_spread_max\": {}, \
                 \"cycles_per_sec_spread_stddev\": {}",
                json_f64(sp.min),
                json_f64(sp.max),
                json_f64(sp.stddev),
            );
        }
        let _ = writeln!(
            rows,
            "    {{\"id\": {}, \"description\": {}, \"cycles\": {}, \"flit_grants\": {}, \
             \"wall_ms\": {}, \"cycles_per_sec\": {}, \"flit_grants_per_sec\": {}, \
             \"completed_messages\": {}, \"avg_latency_cycles\": {}, \
             \"saturated\": {}{}}}{}",
            json_str(&id),
            json_str(&format!(
                "64x64 mesh, XY, saturating injection, {threads} engine thread(s)"
            )),
            cycles,
            grants,
            json_f64(secs * 1e3),
            json_f64(cps),
            json_f64(gps),
            s.stats.completed_messages,
            json_f64(s.stats.avg_message_latency()),
            s.stats.saturated,
            shard_fields,
            if k + 1 == scale_threads.len() { "" } else { "," },
        );
        trajectory.push(TrajectoryPoint {
            id,
            cycles_per_sec: cps,
            flit_grants_per_sec: gps,
            shard_imbalance: imbalance,
            barrier_wait_frac: barrier_frac,
            spread,
        });
    }

    let unix = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"name\": {},", json_str(name));
    let _ = writeln!(out, "  \"git\": {},", json_str(&git));
    let _ = writeln!(out, "  \"generated_unix\": {unix},");
    let _ = writeln!(out, "  \"quick\": {quick},");
    let _ = writeln!(out, "  \"telemetry\": {telemetry},");
    let _ = writeln!(out, "  \"ledger\": {ledger},");
    let _ = writeln!(out, "  \"measure_cycles\": {measure_cycles},");
    let _ = writeln!(out, "  \"reps\": {reps},");
    out.push_str("  \"configs\": [\n");
    out.push_str(&rows);
    out.push_str("  ]\n}\n");

    let path = std::path::PathBuf::from(format!("results/json/{name}.json"));
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&path, &out) {
        Ok(()) => {
            eprintln!("wrote {}", path.display());
            ingest_history(&path);
        }
        Err(e) => eprintln!("WARNING: could not write {}: {e}", path.display()),
    }

    // Un-instrumented runs also extend the dated perf trajectory, the
    // baseline CI diffs fresh runs against with `rfnoc-cli compare`.
    if !telemetry && !ledger {
        append_trajectory(&git, unix, quick, &trajectory);
    }
}
