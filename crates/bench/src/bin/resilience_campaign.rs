//! Resilience campaign: seeded traffic profiles (expected / stress /
//! adversarial) crossed with offered loads and correlated fault storms,
//! summarised into `results/json/RESILIENCE_resilience.json`.
//!
//! Thin wrapper over the suite harness: the plan builder and renderer
//! live in `rfnoc_bench::campaign`. Flags: `--jobs N`, `--quick`,
//! `--quiet`.

fn main() {
    rfnoc_bench::suite::main_for("resilience");
}
