//! Regenerates the entire paper suite as one merged parallel plan.
//!
//! ```text
//! cargo run --release -p rfnoc-bench --bin run_all -- --jobs $(nproc)
//! ```
//!
//! Flags:
//! - `--jobs N` / `-j N`: worker threads (default: available parallelism)
//! - `--filter S`: only figures whose name contains `S` (repeatable)
//! - `--quick`: shortened windows and trace sets (smoke test, not paper numbers)
//! - `--all`: also include probe figures that are off by default (`tune_load`)
//! - `--quiet`: suppress per-point progress lines
//!
//! All figures' plans are merged and deduplicated (shared baselines run
//! once), then executed as a single work pool; each figure's tables, CSVs,
//! and `results/json/<name>.json` artifact are rendered from the shared
//! results, plus a combined `results/json/run_all.json`.

fn main() {
    rfnoc_bench::suite::run_all_main();
}
