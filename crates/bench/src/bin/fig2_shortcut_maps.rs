//! Figure 2: topology maps — (a) the RF-I overlay with 50 staggered
//! RF-enabled routers, (b) the static (architecture-specific) shortcut
//! set, and (c) the adaptive shortcut set selected for the 1Hotspot trace.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin fig2_shortcut_maps
//! ```

use rfnoc::{static_shortcuts, Architecture, Experiment, SystemConfig, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_topology::Shortcut;
use rfnoc_traffic::{staggered_rf_routers, ComponentKind, Placement, TraceKind};

/// Component glyphs: core '.', cache 'c', memory 'M'; RF-enabled routers
/// are upper-cased / marked.
fn render(placement: &Placement, rf_enabled: &[usize], shortcuts: &[Shortcut]) -> String {
    let dims = placement.dims();
    let mut out = String::new();
    for y in 0..dims.height() {
        out.push_str("    ");
        for x in 0..dims.width() {
            let node = y * dims.width() + x;
            let mut ch = match placement.kind(node) {
                ComponentKind::Core => '.',
                ComponentKind::Cache => 'c',
                ComponentKind::Memory => 'M',
            };
            if rf_enabled.contains(&node) {
                ch = match ch {
                    '.' => 'o',
                    'c' => 'C',
                    other => other,
                };
            }
            if shortcuts.iter().any(|s| s.src == node) {
                ch = 'S';
            }
            if shortcuts.iter().any(|s| s.dst == node) {
                ch = if ch == 'S' { 'B' } else { 'D' };
            }
            out.push(ch);
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

fn describe(placement: &Placement, shortcuts: &[Shortcut]) {
    let dims = placement.dims();
    for s in shortcuts {
        println!(
            "    {} -> {}   (spans {} mesh hops)",
            dims.coord_of(s.src),
            dims.coord_of(s.dst),
            dims.manhattan(s.src, s.dst)
        );
    }
}

fn main() {
    let placement = Placement::paper_10x10();

    println!("# Figure 2a: RF-I overlay — 50 staggered RF-enabled routers");
    println!("  (o = RF-enabled core router, C = RF-enabled cache, M = memory)\n");
    let rf50 = staggered_rf_routers(placement.dims(), 50);
    println!("{}", render(&placement, &rf50, &[]));

    println!("# Figure 2b: static (architecture-specific) shortcuts");
    println!("  (S = shortcut source, D = destination, B = both)\n");
    let static_set = static_shortcuts(&placement, 16);
    println!("{}", render(&placement, &[], &static_set));
    describe(&placement, &static_set);

    println!("\n# Figure 2c: adaptive shortcuts selected for the 1Hotspot trace");
    let system = SystemConfig::new(
        Architecture::AdaptiveShortcuts { access_points: 50 },
        LinkWidth::B16,
    );
    let built = Experiment::new(system, WorkloadSpec::Trace(TraceKind::Hotspot1)).build();
    println!("{}", render(&placement, &rf50, &built.shortcuts));
    describe(&placement, &built.shortcuts);

    let hot = placement.hotspot_caches(1)[0];
    let dims = placement.dims();
    let near = built
        .shortcuts
        .iter()
        .filter(|s| dims.manhattan(s.src, hot).min(dims.manhattan(s.dst, hot)) <= 4)
        .count();
    println!(
        "\n  hotspot cache at {}; {near}/16 shortcuts have an endpoint within 4 hops \
         (the region effect of section 3.2.2)",
        dims.coord_of(hot)
    );
}
