//! Ablation: latency vs offered load for the three unicast architectures.
//!
//! Sweeps the per-component injection rate on the Uniform trace and
//! reports the latency of the 16B baseline, static shortcuts @16B, and
//! adaptive shortcuts @4B — showing where each design saturates and how
//! the RF-I overlay extends the 4B mesh's usable load range.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin ablation_injection
//! ```

use rfnoc::{Architecture, Experiment, SystemConfig, WorkloadSpec};
use rfnoc_bench::print_table;
use rfnoc_power::LinkWidth;
use rfnoc_sim::SimConfig;
use rfnoc_traffic::{TraceKind, TrafficConfig};

fn main() {
    println!("# Ablation: latency vs offered load (Uniform trace)");
    let mut rows = Vec::new();
    for &rate in &[0.002, 0.004, 0.008, 0.012, 0.016, 0.020] {
        let traffic = TrafficConfig { injection_rate: rate, ..TrafficConfig::default() };
        let mut sim = SimConfig::paper_baseline();
        sim.warmup_cycles = 2_000;
        sim.measure_cycles = 25_000;
        let run = |arch: Architecture, width: LinkWidth| {
            let system = SystemConfig::new(arch, width).with_sim(sim.clone());
            let report = Experiment::new(system, WorkloadSpec::Trace(TraceKind::Uniform))
                .with_traffic(traffic.clone())
                .run();
            format!(
                "{:.1}{}",
                report.avg_latency(),
                if report.stats.saturated { "*" } else { "" }
            )
        };
        rows.push(vec![
            format!("{rate}"),
            run(Architecture::Baseline, LinkWidth::B16),
            run(Architecture::Baseline, LinkWidth::B4),
            run(Architecture::StaticShortcuts, LinkWidth::B16),
            run(Architecture::AdaptiveShortcuts { access_points: 50 }, LinkWidth::B4),
        ]);
    }
    print_table(
        "Average message latency in cycles (* = saturated)",
        &["rate (msg/node/cyc)", "base 16B", "base 4B", "static 16B", "adaptive 4B"],
        &rows,
    );
    println!(
        "\nExpectation: the 4B baseline saturates earliest; adaptive RF-I\n\
         pushes the 4B mesh's saturation point back toward the 16B baseline's."
    );
}
