//! Ablation: average latency vs offered load (saturation behaviour).
//!
//! Thin wrapper over the suite harness: the plan builder and renderer
//! live in `rfnoc_bench::suite`. Flags: `--jobs N`, `--quick`, `--quiet`.

fn main() {
    rfnoc_bench::suite::main_for("ablation_injection");
}
