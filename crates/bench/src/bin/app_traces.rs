//! Application traces: adaptive RF-I on a 4B mesh vs the 16B baseline.
//!
//! Thin wrapper over the suite harness: the plan builder and renderer
//! live in `rfnoc_bench::suite`. Flags: `--jobs N`, `--quick`, `--quiet`.

fn main() {
    rfnoc_bench::suite::main_for("app_traces");
}
