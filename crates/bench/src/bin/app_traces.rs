//! Application traces (§4.2 / §5.1.2): the five applications (SPECjbb2005
//! and four PARSEC benchmarks, reproduced here as synthetic profiles — see
//! DESIGN.md substitutions) on the 16B baseline vs adaptive RF-I shortcuts
//! on a 4B mesh.
//!
//! Paper expectation: "For our real application traces, on average we save
//! 67% power including the overhead incurred for RF-I for our adaptive
//! architecture on a 4B mesh; while maintaining network latency on average
//! that is comparable to the baseline at a 16B mesh."
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin app_traces
//! ```

use rfnoc::{Architecture, WorkloadSpec};
use rfnoc_bench::{geomean, print_table, run_logged};
use rfnoc_power::LinkWidth;
use rfnoc_traffic::AppProfile;

fn main() {
    println!("# Application traces: adaptive RF-I @4B vs 16B baseline");
    let mut rows = Vec::new();
    let mut lats = Vec::new();
    let mut pows = Vec::new();
    for profile in AppProfile::paper_suite() {
        let name = profile.name;
        let workload = WorkloadSpec::App(profile);
        let baseline = run_logged(Architecture::Baseline, LinkWidth::B16, workload.clone());
        let adaptive = run_logged(
            Architecture::AdaptiveShortcuts { access_points: 50 },
            LinkWidth::B4,
            workload,
        );
        let (lat, pow) = adaptive.normalized_to(&baseline);
        lats.push(lat);
        pows.push(pow);
        rows.push(vec![
            name.to_string(),
            format!("{:.1}", baseline.avg_latency()),
            format!("{:.1}", adaptive.avg_latency()),
            format!("{lat:.2}"),
            format!("{:.0}%", (1.0 - pow) * 100.0),
        ]);
    }
    rows.push(vec![
        "**average**".to_string(),
        String::new(),
        String::new(),
        format!("{:.2}", geomean(&lats)),
        format!("{:.0}%", (1.0 - geomean(&pows)) * 100.0),
    ]);
    print_table(
        "Adaptive @4B normalised to 16B baseline",
        &["app", "base lat (cyc)", "adaptive lat (cyc)", "norm. latency", "power saving"],
        &rows,
    );
    println!("\nPaper: ~67% average power saving at comparable latency.");
}
