//! Link-utilization heatmap: where the traffic actually flows.
//!
//! Runs one trace on a chosen architecture and renders per-router output
//! utilization as an ASCII heatmap, plus the hottest ports. Makes the
//! hotspot structure of the Table 1 traces (and the relief provided by
//! RF-I shortcuts) directly visible.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin utilization_map [trace] [baseline|static|adaptive]
//! ```

use rfnoc::{Architecture, Experiment, SystemConfig, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_traffic::{Placement, TraceKind};

const PORT_NAMES: [&str; 6] = ["N", "S", "E", "W", "Local", "RF"];

fn glyph(util: f64) -> char {
    match util {
        u if u < 0.02 => '.',
        u if u < 0.05 => '1',
        u if u < 0.10 => '2',
        u if u < 0.20 => '3',
        u if u < 0.35 => '5',
        u if u < 0.55 => '7',
        _ => '#',
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace = args
        .get(1)
        .map(|name| {
            TraceKind::all()
                .into_iter()
                .find(|t| t.name().eq_ignore_ascii_case(name))
                .unwrap_or_else(|| panic!("unknown trace {name}"))
        })
        .unwrap_or(TraceKind::Hotspot1);
    let arch = match args.get(2).map(String::as_str) {
        None | Some("baseline") => Architecture::Baseline,
        Some("static") => Architecture::StaticShortcuts,
        Some("adaptive") => Architecture::AdaptiveShortcuts { access_points: 50 },
        Some(other) => panic!("unknown architecture {other}"),
    };
    println!("# Output-port utilization: {} on {trace}", arch.name());
    let report =
        Experiment::new(SystemConfig::new(arch, LinkWidth::B16), WorkloadSpec::Trace(trace))
            .run();
    let stats = &report.stats;
    let placement = Placement::paper_10x10();
    let dims = placement.dims();

    // Heatmap of the mean mesh-port utilization per router.
    println!("\nmean mesh-link utilization per router ('.'<2% … '#'>55%):\n");
    for y in 0..dims.height() {
        print!("    ");
        for x in 0..dims.width() {
            let r = y * dims.width() + x;
            let mesh: f64 =
                (0..4).map(|p| stats.port_utilization(r, p, 1)).sum::<f64>() / 4.0;
            print!("{} ", glyph(mesh));
        }
        println!();
    }

    println!("\nejection (local port) utilization:\n");
    for y in 0..dims.height() {
        print!("    ");
        for x in 0..dims.width() {
            let r = y * dims.width() + x;
            print!("{} ", glyph(stats.port_utilization(r, 4, 2)));
        }
        println!();
    }

    // Top 10 hottest ports.
    let mut ports: Vec<(usize, usize, u64)> = (0..dims.nodes())
        .flat_map(|r| (0..6).map(move |p| (r, p, 0u64)))
        .map(|(r, p, _)| (r, p, stats.port_flits[r * 6 + p]))
        .collect();
    ports.sort_by_key(|&(_, _, f)| std::cmp::Reverse(f));
    println!("\nhottest output ports:");
    for &(r, p, flits) in ports.iter().take(10) {
        println!(
            "    {} port {:<5} {:>8} flits  ({:.1}% of cycles)",
            dims.coord_of(r),
            PORT_NAMES[p],
            flits,
            100.0 * flits as f64 / stats.activity.cycles as f64
        );
    }
    if let Some((r, p, util)) = stats.hottest_port() {
        println!(
            "\npeak: {} port {} at {:.1}% occupancy",
            dims.coord_of(r),
            PORT_NAMES[p],
            util * 100.0
        );
    }
}
