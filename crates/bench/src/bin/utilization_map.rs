//! Link-utilization heatmap: where the traffic actually flows.
//!
//! Runs one trace on a chosen architecture with the telemetry layer
//! enabled and renders per-router output utilization as an ASCII heatmap,
//! plus the hottest ports — all derived from the telemetry link channel
//! (`TelemetryReport::total_port_grants`), the same counters behind
//! `telemetry_report`'s JSON and SVG artifacts. Makes the hotspot
//! structure of the Table 1 traces (and the relief provided by RF-I
//! shortcuts) directly visible.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin utilization_map [trace] [baseline|static|adaptive]
//! ```

use rfnoc::{Architecture, Experiment, SystemConfig, WorkloadSpec};
use rfnoc_bench::telemetry::{covered_cycles, hottest_ports, port_utilization, PORT_NAMES};
use rfnoc_power::LinkWidth;
use rfnoc_sim::TelemetryConfig;
use rfnoc_traffic::{Placement, TraceKind};

fn glyph(util: f64) -> char {
    match util {
        u if u < 0.02 => '.',
        u if u < 0.05 => '1',
        u if u < 0.10 => '2',
        u if u < 0.20 => '3',
        u if u < 0.35 => '5',
        u if u < 0.55 => '7',
        _ => '#',
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let trace = args
        .get(1)
        .map(|name| {
            TraceKind::all()
                .into_iter()
                .find(|t| t.name().eq_ignore_ascii_case(name))
                .unwrap_or_else(|| panic!("unknown trace {name}"))
        })
        .unwrap_or(TraceKind::Hotspot1);
    let arch = match args.get(2).map(String::as_str) {
        None | Some("baseline") => Architecture::Baseline,
        Some("static") => Architecture::StaticShortcuts,
        Some("adaptive") => Architecture::AdaptiveShortcuts { access_points: 50 },
        Some(other) => panic!("unknown architecture {other}"),
    };
    println!("# Output-port utilization: {} on {trace}", arch.name());
    let mut system = SystemConfig::new(arch, LinkWidth::B16);
    system.sim.telemetry = Some(TelemetryConfig::every(1_000));
    let report = Experiment::new(system, WorkloadSpec::Trace(trace)).run();
    let tel = report.stats.telemetry.as_ref().expect("telemetry was enabled");
    let placement = Placement::paper_10x10();
    let dims = placement.dims();

    // Heatmap of the mean mesh-port utilization per router.
    println!("\nmean mesh-link utilization per router ('.'<2% … '#'>55%):\n");
    for y in 0..dims.height() {
        print!("    ");
        for x in 0..dims.width() {
            let r = y * dims.width() + x;
            let mesh: f64 =
                (0..4).map(|p| port_utilization(tel, r, p, 1)).sum::<f64>() / 4.0;
            print!("{} ", glyph(mesh));
        }
        println!();
    }

    println!("\nejection (local port) utilization:\n");
    for y in 0..dims.height() {
        print!("    ");
        for x in 0..dims.width() {
            let r = y * dims.width() + x;
            print!("{} ", glyph(port_utilization(tel, r, 4, 2)));
        }
        println!();
    }

    println!("\nhottest output ports:");
    let cycles = covered_cycles(tel).max(1);
    for (r, p, flits) in hottest_ports(tel, 10) {
        println!(
            "    {} port {:<5} {:>8} flits  ({:.1}% of cycles)",
            dims.coord_of(r),
            PORT_NAMES[p],
            flits,
            100.0 * flits as f64 / cycles as f64
        );
    }
    if let Some((r, p, _)) = hottest_ports(tel, 1).first().copied() {
        println!(
            "\npeak: {} port {} at {:.1}% occupancy",
            dims.coord_of(r),
            PORT_NAMES[p],
            port_utilization(tel, r, p, 1) * 100.0
        );
    }
}
