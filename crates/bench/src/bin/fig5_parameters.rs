//! Figure 5: (a) network simulation parameters and (b) application trace
//! setup — the configuration tables of the methodology section,
//! regenerated from the code's actual defaults so they cannot drift from
//! what the experiments run.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin fig5_parameters
//! ```

use rfnoc_bench::print_table;
use rfnoc_sim::{MessageClass, SimConfig};
use rfnoc_traffic::{AppProfile, Placement, TrafficConfig};

fn main() {
    let sim = SimConfig::paper_baseline();
    let traffic = TrafficConfig::default();
    let placement = Placement::paper_10x10();

    println!("# Figure 5a: network simulation parameters");
    let rows = vec![
        vec!["topology".into(), "10x10 2D mesh".into()],
        vec![
            "components".into(),
            format!(
                "{} cores, {} cache banks, {} memory ports",
                placement.cores().len(),
                placement.caches().len(),
                placement.memories().len()
            ),
        ],
        vec!["system clock".into(), "4 GHz (cores/caches)".into()],
        vec!["network clock".into(), "2 GHz".into()],
        vec!["routing".into(), "wormhole; XY baseline, shortest-path with RF-I".into()],
        vec![
            "router pipeline".into(),
            "5 cycles head (RC/VA/SA/ST/LT), 3 cycles body/tail".into(),
        ],
        vec![
            "virtual channels".into(),
            format!(
                "{} adaptive + {} escape (mesh-only, deadlock avoidance)",
                sim.vcs_adaptive, sim.vcs_escape
            ),
        ],
        vec!["VC buffer depth".into(), format!("{} flits", sim.buffer_depth)],
        vec!["link width".into(), format!("{} baseline; swept 16B/8B/4B", sim.link_width)],
        vec![
            "RF-I".into(),
            format!(
                "256B aggregate, {}B single-cycle channels, budget 16 shortcuts",
                sim.rf_channel_bytes
            ),
        ],
        vec![
            "message sizes".into(),
            format!(
                "request {}B, data {}B, cache-memory {}B",
                MessageClass::Request.bytes(),
                MessageClass::Data.bytes(),
                MessageClass::Memory.bytes()
            ),
        ],
        vec![
            "local ports".into(),
            format!("{} flits/network-cycle (4 GHz nodes)", sim.local_port_speedup),
        ],
        vec![
            "simulation window".into(),
            format!(
                "{} warmup + {} measured cycles (+{} drain)",
                sim.warmup_cycles, sim.measure_cycles, sim.drain_cycles
            ),
        ],
        vec![
            "injection".into(),
            format!("{} msg/component/cycle (probabilistic traces)", traffic.injection_rate),
        ],
        vec![
            "reconfiguration".into(),
            format!("{} cycles (routing-table rewrite)", sim.reconfig_cycles),
        ],
    ];
    print_table("Simulation parameters", &["parameter", "value"], &rows);

    println!("\n# Figure 5b: application trace setup");
    let rows: Vec<Vec<String>> = AppProfile::paper_suite()
        .into_iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                p.threads.to_string(),
                p.input_set.to_string(),
                format!("{} hotspot(s)", p.hotspot_count),
            ]
        })
        .collect();
    print_table(
        "Applications (synthetic stand-ins; see DESIGN.md substitutions)",
        &["application", "threads", "input", "network hotspots"],
        &rows,
    );
}
