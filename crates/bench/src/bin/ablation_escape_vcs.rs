//! Ablation: escape virtual-channel provisioning.
//!
//! The paper reserves eight virtual channels that only use conventional
//! mesh links to break deadlocks (§4). This harness sweeps the escape VC
//! count (with the adaptive VC count fixed) on the shortcut-augmented
//! network to show the cost/benefit: too few escape VCs throttle the
//! fallback path under congestion; the paper's eight are comfortably
//! enough.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin ablation_escape_vcs
//! ```

use rfnoc::{Architecture, Experiment, SystemConfig, WorkloadSpec};
use rfnoc_bench::print_table;
use rfnoc_power::LinkWidth;
use rfnoc_sim::SimConfig;
use rfnoc_traffic::{TraceKind, TrafficConfig};

fn main() {
    println!("# Ablation: escape VC count (adaptive shortcuts @16B, 4 adaptive VCs)");
    let mut rows = Vec::new();
    for escape in [1usize, 2, 4, 8, 12] {
        let mut sim = SimConfig::paper_baseline();
        sim.vcs_escape = escape;
        sim.warmup_cycles = 2_000;
        sim.measure_cycles = 30_000;
        let system =
            SystemConfig::new(Architecture::AdaptiveShortcuts { access_points: 50 }, LinkWidth::B16)
                .with_sim(sim);
        let report = Experiment::new(system, WorkloadSpec::Trace(TraceKind::Hotspot1))
            .with_traffic(TrafficConfig { injection_rate: 0.01, ..TrafficConfig::default() })
            .run();
        rows.push(vec![
            escape.to_string(),
            format!("{:.1}", report.avg_latency()),
            format!("{:.3}", report.stats.completion_rate()),
            if report.stats.saturated { "yes".into() } else { "no".into() },
        ]);
    }
    print_table(
        "1Hotspot at elevated load (0.01 msg/node/cycle)",
        &["escape VCs", "latency (cyc)", "completion rate", "saturated"],
        &rows,
    );
    println!("\nThe paper's choice of 8 escape VCs sits on the flat part of the curve.");
}
