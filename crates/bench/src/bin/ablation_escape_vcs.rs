//! Ablation: escape VC count under elevated hotspot load.
//!
//! Thin wrapper over the suite harness: the plan builder and renderer
//! live in `rfnoc_bench::suite`. Flags: `--jobs N`, `--quick`, `--quiet`.

fn main() {
    rfnoc_bench::suite::main_for("ablation_escape_vcs");
}
