//! Trace recording/replay tool (the paper's §4.2 methodology).
//!
//! Records any built-in workload into the `rfnoc-trace v1` text format and
//! replays trace files against any architecture, so a captured trace can be
//! swept across design points without regenerating traffic — exactly how
//! the paper reused its Simics captures across Garnet configurations.
//!
//! ```sh
//! # record 100k cycles of the 1Hotspot trace
//! cargo run --release -p rfnoc-bench --bin trace_tool -- record 1hotspot /tmp/hotspot.trace
//!
//! # replay it on the adaptive 4B architecture
//! cargo run --release -p rfnoc-bench --bin trace_tool -- replay /tmp/hotspot.trace adaptive 4
//! ```

use rfnoc::{build_system, Architecture, SystemConfig, WorkloadSpec};
use rfnoc_power::{LinkWidth, NocPowerModel};
use rfnoc_sim::{Destination, Network, Workload};
use rfnoc_topology::PairWeights;
use rfnoc_traffic::{AppProfile, Placement, Trace, TraceKind, TrafficConfig};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  trace_tool record <workload> <file> [cycles]\n  \
         trace_tool replay <file> <baseline|static|adaptive> [16|8|4]\n\n\
         workloads: uniform unidf bidf hotbidf 1hotspot 2hotspot 4hotspot\n\
         \u{20}          x264 bodytrack fluidanimate streamcluster specjbb"
    );
    ExitCode::FAILURE
}

fn workload_by_name(name: &str) -> Option<WorkloadSpec> {
    if let Some(kind) = TraceKind::all()
        .into_iter()
        .find(|t| t.name().eq_ignore_ascii_case(name))
    {
        return Some(WorkloadSpec::Trace(kind));
    }
    AppProfile::paper_suite()
        .into_iter()
        .find(|p| p.name.eq_ignore_ascii_case(name))
        .map(WorkloadSpec::App)
}

fn record(args: &[String]) -> ExitCode {
    let [name, path, rest @ ..] = args else { return usage() };
    let cycles: u64 = rest.first().and_then(|c| c.parse().ok()).unwrap_or(100_000);
    let Some(spec) = workload_by_name(name) else {
        eprintln!("unknown workload {name}");
        return ExitCode::FAILURE;
    };
    let placement = Placement::paper_10x10();
    let mut workload = spec.instantiate(&placement, &TrafficConfig::default());
    let trace = Trace::record(workload.as_mut(), cycles);
    let file = match File::create(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = trace.write_to(BufWriter::new(file)) {
        eprintln!("write failed: {e}");
        return ExitCode::FAILURE;
    }
    println!("recorded {} messages over {cycles} cycles to {path}", trace.len());
    ExitCode::SUCCESS
}

fn replay(args: &[String]) -> ExitCode {
    let [path, arch_name, rest @ ..] = args else { return usage() };
    let width = match rest.first().map(String::as_str) {
        None | Some("16") => LinkWidth::B16,
        Some("8") => LinkWidth::B8,
        Some("4") => LinkWidth::B4,
        Some(other) => {
            eprintln!("unknown width {other}");
            return ExitCode::FAILURE;
        }
    };
    let arch = match arch_name.as_str() {
        "baseline" => Architecture::Baseline,
        "static" => Architecture::StaticShortcuts,
        "adaptive" => Architecture::AdaptiveShortcuts { access_points: 50 },
        other => {
            eprintln!("unknown architecture {other}");
            return ExitCode::FAILURE;
        }
    };
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let trace = match Trace::read_from(BufReader::new(file)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!("replaying {} messages from {path}", trace.len());

    // Profile the trace itself for the adaptive architecture (§3.2.2's
    // event-counter statistics, here from the captured records).
    let placement = Placement::paper_10x10();
    let profile = arch.is_adaptive().then(|| {
        let mut weights = PairWeights::zero(placement.dims().nodes());
        for (_, msg) in trace.records() {
            if let Destination::Unicast(dst) = msg.dest {
                weights.add(msg.src, dst, 1.0);
            }
        }
        weights
    });
    let system = SystemConfig::new(arch, width);
    let built = build_system(&system, &placement, profile.as_ref());
    let mut network = Network::new(built.network.clone());
    let mut workload = trace.into_workload();
    let stats = network.run(&mut workload as &mut dyn Workload);
    let model = NocPowerModel::paper_32nm();
    let power = model.power(&built.design, &stats.activity);
    let area = model.area(&built.design);
    println!(
        "latency {:.1} cycles over {} messages; power {:.3} W; area {:.2} mm2{}",
        stats.avg_message_latency(),
        stats.completed_messages,
        power.total_w(),
        area.total_mm2(),
        if stats.saturated { " [SATURATED]" } else { "" }
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.split_first() {
        Some((cmd, rest)) if cmd == "record" => record(rest),
        Some((cmd, rest)) if cmd == "replay" => replay(rest),
        _ => usage(),
    }
}
