//! Table 2: active-layer silicon area of the network designs, broken into
//! router / link / RF-I columns, side by side with the paper's published
//! values.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin table2_area
//! ```

use rfnoc::{build_system, Architecture, SystemConfig, WorkloadSpec};
use rfnoc_bench::print_table;
use rfnoc_power::{LinkWidth, NocPowerModel};
use rfnoc_traffic::{Placement, TraceKind, TrafficConfig};

fn main() {
    println!("# Table 2: area of network designs (mm^2)");
    let placement = Placement::paper_10x10();
    let model = NocPowerModel::paper_32nm();
    // The adaptive design's port/provision structure is workload
    // independent; use any profile to elaborate it.
    let profile = WorkloadSpec::Trace(TraceKind::Uniform).profile(
        &placement,
        &TrafficConfig::default(),
        5_000,
    );

    // (paper row name, architecture, width, paper total)
    let rows_spec: Vec<(&str, Architecture, LinkWidth, f64)> = vec![
        ("Mesh Baseline (16B)", Architecture::Baseline, LinkWidth::B16, 30.29),
        ("Mesh Baseline (8B)", Architecture::Baseline, LinkWidth::B8, 9.38),
        ("Mesh Baseline (4B)", Architecture::Baseline, LinkWidth::B4, 3.25),
        ("Mesh (16B) Arch-Specific", Architecture::StaticShortcuts, LinkWidth::B16, 32.65),
        (
            "Mesh (16B) + 50 RF-I APs",
            Architecture::AdaptiveShortcuts { access_points: 50 },
            LinkWidth::B16,
            37.66,
        ),
        ("Mesh (8B) Arch-Specific", Architecture::StaticShortcuts, LinkWidth::B8, 10.41),
        (
            "Mesh (8B) + 50 RF-I APs",
            Architecture::AdaptiveShortcuts { access_points: 50 },
            LinkWidth::B8,
            12.60,
        ),
        ("Mesh (4B) Arch-Specific", Architecture::StaticShortcuts, LinkWidth::B4, 3.92),
        (
            "Mesh (4B) + 50 RF-I APs",
            Architecture::AdaptiveShortcuts { access_points: 50 },
            LinkWidth::B4,
            5.34,
        ),
    ];

    let mut rows = Vec::new();
    let mut base16_total = None;
    for (name, arch, width, paper_total) in rows_spec {
        let system = SystemConfig::new(arch.clone(), width);
        let needs_profile = arch.is_adaptive();
        let built =
            build_system(&system, &placement, needs_profile.then_some(&profile));
        let area = model.area(&built.design);
        if base16_total.is_none() {
            base16_total = Some(area.total_mm2());
        }
        rows.push(vec![
            name.to_string(),
            format!("{:.2}", area.router_mm2),
            format!("{:.2}", area.link_mm2),
            format!("{:.2}", area.rf_mm2),
            format!("{:.2}", area.total_mm2()),
            format!("{paper_total:.2}"),
            format!("{:+.1}%", (area.total_mm2() / paper_total - 1.0) * 100.0),
        ]);
    }
    print_table(
        "Area of network designs",
        &["design", "router", "link", "RF-I", "total", "paper total", "delta"],
        &rows,
    );

    // Headline: 50 APs on a 4B mesh vs the 16B baseline.
    let adaptive4 = build_system(
        &SystemConfig::new(Architecture::AdaptiveShortcuts { access_points: 50 }, LinkWidth::B4),
        &placement,
        Some(&profile),
    );
    let saving =
        1.0 - model.area(&adaptive4.design).total_mm2() / base16_total.expect("computed");
    println!(
        "\nHeadline: 50 access points on a 4B mesh reduce area by {:.1}% \
         (paper: 82.3%)",
        saving * 100.0
    );
}
