//! Renders the topology figures as SVG files under `results/svg/`:
//! Figure 2a (RF-I overlay), 2b (static shortcuts), 2c (adaptive shortcuts
//! for 1Hotspot), plus a utilization heatmap of the 1Hotspot trace.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin figures_svg
//! ```

use rfnoc::{static_shortcuts, Architecture, Experiment, SystemConfig, WorkloadSpec};
use rfnoc_bench::svg::{render_topology, utilization_heat, TopologyFigure};
use rfnoc_power::LinkWidth;
use rfnoc_traffic::{staggered_rf_routers, Placement, TraceKind};
use std::fs;

fn save(name: &str, content: &str) {
    let dir = "results/svg";
    fs::create_dir_all(dir).expect("create results/svg");
    let path = format!("{dir}/{name}.svg");
    fs::write(&path, content).expect("write svg");
    println!("wrote {path}");
}

fn main() {
    let placement = Placement::paper_10x10();
    let rf50 = staggered_rf_routers(placement.dims(), 50);

    save(
        "fig2a_rf_overlay",
        &render_topology(
            &placement,
            &TopologyFigure {
                rf_enabled: &rf50,
                title: "Figure 2a: 50 staggered RF-enabled routers".into(),
                ..Default::default()
            },
        ),
    );

    let static_set = static_shortcuts(&placement, 16);
    save(
        "fig2b_static_shortcuts",
        &render_topology(
            &placement,
            &TopologyFigure {
                shortcuts: &static_set,
                title: "Figure 2b: architecture-specific shortcuts".into(),
                ..Default::default()
            },
        ),
    );

    let system = SystemConfig::new(
        Architecture::AdaptiveShortcuts { access_points: 50 },
        LinkWidth::B16,
    );
    let experiment =
        Experiment::new(system, WorkloadSpec::Trace(TraceKind::Hotspot1));
    let built = experiment.build();
    save(
        "fig2c_adaptive_1hotspot",
        &render_topology(
            &placement,
            &TopologyFigure {
                rf_enabled: &rf50,
                shortcuts: &built.shortcuts,
                title: "Figure 2c: adaptive shortcuts for 1Hotspot".into(),
                ..Default::default()
            },
        ),
    );

    eprintln!("simulating 1Hotspot for the utilization heatmap ...");
    let report = experiment.run();
    save(
        "utilization_1hotspot_adaptive",
        &render_topology(
            &placement,
            &TopologyFigure {
                rf_enabled: &rf50,
                shortcuts: &built.shortcuts,
                heat: utilization_heat(&report.stats, placement.dims().nodes()),
                title: "Mesh utilization: 1Hotspot on adaptive shortcuts".into(),
            },
        ),
    );
}
