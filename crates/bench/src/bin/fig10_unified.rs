//! Figure 10: overall results comparison — power vs performance scatter
//! for (a) unicast architectures and (b) multicast architectures, each
//! evaluated at 16B/8B/4B mesh links and averaged over the probabilistic
//! traces; normalised to the 16B baseline mesh.
//!
//! Paper headline: the most cost-effective unicast design is the 4B mesh
//! with adaptive RF-I shortcuts (comparable latency, −65% power, −82%
//! area); the best multicast design combines a 4B mesh, 15 adaptive
//! shortcuts, and RF multicast (+15% performance, −69% power).
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin fig10_unified [--quick]
//! ```
//!
//! `--quick` restricts the sweep to three representative traces.

use rfnoc::{Architecture, WorkloadSpec};
use rfnoc_bench::{geomean, multicast_workload, print_table, run_logged};
use rfnoc_power::LinkWidth;
use rfnoc_traffic::TraceKind;

fn traces(quick: bool) -> Vec<TraceKind> {
    if quick {
        vec![TraceKind::Uniform, TraceKind::BiDf, TraceKind::Hotspot1]
    } else {
        TraceKind::all().to_vec()
    }
}

fn sweep(
    title: &str,
    archs: &[(&str, Architecture)],
    workload_for: &dyn Fn(TraceKind) -> WorkloadSpec,
    quick: bool,
) {
    // Baselines once per trace, reused across every design point.
    let baselines: Vec<_> = traces(quick)
        .into_iter()
        .map(|trace| run_logged(Architecture::Baseline, LinkWidth::B16, workload_for(trace)))
        .collect();
    let mut rows = Vec::new();
    for (name, arch) in archs {
        for width in LinkWidth::all() {
            let mut lats = Vec::new();
            let mut pows = Vec::new();
            for (trace, baseline) in traces(quick).into_iter().zip(&baselines) {
                let workload = workload_for(trace);
                let report = if *arch == Architecture::Baseline && width == LinkWidth::B16 {
                    baseline.clone()
                } else {
                    run_logged(arch.clone(), width, workload)
                };
                let (lat, pow) = report.normalized_to(baseline);
                lats.push(lat);
                pows.push(pow);
            }
            // Figure 10 plots normalised *performance* (1/latency) on the
            // x-axis and normalised power on the y-axis.
            let latency = geomean(&lats);
            rows.push(vec![
                format!("{name} @{width}"),
                format!("{:.2}", 1.0 / latency),
                format!("{:.2}", geomean(&pows)),
                format!("{latency:.2}"),
            ]);
        }
    }
    let headers = ["design", "norm. performance", "norm. power", "norm. latency"];
    print_table(title, &headers, &rows);
    let slug: String = title
        .chars()
        .take_while(|c| *c != ':')
        .filter(|c| c.is_ascii_alphanumeric())
        .collect();
    if let Err(e) =
        rfnoc_bench::write_csv(&format!("results/csv/{}.csv", slug.to_lowercase()), &headers, &rows)
    {
        eprintln!("csv write failed: {e}");
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("# Figure 10: overall power vs performance comparison");

    sweep(
        "Figure 10a: unicast architectures",
        &[
            ("Mesh Baseline", Architecture::Baseline),
            ("Mesh Wire Shortcuts", Architecture::WireShortcuts),
            ("Mesh Static Shortcuts", Architecture::StaticShortcuts),
            ("Mesh Adaptive Shortcuts", Architecture::AdaptiveShortcuts { access_points: 50 }),
        ],
        &WorkloadSpec::Trace,
        quick,
    );

    sweep(
        "Figure 10b: multicast architectures (traces + coherence multicasts)",
        &[
            ("Mesh Baseline", Architecture::Baseline),
            ("RF Multicast", Architecture::RfMulticast { access_points: 50 }),
            (
                "Adaptive Shortcuts",
                Architecture::AdaptiveShortcuts { access_points: 50 },
            ),
            (
                "Adaptive + RF Multicast",
                Architecture::AdaptiveWithMulticast { access_points: 50, shortcut_budget: 15 },
            ),
        ],
        &|trace| multicast_workload(trace, 0.2),
        quick,
    );

    println!(
        "\nPaper headline: adaptive RF-I on a 4B mesh ≈ baseline performance at \
         ~35% power; adaptive + RF multicast on 4B ≈ +15% performance at ~31% power."
    );
}
