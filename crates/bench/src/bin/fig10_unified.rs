//! Figure 10: overall power vs performance comparison across architectures.
//!
//! Thin wrapper over the suite harness: the plan builder and renderer
//! live in `rfnoc_bench::suite`. Flags: `--jobs N`, `--quick`, `--quiet`.

fn main() {
    rfnoc_bench::suite::main_for("fig10");
}
