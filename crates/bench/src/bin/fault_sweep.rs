//! Fault-injection sweep: graceful degradation under RF and mesh faults.
//!
//! Runs the static- and adaptive-shortcut designs under increasing fault
//! rates (seed-driven random [`rfnoc_sim::FaultPlan`]s: permanent RF
//! transmitter failures, permanent mesh link failures, transient link
//! glitches) and reports the latency/throughput degradation relative to
//! the fault-free run of the same design. Emits a JSON array on stdout
//! for plotting; progress goes to stderr.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin fault_sweep > fault_sweep.json
//! ```

use rfnoc::{Architecture, Experiment, RunReport, SystemConfig, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_sim::{FaultRates, SimConfig};
use rfnoc_traffic::TraceKind;

const WARMUP: u64 = 2_000;
const MEASURE: u64 = 30_000;
const SEED: u64 = 0xF00D;

/// Baseline expected event counts at fault factor 1.0.
fn base_rates() -> FaultRates {
    FaultRates {
        shortcut_failures: 2.0,
        mesh_link_failures: 1.0,
        glitches: 8.0,
        repair_after: None,
    }
}

fn sweep_sim() -> SimConfig {
    let mut sim = SimConfig::paper_baseline();
    sim.warmup_cycles = WARMUP;
    sim.measure_cycles = MEASURE;
    sim
}

fn run_point(arch: Architecture, factor: f64) -> RunReport {
    let system = SystemConfig::new(arch, LinkWidth::B16).with_sim(sweep_sim());
    let mut experiment =
        Experiment::new(system, WorkloadSpec::Trace(TraceKind::Hotspot1));
    if factor > 0.0 {
        experiment = experiment.with_random_faults(SEED, base_rates().scaled(factor));
    }
    experiment.run()
}

/// One JSON object per design point; hand-rolled to keep the harness
/// dependency-free.
fn json_row(arch: &str, factor: f64, report: &RunReport, clean: &RunReport) -> String {
    let s = &report.stats;
    let throughput = s.completed_messages as f64 / MEASURE as f64;
    let clean_throughput = clean.stats.completed_messages as f64 / MEASURE as f64;
    let latency_x = if clean.avg_latency() > 0.0 {
        report.avg_latency() / clean.avg_latency()
    } else {
        1.0
    };
    let throughput_x =
        if clean_throughput > 0.0 { throughput / clean_throughput } else { 1.0 };
    let health = match &s.health {
        Some(h) => format!("\"{}\"", h.diagnosis),
        None => "null".into(),
    };
    format!(
        concat!(
            "{{\"arch\": \"{}\", \"fault_factor\": {:.1}, ",
            "\"shortcut_faults\": {}, \"mesh_link_faults\": {}, ",
            "\"retransmitted_flits\": {}, ",
            "\"avg_latency_cycles\": {:.2}, \"latency_vs_clean\": {:.3}, ",
            "\"throughput_msgs_per_cycle\": {:.5}, \"throughput_vs_clean\": {:.3}, ",
            "\"completion_rate\": {:.4}, \"saturated\": {}, \"health\": {}}}"
        ),
        arch,
        factor,
        s.shortcut_faults,
        s.mesh_link_faults,
        s.retransmitted_flits,
        report.avg_latency(),
        latency_x,
        throughput,
        throughput_x,
        s.completion_rate(),
        s.saturated,
        health,
    )
}

fn main() {
    let designs: [(&str, Architecture); 2] = [
        ("static", Architecture::StaticShortcuts),
        ("adaptive", Architecture::AdaptiveShortcuts { access_points: 50 }),
    ];
    let factors = [0.0, 1.0, 2.0, 4.0];
    let mut rows = Vec::new();
    for (name, arch) in designs {
        eprintln!("fault_sweep: {name} clean run ...");
        let clean = run_point(arch.clone(), 0.0);
        for factor in factors {
            eprintln!("fault_sweep: {name} @ fault factor {factor:.1} ...");
            let report =
                if factor == 0.0 { clean.clone() } else { run_point(arch.clone(), factor) };
            rows.push(json_row(name, factor, &report, &clean));
        }
    }
    println!("[");
    for (i, row) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        println!("  {row}{sep}");
    }
    println!("]");
}
