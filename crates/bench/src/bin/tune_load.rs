//! Load-tuning probe (not a paper figure): sweeps injection rate and
//! hotspot intensity to find the operating point where the paper's
//! latency separations (baseline vs static vs adaptive, 16B vs 4B) are
//! visible without saturating.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin tune_load
//! ```

use rfnoc::{Architecture, Experiment, SystemConfig, WorkloadSpec};
use rfnoc_power::LinkWidth;
use rfnoc_traffic::{TraceKind, TrafficConfig};

fn main() {
    for &(rate, hot_frac, hot_mult) in &[
        (0.004, 0.25, 4.0),
        (0.006, 0.30, 4.0),
        (0.008, 0.30, 4.0),
        (0.008, 0.35, 5.0),
        (0.010, 0.30, 4.0),
    ] {
        let traffic = TrafficConfig {
            injection_rate: rate,
            hot_fraction: hot_frac,
            hot_multiplier: hot_mult,
            ..TrafficConfig::default()
        };
        println!("=== rate {rate}, hot_frac {hot_frac}, hot_mult {hot_mult} ===");
        for trace in [TraceKind::Uniform, TraceKind::Hotspot1] {
            let workload = WorkloadSpec::Trace(trace);
            let run = |arch: Architecture, width: LinkWidth| {
                Experiment::new(SystemConfig::new(arch, width), workload.clone())
                    .with_traffic(traffic.clone())
                    .run()
            };
            let base16 = run(Architecture::Baseline, LinkWidth::B16);
            let static16 = run(Architecture::StaticShortcuts, LinkWidth::B16);
            let adapt16 =
                run(Architecture::AdaptiveShortcuts { access_points: 50 }, LinkWidth::B16);
            let base4 = run(Architecture::Baseline, LinkWidth::B4);
            let adapt4 =
                run(Architecture::AdaptiveShortcuts { access_points: 50 }, LinkWidth::B4);
            let n = |r: &rfnoc::RunReport| {
                format!(
                    "{:.2}{}",
                    r.avg_latency() / base16.avg_latency(),
                    if r.stats.saturated { "*" } else { "" }
                )
            };
            println!(
                "  {trace:<10} base16 {:.1}cyc | static16 {} adapt16 {} base4 {} adapt4 {}",
                base16.avg_latency(),
                n(&static16),
                n(&adapt16),
                n(&base4),
                n(&adapt4),
            );
        }
    }
}
