//! Load-tuning probe: injection rate and hotspot intensity (not in run_all by default).
//!
//! Thin wrapper over the suite harness: the plan builder and renderer
//! live in `rfnoc_bench::suite`. Flags: `--jobs N`, `--quick`, `--quiet`.

fn main() {
    rfnoc_bench::suite::main_for("tune_load");
}
