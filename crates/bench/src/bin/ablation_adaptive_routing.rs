//! Ablation: adaptive routing around congested shortcuts (the HPCA-2008
//! contention-avoidance technique).
//!
//! With only 16 shortcut channels, popular shortcuts become bottlenecks.
//! The 2008 paper "explored the potential of adaptive-routing techniques
//! to avoid bottlenecks resulting from contention for the shortcuts".
//! Here: the same adaptive-shortcut design with the detour enabled vs
//! disabled, across offered loads on the hotspot trace.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin ablation_adaptive_routing
//! ```

use rfnoc::{Architecture, Experiment, SystemConfig, WorkloadSpec};
use rfnoc_bench::print_table;
use rfnoc_power::LinkWidth;
use rfnoc_sim::SimConfig;
use rfnoc_traffic::{TraceKind, TrafficConfig};

fn main() {
    println!("# Ablation: shortcut contention-avoidance routing (1Hotspot, 4B mesh)");
    let mut rows = Vec::new();
    for &rate in &[0.004, 0.008, 0.012, 0.016] {
        let traffic = TrafficConfig { injection_rate: rate, ..TrafficConfig::default() };
        let run = |detour: bool| {
            let mut sim = SimConfig::paper_baseline();
            sim.warmup_cycles = 2_000;
            sim.measure_cycles = 25_000;
            sim.adaptive_shortcut_routing = detour;
            let system = SystemConfig::new(
                Architecture::AdaptiveShortcuts { access_points: 50 },
                LinkWidth::B4,
            )
            .with_sim(sim);
            Experiment::new(system, WorkloadSpec::Trace(TraceKind::Hotspot1))
                .with_traffic(traffic.clone())
                .run()
        };
        let with = run(true);
        let without = run(false);
        let fmt = |r: &rfnoc::RunReport| {
            format!(
                "{:.1}{}",
                r.avg_latency(),
                if r.stats.saturated { "*" } else { "" }
            )
        };
        rows.push(vec![
            format!("{rate}"),
            fmt(&with),
            fmt(&without),
            format!(
                "{:+.1}%",
                (without.avg_latency() / with.avg_latency() - 1.0) * 100.0
            ),
        ]);
    }
    print_table(
        "Average latency with/without the mesh detour (* = saturated)",
        &["rate (msg/node/cyc)", "detour on", "detour off", "detour benefit"],
        &rows,
    );
}
