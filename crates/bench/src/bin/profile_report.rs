//! Delay-attribution report: *why* packets are slow, not just how slow.
//!
//! Profiles the paper's 10×10 system at the two canonical fig7 operating
//! points (see `rfnoc_bench::scenarios`), mesh-only vs static RF
//! shortcuts, and renders three artifacts:
//!
//! 1. `results/json/PROFILE_lowload.json` — attribution at low load,
//!    where latency is almost all pipeline (route/switch/link) and the
//!    mesh-vs-RF gap is hop count, not contention.
//! 2. `results/json/PROFILE_congestion.json` — attribution past the
//!    saturation knee, where VA/SA stalls dominate; on the pairs covered
//!    by shortcuts the RF run shows the contention shift the paper's
//!    latency curves imply.
//! 3. `results/json/PROFILE_trace.json` — a Perfetto/Chrome trace of the
//!    faulted RF run (per-router and per-band tracks, hop spans, fault
//!    and retune instants). Open it at <https://ui.perfetto.dev>.
//!
//! ```sh
//! cargo run --release -p rfnoc-bench --bin profile_report [--quick]
//! ```

use rfnoc::Architecture;
use rfnoc_bench::perfetto::{self, TraceSpec};
use rfnoc_bench::profile::{self, summarize, ProfiledRun};
use rfnoc_bench::scenarios::{
    fault_experiment, instrumented_experiment, LOW_LOAD_RATE, SATURATED_RATE,
};
use rfnoc_bench::print_table;

/// Hop spans kept in the Perfetto trace; enough for several thousand
/// packets while keeping the JSON loadable in the UI.
const TRACE_SPAN_CAP: usize = 60_000;

fn attribution_scenario(name: &str, rate: f64, quick: bool) {
    eprintln!("profile_report: {name} (rate {rate})");
    let mesh = instrumented_experiment(Architecture::Baseline, quick, rate, true).run();
    let rf = instrumented_experiment(Architecture::StaticShortcuts, quick, rate, true).run();
    let mesh_tel = mesh.stats.telemetry.as_ref().expect("telemetry enabled");
    let rf_tel = rf.stats.telemetry.as_ref().expect("telemetry enabled");

    let runs = [
        ProfiledRun {
            label: "mesh",
            arch: mesh.system.clone(),
            stats: &mesh.stats,
            report: mesh_tel,
        },
        ProfiledRun { label: "rf", arch: rf.system.clone(), stats: &rf.stats, report: rf_tel },
    ];
    profile::write_json(name, rate, &runs);

    // Printed budget: cycles per component, as a share of total latency.
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|run| {
            let s = summarize(run.report);
            let pct = |c: u64| {
                if s.all.total == 0 {
                    "-".to_string()
                } else {
                    format!("{:.1}%", 100.0 * c as f64 / s.all.total as f64)
                }
            };
            vec![
                run.label.to_string(),
                s.all.packets.to_string(),
                pct(s.all.source_queue),
                pct(s.all.route + s.all.switch + s.all.link),
                pct(s.all.va_wait),
                pct(s.all.sa_wait),
                pct(s.all.tail_serialization),
                format!("{:.1}", s.all.avg_contention()),
            ]
        })
        .collect();
    print_table(
        &format!("{name}: where the cycles go (rate {rate})"),
        &["run", "packets", "src-queue", "pipeline", "va-wait", "sa-wait", "tail", "avg contention"],
        &rows,
    );

    let covered = profile::rf_covered_pairs(rf_tel);
    let mesh_cov = profile::summarize_pairs(mesh_tel, &covered);
    let rf_cov = profile::summarize_pairs(rf_tel, &covered);
    println!(
        "\nshortcut-covered pairs ({}): mesh {:.1} vs rf {:.1} contention cycles/packet",
        covered.len(),
        mesh_cov.avg_contention(),
        rf_cov.avg_contention(),
    );
}

fn trace_scenario(quick: bool) {
    let experiment = fault_experiment(Architecture::StaticShortcuts, quick, true);
    let built = experiment.build();
    eprintln!("profile_report: trace run ({})", experiment.summary());
    let report = experiment.run();
    let tel = report.stats.telemetry.as_ref().expect("telemetry enabled");
    let spec = TraceSpec {
        dims: experiment.placement.dims(),
        shortcuts: &built.shortcuts,
        max_span_events: TRACE_SPAN_CAP,
    };
    perfetto::write_trace("PROFILE_trace", tel, &spec);
    println!(
        "\ntrace: {} hop spans recorded ({} dropped), {} timeline events — open results/json/PROFILE_trace.json at ui.perfetto.dev",
        tel.hops.len(),
        tel.dropped_hops,
        tel.events.len(),
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    attribution_scenario("PROFILE_lowload", LOW_LOAD_RATE, quick);
    attribution_scenario("PROFILE_congestion", SATURATED_RATE, quick);
    trace_scenario(quick);
}
