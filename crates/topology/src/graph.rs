//! The directed grid graph: baseline mesh plus RF-I shortcut edges.

use crate::dist::DistanceMatrix;
use crate::fabric::FabricSpec;
use crate::geom::{Coord, GridDims};
use std::fmt;

/// Index of a router node in the grid (row-major linearisation).
pub type NodeId = usize;

/// A unidirectional single-cycle RF-I shortcut between two routers.
///
/// The paper's RF-I transmission lines logically behave as a set of
/// unidirectional single-cycle shortcuts (§3.2), each occupying one frequency
/// band of the shared medium.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Shortcut {
    /// Source (transmitting) router.
    pub src: NodeId,
    /// Destination (receiving) router.
    pub dst: NodeId,
}

impl Shortcut {
    /// Creates a shortcut from `src` to `dst`.
    pub fn new(src: NodeId, dst: NodeId) -> Self {
        Self { src, dst }
    }
}

impl fmt::Display for Shortcut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {}", self.src, self.dst)
    }
}

/// A directed grid graph `G`: the mesh of routers plus added shortcut edges.
///
/// Mesh edges are bidirectional (modelled as a pair of directed edges);
/// shortcuts are directed. All edges have unit hop cost, matching the paper's
/// cost function `W(x,y)` = length of the shortest path between routers `x`
/// and `y` (§3.2.1).
///
/// # Example
///
/// ```
/// use rfnoc_topology::{GridDims, GridGraph, Shortcut};
/// let mut g = GridGraph::mesh(GridDims::new(4, 4));
/// assert_eq!(g.distances().get(0, 15), 6);
/// g.add_shortcut(Shortcut::new(0, 15));
/// assert_eq!(g.distances().get(0, 15), 1);
/// ```
#[derive(Debug, Clone)]
pub struct GridGraph {
    dims: GridDims,
    shortcuts: Vec<Shortcut>,
    /// Out-neighbour adjacency: mesh neighbours first, then shortcut targets.
    adjacency: Vec<Vec<NodeId>>,
}

impl GridGraph {
    /// Creates a pure mesh (no shortcuts) of the given dimensions.
    pub fn mesh(dims: GridDims) -> Self {
        let n = dims.nodes();
        let mut adjacency = vec![Vec::with_capacity(5); n];
        for (i, neighbors) in adjacency.iter_mut().enumerate() {
            let c = dims.coord_of(i);
            let mut push = |x: i32, y: i32| {
                if x >= 0 && y >= 0 {
                    let c2 = Coord::new(x as u16, y as u16);
                    if dims.contains(c2) {
                        neighbors.push(dims.index_of(c2));
                    }
                }
            };
            push(c.x as i32, c.y as i32 - 1); // north
            push(c.x as i32, c.y as i32 + 1); // south
            push(c.x as i32 + 1, c.y as i32); // east
            push(c.x as i32 - 1, c.y as i32); // west
        }
        Self { dims, shortcuts: Vec::new(), adjacency }
    }

    /// Creates a mesh and adds every shortcut in `shortcuts`.
    ///
    /// # Panics
    ///
    /// Panics if any shortcut endpoint is out of range or a self-loop.
    pub fn with_shortcuts(dims: GridDims, shortcuts: &[Shortcut]) -> Self {
        let mut g = Self::mesh(dims);
        for &s in shortcuts {
            g.add_shortcut(s);
        }
        g
    }

    /// Creates the base graph of `fabric` (neighbours in fabric slot order)
    /// and adds every shortcut in `shortcuts`.
    ///
    /// For [`FabricSpec::Mesh`] this is identical to
    /// [`GridGraph::with_shortcuts`] — the mesh fabric's slot order matches
    /// the mesh adjacency order (N, S, E, W, compacted at boundaries).
    ///
    /// # Panics
    ///
    /// Panics if any shortcut endpoint is out of range or a self-loop; the
    /// fabric itself should be validated with [`FabricSpec::validate`]
    /// before use.
    pub fn from_fabric(fabric: &FabricSpec, shortcuts: &[Shortcut]) -> Self {
        let dims = fabric.dims();
        let n = dims.nodes();
        let adjacency = (0..n).map(|r| fabric.neighbors(r)).collect();
        let mut g = Self { dims, shortcuts: Vec::new(), adjacency };
        for &s in shortcuts {
            g.add_shortcut(s);
        }
        g
    }

    /// Grid dimensions.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.dims.nodes()
    }

    /// The shortcut edges added so far, in insertion order.
    pub fn shortcuts(&self) -> &[Shortcut] {
        &self.shortcuts
    }

    /// Out-neighbours of `node` (mesh neighbours then shortcut targets).
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node]
    }

    /// Adds a directed shortcut edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, the edge is a self-loop, or the
    /// identical shortcut is already present.
    pub fn add_shortcut(&mut self, s: Shortcut) {
        let n = self.node_count();
        assert!(s.src < n && s.dst < n, "shortcut {s} endpoint out of range");
        assert_ne!(s.src, s.dst, "shortcut may not be a self-loop");
        assert!(
            !self.shortcuts.contains(&s),
            "shortcut {s} already present"
        );
        self.adjacency[s.src].push(s.dst);
        self.shortcuts.push(s);
    }

    /// Whether the directed edge `(src, dst)` is a mesh edge (adjacent in the
    /// grid).
    pub fn is_mesh_edge(&self, src: NodeId, dst: NodeId) -> bool {
        self.dims.manhattan(src, dst) == 1
    }

    /// Computes all-pairs shortest-path distances (unit edge weights) by BFS
    /// from every node.
    pub fn distances(&self) -> DistanceMatrix {
        DistanceMatrix::from_graph(self)
    }

    /// Total pairwise cost `Σ_{x≠y} weight(x,y) · d(x,y)` under the supplied
    /// distance matrix and per-pair weights (flattened `V×V`, row = source).
    ///
    /// This is the objective the selection heuristics minimise (§3.2.1).
    pub fn total_cost(dist: &DistanceMatrix, weights: &[f64]) -> f64 {
        let n = dist.node_count();
        assert_eq!(weights.len(), n * n, "weights must be V*V");
        let mut total = 0.0;
        for x in 0..n {
            for y in 0..n {
                if x != y {
                    total += weights[x * n + y] * dist.get(x, y) as f64;
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_degrees() {
        let g = GridGraph::mesh(GridDims::new(10, 10));
        let degs: Vec<usize> = (0..100).map(|i| g.neighbors(i).len()).collect();
        // corners have 2 neighbours, edges 3, interior 4
        assert_eq!(degs[0], 2);
        assert_eq!(degs[5], 3);
        assert_eq!(degs[55], 4);
        let total: usize = degs.iter().sum();
        // 2 * number of undirected mesh edges = 2 * (9*10 + 9*10)
        assert_eq!(total, 2 * 180);
    }

    #[test]
    fn shortcut_shortens_distance() {
        let mut g = GridGraph::mesh(GridDims::new(10, 10));
        let d0 = g.distances();
        assert_eq!(d0.get(0, 99), 18);
        g.add_shortcut(Shortcut::new(0, 99));
        let d1 = g.distances();
        assert_eq!(d1.get(0, 99), 1);
        // directed: reverse direction unchanged
        assert_eq!(d1.get(99, 0), 18);
    }

    #[test]
    fn shortcut_helps_neighbourhood() {
        let mut g = GridGraph::mesh(GridDims::new(10, 10));
        g.add_shortcut(Shortcut::new(0, 99));
        let d = g.distances();
        // node 1 can route through node 0's shortcut
        assert_eq!(d.get(1, 99), 2);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        GridGraph::mesh(GridDims::new(4, 4)).add_shortcut(Shortcut::new(3, 3));
    }

    #[test]
    #[should_panic(expected = "already present")]
    fn duplicate_rejected() {
        let mut g = GridGraph::mesh(GridDims::new(4, 4));
        g.add_shortcut(Shortcut::new(0, 5));
        g.add_shortcut(Shortcut::new(0, 5));
    }

    #[test]
    fn total_cost_uniform_mesh() {
        let g = GridGraph::mesh(GridDims::new(2, 2));
        let d = g.distances();
        let w = vec![1.0; 16];
        // distances: each corner to the two adjacent = 1, diagonal = 2.
        // sum over ordered pairs = 4 nodes * (1+1+2) = 16
        assert_eq!(GridGraph::total_cost(&d, &w), 16.0);
    }
}
