//! 3×3 sub-mesh regions for hotspot-aware shortcut selection (paper §3.2.2).
//!
//! The application-specific heuristic places edges between
//! *source/destination region pairs*, where regions are non-overlapping 3×3
//! sub-meshes of frequently-communicating and/or distant routers. The
//! inter-region communication metric is
//! `C_Region(A,B) = Σ_{x∈A, y∈B} F(x,y) · W(x,y)`.

use crate::dist::DistanceMatrix;
use crate::geom::{Coord, GridDims};
use crate::graph::NodeId;
use crate::weights::PairWeights;

/// Side length of a region sub-mesh (the paper uses 3×3 regions).
pub const REGION_SIDE: usize = 3;

/// An axis-aligned square sub-mesh of the grid.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Region {
    dims: GridDims,
    origin: Coord,
    side: usize,
}

impl Region {
    /// Creates the `side`×`side` region whose top-left corner is `origin`.
    ///
    /// # Panics
    ///
    /// Panics if the region does not fit inside the grid.
    pub fn new(dims: GridDims, origin: Coord, side: usize) -> Self {
        assert!(
            origin.x as usize + side <= dims.width() && origin.y as usize + side <= dims.height(),
            "region at {origin} with side {side} exceeds {dims}"
        );
        Self { dims, origin, side }
    }

    /// Top-left corner of the region.
    pub fn origin(&self) -> Coord {
        self.origin
    }

    /// Whether linear node index `node` lies inside the region.
    pub fn contains_node(&self, node: NodeId) -> bool {
        let c = self.dims.coord_of(node);
        c.x >= self.origin.x
            && (c.x as usize) < self.origin.x as usize + self.side
            && c.y >= self.origin.y
            && (c.y as usize) < self.origin.y as usize + self.side
    }

    /// Linear node indices of all routers in the region.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.side * self.side);
        for dy in 0..self.side {
            for dx in 0..self.side {
                out.push(self.dims.index_of(Coord::new(
                    self.origin.x + dx as u16,
                    self.origin.y + dy as u16,
                )));
            }
        }
        out
    }

    /// Whether two regions share any router.
    pub fn overlaps(&self, other: &Region) -> bool {
        let (ax0, ay0) = (self.origin.x as usize, self.origin.y as usize);
        let (bx0, by0) = (other.origin.x as usize, other.origin.y as usize);
        ax0 < bx0 + other.side
            && bx0 < ax0 + self.side
            && ay0 < by0 + other.side
            && by0 < ay0 + self.side
    }
}

/// All 3×3 regions that fit in the grid (every possible origin).
pub fn all_regions(dims: GridDims) -> Vec<Region> {
    let side = REGION_SIDE;
    let mut out = Vec::new();
    if dims.width() < side || dims.height() < side {
        return out;
    }
    for y in 0..=(dims.height() - side) {
        for x in 0..=(dims.width() - side) {
            out.push(Region::new(dims, Coord::new(x as u16, y as u16), side));
        }
    }
    out
}

/// `C_Region(A,B) = Σ_{x∈A, y∈B} F(x,y) · W(x,y)` (paper §3.2.2).
pub fn region_cost(
    a: &Region,
    b: &Region,
    dist: &DistanceMatrix,
    weights: &PairWeights,
) -> f64 {
    let mut total = 0.0;
    for x in a.nodes() {
        for y in b.nodes() {
            if x != y {
                total += weights.get(x, y) * dist.get(x, y) as f64;
            }
        }
    }
    total
}

/// The non-overlapping region pair `(I,J)` maximising `C_Region(I,J)`, or
/// `None` if no pair has positive cost (e.g. all-zero weights).
///
/// Source region `I` is the *sender* side and `J` the *receiver* side of the
/// metric, matching the directed shortcut that will be placed between them.
pub fn best_region_pair(
    dims: GridDims,
    dist: &DistanceMatrix,
    weights: &PairWeights,
) -> Option<(Region, Region)> {
    let regions = all_regions(dims);
    let mut best: Option<(f64, usize, usize)> = None;
    for (ia, a) in regions.iter().enumerate() {
        for (ib, b) in regions.iter().enumerate() {
            if ia == ib || a.overlaps(b) {
                continue;
            }
            let cost = region_cost(a, b, dist, weights);
            if cost <= 0.0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bc, bia, bib)) => {
                    cost > bc + 1e-9 || ((cost - bc).abs() <= 1e-9 && (ia, ib) < (bia, bib))
                }
            };
            if better {
                best = Some((cost, ia, ib));
            }
        }
    }
    best.map(|(_, ia, ib)| (regions[ia].clone(), regions[ib].clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GridGraph;

    #[test]
    fn region_count_on_10x10() {
        assert_eq!(all_regions(GridDims::new(10, 10)).len(), 64);
    }

    #[test]
    fn region_nodes_and_containment() {
        let dims = GridDims::new(10, 10);
        let r = Region::new(dims, Coord::new(7, 0), 3);
        let nodes = r.nodes();
        assert_eq!(nodes.len(), 9);
        for n in &nodes {
            assert!(r.contains_node(*n));
        }
        assert!(!r.contains_node(0));
        assert!(nodes.contains(&9)); // (9,0)
        assert!(nodes.contains(&27)); // (7,2)
    }

    #[test]
    fn overlap_detection() {
        let dims = GridDims::new(10, 10);
        let a = Region::new(dims, Coord::new(0, 0), 3);
        let b = Region::new(dims, Coord::new(2, 2), 3);
        let c = Region::new(dims, Coord::new(3, 0), 3);
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
        assert!(b.overlaps(&c));
    }

    #[test]
    fn best_pair_targets_hotspot() {
        let dims = GridDims::new(10, 10);
        let g = GridGraph::mesh(dims);
        let dist = g.distances();
        let mut w = PairWeights::zero(100);
        // traffic from the top-right corner area into router (1,8) = 81
        for src in [9, 19, 8, 18] {
            w.add(src, 81, 50.0);
        }
        let (src_region, dst_region) = best_region_pair(dims, &dist, &w).unwrap();
        assert!(src_region.contains_node(9) || src_region.contains_node(19));
        assert!(dst_region.contains_node(81));
        assert!(!src_region.overlaps(&dst_region));
    }

    #[test]
    fn no_pair_for_zero_weights() {
        let dims = GridDims::new(10, 10);
        let dist = GridGraph::mesh(dims).distances();
        assert!(best_region_pair(dims, &dist, &PairWeights::zero(100)).is_none());
    }

    #[test]
    fn small_grid_has_no_regions() {
        assert!(all_regions(GridDims::new(2, 2)).is_empty());
    }
}
