//! All-pairs shortest-path distances with incremental edge evaluation.

use crate::graph::{GridGraph, NodeId};
use std::collections::VecDeque;

/// Distance value used to mark unreachable pairs.
pub const UNREACHABLE: u32 = u32::MAX;

/// A dense `V×V` matrix of shortest-path hop distances.
///
/// Row index is the source node, column index the destination. Produced by
/// [`GridGraph::distances`] and consumed by the selection heuristics, which
/// use the `O(V²)` *would-be* distance update of
/// [`DistanceMatrix::improvement_if_added`] to evaluate candidate shortcut
/// edges without recomputing a full APSP per candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistanceMatrix {
    n: usize,
    d: Vec<u32>,
}

impl DistanceMatrix {
    /// Computes all-pairs shortest paths over `graph` by BFS from each node.
    pub fn from_graph(graph: &GridGraph) -> Self {
        let n = graph.node_count();
        let mut d = vec![UNREACHABLE; n * n];
        let mut queue = VecDeque::with_capacity(n);
        for src in 0..n {
            let row = &mut d[src * n..(src + 1) * n];
            row[src] = 0;
            queue.clear();
            queue.push_back(src);
            while let Some(u) = queue.pop_front() {
                let du = row[u];
                for &v in graph.neighbors(u) {
                    if row[v] == UNREACHABLE {
                        row[v] = du + 1;
                        queue.push_back(v);
                    }
                }
            }
        }
        Self { n, d }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Shortest-path distance from `src` to `dst` in hops.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn get(&self, src: NodeId, dst: NodeId) -> u32 {
        assert!(src < self.n && dst < self.n, "node index out of range");
        self.d[src * self.n + dst]
    }

    /// The network diameter: the maximum finite pairwise distance.
    pub fn diameter(&self) -> u32 {
        self.d
            .iter()
            .copied()
            .filter(|&v| v != UNREACHABLE)
            .max()
            .unwrap_or(0)
    }

    /// Sum of all finite pairwise distances (the unweighted objective).
    pub fn total(&self) -> u64 {
        self.d
            .iter()
            .copied()
            .filter(|&v| v != UNREACHABLE)
            .map(u64::from)
            .sum()
    }

    /// Weighted objective reduction achieved by adding the directed unit edge
    /// `(i, j)`:
    ///
    /// `Σ_{x,y} w(x,y) · max(0, d(x,y) − (d(x,i) + 1 + d(j,y)))`
    ///
    /// This is the inner evaluation of the exhaustive greedy heuristic of
    /// Figure 3a — the cost of the *permutation graph* `G' = G + (i,j)`
    /// relative to `G` — computed in `O(V²)` instead of a fresh APSP.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != V²`.
    pub fn improvement_if_added(&self, i: NodeId, j: NodeId, weights: &[f64]) -> f64 {
        let n = self.n;
        assert_eq!(weights.len(), n * n, "weights must be V*V");
        let mut gain = 0.0;
        for x in 0..n {
            let dxi = self.d[x * n + i];
            if dxi == UNREACHABLE {
                continue;
            }
            let base = dxi as u64 + 1;
            for y in 0..n {
                let dxy = self.d[x * n + y];
                let djy = self.d[j * n + y];
                if djy == UNREACHABLE || dxy == UNREACHABLE {
                    continue;
                }
                let via = base + djy as u64;
                if (via as u32 as u64) < dxy as u64 {
                    gain += weights[x * n + y] * (dxy as u64 - via) as f64;
                }
            }
        }
        gain
    }

    /// Applies the addition of unit edge `(i, j)` in place:
    /// `d(x,y) ← min(d(x,y), d(x,i) + 1 + d(j,y))` for all pairs.
    ///
    /// After [`GridGraph::add_shortcut`] this is equivalent to a full APSP
    /// recomputation for a single added edge.
    pub fn apply_edge(&mut self, i: NodeId, j: NodeId) {
        let n = self.n;
        // Copy row j and column i to avoid aliasing during the update.
        let row_j: Vec<u32> = self.d[j * n..(j + 1) * n].to_vec();
        let col_i: Vec<u32> = (0..n).map(|x| self.d[x * n + i]).collect();
        for (x, &dxi) in col_i.iter().enumerate() {
            if dxi == UNREACHABLE {
                continue;
            }
            for (y, &djy) in row_j.iter().enumerate() {
                if djy == UNREACHABLE {
                    continue;
                }
                let via = dxi as u64 + 1 + djy as u64;
                let cur = &mut self.d[x * n + y];
                if via < *cur as u64 {
                    *cur = via as u32;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::GridDims;
    use crate::graph::Shortcut;

    #[test]
    fn bfs_matches_manhattan_on_pure_mesh() {
        let dims = GridDims::new(6, 5);
        let g = GridGraph::mesh(dims);
        let d = g.distances();
        for a in 0..dims.nodes() {
            for b in 0..dims.nodes() {
                assert_eq!(d.get(a, b), dims.manhattan(a, b));
            }
        }
    }

    #[test]
    fn incremental_apply_matches_full_recompute() {
        let dims = GridDims::new(8, 8);
        let mut g = GridGraph::mesh(dims);
        let mut d = g.distances();
        for &(i, j) in &[(0usize, 63usize), (7, 56), (20, 43), (5, 58)] {
            g.add_shortcut(Shortcut::new(i, j));
            d.apply_edge(i, j);
            assert_eq!(d, g.distances(), "after adding ({i},{j})");
        }
    }

    #[test]
    fn improvement_matches_recomputed_cost_delta() {
        let dims = GridDims::new(7, 7);
        let g = GridGraph::mesh(dims);
        let d = g.distances();
        let n = dims.nodes();
        let weights = vec![1.0; n * n];
        let before = GridGraph::total_cost(&d, &weights);
        for &(i, j) in &[(0usize, 48usize), (6, 42), (10, 38)] {
            let predicted = d.improvement_if_added(i, j, &weights);
            let mut g2 = g.clone();
            g2.add_shortcut(Shortcut::new(i, j));
            let after = GridGraph::total_cost(&g2.distances(), &weights);
            assert!(
                (before - after - predicted).abs() < 1e-6,
                "predicted {predicted}, actual {}",
                before - after
            );
        }
    }

    #[test]
    fn diameter_of_mesh() {
        let d = GridGraph::mesh(GridDims::new(10, 10)).distances();
        assert_eq!(d.diameter(), 18);
    }

    #[test]
    fn total_is_symmetric_sum() {
        let d = GridGraph::mesh(GridDims::new(3, 3)).distances();
        // 3x3 mesh: known APSP sum.
        let mut expected = 0u64;
        let dims = GridDims::new(3, 3);
        for a in 0..9 {
            for b in 0..9 {
                expected += dims.manhattan(a, b) as u64;
            }
        }
        assert_eq!(d.total(), expected);
    }
}
