//! Shortcut-selection heuristics (paper Figure 3 and §3.2.1–§3.2.2).
//!
//! All heuristics add directed unit-cost edges to a [`GridGraph`] subject to
//! [`SelectionConstraints`]:
//!
//! * [`select_exhaustive_greedy`] — Figure 3a: for every candidate edge,
//!   build the permutation graph `G' = G + (i,j)` and keep the candidate with
//!   the best total-cost improvement (naively `O(B·V⁵)`; here `O(B·V⁴)` via
//!   the incremental evaluation of
//!   [`DistanceMatrix::improvement_if_added`]).
//! * [`select_max_cost`] — Figure 3b: repeatedly connect the pair with the
//!   maximum current cost `w(i,j)·d(i,j)` (`O(B·V³)`), the variant the paper
//!   adopts ("we have tried both heuristics and found the resulting set of
//!   shortcuts to perform comparably well").
//! * [`select_application_specific`] — §3.2.2: the region-based variant that
//!   alternates router-pair placement with region-pair placement over 3×3
//!   sub-meshes, allowing multiple shortcuts to serve one hotspot.

use crate::dist::DistanceMatrix;
use crate::graph::{GridGraph, NodeId, Shortcut};
use crate::regions::{best_region_pair, Region};
use crate::weights::PairWeights;

/// Constraints on shortcut placement.
///
/// The paper restricts routers to at most 6 ports — hence at most one inbound
/// and one outbound shortcut per router — and forbids shortcuts at the four
/// corner (memory-interface) routers (§3.2.1). Only *RF-enabled* routers may
/// source or sink shortcuts (§3.2, §5.1.1).
#[derive(Debug, Clone)]
pub struct SelectionConstraints {
    /// Number of shortcuts to select (the paper's budget `B = 16`).
    pub budget: usize,
    /// Routers eligible to source or sink a shortcut (RF-enabled, non-corner).
    pub eligible: Vec<bool>,
    /// Maximum outbound shortcuts per router (paper: 1).
    pub max_out_per_node: usize,
    /// Maximum inbound shortcuts per router (paper: 1).
    pub max_in_per_node: usize,
}

impl SelectionConstraints {
    /// Constraints allowing every router, with the paper's per-router port
    /// caps (one in, one out).
    pub fn allowing_all(nodes: usize, budget: usize) -> Self {
        Self {
            budget,
            eligible: vec![true; nodes],
            max_out_per_node: 1,
            max_in_per_node: 1,
        }
    }

    /// Constraints allowing exactly the routers in `enabled`, with the
    /// paper's per-router port caps.
    ///
    /// # Panics
    ///
    /// Panics if any enabled index is `>= nodes`.
    pub fn for_enabled(nodes: usize, budget: usize, enabled: &[NodeId]) -> Self {
        let mut eligible = vec![false; nodes];
        for &e in enabled {
            assert!(e < nodes, "enabled router {e} out of range");
            eligible[e] = true;
        }
        Self {
            budget,
            eligible,
            max_out_per_node: 1,
            max_in_per_node: 1,
        }
    }

    /// Marks the four corner routers ineligible (memory interfaces, §3.2.1).
    #[must_use]
    pub fn excluding_corners(mut self, graph: &GridGraph) -> Self {
        for i in 0..graph.node_count() {
            if graph.dims().is_corner(i) {
                self.eligible[i] = false;
            }
        }
        self
    }

    fn validate(&self, nodes: usize) {
        assert_eq!(self.eligible.len(), nodes, "eligibility vector must cover all nodes");
        assert!(self.max_out_per_node >= 1 && self.max_in_per_node >= 1);
    }
}

/// Bookkeeping of per-node shortcut port usage during selection.
#[derive(Debug, Clone)]
struct PortUsage {
    out_used: Vec<usize>,
    in_used: Vec<usize>,
}

impl PortUsage {
    fn new(nodes: usize) -> Self {
        Self { out_used: vec![0; nodes], in_used: vec![0; nodes] }
    }

    fn can_place(&self, c: &SelectionConstraints, i: NodeId, j: NodeId) -> bool {
        i != j
            && c.eligible[i]
            && c.eligible[j]
            && self.out_used[i] < c.max_out_per_node
            && self.in_used[j] < c.max_in_per_node
    }

    fn place(&mut self, i: NodeId, j: NodeId) {
        self.out_used[i] += 1;
        self.in_used[j] += 1;
    }
}

/// Figure 3a: exhaustive greedy over permutation graphs.
///
/// Each round evaluates every feasible candidate edge `(i,j)` by the total
/// weighted-cost improvement it would give, adds the best strictly-improving
/// candidate, and repeats until the budget is exhausted or no candidate
/// improves the objective.
///
/// # Panics
///
/// Panics if the weights or constraints do not match the graph's node count.
pub fn select_exhaustive_greedy(
    graph: &GridGraph,
    weights: &PairWeights,
    constraints: &SelectionConstraints,
) -> Vec<Shortcut> {
    let n = graph.node_count();
    constraints.validate(n);
    assert_eq!(weights.node_count(), n, "weights node count mismatch");
    let mut g = graph.clone();
    let mut dist = g.distances();
    let mut usage = PortUsage::new(n);
    let mut selected = Vec::with_capacity(constraints.budget);
    for _ in 0..constraints.budget {
        let mut best: Option<(f64, NodeId, NodeId)> = None;
        for i in 0..n {
            if !constraints.eligible[i] || usage.out_used[i] >= constraints.max_out_per_node {
                continue;
            }
            for j in 0..n {
                if !usage.can_place(constraints, i, j) || dist.get(i, j) <= 1 {
                    continue;
                }
                let gain = dist.improvement_if_added(i, j, weights.as_slice());
                let better = match best {
                    None => gain > 0.0,
                    Some((bg, bi, bj)) => {
                        gain > bg + 1e-9
                            || ((gain - bg).abs() <= 1e-9 && (i, j) < (bi, bj))
                    }
                };
                if better {
                    best = Some((gain, i, j));
                }
            }
        }
        let Some((_, i, j)) = best else { break };
        g.add_shortcut(Shortcut::new(i, j));
        dist.apply_edge(i, j);
        usage.place(i, j);
        selected.push(Shortcut::new(i, j));
    }
    selected
}

/// Figure 3b: max-cost greedy.
///
/// Each round connects the feasible pair `(i,j)` with the maximum current
/// cost `w(i,j)·d(i,j)` — for uniform weights this reduces the graph
/// diameter; for frequency weights it accelerates the hottest distant pairs.
///
/// Distances are updated incrementally after each addition, and so is the
/// max-cost pair itself: per-source row maxima are maintained under the
/// `O(V²)` distance update instead of rescanning all `V²` candidates each
/// round (see [`select_max_cost_profiled`] for the scan counters). The
/// selected set is identical to the rescanning reference implementation
/// [`select_max_cost_rescan`].
///
/// # Panics
///
/// Panics if the weights or constraints do not match the graph's node count.
pub fn select_max_cost(
    graph: &GridGraph,
    weights: &PairWeights,
    constraints: &SelectionConstraints,
) -> Vec<Shortcut> {
    select_max_cost_profiled(graph, weights, constraints).0
}

/// Scan counters from the incremental max-cost selector, for build-time
/// profiling: how much candidate-rescanning work the incremental row
/// maintenance avoided relative to the `rounds · V²` a full rescan would do.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectionProfile {
    /// Selection rounds executed (shortcuts placed).
    pub rounds: usize,
    /// Source rows whose cached maximum was invalidated and rescanned.
    pub rows_rescanned: usize,
    /// Individual `(i,j)` candidates evaluated across all rescans.
    pub candidates_scanned: u64,
}

/// [`select_max_cost`] with the incremental-maintenance [`SelectionProfile`].
///
/// # Panics
///
/// Panics if the weights or constraints do not match the graph's node count.
pub fn select_max_cost_profiled(
    graph: &GridGraph,
    weights: &PairWeights,
    constraints: &SelectionConstraints,
) -> (Vec<Shortcut>, SelectionProfile) {
    let n = graph.node_count();
    constraints.validate(n);
    assert_eq!(weights.node_count(), n, "weights node count mismatch");
    let mut dist = graph.distances();
    let mut usage = PortUsage::new(n);
    let mut rows = IncrementalRows::new(n);
    let mut profile = SelectionProfile::default();
    for x in 0..n {
        rows.rescan(x, &dist, weights, constraints, &usage, &mut profile);
    }
    let mut selected = Vec::with_capacity(constraints.budget);
    for _ in 0..constraints.budget {
        let Some((i, j)) = rows.best_pair() else { break };
        dist.apply_edge(i, j);
        usage.place(i, j);
        selected.push(Shortcut::new(i, j));
        profile.rounds += 1;
        rows.revalidate(i, j, &dist, weights, constraints, &usage, &mut profile);
    }
    (selected, profile)
}

/// The pre-refactor rescanning implementation of [`select_max_cost`]: every
/// round re-evaluates all `V²` candidates with [`max_cost_pair`]. Kept as
/// the reference the incremental selector is property-tested against.
///
/// # Panics
///
/// Panics if the weights or constraints do not match the graph's node count.
pub fn select_max_cost_rescan(
    graph: &GridGraph,
    weights: &PairWeights,
    constraints: &SelectionConstraints,
) -> Vec<Shortcut> {
    let n = graph.node_count();
    constraints.validate(n);
    assert_eq!(weights.node_count(), n, "weights node count mismatch");
    let mut dist = graph.distances();
    let mut usage = PortUsage::new(n);
    let mut selected = Vec::with_capacity(constraints.budget);
    for _ in 0..constraints.budget {
        let Some((i, j)) = max_cost_pair(
            &dist,
            weights,
            constraints,
            &usage,
            None,
            None,
            PairScore::WeightedDistance,
        ) else {
            break;
        };
        dist.apply_edge(i, j);
        usage.place(i, j);
        selected.push(Shortcut::new(i, j));
    }
    selected
}

/// Per-source cached maxima for the incremental max-cost selector.
///
/// `rows[x]` caches the feasible destination maximising
/// `w(x,y)·d(x,y)` (with [`max_cost_pair`]'s exact tie-breaking), or `None`
/// when row `x` currently has no feasible positive-cost candidate.
///
/// The cache stays sound because every per-round change is monotone:
/// [`DistanceMatrix::apply_edge`] only *decreases* distances (so costs only
/// decrease) and [`PortUsage`] only *shrinks* feasibility. A cached row
/// maximum therefore remains the row maximum until the cached entry itself
/// is touched — its cost drops, its distance collapses to ≤ 1, or an
/// endpoint port fills up — at which point the row is rescanned.
struct IncrementalRows {
    rows: Vec<Option<(f64, NodeId)>>,
}

impl IncrementalRows {
    fn new(n: usize) -> Self {
        Self { rows: vec![None; n] }
    }

    /// Recomputes row `x` from scratch, mirroring [`max_cost_pair`]'s inner
    /// loop (ascending `y`, identical epsilon tie-break).
    fn rescan(
        &mut self,
        x: NodeId,
        dist: &DistanceMatrix,
        weights: &PairWeights,
        constraints: &SelectionConstraints,
        usage: &PortUsage,
        profile: &mut SelectionProfile,
    ) {
        self.rows[x] = None;
        if !constraints.eligible[x] || usage.out_used[x] >= constraints.max_out_per_node {
            return;
        }
        profile.rows_rescanned += 1;
        let n = dist.node_count();
        profile.candidates_scanned += n as u64;
        let mut best: Option<(f64, NodeId)> = None;
        for y in 0..n {
            if !usage.can_place(constraints, x, y) || dist.get(x, y) <= 1 {
                continue;
            }
            let cost = weights.get(x, y) * dist.get(x, y) as f64;
            if cost <= 0.0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bc, by)) => {
                    cost > bc + 1e-9 || ((cost - bc).abs() <= 1e-9 && y < by)
                }
            };
            if better {
                best = Some((cost, y));
            }
        }
        self.rows[x] = best;
    }

    /// The feasible pair maximising the cached costs, with
    /// [`max_cost_pair`]'s cross-row tie-break (ascending source index).
    fn best_pair(&self) -> Option<(NodeId, NodeId)> {
        let mut best: Option<(f64, NodeId, NodeId)> = None;
        for (x, row) in self.rows.iter().enumerate() {
            let Some((cost, y)) = *row else { continue };
            let better = match best {
                None => true,
                Some((bc, bi, bj)) => {
                    cost > bc + 1e-9 || ((cost - bc).abs() <= 1e-9 && (x, y) < (bi, bj))
                }
            };
            if better {
                best = Some((cost, x, y));
            }
        }
        best.map(|(_, i, j)| (i, j))
    }

    /// After placing `(i, j)` and applying its distance update: drop or
    /// rescan exactly the rows whose cached maximum may have changed.
    #[allow(clippy::too_many_arguments)]
    fn revalidate(
        &mut self,
        i: NodeId,
        j: NodeId,
        dist: &DistanceMatrix,
        weights: &PairWeights,
        constraints: &SelectionConstraints,
        usage: &PortUsage,
        profile: &mut SelectionProfile,
    ) {
        let j_full = usage.in_used[j] >= constraints.max_in_per_node;
        for x in 0..self.rows.len() {
            let stale = match self.rows[x] {
                None => false,
                Some((cost, y)) => {
                    // The placed source may have exhausted its out-ports.
                    x == i
                        // The placed destination may have filled its in-port.
                        || (j_full && y == j)
                        // The cached entry's own cost or feasibility moved
                        // (distances only ever decrease).
                        || dist.get(x, y) <= 1
                        || weights.get(x, y) * dist.get(x, y) as f64 != cost
                }
            };
            if stale {
                self.rescan(x, dist, weights, constraints, usage, profile);
            }
        }
    }
}

/// How candidate pairs are scored by [`max_cost_pair`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PairScore {
    /// `w(i,j) · d(i,j)` — requires positive weight.
    WeightedDistance,
    /// Plain hop distance `d(i,j)` — the uniform fallback.
    Distance,
}

/// Finds the feasible pair maximising the chosen score, optionally with the
/// source restricted to region `src_region` and the destination to
/// `dst_region`. Ties break toward the lexicographically smallest pair.
fn max_cost_pair(
    dist: &DistanceMatrix,
    weights: &PairWeights,
    constraints: &SelectionConstraints,
    usage: &PortUsage,
    src_region: Option<&Region>,
    dst_region: Option<&Region>,
    score: PairScore,
) -> Option<(NodeId, NodeId)> {
    let n = dist.node_count();
    let mut best: Option<(f64, NodeId, NodeId)> = None;
    for i in 0..n {
        if let Some(r) = src_region {
            if !r.contains_node(i) {
                continue;
            }
        }
        if !constraints.eligible[i] || usage.out_used[i] >= constraints.max_out_per_node {
            continue;
        }
        for j in 0..n {
            if let Some(r) = dst_region {
                if !r.contains_node(j) {
                    continue;
                }
            }
            if !usage.can_place(constraints, i, j) || dist.get(i, j) <= 1 {
                continue;
            }
            let cost = match score {
                PairScore::WeightedDistance => weights.get(i, j) * dist.get(i, j) as f64,
                PairScore::Distance => dist.get(i, j) as f64,
            };
            if cost <= 0.0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bc, bi, bj)) => {
                    cost > bc + 1e-9 || ((cost - bc).abs() <= 1e-9 && (i, j) < (bi, bj))
                }
            };
            if better {
                best = Some((cost, i, j));
            }
        }
    }
    best.map(|(_, i, j)| (i, j))
}

/// §3.2.2: application-specific selection with region-to-region placement.
///
/// Alternates between (a) placing the max-`F·W` router-pair shortcut and
/// (b) picking the pair of non-overlapping 3×3 regions `(I,J)` maximising
/// `C_Region(I,J) = Σ_{x∈I, y∈J} F(x,y)·W(x,y)` and placing a shortcut
/// `(i,j)` with `i∈I`, `j∈J`, `i ∉ UsedSrcs`, `j ∉ UsedDests`. This lets
/// several shortcuts crowd around a communication hotspot even though each
/// router accepts only one inbound and one outbound shortcut.
///
/// # Panics
///
/// Panics if the weights or constraints do not match the graph's node count.
pub fn select_application_specific(
    graph: &GridGraph,
    weights: &PairWeights,
    constraints: &SelectionConstraints,
) -> Vec<Shortcut> {
    let n = graph.node_count();
    constraints.validate(n);
    assert_eq!(weights.node_count(), n, "weights node count mismatch");
    let dims = graph.dims();
    let mut dist = graph.distances();
    let mut usage = PortUsage::new(n);
    let mut selected = Vec::with_capacity(constraints.budget);
    let mut region_turn = false;
    while selected.len() < constraints.budget {
        let region_pick = || {
            let (region_i, region_j) = best_region_pair(dims, &dist, weights)?;
            // Within the hottest region pair, prefer the hottest remaining
            // router pair; if the hot routers' ports are already used, still
            // place a shortcut between the regions (the distance fallback) —
            // this is what lets shortcuts crowd around a hotspot (§3.2.2).
            max_cost_pair(
                &dist,
                weights,
                constraints,
                &usage,
                Some(&region_i),
                Some(&region_j),
                PairScore::WeightedDistance,
            )
            .or_else(|| {
                max_cost_pair(
                    &dist,
                    weights,
                    constraints,
                    &usage,
                    Some(&region_i),
                    Some(&region_j),
                    PairScore::Distance,
                )
            })
        };
        let pair_pick = || {
            max_cost_pair(
                &dist,
                weights,
                constraints,
                &usage,
                None,
                None,
                PairScore::WeightedDistance,
            )
        };
        let pick = if region_turn {
            region_pick().or_else(pair_pick)
        } else {
            pair_pick().or_else(region_pick)
        };
        let Some((i, j)) = pick else { break };
        dist.apply_edge(i, j);
        usage.place(i, j);
        selected.push(Shortcut::new(i, j));
        region_turn = !region_turn;
    }
    selected
}

/// Verifies that a shortcut set satisfies `constraints` against `graph`.
///
/// Returns `Err` with a human-readable reason on the first violation. Useful
/// as a post-condition check and in property tests.
pub fn check_constraints(
    graph: &GridGraph,
    shortcuts: &[Shortcut],
    constraints: &SelectionConstraints,
) -> Result<(), String> {
    let n = graph.node_count();
    constraints.validate(n);
    if shortcuts.len() > constraints.budget {
        return Err(format!(
            "{} shortcuts exceed budget {}",
            shortcuts.len(),
            constraints.budget
        ));
    }
    let mut usage = PortUsage::new(n);
    for s in shortcuts {
        if s.src >= n || s.dst >= n {
            return Err(format!("shortcut {s} endpoint out of range"));
        }
        if !usage.can_place(constraints, s.src, s.dst) {
            return Err(format!("shortcut {s} violates eligibility or port caps"));
        }
        usage.place(s.src, s.dst);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geom::GridDims;

    fn mesh(n: usize) -> GridGraph {
        GridGraph::mesh(GridDims::new(n, n))
    }

    #[test]
    fn max_cost_respects_budget_and_ports() {
        let g = mesh(10);
        let w = PairWeights::uniform(100);
        let c = SelectionConstraints::allowing_all(100, 16).excluding_corners(&g);
        let s = select_max_cost(&g, &w, &c);
        assert_eq!(s.len(), 16);
        check_constraints(&g, &s, &c).unwrap();
    }

    #[test]
    fn max_cost_first_pick_is_diameter_pair() {
        let g = mesh(10);
        let w = PairWeights::uniform(100);
        let c = SelectionConstraints::allowing_all(100, 1).excluding_corners(&g);
        let s = select_max_cost(&g, &w, &c);
        assert_eq!(s.len(), 1);
        // With the four corners excluded the farthest eligible pair is at
        // distance 16 (corner-to-corner pairs at 18 and corner-adjacent
        // pairs at 17 all involve a corner).
        let d = g.distances();
        assert_eq!(d.get(s[0].src, s[0].dst), 16);
    }

    #[test]
    fn exhaustive_greedy_improves_at_least_as_much_per_edge() {
        let g = mesh(6);
        let n = g.node_count();
        let w = PairWeights::uniform(n);
        let c = SelectionConstraints::allowing_all(n, 4);
        let ex = select_exhaustive_greedy(&g, &w, &c);
        let mc = select_max_cost(&g, &w, &c);
        assert_eq!(ex.len(), 4);
        assert_eq!(mc.len(), 4);
        let cost = |set: &[Shortcut]| {
            let g2 = GridGraph::with_shortcuts(g.dims(), set);
            GridGraph::total_cost(&g2.distances(), w.as_slice())
        };
        // Both are greedy, so neither strictly dominates over multiple
        // steps; the paper found them "comparably well", which we bound at
        // a few percent.
        assert!(cost(&ex) <= cost(&mc) * 1.05, "{} vs {}", cost(&ex), cost(&mc));
    }

    #[test]
    fn shortcuts_reduce_total_cost() {
        let g = mesh(8);
        let n = g.node_count();
        let w = PairWeights::uniform(n);
        let c = SelectionConstraints::allowing_all(n, 8);
        let before = GridGraph::total_cost(&g.distances(), w.as_slice());
        for select in [select_max_cost, select_exhaustive_greedy, select_application_specific] {
            let s = select(&g, &w, &c);
            let g2 = GridGraph::with_shortcuts(g.dims(), &s);
            let after = GridGraph::total_cost(&g2.distances(), w.as_slice());
            assert!(after < before, "selection must reduce the objective");
        }
    }

    #[test]
    fn application_specific_clusters_on_hotspot() {
        // One hotspot at node 70 = (0,7) on a 10x10 grid; all traffic goes
        // to/from it from distant routers.
        let g = mesh(10);
        let n = g.node_count();
        let hot = 70;
        let mut w = PairWeights::zero(n);
        for other in [9, 19, 29, 8, 18, 28, 39, 49, 59] {
            w.add(other, hot, 100.0);
            w.add(hot, other, 100.0);
        }
        let c = SelectionConstraints::allowing_all(n, 6).excluding_corners(&g);
        let s = select_application_specific(&g, &w, &c);
        assert_eq!(s.len(), 6);
        let dims = g.dims();
        // The hot router itself accepts only one inbound and one outbound
        // shortcut, so region-based selection must crowd further shortcuts
        // at routers near the hotspot (within its 3×3 region, i.e. ≤4 hops).
        let near_hot = s
            .iter()
            .filter(|sc| dims.manhattan(sc.src, hot).min(dims.manhattan(sc.dst, hot)) <= 4)
            .count();
        assert!(near_hot >= 3, "expected clustering near hotspot, got {s:?}");
    }

    #[test]
    fn eligibility_is_respected() {
        let g = mesh(10);
        let n = g.node_count();
        let w = PairWeights::uniform(n);
        let enabled: Vec<usize> = (0..n).filter(|i| i % 2 == 0).collect();
        let c = SelectionConstraints::for_enabled(n, 16, &enabled).excluding_corners(&g);
        for select in [select_max_cost, select_application_specific] {
            let s = select(&g, &w, &c);
            for sc in &s {
                assert!(sc.src % 2 == 0 && sc.dst % 2 == 0);
                assert!(!g.dims().is_corner(sc.src) && !g.dims().is_corner(sc.dst));
            }
            check_constraints(&g, &s, &c).unwrap();
        }
    }

    #[test]
    fn incremental_matches_rescan_reference() {
        // Deterministic non-uniform weights: hash-like integer mixing keeps
        // costs well-separated so the epsilon tie-break never fires.
        for side in [4usize, 5, 7] {
            let g = mesh(side);
            let n = g.node_count();
            let mut w = PairWeights::zero(n);
            for a in 0..n {
                for b in 0..n {
                    if a != b {
                        w.add(a, b, ((a * 31 + b * 17) % 23) as f64);
                    }
                }
            }
            let c = SelectionConstraints::allowing_all(n, 12).excluding_corners(&g);
            let (inc, profile) = select_max_cost_profiled(&g, &w, &c);
            let re = select_max_cost_rescan(&g, &w, &c);
            assert_eq!(inc, re, "side {side}");
            assert_eq!(profile.rounds, inc.len());
            // Row maintenance must beat the full rescan: the reference
            // evaluates rounds·V² candidates beyond the initial scan.
            let rescan_work = (profile.rounds * n * n) as u64;
            assert!(
                profile.candidates_scanned < (n * n) as u64 + rescan_work,
                "side {side}: {profile:?}"
            );
        }
    }

    #[test]
    fn incremental_matches_rescan_on_ring_mesh_fabric() {
        use crate::fabric::FabricSpec;
        let fabric = FabricSpec::ring_mesh(GridDims::new(6, 6), 3);
        let g = GridGraph::from_fabric(&fabric, &[]);
        let n = g.node_count();
        let mut w = PairWeights::zero(n);
        for a in 0..n {
            for b in 0..n {
                if a != b {
                    w.add(a, b, ((a * 13 + b * 7) % 11) as f64);
                }
            }
        }
        let c = SelectionConstraints::allowing_all(n, 8);
        assert_eq!(select_max_cost(&g, &w, &c), select_max_cost_rescan(&g, &w, &c));
    }

    #[test]
    fn zero_weights_select_nothing() {
        let g = mesh(5);
        let w = PairWeights::zero(25);
        let c = SelectionConstraints::allowing_all(25, 4);
        assert!(select_max_cost(&g, &w, &c).is_empty());
        assert!(select_exhaustive_greedy(&g, &w, &c).is_empty());
    }

    #[test]
    fn check_constraints_detects_violations() {
        let g = mesh(4);
        let c = SelectionConstraints::allowing_all(16, 2);
        // duplicate source exceeds max_out_per_node = 1
        let bad = vec![Shortcut::new(0, 15), Shortcut::new(0, 12)];
        assert!(check_constraints(&g, &bad, &c).is_err());
        let over = vec![Shortcut::new(0, 15), Shortcut::new(1, 12), Shortcut::new(2, 13)];
        assert!(check_constraints(&g, &over, &c).is_err());
        let ok = vec![Shortcut::new(0, 15), Shortcut::new(1, 12)];
        assert!(check_constraints(&g, &ok, &c).is_ok());
    }
}
