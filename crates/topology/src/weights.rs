//! Per-pair optimisation weights for shortcut selection.

use crate::graph::NodeId;

/// A dense `V×V` matrix of non-negative per-pair weights.
///
/// * Architecture-specific selection (paper §3.2.1) uses **uniform** weights,
///   so the objective `Σ w(x,y)·W(x,y)` reduces to the plain APSP sum.
/// * Application-specific selection (paper §3.2.2) uses the inter-router
///   **communication frequency** `F(x,y)` — the number of messages sent from
///   router `x` to router `y` — so the objective becomes `Σ F(x,y)·W(x,y)`.
///
/// # Example
///
/// ```
/// use rfnoc_topology::PairWeights;
/// let mut w = PairWeights::zero(4);
/// w.add(0, 3, 10.0);
/// assert_eq!(w.get(0, 3), 10.0);
/// assert_eq!(w.get(3, 0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PairWeights {
    n: usize,
    w: Vec<f64>,
}

impl PairWeights {
    /// Uniform unit weight for every ordered pair (architecture-specific
    /// selection).
    pub fn uniform(nodes: usize) -> Self {
        Self { n: nodes, w: vec![1.0; nodes * nodes] }
    }

    /// All-zero weights, to be filled by [`PairWeights::add`].
    pub fn zero(nodes: usize) -> Self {
        Self { n: nodes, w: vec![0.0; nodes * nodes] }
    }

    /// Builds frequency weights from an iterator of `(src, dst, count)`
    /// message records (e.g. event-counter profiles).
    ///
    /// # Panics
    ///
    /// Panics if any node index is out of range.
    pub fn from_messages<I>(nodes: usize, messages: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId, f64)>,
    {
        let mut s = Self::zero(nodes);
        for (src, dst, count) in messages {
            s.add(src, dst, count);
        }
        s
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The weight of ordered pair `(src, dst)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn get(&self, src: NodeId, dst: NodeId) -> f64 {
        assert!(src < self.n && dst < self.n, "node index out of range");
        self.w[src * self.n + dst]
    }

    /// Adds `amount` to the weight of ordered pair `(src, dst)`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range or `amount` is negative.
    pub fn add(&mut self, src: NodeId, dst: NodeId, amount: f64) {
        assert!(src < self.n && dst < self.n, "node index out of range");
        assert!(amount >= 0.0, "weights must be non-negative");
        self.w[src * self.n + dst] += amount;
    }

    /// The flattened `V×V` weight slice (row = source).
    pub fn as_slice(&self) -> &[f64] {
        &self.w
    }

    /// Sum of all weights.
    pub fn total(&self) -> f64 {
        self.w.iter().sum()
    }

    /// The `k` ordered pairs with the highest weight, descending (useful for
    /// inspecting profiled hotspots).
    pub fn top_pairs(&self, k: usize) -> Vec<(NodeId, NodeId, f64)> {
        let mut pairs: Vec<(NodeId, NodeId, f64)> = (0..self.n)
            .flat_map(|x| (0..self.n).map(move |y| (x, y)))
            .filter(|&(x, y)| x != y)
            .map(|(x, y)| (x, y, self.w[x * self.n + y]))
            .collect();
        pairs.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap().then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        pairs.truncate(k);
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_total() {
        let w = PairWeights::uniform(5);
        assert_eq!(w.total(), 25.0);
    }

    #[test]
    fn from_messages_accumulates() {
        let w = PairWeights::from_messages(4, vec![(0, 1, 2.0), (0, 1, 3.0), (2, 3, 1.0)]);
        assert_eq!(w.get(0, 1), 5.0);
        assert_eq!(w.get(2, 3), 1.0);
        assert_eq!(w.total(), 6.0);
    }

    #[test]
    fn top_pairs_sorted() {
        let w = PairWeights::from_messages(4, vec![(0, 1, 2.0), (1, 2, 9.0), (3, 0, 5.0)]);
        let top = w.top_pairs(2);
        assert_eq!(top[0], (1, 2, 9.0));
        assert_eq!(top[1], (3, 0, 5.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        PairWeights::zero(2).add(0, 1, -1.0);
    }
}
