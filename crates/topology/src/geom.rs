//! Grid geometry: coordinates and mesh dimensions.

use crate::error::TopologyError;
use std::fmt;

/// Dimensions of a rectangular router grid.
///
/// The paper's baseline is a 10×10 mesh of 100 routers (§3.1).
///
/// # Example
///
/// ```
/// use rfnoc_topology::GridDims;
/// let dims = GridDims::new(10, 10);
/// assert_eq!(dims.nodes(), 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GridDims {
    width: usize,
    height: usize,
}

impl GridDims {
    /// Creates grid dimensions of `width` columns by `height` rows.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "grid dimensions must be non-zero");
        Self { width, height }
    }

    /// Creates grid dimensions, rejecting zero-sized grids with a typed
    /// error instead of panicking.
    pub fn try_new(width: usize, height: usize) -> Result<Self, TopologyError> {
        if width == 0 || height == 0 {
            return Err(TopologyError::ZeroDims { width, height });
        }
        Ok(Self { width, height })
    }

    /// The paper's baseline 10×10 grid.
    pub fn paper_baseline() -> Self {
        Self::new(10, 10)
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Total number of routers in the grid.
    pub fn nodes(&self) -> usize {
        self.width * self.height
    }

    /// Converts a coordinate to its linear node index (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `coord` lies outside the grid.
    pub fn index_of(&self, coord: Coord) -> usize {
        assert!(self.contains(coord), "coordinate {coord} outside {self:?}");
        coord.y as usize * self.width + coord.x as usize
    }

    /// Converts a linear node index back to its coordinate.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.nodes()`.
    pub fn coord_of(&self, index: usize) -> Coord {
        assert!(index < self.nodes(), "node index {index} out of range");
        Coord::new((index % self.width) as u16, (index / self.width) as u16)
    }

    /// Whether `coord` lies inside the grid.
    pub fn contains(&self, coord: Coord) -> bool {
        (coord.x as usize) < self.width && (coord.y as usize) < self.height
    }

    /// Whether the node index denotes one of the four corner routers.
    ///
    /// The paper attaches memory interfaces to the corners and forbids
    /// shortcuts from starting or ending there (§3.2.1).
    pub fn is_corner(&self, index: usize) -> bool {
        let c = self.coord_of(index);
        let last_x = (self.width - 1) as u16;
        let last_y = (self.height - 1) as u16;
        (c.x == 0 || c.x == last_x) && (c.y == 0 || c.y == last_y)
    }

    /// Iterator over all coordinates in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = Coord> + '_ {
        let w = self.width;
        (0..self.nodes()).map(move |i| Coord::new((i % w) as u16, (i / w) as u16))
    }

    /// Manhattan distance between two node indices.
    pub fn manhattan(&self, a: usize, b: usize) -> u32 {
        self.coord_of(a).manhattan(self.coord_of(b))
    }
}

impl Default for GridDims {
    fn default() -> Self {
        Self::paper_baseline()
    }
}

impl fmt::Display for GridDims {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

/// A router coordinate on the grid: `x` is the column, `y` the row.
///
/// # Example
///
/// ```
/// use rfnoc_topology::Coord;
/// let a = Coord::new(0, 0);
/// let b = Coord::new(7, 0);
/// assert_eq!(a.manhattan(b), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Coord {
    /// Column index.
    pub x: u16,
    /// Row index.
    pub y: u16,
}

impl Coord {
    /// Creates a coordinate at column `x`, row `y`.
    pub fn new(x: u16, y: u16) -> Self {
        Self { x, y }
    }

    /// Manhattan (L1) distance to `other`.
    pub fn manhattan(&self, other: Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

impl fmt::Display for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.x, self.y)
    }
}

impl From<(u16, u16)> for Coord {
    fn from((x, y): (u16, u16)) -> Self {
        Self::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let dims = GridDims::new(10, 10);
        for i in 0..dims.nodes() {
            assert_eq!(dims.index_of(dims.coord_of(i)), i);
        }
    }

    #[test]
    fn corners_identified() {
        let dims = GridDims::new(10, 10);
        let corners: Vec<usize> = (0..dims.nodes()).filter(|&i| dims.is_corner(i)).collect();
        assert_eq!(corners, vec![0, 9, 90, 99]);
    }

    #[test]
    fn manhattan_symmetric() {
        let dims = GridDims::new(10, 10);
        for a in 0..dims.nodes() {
            for b in 0..dims.nodes() {
                assert_eq!(dims.manhattan(a, b), dims.manhattan(b, a));
            }
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(GridDims::new(10, 4).to_string(), "10x4");
        assert_eq!(Coord::new(7, 0).to_string(), "(7,0)");
    }

    #[test]
    fn non_square_grid() {
        let dims = GridDims::new(3, 5);
        assert_eq!(dims.nodes(), 15);
        assert_eq!(dims.coord_of(14), Coord::new(2, 4));
        assert!(dims.is_corner(12));
        assert!(!dims.is_corner(7));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn coord_of_out_of_range_panics() {
        GridDims::new(2, 2).coord_of(4);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dims_panic() {
        GridDims::new(0, 3);
    }
}
