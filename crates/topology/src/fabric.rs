//! Pluggable base fabrics: the physical wire topology beneath the RF overlay.
//!
//! The paper evaluates a single 10×10 mesh (§3.1), but the RF-I overlay is
//! topology-agnostic: shortcuts, shortest-path tables, and the escape-VC
//! deadlock argument only require a connected base fabric with a
//! deadlock-free base route. [`FabricSpec`] makes the fabric a first-class
//! dimension with two implementations:
//!
//! * [`FabricSpec::Mesh`] — the paper's 2D mesh; base routes are XY
//!   (dimension-order), port slots are N/S/E/W.
//! * [`FabricSpec::RingMesh`] — the hierarchical ring-mesh hybrid of
//!   Mazumdar & Scionti ("Ring-Mesh: A Scalable and High-Performance
//!   Approach for Manycore Accelerators"): the grid is partitioned into
//!   `tile×tile` blocks whose cells form a local ring (stations are
//!   two-ported, after Wu's ring-router microarchitecture), and the ring
//!   gateways form a coarser mesh between tiles.
//!
//! # Port-slot contract
//!
//! Every router exposes *base slots* `0..base_slot_count(r)`; slot meanings
//! are fabric-defined but stable, and [`FabricSpec::port_neighbor`] maps a
//! slot to the neighbouring router (or `None` for a grid-boundary slot).
//! The simulator appends two virtual slots after the base slots — local
//! injection/ejection and the RF overlay port — so a mesh router has the
//! paper's six ports while a ring station has four.
//!
//! # Base routes and deadlock freedom
//!
//! [`FabricSpec::base_next_hop`] is the escape route used by the reserved
//! escape VCs: XY on the mesh; on the ring-mesh it walks the local chain
//! *down* to the gateway, XY across the gateway mesh, then *up* the chain
//! to the destination station. The chain walk never crosses the ring's wrap
//! edge, so the route classes (down < mesh-X < mesh-Y < up) are acyclic and
//! the escape network is deadlock-free; wrap edges carry only adaptive
//! traffic, which can always fall back to the escape VCs.

use crate::error::TopologyError;
use crate::geom::GridDims;
use crate::graph::NodeId;
use crate::routing::xy_next_hop;
use std::fmt;

/// A base fabric: dimensions plus the wiring pattern between routers.
///
/// Construct with [`FabricSpec::mesh`] or [`FabricSpec::ring_mesh`], then
/// [`FabricSpec::validate`] before building networks; validation rejects
/// degenerate topologies with a typed [`TopologyError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FabricSpec {
    /// The paper's 2D mesh: every router links to its N/S/E/W neighbours.
    Mesh {
        /// Grid dimensions.
        dims: GridDims,
    },
    /// Hierarchical ring-mesh: `tile×tile` blocks of ring stations, with
    /// the per-tile gateway routers forming a coarser inter-tile mesh.
    RingMesh {
        /// Grid dimensions (must be divisible by `tile`).
        dims: GridDims,
        /// Side of the square tile; the local ring has `tile²` stations.
        tile: usize,
    },
}

/// Base-slot indices on a mesh router (the sim's historical port order).
pub const SLOT_N: u8 = 0;
/// South mesh slot.
pub const SLOT_S: u8 = 1;
/// East mesh slot.
pub const SLOT_E: u8 = 2;
/// West mesh slot.
pub const SLOT_W: u8 = 3;

/// Ring-station slot toward the previous station on the ring (lower snake
/// index; the wrap edge for the gateway).
pub const SLOT_RING_PREV: u8 = 0;
/// Ring-station slot toward the next station on the ring.
pub const SLOT_RING_NEXT: u8 = 1;

impl FabricSpec {
    /// A mesh fabric over `dims`.
    pub fn mesh(dims: GridDims) -> Self {
        Self::Mesh { dims }
    }

    /// A ring-mesh fabric over `dims` with `tile×tile` ring tiles.
    pub fn ring_mesh(dims: GridDims, tile: usize) -> Self {
        Self::RingMesh { dims, tile }
    }

    /// Checks the fabric for degenerate parameters.
    pub fn validate(&self) -> Result<(), TopologyError> {
        match *self {
            Self::Mesh { dims } => {
                if dims.width() < 2 || dims.height() < 2 {
                    return Err(TopologyError::DegenerateMesh {
                        width: dims.width(),
                        height: dims.height(),
                    });
                }
            }
            Self::RingMesh { dims, tile } => {
                if tile < 2 {
                    return Err(TopologyError::RingTooSmall { tile });
                }
                if dims.width() % tile != 0 || dims.height() % tile != 0 {
                    return Err(TopologyError::TileMisaligned {
                        width: dims.width(),
                        height: dims.height(),
                        tile,
                    });
                }
            }
        }
        Ok(())
    }

    /// Grid dimensions of the fabric.
    pub fn dims(&self) -> GridDims {
        match *self {
            Self::Mesh { dims } | Self::RingMesh { dims, .. } => dims,
        }
    }

    /// Number of routers.
    pub fn nodes(&self) -> usize {
        self.dims().nodes()
    }

    /// Short human-readable fabric name (`mesh` / `ringmesh`).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Mesh { .. } => "mesh",
            Self::RingMesh { .. } => "ringmesh",
        }
    }

    /// Whether this is the plain mesh fabric.
    pub fn is_mesh(&self) -> bool {
        matches!(self, Self::Mesh { .. })
    }

    /// The maximum number of base slots any router in this fabric exposes.
    ///
    /// Mesh routers have four (N/S/E/W); ring-mesh gateways have six
    /// (ring prev/next plus four gateway-mesh directions).
    pub fn max_base_slots(&self) -> usize {
        match self {
            Self::Mesh { .. } => 4,
            Self::RingMesh { .. } => 6,
        }
    }

    /// Number of base slots at router `r` (boundary slots count even when
    /// unconnected; a plain ring station has two).
    pub fn base_slot_count(&self, r: NodeId) -> usize {
        match *self {
            Self::Mesh { .. } => 4,
            Self::RingMesh { dims, tile } => {
                if RingMeshView::new(dims, tile).snake_of(r) == 0 {
                    6
                } else {
                    2
                }
            }
        }
    }

    /// The neighbour reached from router `r` through base slot `slot`, or
    /// `None` when the slot faces the grid boundary.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range or `slot >= base_slot_count(r)`.
    pub fn port_neighbor(&self, r: NodeId, slot: u8) -> Option<NodeId> {
        match *self {
            Self::Mesh { dims } => {
                let c = dims.coord_of(r);
                let (dx, dy): (i32, i32) = match slot {
                    SLOT_N => (0, -1),
                    SLOT_S => (0, 1),
                    SLOT_E => (1, 0),
                    SLOT_W => (-1, 0),
                    _ => panic!("mesh slot {slot} out of range"),
                };
                let nx = c.x as i32 + dx;
                let ny = c.y as i32 + dy;
                if nx < 0 || ny < 0 || nx >= dims.width() as i32 || ny >= dims.height() as i32 {
                    None
                } else {
                    Some(dims.index_of((nx as u16, ny as u16).into()))
                }
            }
            Self::RingMesh { dims, tile } => {
                let v = RingMeshView::new(dims, tile);
                let (tx, ty) = v.tile_of(r);
                let s = v.snake_of(r);
                let ring_len = tile * tile;
                match slot {
                    SLOT_RING_PREV => Some(v.node_at(tx, ty, (s + ring_len - 1) % ring_len)),
                    SLOT_RING_NEXT => Some(v.node_at(tx, ty, (s + 1) % ring_len)),
                    2..=5 if s == 0 => {
                        // Gateway-mesh slots, in the mesh's N/S/E/W order.
                        let (dx, dy): (i32, i32) = match slot {
                            2 => (0, -1),
                            3 => (0, 1),
                            4 => (1, 0),
                            _ => (-1, 0),
                        };
                        let ntx = tx as i32 + dx;
                        let nty = ty as i32 + dy;
                        if ntx < 0
                            || nty < 0
                            || ntx >= v.tiles_x as i32
                            || nty >= v.tiles_y as i32
                        {
                            None
                        } else {
                            Some(v.node_at(ntx as usize, nty as usize, 0))
                        }
                    }
                    _ => panic!("ring-mesh slot {slot} out of range for router {r}"),
                }
            }
        }
    }

    /// The slot at `a` whose link leads to `b`, if `(a, b)` is a base
    /// fabric edge. All base edges are bidirectional, so
    /// `port_between(a, b)` and `port_between(b, a)` are `Some` together.
    pub fn port_between(&self, a: NodeId, b: NodeId) -> Option<u8> {
        (0..self.base_slot_count(a) as u8).find(|&slot| self.port_neighbor(a, slot) == Some(b))
    }

    /// Neighbours of `r` in slot order, skipping boundary slots — the
    /// adjacency-list order used by [`crate::GridGraph`].
    pub fn neighbors(&self, r: NodeId) -> Vec<NodeId> {
        (0..self.base_slot_count(r) as u8)
            .filter_map(|slot| self.port_neighbor(r, slot))
            .collect()
    }

    /// The next router on the deadlock-free base (escape) route from
    /// `router` to `dest`; `dest` itself when already there.
    ///
    /// Mesh: XY routing. Ring-mesh: chain down to the gateway, XY across
    /// the gateway mesh, chain up to the destination station; the ring wrap
    /// edge is never used.
    pub fn base_next_hop(&self, router: NodeId, dest: NodeId) -> NodeId {
        match *self {
            Self::Mesh { dims } => xy_next_hop(dims, router, dest),
            Self::RingMesh { dims, tile } => {
                if router == dest {
                    return dest;
                }
                let v = RingMeshView::new(dims, tile);
                let (tx, ty) = v.tile_of(router);
                let (dtx, dty) = v.tile_of(dest);
                let s = v.snake_of(router);
                if (tx, ty) == (dtx, dty) {
                    let ds = v.snake_of(dest);
                    let next = if ds > s { s + 1 } else { s - 1 };
                    return v.node_at(tx, ty, next);
                }
                if s > 0 {
                    // Chain down toward the gateway (never the wrap edge).
                    return v.node_at(tx, ty, s - 1);
                }
                // At the gateway: XY over the tile mesh.
                if tx != dtx {
                    let ntx = if dtx > tx { tx + 1 } else { tx - 1 };
                    v.node_at(ntx, ty, 0)
                } else if ty != dty {
                    let nty = if dty > ty { ty + 1 } else { ty - 1 };
                    v.node_at(tx, nty, 0)
                } else {
                    // Destination tile reached: chain up to the station.
                    v.node_at(tx, ty, 1)
                }
            }
        }
    }

    /// The slot carrying the base route from `router` toward `dest`.
    ///
    /// # Panics
    ///
    /// Panics if `router == dest` (there is no outgoing slot).
    pub fn base_port(&self, router: NodeId, dest: NodeId) -> u8 {
        assert_ne!(router, dest, "no base port to self");
        let next = self.base_next_hop(router, dest);
        self.port_between(router, next)
            .expect("base route must follow a fabric edge")
    }

    /// The longest base route between any pair of routers — the diameter of
    /// the escape fabric, used to size distance histograms.
    pub fn max_route_len(&self) -> u32 {
        match *self {
            Self::Mesh { dims } => (dims.width() - 1 + dims.height() - 1) as u32,
            Self::RingMesh { dims, tile } => {
                let v = RingMeshView::new(dims, tile);
                let chain = (tile * tile - 1) as u32;
                2 * chain + (v.tiles_x - 1 + v.tiles_y - 1) as u32
            }
        }
    }

    /// Length in hops of the base (escape) route from `a` to `b` — the
    /// fabric's analogue of Manhattan distance. O(1).
    pub fn base_route_len(&self, a: NodeId, b: NodeId) -> u32 {
        match *self {
            Self::Mesh { dims } => dims.manhattan(a, b),
            Self::RingMesh { dims, tile } => {
                if a == b {
                    return 0;
                }
                let v = RingMeshView::new(dims, tile);
                let (atx, aty) = v.tile_of(a);
                let (btx, bty) = v.tile_of(b);
                let sa = v.snake_of(a) as u32;
                let sb = v.snake_of(b) as u32;
                if (atx, aty) == (btx, bty) {
                    sa.abs_diff(sb)
                } else {
                    let tile_hops = atx.abs_diff(btx) + aty.abs_diff(bty);
                    sa + tile_hops as u32 + sb
                }
            }
        }
    }
}

impl fmt::Display for FabricSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::Mesh { dims } => write!(f, "mesh-{dims}"),
            Self::RingMesh { dims, tile } => write!(f, "ringmesh-{dims}-t{tile}"),
        }
    }
}

impl Default for FabricSpec {
    fn default() -> Self {
        Self::Mesh { dims: GridDims::paper_baseline() }
    }
}

/// Precomputed tile arithmetic for a ring-mesh fabric.
struct RingMeshView {
    dims: GridDims,
    tile: usize,
    tiles_x: usize,
    tiles_y: usize,
}

impl RingMeshView {
    fn new(dims: GridDims, tile: usize) -> Self {
        debug_assert!(
            tile >= 2 && dims.width().is_multiple_of(tile) && dims.height().is_multiple_of(tile)
        );
        Self { dims, tile, tiles_x: dims.width() / tile, tiles_y: dims.height() / tile }
    }

    /// Tile coordinates of router `r`.
    fn tile_of(&self, r: NodeId) -> (usize, usize) {
        let c = self.dims.coord_of(r);
        (c.x as usize / self.tile, c.y as usize / self.tile)
    }

    /// Snake index of `r` inside its tile: row-major boustrophedon, so
    /// consecutive indices are grid-adjacent and index 0 is the tile's
    /// top-left cell (the gateway).
    fn snake_of(&self, r: NodeId) -> usize {
        let c = self.dims.coord_of(r);
        let lx = c.x as usize % self.tile;
        let ly = c.y as usize % self.tile;
        ly * self.tile + if ly.is_multiple_of(2) { lx } else { self.tile - 1 - lx }
    }

    /// Router at snake index `s` inside tile `(tx, ty)`.
    fn node_at(&self, tx: usize, ty: usize, s: usize) -> NodeId {
        let ly = s / self.tile;
        let lx =
            if ly.is_multiple_of(2) { s % self.tile } else { self.tile - 1 - s % self.tile };
        let x = (tx * self.tile + lx) as u16;
        let y = (ty * self.tile + ly) as u16;
        self.dims.index_of((x, y).into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GridGraph;

    #[test]
    fn validation_rejects_degenerate_fabrics() {
        assert!(FabricSpec::mesh(GridDims::new(1, 8)).validate().is_err());
        assert!(FabricSpec::mesh(GridDims::new(8, 1)).validate().is_err());
        assert!(FabricSpec::mesh(GridDims::new(2, 2)).validate().is_ok());
        assert!(FabricSpec::ring_mesh(GridDims::new(8, 8), 1).validate().is_err());
        assert!(FabricSpec::ring_mesh(GridDims::new(8, 8), 3).validate().is_err());
        assert!(FabricSpec::ring_mesh(GridDims::new(9, 9), 3).validate().is_ok());
        assert!(FabricSpec::ring_mesh(GridDims::new(8, 8), 4).validate().is_ok());
    }

    #[test]
    fn mesh_slots_match_grid_graph_adjacency() {
        let dims = GridDims::new(5, 4);
        let fabric = FabricSpec::mesh(dims);
        let g = GridGraph::mesh(dims);
        for r in 0..dims.nodes() {
            assert_eq!(fabric.neighbors(r), g.neighbors(r).to_vec(), "router {r}");
        }
    }

    #[test]
    fn mesh_base_route_is_xy() {
        let dims = GridDims::new(6, 6);
        let fabric = FabricSpec::mesh(dims);
        for a in 0..dims.nodes() {
            for b in 0..dims.nodes() {
                assert_eq!(fabric.base_next_hop(a, b), xy_next_hop(dims, a, b));
                assert_eq!(fabric.base_route_len(a, b), dims.manhattan(a, b));
            }
        }
    }

    #[test]
    fn ring_mesh_edges_are_bidirectional_and_consistent() {
        let fabric = FabricSpec::ring_mesh(GridDims::new(8, 8), 4);
        for r in 0..64 {
            for slot in 0..fabric.base_slot_count(r) as u8 {
                if let Some(nb) = fabric.port_neighbor(r, slot) {
                    assert_ne!(nb, r);
                    let back = fabric.port_between(nb, r);
                    assert!(back.is_some(), "edge {r}->{nb} has no reverse slot");
                    assert_eq!(fabric.port_neighbor(nb, back.unwrap()), Some(r));
                    assert_eq!(fabric.port_between(r, nb), Some(slot));
                }
            }
        }
    }

    #[test]
    fn ring_mesh_snake_is_grid_adjacent() {
        // Consecutive ring stations must be physically adjacent cells so the
        // ring can be wired with unit-length grid links (wrap edge aside).
        let dims = GridDims::new(6, 6);
        let fabric = FabricSpec::ring_mesh(dims, 3);
        for r in 0..36 {
            let next = fabric.port_neighbor(r, SLOT_RING_NEXT).unwrap();
            let hop = dims.manhattan(r, next);
            // Chain edges are unit-length; the wrap edge spans the tile.
            assert!(hop == 1 || hop as usize == 2 * (3 - 1), "{r}->{next} = {hop}");
        }
    }

    #[test]
    fn ring_mesh_base_route_reaches_dest_with_analytic_length() {
        let dims = GridDims::new(8, 8);
        let fabric = FabricSpec::ring_mesh(dims, 4);
        for a in 0..64 {
            for b in 0..64 {
                let mut cur = a;
                let mut hops = 0u32;
                while cur != b {
                    let next = fabric.base_next_hop(cur, b);
                    assert!(
                        fabric.port_between(cur, next).is_some(),
                        "base hop {cur}->{next} not a fabric edge"
                    );
                    cur = next;
                    hops += 1;
                    assert!(hops <= 200, "route {a}->{b} does not terminate");
                }
                assert_eq!(hops, fabric.base_route_len(a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn ring_mesh_escape_route_never_uses_wrap_edge() {
        let dims = GridDims::new(6, 6);
        let fabric = FabricSpec::ring_mesh(dims, 3);
        let ring_len = 9;
        for a in 0..36 {
            for b in 0..36 {
                let mut cur = a;
                while cur != b {
                    let next = fabric.base_next_hop(cur, b);
                    // Wrap edge connects snake index 0 and ring_len-1.
                    let v = RingMeshView::new(dims, 3);
                    let (s, ns) = (v.snake_of(cur), v.snake_of(next));
                    let crosses_wrap =
                        (s == 0 && ns == ring_len - 1) || (s == ring_len - 1 && ns == 0);
                    assert!(
                        !crosses_wrap,
                        "escape route {a}->{b} crossed wrap edge at {cur}->{next}"
                    );
                    cur = next;
                }
            }
        }
    }

    #[test]
    fn ring_mesh_station_degrees() {
        let fabric = FabricSpec::ring_mesh(GridDims::new(8, 8), 4);
        let v = RingMeshView::new(GridDims::new(8, 8), 4);
        for r in 0..64 {
            if v.snake_of(r) == 0 {
                assert_eq!(fabric.base_slot_count(r), 6, "gateway {r}");
            } else {
                assert_eq!(fabric.base_slot_count(r), 2, "station {r}");
            }
        }
        assert_eq!(fabric.max_base_slots(), 6);
    }

    #[test]
    fn max_route_len_matches_worst_pair() {
        for fabric in [
            FabricSpec::mesh(GridDims::new(6, 4)),
            FabricSpec::ring_mesh(GridDims::new(6, 6), 3),
            FabricSpec::ring_mesh(GridDims::new(8, 8), 4),
        ] {
            let n = fabric.nodes();
            let worst = (0..n)
                .flat_map(|a| (0..n).map(move |b| (a, b)))
                .map(|(a, b)| fabric.base_route_len(a, b))
                .max()
                .unwrap();
            assert_eq!(worst, fabric.max_route_len(), "{fabric}");
        }
    }

    #[test]
    fn from_fabric_graph_is_connected() {
        for fabric in [
            FabricSpec::mesh(GridDims::new(4, 4)),
            FabricSpec::ring_mesh(GridDims::new(6, 6), 3),
        ] {
            let g = GridGraph::from_fabric(&fabric, &[]);
            let d = g.distances();
            for a in 0..fabric.nodes() {
                for b in 0..fabric.nodes() {
                    assert_ne!(d.get(a, b), crate::dist::UNREACHABLE, "{fabric}: {a}->{b}");
                    // The adaptive graph may beat the escape route but
                    // never exceeds it.
                    assert!(d.get(a, b) <= fabric.base_route_len(a, b));
                }
            }
        }
    }
}
