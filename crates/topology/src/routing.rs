//! Next-hop routing tables over the shortcut-augmented grid.
//!
//! When the mesh is extended with RF-I shortcuts the paper switches from XY
//! routing to shortest-path routing (§3.2); routes are programmed into
//! per-router tables (99 network cycles to update all 100 routers, one write
//! port each). This module computes those tables and provides the XY
//! baseline used by the escape virtual channels.

use crate::dist::{DistanceMatrix, UNREACHABLE};
use crate::geom::GridDims;
use crate::graph::{GridGraph, NodeId};

/// Per-router next-hop tables: `next_hop(router, dest)` is the neighbour
/// (mesh or shortcut) to forward to on a shortest path.
///
/// Tie-breaking is deterministic: a shortcut edge is preferred over a mesh
/// edge of equal progress (shortcuts are single-cycle express channels),
/// then the lowest node index wins.
#[derive(Debug, Clone)]
pub struct RoutingTables {
    n: usize,
    /// `table[router * n + dest]` = next node, or `router` itself when
    /// `dest == router`.
    table: Vec<NodeId>,
}

impl RoutingTables {
    /// Builds shortest-path next-hop tables for `graph`.
    pub fn shortest_path(graph: &GridGraph) -> Self {
        let dist = graph.distances();
        Self::from_distances(graph, &dist)
    }

    /// Builds the tables from a pre-computed distance matrix for `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the matrix does not match the graph, or if any pair is
    /// unreachable (cannot happen for a connected mesh).
    pub fn from_distances(graph: &GridGraph, dist: &DistanceMatrix) -> Self {
        let n = graph.node_count();
        assert_eq!(dist.node_count(), n, "distance matrix mismatch");
        let mut table = vec![0usize; n * n];
        for router in 0..n {
            for dest in 0..n {
                if router == dest {
                    table[router * n + dest] = router;
                    continue;
                }
                let d = dist.get(router, dest);
                assert_ne!(d, UNREACHABLE, "mesh must be connected");
                // Choose the neighbour strictly decreasing distance; prefer
                // shortcut neighbours (listed after the ≤4 mesh neighbours).
                let neighbors = graph.neighbors(router);
                let mut chosen: Option<(bool, NodeId)> = None;
                for (idx, &nb) in neighbors.iter().enumerate() {
                    if dist.get(nb, dest) + 1 == d {
                        let is_shortcut = idx >= mesh_degree(graph, router);
                        let better = match chosen {
                            None => true,
                            Some((cs, cn)) => {
                                (is_shortcut && !cs) || (is_shortcut == cs && nb < cn)
                            }
                        };
                        if better {
                            chosen = Some((is_shortcut, nb));
                        }
                    }
                }
                table[router * n + dest] =
                    chosen.expect("some neighbour must lie on a shortest path").1;
            }
        }
        Self { n, table }
    }

    /// Number of routers covered by the tables.
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// The next node on the route from `router` toward `dest` (`router`
    /// itself when already at the destination).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn next_hop(&self, router: NodeId, dest: NodeId) -> NodeId {
        assert!(router < self.n && dest < self.n, "node index out of range");
        self.table[router * self.n + dest]
    }

    /// The full route from `src` to `dst` (inclusive of both endpoints).
    pub fn route(&self, src: NodeId, dst: NodeId) -> Vec<NodeId> {
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            cur = self.next_hop(cur, dst);
            path.push(cur);
            assert!(path.len() <= self.n, "routing loop detected");
        }
        path
    }
}

fn mesh_degree(graph: &GridGraph, router: NodeId) -> usize {
    graph.neighbors(router).len() - graph.shortcuts().iter().filter(|s| s.src == router).count()
}

/// The XY (dimension-order) next hop on a pure mesh: route in X first, then
/// Y. Deadlock-free; used by the escape virtual channels.
///
/// Returns `dest` itself when `router == dest`.
///
/// # Panics
///
/// Panics if an index is out of range for `dims`.
pub fn xy_next_hop(dims: GridDims, router: NodeId, dest: NodeId) -> NodeId {
    let rc = dims.coord_of(router);
    let dc = dims.coord_of(dest);
    if rc.x < dc.x {
        dims.index_of((rc.x + 1, rc.y).into())
    } else if rc.x > dc.x {
        dims.index_of((rc.x - 1, rc.y).into())
    } else if rc.y < dc.y {
        dims.index_of((rc.x, rc.y + 1).into())
    } else if rc.y > dc.y {
        dims.index_of((rc.x, rc.y - 1).into())
    } else {
        dest
    }
}

/// The full XY route from `src` to `dst` (inclusive of both endpoints).
pub fn xy_route(dims: GridDims, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    let mut path = vec![src];
    let mut cur = src;
    while cur != dst {
        cur = xy_next_hop(dims, cur, dst);
        path.push(cur);
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Shortcut;

    #[test]
    fn xy_route_length_is_manhattan() {
        let dims = GridDims::new(10, 10);
        for (a, b) in [(0, 99), (5, 87), (33, 33), (90, 9)] {
            let route = xy_route(dims, a, b);
            assert_eq!(route.len() as u32 - 1, dims.manhattan(a, b));
        }
    }

    #[test]
    fn xy_goes_x_first() {
        let dims = GridDims::new(10, 10);
        let route = xy_route(dims, 0, 22);
        assert_eq!(route, vec![0, 1, 2, 12, 22]);
    }

    #[test]
    fn shortest_path_tables_match_distances() {
        let dims = GridDims::new(8, 8);
        let mut g = GridGraph::mesh(dims);
        g.add_shortcut(Shortcut::new(0, 63));
        g.add_shortcut(Shortcut::new(56, 7));
        let dist = g.distances();
        let tables = RoutingTables::shortest_path(&g);
        for src in 0..64 {
            for dst in 0..64 {
                let route = tables.route(src, dst);
                assert_eq!(route.len() as u32 - 1, dist.get(src, dst), "{src}->{dst}");
            }
        }
    }

    #[test]
    fn route_uses_shortcut_when_profitable() {
        let dims = GridDims::new(10, 10);
        let mut g = GridGraph::mesh(dims);
        g.add_shortcut(Shortcut::new(11, 88));
        let tables = RoutingTables::shortest_path(&g);
        let route = tables.route(11, 88);
        assert_eq!(route, vec![11, 88]);
        // A neighbour of 11 routes through the shortcut too.
        let route2 = tables.route(1, 88);
        assert!(route2.windows(2).any(|w| w == [11, 88]));
    }

    #[test]
    fn shortcut_preferred_on_tie() {
        let dims = GridDims::new(10, 10);
        let mut g = GridGraph::mesh(dims);
        // shortcut of length equal to one mesh hop progress: from 0 to 2 is
        // distance 2; a shortcut 0->2 makes next_hop(0,2) the shortcut.
        g.add_shortcut(Shortcut::new(0, 2));
        let tables = RoutingTables::shortest_path(&g);
        assert_eq!(tables.next_hop(0, 2), 2);
    }

    #[test]
    fn next_hop_self_is_identity() {
        let g = GridGraph::mesh(GridDims::new(4, 4));
        let tables = RoutingTables::shortest_path(&g);
        for i in 0..16 {
            assert_eq!(tables.next_hop(i, i), i);
        }
    }
}
