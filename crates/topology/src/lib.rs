//! Directed grid graphs, all-pairs shortest paths, and RF-I shortcut
//! selection for the RF-interconnect overlaid CMP NoC.
//!
//! This crate implements the graph substrate of the paper *CMP
//! network-on-chip overlaid with multi-band RF-interconnect* (HPCA 2008) and
//! its power-reduction companion (HPCA 2009):
//!
//! * [`GridGraph`] — the baseline mesh viewed as a directed grid graph `G`
//!   whose vertices are routers, augmented with directed shortcut edges
//!   (paper §3.2.1).
//! * [`DistanceMatrix`] — all-pairs shortest path distances, with the `O(V²)`
//!   incremental re-evaluation used by the selection heuristics.
//! * [`select`] — the two architecture-specific heuristics of Figure 3
//!   (exhaustive permutation-graph greedy and max-cost greedy), the
//!   application-specific `F·W` weighted variant, and the region-based
//!   hotspot-aware selection of §3.2.2.
//!
//! # Example
//!
//! Select 4 architecture-specific shortcuts on an 8×8 mesh:
//!
//! ```
//! use rfnoc_topology::{GridDims, GridGraph, PairWeights, SelectionConstraints};
//! use rfnoc_topology::select::select_max_cost;
//!
//! let dims = GridDims::new(8, 8);
//! let graph = GridGraph::mesh(dims);
//! let weights = PairWeights::uniform(dims.nodes());
//! let constraints = SelectionConstraints::allowing_all(dims.nodes(), 4);
//! let shortcuts = select_max_cost(&graph, &weights, &constraints);
//! assert_eq!(shortcuts.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dist;
mod error;
mod geom;
mod graph;
mod weights;

pub mod fabric;
pub mod regions;
pub mod routing;
pub mod select;

pub use dist::DistanceMatrix;
pub use error::TopologyError;
pub use fabric::FabricSpec;
pub use geom::{Coord, GridDims};
pub use graph::{GridGraph, NodeId, Shortcut};
pub use select::SelectionConstraints;
pub use weights::PairWeights;
