//! Typed validation errors for topology construction.
//!
//! Degenerate fabrics (zero- or one-wide meshes, rings shorter than three
//! stations, tiles that do not evenly partition the grid) are rejected here
//! with a descriptive error instead of panicking deep inside
//! [`crate::GridGraph::mesh`] or the simulator build.

use std::error::Error;
use std::fmt;

/// A topology that cannot be built.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// A grid dimension was zero.
    ZeroDims {
        /// Requested number of columns.
        width: usize,
        /// Requested number of rows.
        height: usize,
    },
    /// A mesh narrower than 2×2: single-row or single-column "meshes"
    /// degenerate to chains and break XY-routing invariants.
    DegenerateMesh {
        /// Requested number of columns.
        width: usize,
        /// Requested number of rows.
        height: usize,
    },
    /// A ring-mesh tile side below 2, which would give a ring of fewer than
    /// three stations (a ring needs at least 3 nodes to be a ring).
    RingTooSmall {
        /// Requested tile side.
        tile: usize,
    },
    /// Ring-mesh grid dimensions not divisible by the tile side.
    TileMisaligned {
        /// Grid columns.
        width: usize,
        /// Grid rows.
        height: usize,
        /// Requested tile side.
        tile: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::ZeroDims { width, height } => {
                write!(f, "grid dimensions must be non-zero (got {width}x{height})")
            }
            Self::DegenerateMesh { width, height } => write!(
                f,
                "mesh must be at least 2x2 (got {width}x{height}); \
                 1-wide grids degenerate to chains"
            ),
            Self::RingTooSmall { tile } => write!(
                f,
                "ring-mesh tile side must be at least 2 (got {tile}); \
                 a ring needs at least 3 stations"
            ),
            Self::TileMisaligned { width, height, tile } => write!(
                f,
                "ring-mesh grid {width}x{height} is not divisible into {tile}x{tile} tiles"
            ),
        }
    }
}

impl Error for TopologyError {}
