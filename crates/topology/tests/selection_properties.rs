//! Property-based tests for graph algorithms and shortcut selection.

use proptest::prelude::*;
use rfnoc_topology::routing::RoutingTables;
use rfnoc_topology::select::{
    check_constraints, select_application_specific, select_exhaustive_greedy, select_max_cost,
    select_max_cost_rescan, SelectionConstraints,
};
use rfnoc_topology::{FabricSpec, GridDims, GridGraph, PairWeights, Shortcut};

fn objective(dims: GridDims, set: &[Shortcut], weights: &PairWeights) -> f64 {
    let g = GridGraph::with_shortcuts(dims, set);
    GridGraph::total_cost(&g.distances(), weights.as_slice())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For a single edge the exhaustive greedy picks the true optimum, so
    /// it can never lose to max-cost at budget 1. Over multiple steps both
    /// are greedy (and can each win — the paper found them "comparably
    /// well"), so we only require parity within a few percent.
    #[test]
    fn exhaustive_competitive_with_max_cost(side in 4usize..7, budget in 1usize..5) {
        let dims = GridDims::new(side, side);
        let g = GridGraph::mesh(dims);
        let n = dims.nodes();
        let w = PairWeights::uniform(n);
        let c = SelectionConstraints::allowing_all(n, budget);
        let ex = select_exhaustive_greedy(&g, &w, &c);
        let mc = select_max_cost(&g, &w, &c);
        prop_assert!(check_constraints(&g, &ex, &c).is_ok());
        prop_assert!(check_constraints(&g, &mc, &c).is_ok());
        let (obj_ex, obj_mc) = (objective(dims, &ex, &w), objective(dims, &mc, &w));
        if budget == 1 {
            prop_assert!(obj_ex <= obj_mc + 1e-6, "budget 1: {obj_ex} vs {obj_mc}");
        } else {
            prop_assert!(
                obj_ex <= obj_mc * 1.05,
                "comparably well violated: exhaustive {obj_ex} vs max-cost {obj_mc}"
            );
        }
    }

    /// Every heuristic only ever improves (or preserves) the objective as
    /// its budget grows.
    #[test]
    fn objective_monotone_in_budget(budget in 1usize..8) {
        let dims = GridDims::new(6, 6);
        let g = GridGraph::mesh(dims);
        let w = PairWeights::uniform(36);
        let smaller = select_max_cost(
            &g, &w, &SelectionConstraints::allowing_all(36, budget));
        let larger = select_max_cost(
            &g, &w, &SelectionConstraints::allowing_all(36, budget + 1));
        prop_assert!(
            objective(dims, &larger, &w) <= objective(dims, &smaller, &w) + 1e-6
        );
    }

    /// Application-specific selection respects constraints for arbitrary
    /// sparse traffic profiles.
    #[test]
    fn app_specific_respects_constraints(
        pairs in proptest::collection::vec((0usize..64, 0usize..64, 1.0f64..100.0), 1..30),
        budget in 1usize..10,
    ) {
        let dims = GridDims::new(8, 8);
        let g = GridGraph::mesh(dims);
        let mut w = PairWeights::zero(64);
        for (a, b, f) in pairs {
            if a != b {
                w.add(a, b, f);
            }
        }
        let c = SelectionConstraints::allowing_all(64, budget).excluding_corners(&g);
        let picked = select_application_specific(&g, &w, &c);
        prop_assert!(check_constraints(&g, &picked, &c).is_ok());
    }

    /// Routing tables over any legal shortcut set deliver every pair in
    /// exactly the shortest-path hop count, and routes never revisit a
    /// node.
    #[test]
    fn routes_are_simple_paths(
        edges in proptest::collection::vec((0usize..25, 0usize..25), 0..4),
    ) {
        let dims = GridDims::new(5, 5);
        let mut g = GridGraph::mesh(dims);
        let mut used_out = [false; 25];
        let mut used_in = [false; 25];
        for (a, b) in edges {
            if a != b && !used_out[a] && !used_in[b] {
                g.add_shortcut(Shortcut::new(a, b));
                used_out[a] = true;
                used_in[b] = true;
            }
        }
        let tables = RoutingTables::shortest_path(&g);
        let dist = g.distances();
        for src in 0..25 {
            for dst in 0..25 {
                let route = tables.route(src, dst);
                prop_assert_eq!(route.len() as u32 - 1, dist.get(src, dst));
                let mut seen = std::collections::HashSet::new();
                for &node in &route {
                    prop_assert!(seen.insert(node), "route revisits node {}", node);
                }
            }
        }
    }

    /// The incremental max-cost selector (dirty-row frontier rescans) is
    /// an optimisation of the full-rescan reference, never a different
    /// algorithm: on any fabric — mesh or ring-mesh — and any sparse
    /// traffic profile, both pick the *identical* shortcut sequence.
    #[test]
    fn incremental_selection_matches_rescan(
        side in 4usize..9,
        ring in 0usize..2,
        budget in 1usize..6,
        pairs in proptest::collection::vec((0usize..64, 0usize..64, 0.5f64..50.0), 0..25),
    ) {
        let dims = GridDims::new(side, side);
        let fabric = if ring == 1 && side % 4 == 0 {
            FabricSpec::ring_mesh(dims, 4)
        } else {
            FabricSpec::mesh(dims)
        };
        let n = dims.nodes();
        let g = GridGraph::from_fabric(&fabric, &[]);
        let mut w = PairWeights::zero(n);
        for (a, b, f) in pairs {
            if a != b && a < n && b < n {
                w.add(a, b, f);
            }
        }
        let c = SelectionConstraints::allowing_all(n, budget);
        let incremental = select_max_cost(&g, &w, &c);
        let rescan = select_max_cost_rescan(&g, &w, &c);
        prop_assert_eq!(
            incremental, rescan,
            "selector divergence on {} side {}", fabric.name(), side
        );
    }

    /// `improvement_if_added` is exact for arbitrary weighted graphs.
    #[test]
    fn improvement_prediction_is_exact(
        i in 0usize..36,
        j in 0usize..36,
        pairs in proptest::collection::vec((0usize..36, 0usize..36, 0.5f64..10.0), 0..15),
    ) {
        prop_assume!(i != j);
        let dims = GridDims::new(6, 6);
        let g = GridGraph::mesh(dims);
        let mut w = PairWeights::zero(36);
        for (a, b, f) in pairs {
            if a != b {
                w.add(a, b, f);
            }
        }
        let d = g.distances();
        let predicted = d.improvement_if_added(i, j, w.as_slice());
        let before = GridGraph::total_cost(&d, w.as_slice());
        let mut g2 = g.clone();
        g2.add_shortcut(Shortcut::new(i, j));
        let after = GridGraph::total_cost(&g2.distances(), w.as_slice());
        prop_assert!((before - after - predicted).abs() < 1e-6);
    }
}
