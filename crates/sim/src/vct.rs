//! Virtual Circuit Tree (VCT) multicast support (paper §3.3/§5.2, after
//! Jerger, Peh and Lipasti, ISCA 2008).
//!
//! VCT builds a routing tree per (source, destination-set) pair; the first
//! multicast on a new tree pays a setup cost to install tree entries in the
//! routers, and subsequent multicasts on the same pair reuse them. Trees
//! are the union of XY paths from the source to each destination; flits are
//! replicated inside routers at branch points, so common path segments
//! carry each flit only once (the dynamic-power saving the VCT paper
//! reports).
//!
//! This module provides the tree *table* (hit/miss + capacity management);
//! in-router replication itself lives in the network engine.

use crate::packet::DestSet;
use rfnoc_topology::NodeId;
use std::collections::HashMap;

/// Configuration of the VCT table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VctConfig {
    /// Total virtual-circuit-tree entries available (network-wide model of
    /// the per-router tables).
    pub table_capacity: usize,
    /// Extra cycles charged at the source when a multicast misses in the
    /// table and must set its tree up hop by hop.
    pub setup_latency: u64,
}

impl Default for VctConfig {
    fn default() -> Self {
        Self { table_capacity: 512, setup_latency: 30 }
    }
}

/// The virtual circuit tree table with LRU replacement.
#[derive(Debug, Clone)]
pub struct VctTable {
    config: VctConfig,
    /// (source, destination set) → last-used stamp.
    entries: HashMap<(NodeId, u128), u64>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl VctTable {
    /// Creates an empty table.
    pub fn new(config: VctConfig) -> Self {
        Self {
            config,
            entries: HashMap::with_capacity(config.table_capacity),
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up (and touches) the tree for `(src, dests)`. Returns the setup
    /// latency to charge: 0 on a hit, `setup_latency` on a miss (the tree is
    /// installed, evicting the least-recently-used entry if full).
    pub fn access(&mut self, src: NodeId, dests: DestSet) -> u64 {
        self.stamp += 1;
        let key = (src, dests.bits());
        if let Some(used) = self.entries.get_mut(&key) {
            *used = self.stamp;
            self.hits += 1;
            return 0;
        }
        self.misses += 1;
        if self.entries.len() >= self.config.table_capacity {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, &used)| used) {
                self.entries.remove(&victim);
            }
        }
        self.entries.insert(key, self.stamp);
        self.config.setup_latency
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dests(nodes: &[NodeId]) -> DestSet {
        DestSet::from_nodes(nodes.iter().copied())
    }

    #[test]
    fn first_access_misses_then_hits() {
        let mut t = VctTable::new(VctConfig { table_capacity: 4, setup_latency: 30 });
        assert_eq!(t.access(1, dests(&[5, 9])), 30);
        assert_eq!(t.access(1, dests(&[5, 9])), 0);
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn distinct_dest_sets_are_distinct_trees() {
        let mut t = VctTable::new(VctConfig::default());
        assert_eq!(t.access(1, dests(&[5])), 30);
        assert_eq!(t.access(1, dests(&[6])), 30);
        assert_eq!(t.access(2, dests(&[5])), 30);
    }

    #[test]
    fn lru_eviction() {
        let mut t = VctTable::new(VctConfig { table_capacity: 2, setup_latency: 10 });
        t.access(1, dests(&[5]));
        t.access(2, dests(&[5]));
        t.access(1, dests(&[5])); // touch 1 → LRU is 2
        t.access(3, dests(&[5])); // evicts 2
        assert_eq!(t.access(1, dests(&[5])), 0, "1 still resident");
        assert_eq!(t.access(2, dests(&[5])), 10, "2 was evicted");
    }
}
