//! Simulation statistics and run reports.

use crate::fault::{HealthReport, RecoveryRecord};
use crate::network::ledger::LedgerReport;
use crate::network::telemetry::TelemetryReport;
use rfnoc_power::ActivityCounters;

/// Statistics gathered over one simulation run.
///
/// Latencies are measured from message creation (injection request) to the
/// ejection of the last flit at the destination — including source queuing,
/// serialization, and contention — for packets created inside the
/// measurement window. Multicast messages count once, completing when every
/// destination has received the full message.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Messages created during the measurement window.
    pub injected_messages: u64,
    /// Measured messages fully delivered before the drain limit.
    pub completed_messages: u64,
    /// Sum of per-message latencies (cycles) over completed messages.
    pub message_latency_sum: u64,
    /// Individual per-message latencies (cycles) of completed measured
    /// messages — used for percentile/tail analysis. Recorded in completion
    /// order during the run; [`RunStats::finalize`] (called by
    /// `Network::run` before returning) sorts them ascending so percentile
    /// queries are O(1) lookups.
    pub message_latencies: Vec<u32>,
    /// Ejected flit count over measured packets.
    pub ejected_flits: u64,
    /// Sum of per-packet hop counts (routers traversed minus one) over
    /// completed measured packets — for validating route lengths.
    pub hops_sum: u64,
    /// Completed measured packets contributing to [`RunStats::hops_sum`].
    pub hop_packets: u64,
    /// Sum of per-flit latencies (cycles): ejection time minus the creation
    /// time of the flit's (root) message.
    pub flit_latency_sum: u64,
    /// Histogram of injected messages by source→destination base-route
    /// distance (index = hops; multicasts use the mean distance over their
    /// destination set, rounded).
    pub distance_histogram: Vec<u64>,
    /// Activity counters for the power model, covering all post-warmup
    /// cycles.
    pub activity: ActivityCounters,
    /// Flit grants per output port (`router * ports_per_router + port`;
    /// ports are the fabric base slots, then Local, then RF — for the
    /// mesh that is N,S,E,W,Local,RF with a stride of 6), for utilization
    /// analysis. The stride is `port_flits.len() / routers`; see
    /// [`RunStats::ports_per_router`].
    pub port_flits: Vec<u64>,
    /// Per-(src,dst) message counts (`src * routers + dst`), populated only
    /// when [`crate::SimConfig::collect_pair_counts`] is set — the paper's
    /// §3.2.2 hardware event counters. Multicasts count once per
    /// destination.
    pub pair_counts: Vec<u32>,
    /// True when measured packets were still in flight at the drain limit —
    /// the network is saturated at this load and latency figures are lower
    /// bounds.
    pub saturated: bool,
    /// Cycle at which the run ended.
    pub end_cycle: u64,
    /// RF shortcut (transmitter) failures applied during the run.
    pub shortcut_faults: u64,
    /// Mesh link failures applied during the run.
    pub mesh_link_faults: u64,
    /// Repair events (shortcut or mesh link) applied during the run.
    pub repairs: u64,
    /// Flits delayed by transient link glitches (dropped at the receiver
    /// and retransmitted from the upstream buffer).
    pub retransmitted_flits: u64,
    /// Set when the forward-progress watchdog stopped the run early with a
    /// deadlock/livelock/partition diagnosis.
    pub health: Option<HealthReport>,
    /// Completed measured messages per source router — with
    /// [`RunStats::per_dest`], the placement-debugging view the heatmap
    /// bins use. Multicasts count once, at their source.
    pub per_source: Vec<u32>,
    /// Measured full-message/packet deliveries per destination router.
    /// Multicasts count once per destination reached.
    pub per_dest: Vec<u32>,
    /// The telemetry report, when [`crate::SimConfig::telemetry`] was set
    /// (boxed: the time series can be large and most runs don't carry
    /// one). Excluded from the golden determinism hashes — the aggregate
    /// fields above must be bit-identical with telemetry on or off.
    pub telemetry: Option<Box<TelemetryReport>>,
    /// Per-fault recovery timings, when [`crate::SimConfig::recovery`]
    /// was set (empty otherwise), in fault-application order. Like
    /// `telemetry`, a pure observation: excluded from the golden
    /// determinism hashes, and the aggregate fields above must be
    /// bit-identical with recovery tracking on or off.
    pub recovery: Vec<RecoveryRecord>,
    /// The run-ledger stream, when [`crate::SimConfig::ledger`] was set
    /// (boxed: the record stream can be large and most runs don't carry
    /// one). Like `telemetry`, a pure observation: excluded from the
    /// golden determinism hashes, and the aggregate fields above must be
    /// bit-identical with the ledger on or off.
    pub ledger: Option<Box<LedgerReport>>,
}

impl RunStats {
    /// Creates empty statistics for a network of `routers` routers and
    /// maximum base-route distance `max_distance`, with the mesh's six
    /// port slots per router. Degree-generic fabrics use
    /// [`RunStats::with_ports`].
    pub fn new(routers: usize, max_distance: usize) -> Self {
        Self::with_ports(routers, max_distance, 6)
    }

    /// Creates empty statistics with an explicit per-router port stride
    /// (the widest router's port count).
    pub fn with_ports(routers: usize, max_distance: usize, ports: usize) -> Self {
        Self {
            injected_messages: 0,
            completed_messages: 0,
            message_latency_sum: 0,
            message_latencies: Vec::new(),
            ejected_flits: 0,
            hops_sum: 0,
            hop_packets: 0,
            flit_latency_sum: 0,
            distance_histogram: vec![0; max_distance + 1],
            activity: ActivityCounters::new(routers),
            port_flits: vec![0; routers * ports],
            pair_counts: Vec::new(),
            saturated: false,
            end_cycle: 0,
            shortcut_faults: 0,
            mesh_link_faults: 0,
            repairs: 0,
            retransmitted_flits: 0,
            health: None,
            per_source: vec![0; routers],
            per_dest: vec![0; routers],
            telemetry: None,
            recovery: Vec::new(),
            ledger: None,
        }
    }

    /// Whether the run ended healthy (the watchdog did not fire).
    pub fn is_healthy(&self) -> bool {
        self.health.is_none()
    }

    /// Mean latency per message in cycles.
    ///
    /// Returns 0.0 when no message completed.
    pub fn avg_message_latency(&self) -> f64 {
        if self.completed_messages == 0 {
            0.0
        } else {
            self.message_latency_sum as f64 / self.completed_messages as f64
        }
    }

    /// Mean latency per flit in cycles (the paper's "average network
    /// latency/flit").
    ///
    /// Returns 0.0 when no flit was ejected.
    pub fn avg_flit_latency(&self) -> f64 {
        if self.ejected_flits == 0 {
            0.0
        } else {
            self.flit_latency_sum as f64 / self.ejected_flits as f64
        }
    }

    /// Utilization of one output port over the counted window: flit
    /// grants divided by slot capacity (`capacity` flits/cycle).
    ///
    /// Returns 0.0 before any cycles are counted.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn port_utilization(&self, router: usize, port: usize, capacity: u32) -> f64 {
        let stride = self.ports_per_router();
        assert!(port < stride, "port index out of range");
        let flits = self.port_flits[router * stride + port];
        if self.activity.cycles == 0 {
            0.0
        } else {
            flits as f64 / (self.activity.cycles as f64 * capacity as f64)
        }
    }

    /// The flat per-router stride of [`RunStats::port_flits`] (6 for the
    /// mesh, 8 for the ring-mesh).
    pub fn ports_per_router(&self) -> usize {
        let routers = self.activity.router_bytes.len();
        self.port_flits.len().checked_div(routers).unwrap_or(6)
    }

    /// The most heavily utilized output port: `(router, port, utilization)`
    /// assuming unit capacity. Returns `None` when nothing moved.
    pub fn hottest_port(&self) -> Option<(usize, usize, f64)> {
        let (idx, &flits) =
            self.port_flits.iter().enumerate().max_by_key(|(_, &f)| f)?;
        if flits == 0 || self.activity.cycles == 0 {
            return None;
        }
        let stride = self.ports_per_router();
        Some((idx / stride, idx % stride, flits as f64 / self.activity.cycles as f64))
    }

    /// Sorts the per-message latencies ascending so percentile queries
    /// index directly instead of cloning and re-sorting per call.
    /// `Network::run` calls this before returning its statistics; call it
    /// yourself only on hand-assembled stats.
    pub fn finalize(&mut self) {
        self.message_latencies.sort_unstable();
    }

    /// The `p`-th percentile (0–100) of per-message latency, or 0.0 when
    /// nothing completed.
    ///
    /// Fast path: when the latencies are already sorted (the normal case —
    /// [`RunStats::finalize`] ran), this is a direct index. Unsorted
    /// hand-assembled stats fall back to a clone-and-sort.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside 0–100.
    pub fn latency_percentile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range");
        if self.message_latencies.is_empty() {
            return 0.0;
        }
        let rank = (p / 100.0 * (self.message_latencies.len() - 1) as f64).round() as usize;
        let rank = rank.min(self.message_latencies.len() - 1);
        if self.message_latencies.windows(2).all(|w| w[0] <= w[1]) {
            self.message_latencies[rank] as f64
        } else {
            let mut sorted = self.message_latencies.clone();
            sorted.sort_unstable();
            sorted[rank] as f64
        }
    }

    /// Median (p50) per-message latency in cycles.
    pub fn p50_latency(&self) -> f64 {
        self.latency_percentile(50.0)
    }

    /// 95th-percentile per-message latency in cycles.
    pub fn p95_latency(&self) -> f64 {
        self.latency_percentile(95.0)
    }

    /// 99th-percentile per-message latency in cycles.
    pub fn p99_latency(&self) -> f64 {
        self.latency_percentile(99.0)
    }

    /// The tail summary `(p50, p95, p99)` used by the benchmark harness's
    /// JSON artifacts; one sortedness check instead of three.
    pub fn latency_tail(&self) -> (f64, f64, f64) {
        if self.message_latencies.windows(2).all(|w| w[0] <= w[1]) {
            (self.p50_latency(), self.p95_latency(), self.p99_latency())
        } else {
            let mut sorted = self.clone();
            sorted.finalize();
            (sorted.p50_latency(), sorted.p95_latency(), sorted.p99_latency())
        }
    }

    /// Mean network hops per completed packet (0.0 when none completed).
    pub fn avg_hops(&self) -> f64 {
        if self.hop_packets == 0 {
            0.0
        } else {
            self.hops_sum as f64 / self.hop_packets as f64
        }
    }

    /// Converts collected pair counts into selection weights
    /// (`F(x,y)` of §3.2.2).
    ///
    /// # Panics
    ///
    /// Panics if pair counts were not collected.
    pub fn pair_weights(&self) -> rfnoc_topology::PairWeights {
        assert!(
            !self.pair_counts.is_empty(),
            "run with SimConfig::collect_pair_counts to gather event counters"
        );
        let n = self.activity.router_bytes.len();
        rfnoc_topology::PairWeights::from_messages(
            n,
            self.pair_counts.iter().enumerate().filter(|(_, &c)| c > 0).map(
                |(idx, &c)| (idx / n, idx % n, c as f64),
            ),
        )
    }

    /// Fraction of measured messages that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.injected_messages == 0 {
            1.0
        } else {
            self.completed_messages as f64 / self.injected_messages as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_handle_empty_runs() {
        let s = RunStats::new(4, 18);
        assert_eq!(s.avg_message_latency(), 0.0);
        assert_eq!(s.avg_flit_latency(), 0.0);
        assert_eq!(s.completion_rate(), 1.0);
    }

    #[test]
    fn percentiles_index_sorted_and_handle_unsorted() {
        let mut s = RunStats::new(4, 18);
        s.message_latencies = vec![30, 10, 20, 50, 40];
        // Unsorted fallback gives the same answers as the finalized path.
        let unsorted = (s.latency_percentile(0.0), s.p50_latency(), s.latency_percentile(100.0));
        s.finalize();
        assert_eq!(s.message_latencies, vec![10, 20, 30, 40, 50]);
        let sorted = (s.latency_percentile(0.0), s.p50_latency(), s.latency_percentile(100.0));
        assert_eq!(unsorted, sorted);
        assert_eq!(sorted, (10.0, 30.0, 50.0));
        assert_eq!(s.latency_tail(), (30.0, 50.0, 50.0));
    }

    #[test]
    fn percentiles_empty_are_zero() {
        let s = RunStats::new(4, 18);
        assert_eq!(s.p50_latency(), 0.0);
        assert_eq!(s.p95_latency(), 0.0);
        assert_eq!(s.p99_latency(), 0.0);
        assert_eq!(s.latency_tail(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn averages_compute() {
        let mut s = RunStats::new(4, 18);
        s.injected_messages = 10;
        s.completed_messages = 8;
        s.message_latency_sum = 160;
        s.ejected_flits = 24;
        s.flit_latency_sum = 480;
        assert_eq!(s.avg_message_latency(), 20.0);
        assert_eq!(s.avg_flit_latency(), 20.0);
        assert_eq!(s.completion_rate(), 0.8);
    }
}
