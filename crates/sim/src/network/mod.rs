//! The network: routers, links, RF-I overlay, and the cycle-level engine.

use crate::config::SimConfig;
use crate::error::{check_shortcut_set, ReconfigError, SimError};
use crate::fault::{FaultEvent, FaultPlan, HealthReport};
use crate::flit::Flit;
use crate::packet::{DestSet, Destination, MessageSpec};
use crate::rfmc::{plan_delivery, DeliveryPlan, McConfig, McTransmission};
use crate::router::{
    InjectStream, Injector, InputPort, McBranch, OutputPort, PendingInjection, Router,
    MAX_ROUTER_PORTS, PORT_E, PORT_N, PORT_S, PORT_W,
};
use crate::stats::RunStats;
use crate::vct::{VctConfig, VctTable};
use rfnoc_topology::routing::RoutingTables;
use rfnoc_topology::{FabricSpec, GridDims, GridGraph, NodeId, Shortcut};
use std::collections::VecDeque;

/// How unicast packets are routed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingKind {
    /// XY dimension-order routing (the paper's baseline mesh).
    Xy,
    /// Table-driven shortest-path routing over mesh + shortcuts (the paper
    /// switches to this whenever RF-I shortcuts are present, §3.2).
    ShortestPath,
}

/// How multicast messages are carried.
#[derive(Debug, Clone, PartialEq)]
pub enum MulticastMode {
    /// Expand each multicast into per-destination unicasts (the paper's
    /// baseline and "Adaptive Shortcuts" multicast reference).
    AsUnicasts,
    /// Virtual Circuit Tree multicast in the conventional mesh (§5.2
    /// baseline, after Jerger et al.).
    Vct(VctConfig),
    /// RF-I broadcast channel with a DBV flit and power-gated receivers
    /// (§3.3).
    Rf,
}

/// Full specification of a network to simulate.
#[derive(Debug, Clone)]
pub struct NetworkSpec {
    /// The base fabric the RF-I overlay rides on (mesh or ring-mesh).
    pub fabric: FabricSpec,
    /// Microarchitectural configuration.
    pub config: SimConfig,
    /// RF-I shortcut set (empty for the baseline).
    pub shortcuts: Vec<Shortcut>,
    /// Unicast routing algorithm.
    pub routing: RoutingKind,
    /// Multicast handling.
    pub multicast: MulticastMode,
    /// RF multicast channel configuration (required for
    /// [`MulticastMode::Rf`]).
    pub mc: Option<McConfig>,
    /// When set, shortcuts are realised in conventional buffered RC wire
    /// instead of RF-I: each costs `ceil(cycles_per_hop × manhattan)` link
    /// cycles and its traffic is charged as repeated-wire (not RF) energy.
    /// The paper's Figure 10a "Mesh Wire Shortcuts" uses ≈0.8 cycles per
    /// 2 mm hop at the 2 GHz network clock (repeated RC wire crosses a
    /// 400 mm² die in ≈4 ns vs 0.3 ns for RF-I, §2).
    pub wire_shortcut_cycles_per_hop: Option<f64>,
    /// Deterministic fault schedule applied during the run (empty for a
    /// fault-free simulation).
    pub faults: FaultPlan,
}

impl NetworkSpec {
    /// A baseline mesh with XY routing and no RF-I.
    pub fn mesh_baseline(dims: GridDims, config: SimConfig) -> Self {
        Self {
            fabric: FabricSpec::mesh(dims),
            config,
            shortcuts: Vec::new(),
            routing: RoutingKind::Xy,
            multicast: MulticastMode::AsUnicasts,
            mc: None,
            wire_shortcut_cycles_per_hop: None,
            faults: FaultPlan::default(),
        }
    }

    /// A mesh overlaid with the given RF-I shortcuts, using shortest-path
    /// routing.
    pub fn with_shortcuts(dims: GridDims, config: SimConfig, shortcuts: Vec<Shortcut>) -> Self {
        Self {
            fabric: FabricSpec::mesh(dims),
            config,
            shortcuts,
            routing: RoutingKind::ShortestPath,
            multicast: MulticastMode::AsUnicasts,
            mc: None,
            wire_shortcut_cycles_per_hop: None,
            faults: FaultPlan::default(),
        }
    }

    /// An arbitrary fabric, optionally overlaid with RF-I shortcuts.
    ///
    /// Base (escape) routing follows the fabric's deadlock-free base
    /// routes; with a non-empty shortcut set, unicasts use table-driven
    /// shortest-path routing over the fabric + shortcuts.
    pub fn with_fabric(fabric: FabricSpec, config: SimConfig, shortcuts: Vec<Shortcut>) -> Self {
        let routing = if shortcuts.is_empty() {
            RoutingKind::Xy
        } else {
            RoutingKind::ShortestPath
        };
        Self {
            fabric,
            config,
            shortcuts,
            routing,
            multicast: MulticastMode::AsUnicasts,
            mc: None,
            wire_shortcut_cycles_per_hop: None,
            faults: FaultPlan::default(),
        }
    }

    /// Grid dimensions of the fabric.
    pub fn dims(&self) -> GridDims {
        self.fabric.dims()
    }

    /// Returns this specification with a fault schedule attached.
    #[must_use]
    pub fn with_fault_plan(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// A source of injected messages, driven cycle by cycle.
pub trait Workload {
    /// Appends the messages created at `cycle` to `out`.
    fn messages_at(&mut self, cycle: u64, out: &mut Vec<MessageSpec>);
}

/// A fixed, pre-scripted message schedule (useful for tests).
#[derive(Debug, Clone, Default)]
pub struct ScriptedWorkload {
    events: Vec<(u64, MessageSpec)>,
    pos: usize,
}

impl ScriptedWorkload {
    /// Creates a workload from `(cycle, message)` events; they are sorted
    /// by cycle internally.
    pub fn new(mut events: Vec<(u64, MessageSpec)>) -> Self {
        events.sort_by_key(|(c, _)| *c);
        Self { events, pos: 0 }
    }
}

impl Workload for ScriptedWorkload {
    fn messages_at(&mut self, cycle: u64, out: &mut Vec<MessageSpec>) {
        while self.pos < self.events.len() && self.events[self.pos].0 <= cycle {
            out.push(self.events[self.pos].1);
            self.pos += 1;
        }
    }
}

/// Destination bookkeeping of an in-flight packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PacketDest {
    Unicast(NodeId),
    Tree(DestSet),
}

/// An in-flight packet. The three fields that mutate after creation
/// (`mesh_only`, `ejected`, `head_grants`) are relaxed atomics so parallel
/// sweep shards can share the packet table read-only: each field has
/// exactly one logical writer per cycle (a packet's head flit sits in one
/// router; its flits all eject at its single destination — tree-multicast
/// packets, which fork, run on the serial path only), so the atomics exist
/// to make the concurrent *reads* from other shards well-defined, and the
/// pool's cycle-boundary barriers order writes against later cycles.
#[derive(Debug)]
struct PacketInfo {
    dest: PacketDest,
    /// Router where this packet entered the network.
    src: u32,
    flits: u32,
    /// Payload bytes (the last flit may be partially filled).
    bytes: u32,
    created: u64,
    measured: bool,
    parent: Option<u32>,
    /// Deliver to the RF multicast engine on arrival (cache → central bank
    /// carry message).
    mc_carry: bool,
    /// Set when the packet detoured around a congested shortcut; it then
    /// follows XY for the rest of its route (monotone progress, so the
    /// contention-avoidance detour cannot livelock).
    mesh_only: std::sync::atomic::AtomicBool,
    ejected: std::sync::atomic::AtomicU32,
    /// Routers the head flit has been granted through (hops + 1 at
    /// completion).
    head_grants: std::sync::atomic::AtomicU32,
}

impl PacketInfo {
    #[allow(clippy::too_many_arguments, clippy::fn_params_excessive_bools)]
    fn new(
        dest: PacketDest,
        src: u32,
        flits: u32,
        bytes: u32,
        created: u64,
        measured: bool,
        parent: Option<u32>,
        mc_carry: bool,
    ) -> Self {
        Self {
            dest,
            src,
            flits,
            bytes,
            created,
            measured,
            parent,
            mc_carry,
            mesh_only: std::sync::atomic::AtomicBool::new(false),
            ejected: std::sync::atomic::AtomicU32::new(0),
            head_grants: std::sync::atomic::AtomicU32::new(0),
        }
    }
}

#[derive(Debug, Clone)]
struct ParentInfo {
    /// Source router of the multicast message.
    src: u32,
    created: u64,
    measured: bool,
    remaining: u32,
    dests: DestSet,
    bytes: u32,
}

/// Progress of an in-flight RF-I reconfiguration (paper §3.2 steps 1–3).
#[derive(Debug, Clone, PartialEq)]
enum ReconfigState {
    /// No reconfiguration pending.
    Idle,
    /// New shortcut set selected; waiting for all RF-I channels to drain
    /// (transmitters stop accepting new packets onto the RF ports).
    Draining(Vec<Shortcut>),
    /// Transmitters/receivers retuned and routing tables being rewritten;
    /// injection stalls until the given cycle (99 cycles for 100 routers
    /// with one write port each).
    Updating(u64),
}

/// The simulated network.
#[derive(Debug)]
pub struct Network {
    dims: GridDims,
    /// The base fabric (mesh or ring-mesh) the routers are wired from.
    fabric: FabricSpec,
    /// Per-router base-slot counts (`fabric.base_slot_count`), cached so the
    /// hot loops never re-derive them. The local port of router `r` is slot
    /// `base_ports[r]`, its RF port slot `base_ports[r] + 1`.
    base_ports: Vec<u8>,
    /// Widest router's port count (`fabric.max_base_slots() + 2`): the flat
    /// stride of every per-(router, port) statistics vector.
    max_ports: usize,
    /// Precomputed base-route out-port per `router * n + dest`, present for
    /// non-mesh fabrics (the mesh derives its base route with the literal
    /// XY computation instead of a table).
    base_table: Option<Vec<u8>>,
    config: SimConfig,
    routing: RoutingKind,
    /// Shortest-path out-port table (`router * n + dest`), present in
    /// [`RoutingKind::ShortestPath`] mode.
    port_table: Option<Vec<u8>>,
    /// Shortest-path hop distances over mesh+shortcuts (same indexing),
    /// used to price contention-avoidance detours.
    sp_dist: Option<Vec<u32>>,
    /// True BFS distances (`u32::MAX` when unreachable) matching a
    /// detour-built `port_table`; `None` whenever `port_table` was built
    /// over the intact fabric. Drives incremental detour rebuilds on link
    /// fail/repair.
    detour_dist: Option<Vec<u32>>,
    reconfig: ReconfigState,
    reconfigurations: u64,
    /// Shortcut set currently installed on the RF ports (tracks retunes
    /// and fault teardowns).
    active_shortcuts: Vec<Shortcut>,
    /// Retune target deferred because a table rewrite was in flight when a
    /// fault struck; applied as a fresh drain once the rewrite completes.
    pending_target: Option<Vec<Shortcut>>,
    /// Per-router RF transmitter failure flags: a failed transmitter is
    /// skipped by every retune until repaired.
    failed_rf_tx: Vec<bool>,
    /// Directed base-link failure flags (`router * max_base_slots + slot`,
    /// base fabric slots only). `MeshLinkDown` fails both directions
    /// together.
    link_failed: Vec<bool>,
    /// Count of failed *undirected* mesh links (fast zero check).
    mesh_link_failures: usize,
    /// Detour routing table for escape traffic (`router * n + dest`),
    /// built over the surviving base links only; `None` while the base
    /// fabric is intact (escape traffic then follows the fabric's base
    /// route, exactly as the fault-free simulator did).
    escape_table: Option<Vec<u8>>,
    /// True BFS distances matching `escape_table` (same indexing,
    /// `u32::MAX` when unreachable), kept so link fail/repair events can
    /// re-run the detour BFS only for the destinations whose routes the
    /// changed edge actually carries.
    escape_dist: Option<Vec<u32>>,
    /// Fault schedule being applied.
    faults: FaultPlan,
    /// Last cycle any switch grant happened (or the network went busy) —
    /// the watchdog's forward-progress signal.
    last_progress: u64,
    /// Last cycle a measured message completed (or the network went busy).
    last_completion: u64,
    routers: Vec<Router>,
    packets: Vec<PacketInfo>,
    parents: Vec<ParentInfo>,
    multicast: MulticastMode,
    mc: Option<McConfig>,
    mc_queues: Vec<VecDeque<u32>>,
    mc_current: Option<(McTransmission, DeliveryPlan)>,
    vct_table: Option<VctTable>,
    stats: RunStats,
    cycle: u64,
    measured_outstanding: u64,
    counting: bool,
    // scratch / outboxes
    /// RF-multicast enqueues from the serial injection phase (a cluster
    /// transmitter sourcing its own multicast); sweep-time enqueues land in
    /// the shard buffers instead.
    mc_enqueues: Vec<(usize, u32)>,
    pending_inj: Vec<(usize, u32, u64)>,
    /// Sweep parallelism: `SimConfig::threads` clamped to the router count,
    /// forced to 1 under VCT multicast (tree forks allocate packets
    /// mid-sweep).
    sweep_threads: usize,
    /// One outbox per shard (see [`sweep::ShardBuf`]); the serial engine
    /// uses `shard_bufs[0]`.
    shard_bufs: Vec<sweep::ShardBuf>,
    /// Parked worker threads for the sharded sweep (`None` when
    /// `sweep_threads == 1`).
    pool: Option<rfnoc_parallel::WorkerPool>,
    flit_trace: Vec<telemetry::FlitEvent>,
    /// Flit-trace events dropped at the cap (see
    /// [`telemetry::FlitTraceConfig`]).
    flit_trace_dropped: u64,
    /// Telemetry accumulator, present when [`SimConfig::telemetry`] is
    /// set. Boxed so the disabled case costs one null-check per hook.
    telemetry: Option<Box<telemetry::TelemetryState>>,
    /// Per-fault recovery tracker, present when [`SimConfig::recovery`]
    /// is set. Boxed for the same reason as `telemetry`.
    recovery: Option<Box<faults::RecoveryState>>,
    /// Run-ledger accumulator, present when [`SimConfig::ledger`] is set.
    /// Boxed for the same reason as `telemetry`.
    ledger: Option<Box<ledger::LedgerState>>,
    // Active-router scheduling (see DESIGN.md, "Engine performance"):
    // `step_routers` visits only routers that can possibly make progress.
    /// Sweep counter: bumped once per `step_routers` call. A router is
    /// visited in sweep `e` iff its stamp equals `e` at that sweep.
    active_epoch: u64,
    /// Per-router sweep stamp; `mark_active` stamps the upcoming sweep.
    active_stamp: Vec<u64>,
}

mod build;
mod engine;
mod faults;
mod inject;
pub(crate) mod ledger;
mod mc_engine;
mod reconfig;
mod sweep;
pub(crate) mod telemetry;

pub use ledger::{LedgerConfig, LedgerRecord, LedgerReport};
pub use sweep::shard_ranges;

pub use telemetry::{
    latency_bucket, latency_bucket_bounds, ChannelMask, DelayBreakdown, FlitEvent,
    FlitEventKind, FlitTraceConfig, HopRecord, IntervalSample, PacketSpan,
    TelemetryConfig, TelemetryReport, TimelineEvent, TimelineEventKind,
    HOP_ROUTE_CYCLES, HOP_SWITCH_CYCLES, LATENCY_BUCKETS,
};

impl Network {

    /// Grid dimensions of the network.
    pub fn dims(&self) -> GridDims {
        self.dims
    }

    /// The base fabric the network was built from.
    pub fn fabric(&self) -> FabricSpec {
        self.fabric
    }

    /// Local (core-side) port slot of router `r`.
    #[inline]
    pub(crate) fn local_port(&self, r: usize) -> usize {
        self.base_ports[r] as usize
    }

    /// RF transmitter/receiver port slot of router `r`.
    #[inline]
    pub(crate) fn rf_port(&self, r: usize) -> usize {
        self.base_ports[r] as usize + 1
    }

    /// Base-slot stride of the `link_failed` flags (`max_ports - 2`).
    #[inline]
    pub(crate) fn max_base(&self) -> usize {
        self.max_ports - 2
    }

    /// The base-route out port from `r` toward `dest` (`r != dest`): the
    /// table for non-mesh fabrics, the literal XY computation for the mesh.
    #[inline]
    pub(crate) fn base_port_toward(&self, r: usize, dest: usize) -> u8 {
        match &self.base_table {
            Some(bt) => bt[r * self.dims.nodes() + dest],
            None => xy_port(self.dims, r, dest),
        }
    }

    /// The current simulation cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// The routing algorithm in use.
    pub fn routing(&self) -> RoutingKind {
        self.routing
    }

    /// Total packets waiting or streaming at the injection interfaces —
    /// a quick congestion/saturation diagnostic.
    pub fn injection_backlog(&self) -> usize {
        self.routers.iter().map(|r| r.injector.backlog()).sum()
    }

    /// The shortcut set currently installed on the RF ports (shrinks when
    /// shortcuts fail, changes on retune).
    pub fn active_shortcuts(&self) -> &[Shortcut] {
        &self.active_shortcuts
    }

    /// Failed undirected mesh links right now.
    pub fn mesh_link_failures(&self) -> usize {
        self.mesh_link_failures
    }

    /// The watchdog's health report, when the last `run` was flagged
    /// unhealthy.
    pub fn health(&self) -> Option<&HealthReport> {
        self.stats.health.as_ref()
    }

    /// Validates the engine's internal bookkeeping invariants; intended
    /// for tests that single-step the network. Panics on violation.
    ///
    /// Checked invariants:
    ///
    /// - `InputPort::occupied` lists exactly the VCs whose `cur_packet`
    ///   is claimed, without duplicates or out-of-range entries — the
    ///   active-set scheduler and both allocation stages scan this list
    ///   instead of every VC.
    /// - A released VC carries no leftover packet state (buffer,
    ///   allocation, multicast branches).
    /// - Ports that don't physically exist hold no work.
    /// - Active-set coverage: every non-quiescent router is stamped for
    ///   the next `step_routers` visit (no lost work).
    #[doc(hidden)]
    pub fn debug_validate(&self) {
        for (r, router) in self.routers.iter().enumerate() {
            for (pi, port) in router.inputs.iter().enumerate() {
                for (i, &vc) in port.occupied.iter().enumerate() {
                    assert!(
                        (vc as usize) < port.vcs.len(),
                        "router {r} port {pi}: occupied vc {vc} out of range"
                    );
                    assert!(
                        !port.occupied[i + 1..].contains(&vc),
                        "router {r} port {pi}: occupied vc {vc} listed twice"
                    );
                }
                for (vci, vc) in port.vcs.iter().enumerate() {
                    let listed = port.occupied.contains(&(vci as u16));
                    assert_eq!(
                        vc.cur_packet.is_some(),
                        listed,
                        "router {r} port {pi} vc {vci}: claimed {:?} vs occupied {listed}",
                        vc.cur_packet
                    );
                    if vc.cur_packet.is_none() {
                        assert!(
                            vc.buffer.is_empty(),
                            "router {r} port {pi} vc {vci}: flits buffered on a released VC"
                        );
                        assert!(
                            !vc.allocated && vc.mc_branches.is_empty() && !vc.mc_routed,
                            "router {r} port {pi} vc {vci}: stale allocation on a released VC"
                        );
                    }
                }
                if !port.exists {
                    assert!(
                        port.occupied.is_empty() && port.arrivals.is_empty(),
                        "router {r} port {pi}: work on a non-existent port"
                    );
                }
            }
            if !router.quiescent() {
                assert_eq!(
                    self.active_stamp[r], self.active_epoch,
                    "router {r} has pending work but is not in the active set"
                );
            }
        }
    }
}


/// Allocates a free output VC in `class` range at `out`, marking ownership.
fn alloc_out_vc(
    outputs: &mut [OutputPort],
    out: usize,
    class: std::ops::Range<usize>,
    packet: u32,
    depth: u32,
) -> Option<u16> {
    let op = &mut outputs[out];
    if !op.exists {
        return None;
    }
    for vc in class {
        if op.vc_free(vc, depth) {
            op.vcs[vc].owner = Some(packet);
            return Some(vc as u16);
        }
    }
    None
}

/// Base-route tree partition of a destination set at router `r`: the
/// non-empty (output port, destination subset) groups, packed into the
/// first `len` slots of a fixed array — at most one group per output port,
/// so no heap allocation on the VA hot path. `base_port` maps a non-local
/// destination to its base-route out slot; `local_port` is `r`'s local
/// slot. Groups are emitted in ascending port order.
fn partition_tree(
    r: NodeId,
    local_port: u8,
    base_port: impl Fn(NodeId) -> u8,
    set: &DestSet,
) -> ([(u8, DestSet); MAX_ROUTER_PORTS], usize) {
    let mut groups: [DestSet; MAX_ROUTER_PORTS] = Default::default();
    for dest in set.iter() {
        let p = if dest == r { local_port } else { base_port(dest) };
        groups[p as usize].insert(dest);
    }
    let mut out: [(u8, DestSet); MAX_ROUTER_PORTS] = Default::default();
    let mut len = 0;
    for (p, g) in groups.iter().enumerate() {
        if !g.is_empty() {
            out[len] = (p as u8, *g);
            len += 1;
        }
    }
    (out, len)
}

/// The mesh port at `from` that leads to adjacent router `to`.
///
/// # Panics
///
/// Panics (in debug builds) if the routers are not adjacent.
pub(crate) fn mesh_port(dims: GridDims, from: NodeId, to: NodeId) -> u8 {
    let f = dims.coord_of(from);
    let t = dims.coord_of(to);
    debug_assert_eq!(dims.manhattan(from, to), 1, "not adjacent");
    if t.y + 1 == f.y {
        PORT_N as u8
    } else if t.y == f.y + 1 {
        PORT_S as u8
    } else if t.x == f.x + 1 {
        PORT_E as u8
    } else {
        PORT_W as u8
    }
}

/// The XY (dimension-order) output port from `from` toward `to`.
pub(crate) fn xy_port(dims: GridDims, from: NodeId, to: NodeId) -> u8 {
    let next = rfnoc_topology::routing::xy_next_hop(dims, from, to);
    mesh_port(dims, from, next)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PORT_LOCAL_MESH: usize = 4;

    #[test]
    fn mesh_port_directions() {
        let dims = GridDims::new(4, 4);
        // node 5 = (1,1)
        assert_eq!(mesh_port(dims, 5, 1), PORT_N as u8);
        assert_eq!(mesh_port(dims, 5, 9), PORT_S as u8);
        assert_eq!(mesh_port(dims, 5, 6), PORT_E as u8);
        assert_eq!(mesh_port(dims, 5, 4), PORT_W as u8);
    }

    #[test]
    fn mesh_port_matches_fabric_slots() {
        let dims = GridDims::new(4, 4);
        let fabric = FabricSpec::mesh(dims);
        for r in 0..dims.nodes() {
            for slot in 0..4u8 {
                if let Some(nb) = fabric.port_neighbor(r, slot) {
                    assert_eq!(mesh_port(dims, r, nb), slot);
                    assert_eq!(fabric.port_between(r, nb), Some(slot));
                }
            }
        }
    }

    #[test]
    fn partition_tree_groups_by_xy_port() {
        let dims = GridDims::new(4, 4);
        // at node 5 = (1,1): dest 5 -> local; dest 7 (3,1) -> east;
        // dest 4 (0,1) -> west; dest 13 (1,3) -> south.
        let set = DestSet::from_nodes([5, 7, 4, 13]);
        let (groups, len) =
            partition_tree(5, PORT_LOCAL_MESH as u8, |d| xy_port(dims, 5, d), &set);
        assert_eq!(len, 4);
        let groups = &groups[..len];
        let port_of = |dest: usize| {
            groups
                .iter()
                .find(|(_, g)| g.contains(dest))
                .map(|(p, _)| *p as usize)
                .expect("dest grouped")
        };
        assert_eq!(port_of(5), PORT_LOCAL_MESH);
        assert_eq!(port_of(7), PORT_E);
        assert_eq!(port_of(4), PORT_W);
        assert_eq!(port_of(13), PORT_S);
    }

    #[test]
    fn partition_tree_xy_goes_x_first() {
        let dims = GridDims::new(4, 4);
        // dest 15 = (3,3) from node 0 = (0,0): XY routes east first.
        let (groups, len) = partition_tree(
            0,
            PORT_LOCAL_MESH as u8,
            |d| xy_port(dims, 0, d),
            &DestSet::from_nodes([15]),
        );
        assert_eq!(len, 1);
        assert_eq!(groups[0].0 as usize, PORT_E);
    }

    #[test]
    fn scripted_workload_sorts_events() {
        let mut w = ScriptedWorkload::new(vec![
            (5, MessageSpec::unicast(0, 1, crate::packet::MessageClass::Request)),
            (1, MessageSpec::unicast(1, 2, crate::packet::MessageClass::Request)),
        ]);
        let mut out = Vec::new();
        w.messages_at(1, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].src, 1);
        w.messages_at(10, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn network_accessors() {
        let dims = GridDims::new(4, 4);
        let mut cfg = SimConfig::paper_baseline();
        cfg.warmup_cycles = 0;
        let net = Network::new(NetworkSpec::mesh_baseline(dims, cfg));
        assert_eq!(net.dims(), dims);
        assert_eq!(net.cycle(), 0);
        assert_eq!(net.routing(), RoutingKind::Xy);
        assert_eq!(net.injection_backlog(), 0);
    }
}
