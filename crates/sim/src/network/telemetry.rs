//! Telemetry: interval-sampled counters, packet-lifecycle spans, the
//! fault/retune event timeline, and the flit-level debug trace.
//!
//! The aggregate [`crate::RunStats`] answer "how did the run end"; this
//! module answers "where and *when* did congestion form". When enabled via
//! [`crate::SimConfig::telemetry`] the network samples a time series of
//! [`IntervalSample`]s — per-link and per-RF-band flit grants, per-router
//! buffer occupancy (average and peak), injection/ejection rates, in-flight
//! counts, stall cycles by cause, and a latency histogram per interval —
//! plus one [`PacketSpan`] per packet (inject → first grant → eject) and a
//! [`TimelineEvent`] log of faults, retunes, and watchdog trips, so a
//! health report can be correlated with the interval where progress
//! stalled.
//!
//! # Overhead model
//!
//! Every hook is an increment on a preallocated accumulator, gated on one
//! `Option` check; the steady state allocates nothing. The only
//! allocations happen at *interval boundaries* (one `IntervalSample` per
//! `interval` cycles) and when the packet table itself grows (span slots
//! grow in step with `Network::packets`). With telemetry disabled the
//! engine takes a single never-taken branch per hook site, and the
//! golden-determinism suite proves the results are bit-identical.
//!
//! The opt-in [`ChannelMask::PROFILE`] channel (per-hop delay
//! attribution, see [`HopRecord`]) adds one amortized `Vec` push per
//! router traversal, bounded by [`TelemetryConfig::hop_limit`]; it is
//! excluded from [`ChannelMask::ALL`] so the standard telemetry overhead
//! envelope is unchanged.
//!
//! # Flit trace
//!
//! The older flit-level debug trace lives here too. It is configured by
//! [`FlitTraceConfig`] (the bare `flit_trace_limit` field is gone) and no
//! longer truncates silently: events past the cap are counted in
//! [`Network::flit_trace_dropped`].

#[allow(clippy::wildcard_imports)]
use super::*;

/// What happened to a flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitEventKind {
    /// Entered the network at the source's local port.
    Injected,
    /// Granted switch allocation at a router toward the given output port
    /// (0–3 mesh, 4 local/ejection, 5 RF).
    Granted {
        /// Output port index.
        out_port: u8,
    },
    /// Left the network at the destination's local port.
    Ejected,
}

/// One traced flit movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlitEvent {
    /// Cycle the event occurred.
    pub cycle: u64,
    /// Packet table index.
    pub packet: u32,
    /// Flit index within the packet (0 = head).
    pub flit: u32,
    /// Router where the event occurred.
    pub router: usize,
    /// Event kind.
    pub kind: FlitEventKind,
}

/// Configuration of the flit-level debug trace.
///
/// Replaces the old bare `flit_trace_limit` field: the cap is now
/// documented and truncation is visible. Tracing records one [`FlitEvent`]
/// per flit movement (injection, switch grant, ejection) up to `limit`
/// events; movements past the cap are *counted* in
/// [`Network::flit_trace_dropped`] instead of vanishing silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlitTraceConfig {
    /// Maximum events to record; 0 disables tracing entirely.
    pub limit: usize,
}

impl FlitTraceConfig {
    /// Tracing off (the default — tracing costs time and memory).
    pub const fn disabled() -> Self {
        Self { limit: 0 }
    }

    /// Tracing on, capped at `limit` events.
    pub const fn capped(limit: usize) -> Self {
        Self { limit }
    }

    /// Whether any tracing happens.
    pub const fn is_enabled(&self) -> bool {
        self.limit > 0
    }
}

impl Default for FlitTraceConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Bit mask selecting which telemetry channels are recorded.
///
/// Channels are independent: disabling one removes its hook cost and its
/// per-interval storage. [`ChannelMask::ALL`] is the default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelMask(pub u16);

impl ChannelMask {
    /// Per-output-port flit grants and RF band activity per interval.
    pub const LINKS: Self = Self(1 << 0);
    /// Per-router buffer occupancy (average and peak) per interval.
    pub const OCCUPANCY: Self = Self(1 << 1);
    /// Injection/ejection/completion rates and in-flight counts.
    pub const RATES: Self = Self(1 << 2);
    /// Stall cycles by cause (VC allocation, switch allocation, credits).
    pub const STALLS: Self = Self(1 << 3);
    /// Per-interval completion-latency histogram.
    pub const LATENCY: Self = Self(1 << 4);
    /// Packet-lifecycle spans (inject → first grant → eject).
    pub const SPANS: Self = Self(1 << 5);
    /// Fault/retune/reconfigure/watchdog timeline events.
    pub const EVENTS: Self = Self(1 << 6);
    /// Per-hop delay attribution: one [`HopRecord`] per (packet, router)
    /// traversal splitting the hop into route-compute, VA-wait, switch
    /// traversal, SA-wait, and credit-wait cycles. Opt-in — deliberately
    /// *not* part of [`ChannelMask::ALL`], so existing all-channel runs
    /// keep their PR-4 overhead envelope. Requires [`ChannelMask::SPANS`]
    /// (hop records ride on span slots); without it the channel records
    /// nothing. Enable both with [`TelemetryConfig::profiling`].
    pub const PROFILE: Self = Self(1 << 7);
    /// Every standard channel. Does not include the opt-in
    /// [`ChannelMask::PROFILE`] channel.
    pub const ALL: Self = Self(0x7f);
    /// No channels (telemetry enabled but recording nothing).
    pub const NONE: Self = Self(0);

    /// Whether every channel in `other` is enabled in `self`.
    pub const fn contains(self, other: Self) -> bool {
        self.0 & other.0 == other.0
    }

    /// The union of two masks.
    #[must_use]
    pub const fn with(self, other: Self) -> Self {
        Self(self.0 | other.0)
    }
}

impl Default for ChannelMask {
    fn default() -> Self {
        Self::ALL
    }
}

/// Configuration of the telemetry subsystem
/// ([`crate::SimConfig::telemetry`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Sampling interval in cycles; one [`IntervalSample`] is emitted per
    /// `interval` cycles (the last sample may be shorter). Must be
    /// non-zero — [`crate::SimConfig::validate`] rejects 0.
    pub interval: u64,
    /// Channels to record.
    pub channels: ChannelMask,
    /// Maximum packet spans to record; spans past the cap are counted in
    /// [`TelemetryReport::dropped_spans`].
    pub span_limit: usize,
    /// Maximum per-hop delay-attribution records to record
    /// ([`ChannelMask::PROFILE`] only); hops past the cap are counted in
    /// [`TelemetryReport::dropped_hops`].
    pub hop_limit: usize,
}

impl TelemetryConfig {
    /// All standard channels at the given sampling interval, with the
    /// default span cap (65 536 spans ≈ 1.8 MB). The per-hop
    /// [`ChannelMask::PROFILE`] channel stays off; see
    /// [`TelemetryConfig::profiling`].
    pub const fn every(interval: u64) -> Self {
        Self {
            interval,
            channels: ChannelMask::ALL,
            span_limit: 1 << 16,
            hop_limit: 1 << 19,
        }
    }

    /// All standard channels *plus* per-hop delay attribution
    /// ([`ChannelMask::PROFILE`]) at the given sampling interval, with the
    /// default span and hop caps (2^19 hops ≈ 20 MB worst case).
    pub const fn profiling(interval: u64) -> Self {
        Self {
            interval,
            channels: ChannelMask::ALL.with(ChannelMask::PROFILE),
            span_limit: 1 << 16,
            hop_limit: 1 << 19,
        }
    }
}

/// Number of buckets in the per-interval latency histogram.
pub const LATENCY_BUCKETS: usize = 8;

/// The bucket index for a completion latency: bucket `i` holds latencies
/// in `[16·2^(i-1), 16·2^i)` cycles (bucket 0 is `< 16`, the last bucket
/// is unbounded).
pub fn latency_bucket(latency: u64) -> usize {
    let mut bucket = 0;
    let mut edge = 16u64;
    while bucket + 1 < LATENCY_BUCKETS && latency >= edge {
        edge *= 2;
        bucket += 1;
    }
    bucket
}

/// The inclusive-exclusive cycle bounds of latency bucket `i`, for report
/// rendering. The last bucket's upper bound is `u64::MAX`.
pub fn latency_bucket_bounds(i: usize) -> (u64, u64) {
    assert!(i < LATENCY_BUCKETS, "bucket index out of range");
    let lo = if i == 0 { 0 } else { 16u64 << (i - 1) };
    let hi = if i + 1 == LATENCY_BUCKETS { u64::MAX } else { 16u64 << i };
    (lo, hi)
}

/// One sampling interval's worth of counters.
///
/// Vector fields are sized `routers * ports` (per output port, in fabric
/// slot order then Local then RF — `ports` is the network's widest
/// per-router port count, 6 on the mesh) or `routers`; they are empty
/// when their channel is disabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalSample {
    /// First cycle covered by this sample.
    pub start: u64,
    /// Cycles covered (equals the configured interval except possibly for
    /// the final, partial sample).
    pub cycles: u64,
    /// Stride of the per-port vectors: the network's widest per-router
    /// port count (6 on the mesh, 8 on the ring-mesh).
    pub ports: usize,
    /// Flit grants per output port (`router * ports + port`) — the
    /// time-series counterpart of [`crate::RunStats::port_flits`].
    /// Channel: [`ChannelMask::LINKS`].
    pub port_grants: Vec<u64>,
    /// Flit grants onto RF shortcut ports (the point-to-point RF band).
    /// Channel: [`ChannelMask::LINKS`].
    pub rf_grants: u64,
    /// Flits transmitted on the RF broadcast (multicast) band. Channel:
    /// [`ChannelMask::LINKS`].
    pub rf_mc_flits: u64,
    /// Per-router sum over the interval's cycles of buffered flit counts
    /// (divide by `cycles` for the average). Channel:
    /// [`ChannelMask::OCCUPANCY`].
    pub buffered_cycles: Vec<u64>,
    /// Per-router peak buffered flit count within the interval. Channel:
    /// [`ChannelMask::OCCUPANCY`].
    pub buffered_peak: Vec<u32>,
    /// Messages injected (all traffic, warmup included). Channel:
    /// [`ChannelMask::RATES`].
    pub injected: u64,
    /// Flits ejected at local ports. Channel: [`ChannelMask::RATES`].
    pub ejected_flits: u64,
    /// Packets whose last flit ejected this interval. Channel:
    /// [`ChannelMask::RATES`].
    pub completed_packets: u64,
    /// Measured messages still in flight at the end of the interval.
    /// Channel: [`ChannelMask::RATES`].
    pub in_flight_end: u64,
    /// VC-allocation failures (a head flit found no free output VC).
    /// Channel: [`ChannelMask::STALLS`].
    pub va_stalls: u64,
    /// Switch-allocation losses (an eligible request not granted this
    /// cycle). Channel: [`ChannelMask::STALLS`].
    pub sa_stalls: u64,
    /// Grants refused for lack of downstream credits. Channel:
    /// [`ChannelMask::STALLS`].
    pub credit_stalls: u64,
    /// Histogram of packet completion latencies (creation → last flit
    /// ejected), bucketed by [`latency_bucket`]. Channel:
    /// [`ChannelMask::LATENCY`].
    pub latency_hist: [u64; LATENCY_BUCKETS],
}

impl IntervalSample {
    fn zeroed(start: u64, routers: usize, ports: usize, channels: ChannelMask) -> Self {
        let links = channels.contains(ChannelMask::LINKS);
        let occ = channels.contains(ChannelMask::OCCUPANCY);
        Self {
            start,
            cycles: 0,
            ports,
            port_grants: if links { vec![0; routers * ports] } else { Vec::new() },
            rf_grants: 0,
            rf_mc_flits: 0,
            buffered_cycles: if occ { vec![0; routers] } else { Vec::new() },
            buffered_peak: if occ { vec![0; routers] } else { Vec::new() },
            injected: 0,
            ejected_flits: 0,
            completed_packets: 0,
            in_flight_end: 0,
            va_stalls: 0,
            sa_stalls: 0,
            credit_stalls: 0,
            latency_hist: [0; LATENCY_BUCKETS],
        }
    }

    /// Mean buffered flits at router `r` over this interval (0.0 when the
    /// occupancy channel is off or no cycles elapsed).
    pub fn avg_buffered(&self, r: usize) -> f64 {
        if self.cycles == 0 || self.buffered_cycles.is_empty() {
            0.0
        } else {
            self.buffered_cycles[r] as f64 / self.cycles as f64
        }
    }

    /// Utilization of one output port over this interval: grants divided
    /// by `capacity × cycles` slot capacity (0.0 when the links channel is
    /// off or no cycles elapsed).
    pub fn port_utilization(&self, r: usize, port: usize, capacity: u32) -> f64 {
        assert!(port < self.ports, "port index out of range");
        if self.cycles == 0 || self.port_grants.is_empty() {
            0.0
        } else {
            self.port_grants[r * self.ports + port] as f64
                / (self.cycles as f64 * capacity.max(1) as f64)
        }
    }
}

/// The lifecycle of one network packet: inject → first switch grant →
/// last flit ejected. The structured successor to walking the flit trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketSpan {
    /// Packet table index.
    pub packet: u32,
    /// Router where the packet entered the network.
    pub src: u32,
    /// Destination router, or `u32::MAX` for a multicast tree packet.
    pub dest: u32,
    /// Cycle the message was created (injection request).
    pub injected_at: u64,
    /// Cycle of the head flit's first switch grant, or `u64::MAX` if it
    /// never won allocation.
    pub first_grant_at: u64,
    /// Cycle the packet's last flit landed at its destination's local
    /// port, or `u64::MAX` while in flight.
    pub ejected_at: u64,
    /// Routers traversed minus one (valid once ejected).
    pub hops: u32,
    /// Whether any flit of this packet was granted onto an RF shortcut
    /// port.
    pub took_rf: bool,
    /// Whether the packet was created inside the measurement window.
    pub measured: bool,
}

impl PacketSpan {
    /// Whether the packet fully left the network.
    pub fn is_complete(&self) -> bool {
        self.ejected_at != u64::MAX
    }

    /// Creation-to-ejection latency, when complete.
    pub fn latency(&self) -> Option<u64> {
        self.is_complete().then(|| self.ejected_at.saturating_sub(self.injected_at))
    }
}

/// Head-flit pipeline constants the delay attribution is built on: route
/// computation (+ head decode) occupies the two cycles between arrival and
/// VA eligibility…
pub const HOP_ROUTE_CYCLES: u64 = 2;
/// …and switch traversal occupies the one cycle between a VA grant and SA
/// eligibility. Everything else a head flit spends inside a router is a
/// stall, attributed by [`HopRecord::va_wait`] / [`HopRecord::sa_wait`].
pub const HOP_SWITCH_CYCLES: u64 = 1;

/// One router traversal of a profiled packet's head flit, recorded by the
/// [`ChannelMask::PROFILE`] channel: the raw pipeline timestamps from
/// which the RC / VA-stall / ST / SA-stall decomposition derives.
///
/// Only unicast packets (including RF-multicast carrier packets) get hop
/// chains — tree-routed multicast packets fork mid-network and have no
/// single head-flit timeline. A packet's records are stored sorted by
/// `(packet, arrived_at)`, so one chain is a contiguous run in
/// [`TelemetryReport::hops`] in traversal order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopRecord {
    /// Packet table index.
    pub packet: u32,
    /// Router traversed.
    pub router: u32,
    /// Input port the head flit arrived on (Local at the source).
    pub port_in: u8,
    /// Output port the head flit was granted to (Local at the
    /// destination).
    pub port_out: u8,
    /// Credit-refused switch grants of the head flit at this router — a
    /// subset of the [`HopRecord::sa_wait`] cycles, identifying stalls
    /// caused by downstream backpressure rather than switch competition.
    pub credit_waits: u32,
    /// Cycle the head flit entered this router's input buffer.
    pub arrived_at: u64,
    /// Cycle VC allocation succeeded.
    pub va_done_at: u64,
    /// Cycle switch allocation granted the head flit to `port_out`.
    pub granted_at: u64,
}

impl HopRecord {
    /// Cycles the head flit waited for a free output VC beyond the
    /// pipeline minimum ([`HOP_ROUTE_CYCLES`] after arrival).
    pub fn va_wait(&self) -> u64 {
        self.va_done_at
            .saturating_sub(self.arrived_at + HOP_ROUTE_CYCLES)
    }

    /// Cycles the head flit waited for a switch grant beyond the pipeline
    /// minimum ([`HOP_SWITCH_CYCLES`] after the VA grant). Includes the
    /// [`HopRecord::credit_waits`] cycles lost to missing credits.
    pub fn sa_wait(&self) -> u64 {
        self.granted_at
            .saturating_sub(self.va_done_at + HOP_SWITCH_CYCLES)
    }

    /// Total head-flit occupancy of this router (arrival to switch
    /// grant) — the hop's span length on a Perfetto track.
    pub fn occupancy(&self) -> u64 {
        self.granted_at.saturating_sub(self.arrived_at)
    }
}

/// The additive decomposition of one profiled packet's end-to-end latency,
/// from [`TelemetryReport::attribution`]. The components partition
/// `ejected − injected` exactly:
///
/// `total = source_queue + route + va_wait + switch + sa_wait + link +
/// tail_serialization`
///
/// where `route`/`switch` are the fixed pipeline stages
/// ([`HOP_ROUTE_CYCLES`] / [`HOP_SWITCH_CYCLES`] per hop), the waits are
/// contention, `link` covers every link traversal (RF extra latency
/// included) plus the ejection port crossing, and `tail_serialization` is
/// the body/tail flits still streaming after the head ejected.
/// `credit_wait` is informational — a subset of `sa_wait`, not an eighth
/// additive term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DelayBreakdown {
    /// Cycles between message creation and the head flit entering the
    /// source router's local input buffer (injection VC queueing).
    pub source_queue: u64,
    /// Route-computation pipeline cycles over all hops.
    pub route: u64,
    /// VC-allocation contention cycles over all hops.
    pub va_wait: u64,
    /// Switch-traversal pipeline cycles over all hops.
    pub switch: u64,
    /// Switch-allocation contention cycles over all hops.
    pub sa_wait: u64,
    /// Of [`DelayBreakdown::sa_wait`], the cycles refused for missing
    /// downstream credits (informational subset, not additive).
    pub credit_wait: u64,
    /// Link-traversal cycles: inter-router crossings (RF shortcut extra
    /// latency included) plus the final ejection-port crossing.
    pub link: u64,
    /// Cycles after the head flit ejected until the packet's last flit
    /// ejected (body/tail serialization and their contention).
    pub tail_serialization: u64,
    /// End-to-end latency, `ejected_at − injected_at`; equals the sum of
    /// the seven additive components above.
    pub total: u64,
    /// Router traversals in the chain.
    pub hops: u32,
    /// Whether any hop exited through an RF shortcut port.
    pub took_rf: bool,
}

impl DelayBreakdown {
    /// Sum of the additive components — equals
    /// [`DelayBreakdown::total`]; the reconciliation the profiler
    /// guarantees and the integration tests assert.
    pub fn component_sum(&self) -> u64 {
        self.source_queue
            + self.route
            + self.va_wait
            + self.switch
            + self.sa_wait
            + self.link
            + self.tail_serialization
    }

    /// Contention cycles (VA + SA waits) — the blame the packet assigns
    /// to the links it crossed.
    pub fn contention(&self) -> u64 {
        self.va_wait + self.sa_wait
    }
}

/// A non-traffic event on the telemetry timeline, so degradation can be
/// correlated with the interval where utilization changed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimelineEventKind {
    /// A scheduled fault event was applied.
    Fault(FaultEvent),
    /// RF transmitters/receivers retuned; `installed` shortcuts are now
    /// active (the routing-table rewrite stall begins here).
    RetuneApplied {
        /// Shortcuts installed by the retune.
        installed: usize,
    },
    /// A routing-table rewrite completed and injection resumed.
    TablesRewritten,
    /// A tracked fault's windowed mean latency re-converged to its
    /// pre-fault baseline (see [`crate::RecoveryRecord`]); only emitted
    /// when [`crate::SimConfig::recovery`] is enabled.
    RecoveryConverged {
        /// Cycle the fault was applied.
        fault_cycle: u64,
        /// Cycles from fault to convergence.
        after: u64,
    },
    /// The forward-progress watchdog stopped the run (see
    /// [`crate::RunStats::health`] for the diagnosis).
    WatchdogFired,
}

/// One timeline event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Cycle the event occurred.
    pub cycle: u64,
    /// What happened.
    pub kind: TimelineEventKind,
}

/// The full telemetry record of one run, returned through
/// [`crate::RunStats::telemetry`].
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryReport {
    /// Sampling interval in cycles.
    pub interval: u64,
    /// Channels that were recorded.
    pub channels: ChannelMask,
    /// Routers in the network (sizes the per-router vectors).
    pub routers: usize,
    /// Stride of the per-port vectors: the network's widest per-router
    /// port count (6 on the mesh, 8 on the ring-mesh).
    pub ports: usize,
    /// The time series, in cycle order; the final sample may cover fewer
    /// than `interval` cycles.
    pub samples: Vec<IntervalSample>,
    /// Packet lifecycle spans, in packet-id order, capped at
    /// [`TelemetryConfig::span_limit`].
    pub spans: Vec<PacketSpan>,
    /// Packets whose span was not recorded because the cap was reached.
    pub dropped_spans: u64,
    /// Fault/retune/watchdog events, in cycle order.
    pub events: Vec<TimelineEvent>,
    /// Per-hop delay-attribution records, sorted by `(packet,
    /// arrived_at)` so each packet's chain is contiguous and in traversal
    /// order. Empty unless [`ChannelMask::PROFILE`] was on.
    pub hops: Vec<HopRecord>,
    /// Hop records not recorded because [`TelemetryConfig::hop_limit`]
    /// was reached.
    pub dropped_hops: u64,
}

impl TelemetryReport {
    /// Index of the sample covering `cycle`, if any.
    pub fn sample_index_at(&self, cycle: u64) -> Option<usize> {
        self.samples
            .iter()
            .position(|s| cycle >= s.start && cycle < s.start + s.cycles.max(1))
    }

    /// Total flit grants per output port (`router * ports + port`) summed
    /// over every sample — equals `RunStats::port_flits` plus warmup/drain
    /// traffic. Empty when the links channel was off.
    pub fn total_port_grants(&self) -> Vec<u64> {
        let Some(first) = self.samples.iter().find(|s| !s.port_grants.is_empty()) else {
            return Vec::new();
        };
        let mut total = vec![0u64; first.port_grants.len()];
        for s in &self.samples {
            for (t, g) in total.iter_mut().zip(&s.port_grants) {
                *t += g;
            }
        }
        total
    }

    /// The events whose cycle falls inside sample `i`.
    pub fn events_in_sample(&self, i: usize) -> impl Iterator<Item = &TimelineEvent> {
        let (start, end) = match self.samples.get(i) {
            Some(s) => (s.start, s.start + s.cycles.max(1)),
            None => (u64::MAX, u64::MAX),
        };
        self.events.iter().filter(move |e| e.cycle >= start && e.cycle < end)
    }

    /// Whole-run completion-latency histogram: the per-interval
    /// [`IntervalSample::latency_hist`] summed over every sample. Bucket
    /// `i` spans [`latency_bucket_bounds`]`(i)`; bucket counts sum to the
    /// total completed-packet count when the latency channel was on.
    pub fn total_latency_histogram(&self) -> [u64; LATENCY_BUCKETS] {
        let mut hist = [0u64; LATENCY_BUCKETS];
        for s in &self.samples {
            for (h, &v) in hist.iter_mut().zip(&s.latency_hist) {
                *h += v;
            }
        }
        hist
    }

    /// The recorded span of `packet`, if any. Spans are stored in packet-id
    /// order, so this is a binary search.
    pub fn span_of_packet(&self, packet: u32) -> Option<&PacketSpan> {
        self.spans
            .binary_search_by_key(&packet, |s| s.packet)
            .ok()
            .map(|i| &self.spans[i])
    }

    /// The hop chain of `packet` in traversal order (empty unless the
    /// profile channel recorded it).
    pub fn hops_of(&self, packet: u32) -> &[HopRecord] {
        let lo = self.hops.partition_point(|h| h.packet < packet);
        let hi = self.hops.partition_point(|h| h.packet <= packet);
        &self.hops[lo..hi]
    }

    /// Per-output-port contention blame (`router * ports + port`): the total
    /// VA + SA wait cycles packets spent acquiring each output link or RF
    /// band. Each stalled packet-cycle is attributed to exactly *one*
    /// port — the one the packet was ultimately granted at that hop — so
    /// summing blame over ports equals summing contention over packets
    /// (no double counting). A packet that waited on a busy RF port and
    /// then adaptively detoured to the mesh blames the mesh port it took;
    /// the approximation is documented in DESIGN.md. Empty unless the
    /// profile channel was on.
    pub fn contention_blame(&self) -> Vec<u64> {
        if self.hops.is_empty() {
            return Vec::new();
        }
        let mut blame = vec![0u64; self.routers * self.ports];
        for h in &self.hops {
            blame[h.router as usize * self.ports + h.port_out as usize] +=
                h.va_wait() + h.sa_wait();
        }
        blame
    }

    /// The delay attribution of one profiled packet, or `None` when the
    /// packet has no complete span + hop chain (profile channel off, span
    /// or hop cap hit, still in flight, or a tree-multicast packet).
    ///
    /// The returned components partition the packet's end-to-end latency
    /// exactly — see [`DelayBreakdown`].
    pub fn attribution(&self, packet: u32) -> Option<DelayBreakdown> {
        let span = self.span_of_packet(packet)?;
        if !span.is_complete() {
            return None;
        }
        let chain = self.hops_of(packet);
        // A complete unicast chain has exactly hops+1 router traversals
        // (span.hops counts routers minus one); anything shorter was
        // truncated by the hop cap.
        if chain.is_empty() || chain.len() != span.hops as usize + 1 {
            return None;
        }
        let mut b = DelayBreakdown {
            source_queue: chain[0].arrived_at.saturating_sub(span.injected_at),
            hops: chain.len() as u32,
            took_rf: span.took_rf,
            total: span.ejected_at - span.injected_at,
            ..DelayBreakdown::default()
        };
        for (i, h) in chain.iter().enumerate() {
            b.route += HOP_ROUTE_CYCLES;
            b.switch += HOP_SWITCH_CYCLES;
            b.va_wait += h.va_wait();
            b.sa_wait += h.sa_wait();
            b.credit_wait += h.credit_waits as u64;
            // Link traversal to the next router; the destination hop ends
            // with the 2-cycle ejection-port crossing instead.
            b.link += match chain.get(i + 1) {
                Some(next) => next.arrived_at.saturating_sub(h.granted_at),
                None => 2,
            };
        }
        // Body/tail flits stream behind the head: ejection completes the
        // head 2 cycles after its final grant, the packet when the last
        // flit lands.
        let head_ejected = chain.last().map_or(0, |h| h.granted_at + 2);
        b.tail_serialization = span.ejected_at.saturating_sub(head_ejected);
        Some(b)
    }
}

/// Live telemetry accumulator state, attached to the network when
/// [`crate::SimConfig::telemetry`] is set.
#[derive(Debug)]
pub(super) struct TelemetryState {
    cfg: TelemetryConfig,
    routers: usize,
    /// Stride of the per-port vectors (the network's `max_ports`).
    ports: usize,
    /// First cycle of the interval being accumulated.
    interval_start: u64,
    /// The interval currently accumulating.
    cur: IntervalSample,
    /// Flushed samples.
    samples: Vec<IntervalSample>,
    /// Per-router live buffered-flit count, maintained incrementally at
    /// the two buffer mutation sites instead of walking every VC per
    /// cycle.
    buffered: Vec<u32>,
    /// Span index per packet id (`u32::MAX` = none), grown on demand so it
    /// stays parallel with the packet table across runs.
    span_of: Vec<u32>,
    spans: Vec<PacketSpan>,
    dropped_spans: u64,
    events: Vec<TimelineEvent>,
    /// The in-progress hop of each span's packet (parallel to `spans`,
    /// profile channel only): timestamps accumulate here between the
    /// head's arrival and its switch grant, then flush into `hops`.
    open_hops: Vec<OpenHop>,
    hops: Vec<HopRecord>,
    dropped_hops: u64,
}

const NO_SPAN: u32 = u32::MAX;

/// Scratch for the hop a profiled packet currently occupies.
#[derive(Debug, Clone, Copy)]
struct OpenHop {
    router: u32,
    port_in: u8,
    credit_waits: u32,
    /// `u64::MAX` = no hop open.
    arrived_at: u64,
    va_done_at: u64,
}

const NO_HOP: OpenHop = OpenHop {
    router: 0,
    port_in: 0,
    credit_waits: 0,
    arrived_at: u64::MAX,
    va_done_at: u64::MAX,
};

impl TelemetryState {
    pub(super) fn new(cfg: TelemetryConfig, routers: usize, ports: usize) -> Self {
        let occ = cfg.channels.contains(ChannelMask::OCCUPANCY);
        Self {
            cfg,
            routers,
            ports,
            interval_start: 0,
            cur: IntervalSample::zeroed(0, routers, ports, cfg.channels),
            samples: Vec::new(),
            buffered: if occ { vec![0; routers] } else { Vec::new() },
            span_of: Vec::new(),
            spans: Vec::new(),
            dropped_spans: 0,
            events: Vec::new(),
            open_hops: Vec::new(),
            hops: Vec::new(),
            dropped_hops: 0,
        }
    }

    fn on(&self, channel: ChannelMask) -> bool {
        self.cfg.channels.contains(channel)
    }

    /// Whether per-hop attribution is recording (needs both the profile
    /// channel and the span slots it rides on).
    fn profiling(&self) -> bool {
        self.cfg
            .channels
            .contains(ChannelMask::PROFILE.with(ChannelMask::SPANS))
    }

    /// The open-hop scratch slot of `packet`, when the profile channel is
    /// on and the packet holds a span slot.
    fn open_hop(&mut self, packet: u32) -> Option<&mut OpenHop> {
        if !self.profiling() {
            return None;
        }
        let idx = *self.span_of.get(packet as usize)?;
        if idx == NO_SPAN {
            return None;
        }
        self.open_hops.get_mut(idx as usize)
    }

    /// Closes the current interval at `end` cycles covered and opens the
    /// next one.
    fn flush_interval(&mut self, covered: u64, in_flight: u64) {
        self.cur.cycles = covered;
        self.cur.in_flight_end = in_flight;
        let next_start = self.interval_start + covered;
        let next = IntervalSample::zeroed(next_start, self.routers, self.ports, self.cfg.channels);
        self.samples.push(std::mem::replace(&mut self.cur, next));
        self.interval_start = next_start;
    }

    fn span_slot(&mut self, packet: u32) -> Option<&mut PacketSpan> {
        let idx = *self.span_of.get(packet as usize)?;
        if idx == NO_SPAN {
            return None;
        }
        self.spans.get_mut(idx as usize)
    }

    /// Applies one buffered sweep-phase telemetry operation. The serial
    /// engine routes its hooks through here too (via
    /// [`super::sweep::TelSink::Direct`]), so both engines execute the
    /// identical accumulator mutations — the parallel engine merely defers
    /// them to the shard-order replay. `now` is the sweep's cycle.
    pub(super) fn apply_op(&mut self, now: u64, op: sweep::TelOp) {
        use sweep::TelOp as Op;
        match op {
            Op::BufferPush(r) => self.on_buffer_push(r as usize),
            Op::BufferPop(r) => self.on_buffer_pop(r as usize),
            Op::HopArrived { packet, r, port, at } => {
                self.on_hop_arrived(packet, r as usize, port as usize, at);
            }
            Op::VaStall => self.on_va_stall(),
            Op::HopVa { packet } => self.on_hop_va(packet, now),
            Op::CreditStall => self.on_credit_stall(),
            Op::HopCredit { packet } => self.on_hop_credit(packet),
            Op::SaStalls(count) => self.on_sa_stalls(count),
            Op::Grant { r, out, is_rf, packet, first } => {
                self.on_grant(r as usize, out as usize, is_rf, packet, first, now);
            }
            Op::HopGranted { packet, r, out } => {
                self.on_hop_granted(packet, r as usize, out as usize, now);
            }
            Op::EjectedFlit => self.on_ejected_flit(),
            Op::PacketDone { packet, created, head_grants, at } => {
                self.on_packet_done(packet, created, head_grants, at);
            }
        }
    }

    /// Registers a freshly created packet: opens its lifecycle span.
    /// `dest` is the destination router (`u32::MAX` for a multicast tree
    /// packet).
    pub(super) fn on_packet_created(
        &mut self,
        packet: u32,
        src: u32,
        dest: u32,
        injected_at: u64,
        measured: bool,
    ) {
        if !self.on(ChannelMask::SPANS) {
            return;
        }
        if self.span_of.len() <= packet as usize {
            self.span_of.resize(packet as usize + 1, NO_SPAN);
        }
        if self.spans.len() >= self.cfg.span_limit {
            self.dropped_spans += 1;
            return;
        }
        self.span_of[packet as usize] = self.spans.len() as u32;
        if self.profiling() {
            self.open_hops.push(NO_HOP);
        }
        self.spans.push(PacketSpan {
            packet,
            src,
            dest,
            injected_at,
            first_grant_at: u64::MAX,
            ejected_at: u64::MAX,
            hops: 0,
            took_rf: false,
            measured,
        });
    }

    /// Records a switch grant: the links channel and span first-grant/RF
    /// marks. `first` is true for the head flit's first grant anywhere;
    /// `is_rf` when `out` is the granting router's RF slot.
    fn on_grant(&mut self, r: usize, out: usize, is_rf: bool, packet: u32, first: bool, now: u64) {
        if self.on(ChannelMask::LINKS) {
            self.cur.port_grants[r * self.ports + out] += 1;
            if is_rf {
                self.cur.rf_grants += 1;
            }
        }
        if (first || is_rf) && self.on(ChannelMask::SPANS) {
            if let Some(span) = self.span_slot(packet) {
                if first {
                    span.first_grant_at = now;
                }
                if is_rf {
                    span.took_rf = true;
                }
            }
        }
    }

    /// Records one flit transmitted on the RF broadcast band.
    pub(super) fn on_rf_mc_flit(&mut self) {
        if self.on(ChannelMask::LINKS) {
            self.cur.rf_mc_flits += 1;
        }
    }

    /// Records a grant refused for lack of downstream credits.
    fn on_credit_stall(&mut self) {
        if self.on(ChannelMask::STALLS) {
            self.cur.credit_stalls += 1;
        }
    }

    /// Records a failed VC allocation attempt.
    fn on_va_stall(&mut self) {
        if self.on(ChannelMask::STALLS) {
            self.cur.va_stalls += 1;
        }
    }

    /// Records `count` switch-allocation requests that lost arbitration
    /// this cycle.
    fn on_sa_stalls(&mut self, count: u64) {
        if self.on(ChannelMask::STALLS) {
            self.cur.sa_stalls += count;
        }
    }

    /// Records a flit entering router `r`'s input buffers.
    fn on_buffer_push(&mut self, r: usize) {
        if let Some(b) = self.buffered.get_mut(r) {
            *b += 1;
        }
    }

    /// Records a flit retired from router `r`'s input buffers.
    fn on_buffer_pop(&mut self, r: usize) {
        if let Some(b) = self.buffered.get_mut(r) {
            debug_assert!(*b > 0, "buffered-flit underflow at router {r}");
            *b = b.saturating_sub(1);
        }
    }

    /// Records one injected message.
    pub(super) fn on_injected(&mut self) {
        if self.on(ChannelMask::RATES) {
            self.cur.injected += 1;
        }
    }

    /// Records one flit ejected at a local port.
    fn on_ejected_flit(&mut self) {
        if self.on(ChannelMask::RATES) {
            self.cur.ejected_flits += 1;
        }
    }

    /// Records a packet whose last flit just ejected: the rates and
    /// latency channels, and the span's eject stamp. `created` and
    /// `head_grants` are the packet's values at ejection.
    fn on_packet_done(&mut self, packet: u32, created: u64, head_grants: u32, at: u64) {
        if self.on(ChannelMask::RATES) {
            self.cur.completed_packets += 1;
        }
        if self.on(ChannelMask::LATENCY) {
            self.cur.latency_hist[latency_bucket(at.saturating_sub(created))] += 1;
        }
        if self.on(ChannelMask::SPANS) {
            if let Some(span) = self.span_slot(packet) {
                span.ejected_at = at;
                span.hops = head_grants.saturating_sub(1);
            }
        }
    }

    /// Opens a hop record: a profiled unicast head flit entered router
    /// `r`'s input buffer on `port` at cycle `at`. (The unicast-only gate
    /// lives at the emission site, which has packet-table access.)
    fn on_hop_arrived(&mut self, packet: u32, r: usize, port: usize, at: u64) {
        if let Some(h) = self.open_hop(packet) {
            *h = OpenHop {
                router: r as u32,
                port_in: port as u8,
                credit_waits: 0,
                arrived_at: at,
                va_done_at: u64::MAX,
            };
        }
    }

    /// Stamps the open hop's VC-allocation success cycle.
    fn on_hop_va(&mut self, packet: u32, now: u64) {
        if let Some(h) = self.open_hop(packet) {
            if h.arrived_at != u64::MAX {
                h.va_done_at = now;
            }
        }
    }

    /// Counts one credit-refused head-flit switch grant on the open hop.
    fn on_hop_credit(&mut self, packet: u32) {
        if let Some(h) = self.open_hop(packet) {
            if h.arrived_at != u64::MAX {
                h.credit_waits += 1;
            }
        }
    }

    /// Closes the open hop on a head-flit switch grant at router `r`
    /// toward `out`, flushing the [`HopRecord`] (hop-cap permitting).
    fn on_hop_granted(&mut self, packet: u32, r: usize, out: usize, now: u64) {
        let Some(h) = self.open_hop(packet) else { return };
        if h.arrived_at == u64::MAX || h.va_done_at == u64::MAX || h.router != r as u32 {
            return;
        }
        let done = *h;
        *h = NO_HOP;
        if self.hops.len() >= self.cfg.hop_limit {
            self.dropped_hops += 1;
            return;
        }
        self.hops.push(HopRecord {
            packet,
            router: done.router,
            port_in: done.port_in,
            port_out: out as u8,
            credit_waits: done.credit_waits,
            arrived_at: done.arrived_at,
            va_done_at: done.va_done_at,
            granted_at: now,
        });
    }

    /// Appends a timeline event at `cycle`.
    pub(super) fn on_event(&mut self, cycle: u64, kind: TimelineEventKind) {
        if self.on(ChannelMask::EVENTS) {
            self.events.push(TimelineEvent { cycle, kind });
        }
    }
}

impl Network {
    /// The recorded flit trace so far (empty unless
    /// [`crate::SimConfig::flit_trace`] enables tracing).
    pub fn flit_trace(&self) -> &[FlitEvent] {
        &self.flit_trace
    }

    /// Flit-trace events dropped because [`FlitTraceConfig::limit`] was
    /// reached — non-zero means the trace is a truncated prefix.
    pub fn flit_trace_dropped(&self) -> u64 {
        self.flit_trace_dropped
    }

    /// Per-cycle telemetry work, called once at the end of every
    /// [`Network::step`]: accumulates the occupancy channel and flushes
    /// the interval at its boundary. No-op when telemetry is disabled.
    #[inline]
    pub(super) fn step_telemetry(&mut self) {
        let cycle = self.cycle;
        let in_flight = self.measured_outstanding;
        let Some(t) = self.telemetry.as_deref_mut() else { return };
        if !t.buffered.is_empty() {
            for (r, &b) in t.buffered.iter().enumerate() {
                t.cur.buffered_cycles[r] += b as u64;
                if b > t.cur.buffered_peak[r] {
                    t.cur.buffered_peak[r] = b;
                }
            }
        }
        let covered = cycle - t.interval_start;
        if covered >= t.cfg.interval {
            t.flush_interval(covered, in_flight);
        }
    }

    /// Flushes the partial final interval and moves the report into
    /// `self.stats.telemetry`; the accumulator is reset so a subsequent
    /// `run` starts a fresh time series.
    pub(super) fn finish_telemetry(&mut self) {
        let cycle = self.cycle;
        let in_flight = self.measured_outstanding;
        let Some(t) = self.telemetry.as_deref_mut() else { return };
        let covered = cycle - t.interval_start;
        if covered > 0 {
            t.flush_interval(covered, in_flight);
        }
        // Hop records land in switch-grant order; each packet's chain is
        // made contiguous here so report queries are range lookups.
        t.hops.sort_unstable_by_key(|h| (h.packet, h.arrived_at));
        let report = TelemetryReport {
            interval: t.cfg.interval,
            channels: t.cfg.channels,
            routers: t.routers,
            ports: t.ports,
            samples: std::mem::take(&mut t.samples),
            spans: std::mem::take(&mut t.spans),
            dropped_spans: std::mem::take(&mut t.dropped_spans),
            events: std::mem::take(&mut t.events),
            hops: std::mem::take(&mut t.hops),
            dropped_hops: std::mem::take(&mut t.dropped_hops),
        };
        t.span_of.clear();
        t.open_hops.clear();
        self.stats.telemetry = Some(Box::new(report));
    }

    /// Registers a freshly created packet: opens its lifecycle span.
    /// (Serial-phase creations only — sweep-phase creations go through
    /// [`super::sweep::Sweep::new_packet`].)
    #[inline]
    pub(super) fn tel_packet_created(&mut self, packet: u32) {
        let Some(t) = self.telemetry.as_deref_mut() else { return };
        let p = &self.packets[packet as usize];
        let dest = match p.dest {
            PacketDest::Unicast(d) => d as u32,
            PacketDest::Tree(_) => u32::MAX,
        };
        t.on_packet_created(packet, p.src, dest, p.created, p.measured);
    }

    /// Records one flit transmitted on the RF broadcast band.
    #[inline]
    pub(super) fn tel_rf_mc_flit(&mut self) {
        let Some(t) = self.telemetry.as_deref_mut() else { return };
        t.on_rf_mc_flit();
    }

    /// Records one injected message.
    #[inline]
    pub(super) fn tel_injected(&mut self) {
        let Some(t) = self.telemetry.as_deref_mut() else { return };
        t.on_injected();
    }

    /// Appends a timeline event at the current cycle, mirroring it onto
    /// the run ledger's stream when that is enabled (the ledger carries
    /// the same events even with telemetry off).
    #[inline]
    pub(super) fn tel_event(&mut self, kind: TimelineEventKind) {
        let cycle = self.cycle;
        if let Some(l) = self.ledger.as_deref_mut() {
            l.on_event(cycle, kind);
        }
        let Some(t) = self.telemetry.as_deref_mut() else { return };
        t.on_event(cycle, kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_buckets_cover_the_line() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(15), 0);
        assert_eq!(latency_bucket(16), 1);
        assert_eq!(latency_bucket(31), 1);
        assert_eq!(latency_bucket(32), 2);
        assert_eq!(latency_bucket(1023), 6);
        assert_eq!(latency_bucket(1024), 7);
        assert_eq!(latency_bucket(u64::MAX), 7);
        for i in 0..LATENCY_BUCKETS {
            let (lo, hi) = latency_bucket_bounds(i);
            assert!(lo < hi);
            assert_eq!(latency_bucket(lo), i);
            if hi != u64::MAX {
                assert_eq!(latency_bucket(hi - 1), i);
            }
        }
    }

    #[test]
    fn channel_mask_algebra() {
        assert!(ChannelMask::ALL.contains(ChannelMask::LINKS));
        assert!(ChannelMask::ALL.contains(ChannelMask::SPANS));
        assert!(!ChannelMask::LINKS.contains(ChannelMask::SPANS));
        let m = ChannelMask::LINKS.with(ChannelMask::STALLS);
        assert!(m.contains(ChannelMask::LINKS) && m.contains(ChannelMask::STALLS));
        assert!(!m.contains(ChannelMask::OCCUPANCY));
        assert!(!ChannelMask::NONE.contains(ChannelMask::LINKS));
    }

    #[test]
    fn flit_trace_config_defaults_off() {
        assert!(!FlitTraceConfig::default().is_enabled());
        assert!(FlitTraceConfig::capped(7).is_enabled());
        assert_eq!(FlitTraceConfig::disabled(), FlitTraceConfig::default());
    }
}
