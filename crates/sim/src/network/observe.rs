//! Flit-level tracing for debugging and validation.
//!
//! When enabled ([`SimConfig::flit_trace_limit`] > 0) the network records
//! one event per flit movement — injection, switch-allocation grant, and
//! ejection — up to the configured cap. This is the equivalent of a
//! simulator's debug trace: it lets a user follow one packet hop by hop
//! through the pipeline (and is how several of this crate's own tests
//! validate pipeline timing).

#[allow(clippy::wildcard_imports)]
use super::*;

/// What happened to a flit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitEventKind {
    /// Entered the network at the source's local port.
    Injected,
    /// Granted switch allocation at a router toward the given output port
    /// (0–3 mesh, 4 local/ejection, 5 RF).
    Granted {
        /// Output port index.
        out_port: u8,
    },
    /// Left the network at the destination's local port.
    Ejected,
}

/// One traced flit movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlitEvent {
    /// Cycle the event occurred.
    pub cycle: u64,
    /// Packet table index.
    pub packet: u32,
    /// Flit index within the packet (0 = head).
    pub flit: u32,
    /// Router where the event occurred.
    pub router: usize,
    /// Event kind.
    pub kind: FlitEventKind,
}

impl Network {
    /// Records a trace event, respecting the configured cap.
    pub(super) fn trace_event(&mut self, packet: u32, flit: u32, router: usize, kind: FlitEventKind) {
        if self.flit_trace.len() < self.config.flit_trace_limit {
            self.flit_trace.push(FlitEvent {
                cycle: self.cycle,
                packet,
                flit,
                router,
                kind,
            });
        }
    }

    /// The recorded flit trace so far (empty unless
    /// [`SimConfig::flit_trace_limit`] is non-zero).
    pub fn flit_trace(&self) -> &[FlitEvent] {
        &self.flit_trace
    }
}
