//! The run ledger: streaming structured observability for a live run.
//!
//! Where telemetry ([`super::telemetry`]) answers "where did congestion
//! form" *after* a run, the ledger answers "what is the engine doing
//! *right now*": it accumulates a chronological stream of structured
//! records — periodic heartbeats (cycle, throughput, in-flight work,
//! active-router count), per-shard sweep metrics when the sharded engine
//! is on (swept routers, sweep wall time, barrier wait, cross-shard
//! replay volume — the first real measurement of shard imbalance), and
//! the fault/retune/watchdog events of the existing timeline mirrored
//! onto the same stream. Each record renders to one JSONL line
//! ([`LedgerRecord::render_jsonl`]) so higher layers (the bench runner's
//! sink, `rfnoc-cli tail`) can stream them to a file as they arrive.
//!
//! # Inertness
//!
//! The ledger follows the telemetry inertness contract exactly: the
//! state lives behind `Option<Box<LedgerState>>`, every engine hook
//! starts with one pointer check, and the report is excluded from the
//! golden determinism hashes — all thirteen golden FNV hashes reproduce
//! bit-for-bit with the ledger on or off, at any thread count. Wall-clock
//! readings (`Instant`) feed only the observer fields (`wall_ms`,
//! `kcycles_per_sec`, shard sweep/barrier times), never simulated state.
//!
//! # Single-writer rule for shard records
//!
//! Per-shard sweep timings are written by exactly one thread: each pool
//! worker stamps only its own shard's [`super::sweep::ShardBuf`]
//! (`swept` / `sweep_ns`), which it owns exclusively during the sweep via
//! `split_at_mut`. The engine aggregates those fields *after* the
//! cycle-boundary barrier, on the orchestrating thread, so no shard
//! metric is ever read and written concurrently.

#[allow(clippy::wildcard_imports)]
use super::*;
use std::fmt::Write as _;
use std::time::Instant;

/// Configuration of the run ledger ([`crate::SimConfig::ledger`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LedgerConfig {
    /// Heartbeat interval in cycles: one [`LedgerRecord::Heartbeat`] (and,
    /// on the sharded engine, one [`LedgerRecord::Shard`] per shard) is
    /// emitted per `interval` cycles; the final heartbeat may cover fewer.
    /// Must be non-zero — [`crate::SimConfig::validate`] rejects 0.
    pub interval: u64,
}

impl LedgerConfig {
    /// A ledger emitting one heartbeat every `interval` cycles.
    pub const fn every(interval: u64) -> Self {
        Self { interval }
    }
}

/// One record on the run-ledger timeline. Records are accumulated in
/// chronological order and returned through [`crate::RunStats::ledger`].
#[derive(Debug, Clone, PartialEq)]
pub enum LedgerRecord {
    /// Periodic engine progress. Heartbeats tile the run: `cycle` is the
    /// exclusive end of the covered span, `cycles` its length, and
    /// successive heartbeats abut exactly (`cycle - cycles` equals the
    /// previous heartbeat's `cycle`, the first starting at 0).
    Heartbeat {
        /// Exclusive end cycle of the covered span.
        cycle: u64,
        /// Cycles covered (equals the configured interval except for the
        /// final, partial heartbeat).
        cycles: u64,
        /// Wall-clock milliseconds since the run started.
        wall_ms: f64,
        /// Simulated kilocycles per wall-clock second over the span.
        kcycles_per_sec: f64,
        /// Measured messages in flight at the end of the span.
        in_flight: u64,
        /// Measured messages completed so far (cumulative).
        completed: u64,
        /// Routers scheduled for a visit on the next sweep.
        active_routers: u64,
    },
    /// One shard's sweep metrics over the heartbeat span, emitted per
    /// shard right after each heartbeat when the sharded engine is on
    /// (`threads > 1`).
    Shard {
        /// The owning heartbeat's end cycle.
        cycle: u64,
        /// Shard index.
        shard: u32,
        /// Router visits this shard performed over the span.
        swept_routers: u64,
        /// Wall-clock milliseconds this shard spent sweeping.
        sweep_ms: f64,
        /// Wall-clock milliseconds this shard spent waiting at the
        /// cycle barriers (total sweep-phase wall minus its own sweep).
        barrier_ms: f64,
        /// Buffered cross-shard operations this shard produced for the
        /// ordered replay (deliveries, credits, completions, observer ops).
        replay_ops: u64,
    },
    /// A timeline event ([`TimelineEventKind`]) mirrored onto the ledger
    /// stream — faults, retunes, table rewrites, recovery convergence,
    /// watchdog trips.
    Event {
        /// Cycle the event occurred.
        cycle: u64,
        /// What happened.
        kind: TimelineEventKind,
    },
}

/// Escapes a string for a JSON literal (the ledger's hand-rolled JSON,
/// matching the bench artifact conventions — the container has no serde).
fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as JSON: finite values with 4 decimals, else `null`.
fn jf64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.4}")
    } else {
        "null".into()
    }
}

impl LedgerRecord {
    /// The record's `kind` tag: `"heartbeat"`, `"shard"`, or `"event"`.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Heartbeat { .. } => "heartbeat",
            Self::Shard { .. } => "shard",
            Self::Event { .. } => "event",
        }
    }

    /// The record's cycle stamp (a heartbeat's exclusive end cycle).
    pub fn cycle(&self) -> u64 {
        match self {
            Self::Heartbeat { cycle, .. }
            | Self::Shard { cycle, .. }
            | Self::Event { cycle, .. } => *cycle,
        }
    }

    /// The record's JSON fields, without the surrounding braces — so a
    /// sink can splice extra context (a timestamp, a plan-point id) into
    /// the same flat object.
    pub fn render_fields(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "\"kind\": {}", jstr(self.kind()));
        match self {
            Self::Heartbeat {
                cycle,
                cycles,
                wall_ms,
                kcycles_per_sec,
                in_flight,
                completed,
                active_routers,
            } => {
                let _ = write!(
                    out,
                    ", \"cycle\": {cycle}, \"cycles\": {cycles}, \"wall_ms\": {}, \
                     \"kcycles_per_sec\": {}, \"in_flight\": {in_flight}, \
                     \"completed\": {completed}, \"active_routers\": {active_routers}",
                    jf64(*wall_ms),
                    jf64(*kcycles_per_sec),
                );
            }
            Self::Shard { cycle, shard, swept_routers, sweep_ms, barrier_ms, replay_ops } => {
                let _ = write!(
                    out,
                    ", \"cycle\": {cycle}, \"shard\": {shard}, \
                     \"swept_routers\": {swept_routers}, \"sweep_ms\": {}, \
                     \"barrier_ms\": {}, \"replay_ops\": {replay_ops}",
                    jf64(*sweep_ms),
                    jf64(*barrier_ms),
                );
            }
            Self::Event { cycle, kind } => {
                let _ = write!(out, ", \"cycle\": {cycle}");
                match kind {
                    TimelineEventKind::Fault(e) => {
                        let _ = write!(
                            out,
                            ", \"event\": \"fault\", \"detail\": {}",
                            jstr(&format!("{e:?}"))
                        );
                    }
                    TimelineEventKind::RetuneApplied { installed } => {
                        let _ = write!(
                            out,
                            ", \"event\": \"retune_applied\", \"installed\": {installed}"
                        );
                    }
                    TimelineEventKind::TablesRewritten => {
                        out.push_str(", \"event\": \"tables_rewritten\"");
                    }
                    TimelineEventKind::RecoveryConverged { fault_cycle, after } => {
                        let _ = write!(
                            out,
                            ", \"event\": \"recovery_converged\", \
                             \"fault_cycle\": {fault_cycle}, \"after\": {after}"
                        );
                    }
                    TimelineEventKind::WatchdogFired => {
                        out.push_str(", \"event\": \"watchdog_fired\"");
                    }
                }
            }
        }
        out
    }

    /// The record as one self-contained JSONL line (no trailing newline).
    pub fn render_jsonl(&self) -> String {
        format!("{{{}}}", self.render_fields())
    }
}

/// The full ledger stream of one run, returned through
/// [`crate::RunStats::ledger`]. Like telemetry, a pure observation:
/// excluded from the golden determinism hashes, and the aggregate
/// statistics must be bit-identical with the ledger on or off.
#[derive(Debug, Clone, PartialEq)]
pub struct LedgerReport {
    /// Heartbeat interval in cycles.
    pub interval: u64,
    /// Sweep shards the engine ran with (1 = serial engine; shard
    /// records are only present above 1).
    pub shards: u32,
    /// Total router sweep visits over the whole run (warmup and drain
    /// included) — on the sharded engine this equals the sum of
    /// `swept_routers` over every [`LedgerRecord::Shard`] record, the
    /// reconciliation the integration tests assert.
    pub active_visits: u64,
    /// The records, in chronological order.
    pub records: Vec<LedgerRecord>,
}

impl LedgerReport {
    /// Iterates the heartbeat records in order.
    pub fn heartbeats(&self) -> impl Iterator<Item = &LedgerRecord> {
        self.records.iter().filter(|r| matches!(r, LedgerRecord::Heartbeat { .. }))
    }

    /// Sum of `swept_routers` over every shard record.
    pub fn shard_swept_total(&self) -> u64 {
        self.records
            .iter()
            .filter_map(|r| match r {
                LedgerRecord::Shard { swept_routers, .. } => Some(*swept_routers),
                _ => None,
            })
            .sum()
    }
}

/// Per-shard accumulator between heartbeats.
#[derive(Debug, Default, Clone, Copy)]
struct ShardAccum {
    swept: u64,
    sweep_ns: u64,
    barrier_ns: u64,
    replay_ops: u64,
}

/// Live ledger accumulator, attached to the network when
/// [`crate::SimConfig::ledger`] is set. Boxed so the disabled case costs
/// one null-check per hook (the telemetry pattern).
#[derive(Debug)]
pub(super) struct LedgerState {
    cfg: LedgerConfig,
    /// Wall-clock origin of the run (set at construction; `wall_ms` is
    /// relative to it).
    start: Instant,
    /// Wall clock at the last heartbeat (throughput denominator).
    last_wall: Instant,
    /// First cycle of the heartbeat span being accumulated.
    hb_start: u64,
    records: Vec<LedgerRecord>,
    active_visits: u64,
    shard_acc: Vec<ShardAccum>,
}

impl LedgerState {
    pub(super) fn new(cfg: LedgerConfig, shards: usize) -> Self {
        let now = Instant::now();
        Self {
            cfg,
            start: now,
            last_wall: now,
            hb_start: 0,
            records: Vec::new(),
            active_visits: 0,
            shard_acc: vec![ShardAccum::default(); shards],
        }
    }

    /// Appends a mirrored timeline event.
    pub(super) fn on_event(&mut self, cycle: u64, kind: TimelineEventKind) {
        self.records.push(LedgerRecord::Event { cycle, kind });
    }
}

impl Network {
    /// Per-cycle ledger work, called once at the end of every
    /// [`Network::step`]: emits a heartbeat (and shard records) when the
    /// interval boundary is reached. No-op when the ledger is disabled.
    #[inline]
    pub(super) fn step_ledger(&mut self) {
        let Some(l) = self.ledger.as_deref() else { return };
        if self.cycle - l.hb_start < l.cfg.interval {
            return;
        }
        self.ledger_emit();
    }

    /// Aggregates this sweep's per-shard metrics, called by
    /// `step_routers` after the sweep and before the buffers are
    /// replayed (replay volume needs the pre-drain lengths). `total_ns`
    /// is the whole sweep phase's wall time on the sharded engine
    /// (`None` on the serial path); a shard's barrier wait is that total
    /// minus its own sweep time.
    pub(super) fn ledger_note_sweep(&mut self, total_ns: Option<u64>) {
        let sharded = self.sweep_threads > 1;
        let Some(l) = self.ledger.as_deref_mut() else { return };
        for (si, b) in self.shard_bufs.iter().enumerate() {
            l.active_visits += b.swept;
            if sharded {
                let acc = &mut l.shard_acc[si];
                acc.swept += b.swept;
                acc.sweep_ns += b.sweep_ns;
                acc.barrier_ns += total_ns.unwrap_or(0).saturating_sub(b.sweep_ns);
                acc.replay_ops += (b.deliveries.len()
                    + b.credit_returns.len()
                    + b.mc_enqueues.len()
                    + b.completions.len()
                    + b.tel_ops.len()
                    + b.trace.len()) as u64;
            }
        }
    }

    /// Emits one heartbeat (and, on the sharded engine, one shard record
    /// per shard) covering `[hb_start, cycle)`, then opens the next span.
    fn ledger_emit(&mut self) {
        let cycle = self.cycle;
        let in_flight = self.measured_outstanding;
        let completed = self.stats.completed_messages;
        let epoch = self.active_epoch;
        let active = self.active_stamp.iter().filter(|&&s| s == epoch).count() as u64;
        let sharded = self.sweep_threads > 1;
        let Some(l) = self.ledger.as_deref_mut() else { return };
        let cycles = cycle - l.hb_start;
        if cycles == 0 {
            return;
        }
        let now = Instant::now();
        let wall_ms = now.duration_since(l.start).as_secs_f64() * 1e3;
        let dt = now.duration_since(l.last_wall).as_secs_f64();
        let kcycles_per_sec = if dt > 0.0 { cycles as f64 / dt / 1e3 } else { 0.0 };
        l.records.push(LedgerRecord::Heartbeat {
            cycle,
            cycles,
            wall_ms,
            kcycles_per_sec,
            in_flight,
            completed,
            active_routers: active,
        });
        if sharded {
            for si in 0..l.shard_acc.len() {
                let a = std::mem::take(&mut l.shard_acc[si]);
                l.records.push(LedgerRecord::Shard {
                    cycle,
                    shard: si as u32,
                    swept_routers: a.swept,
                    sweep_ms: a.sweep_ns as f64 / 1e6,
                    barrier_ms: a.barrier_ns as f64 / 1e6,
                    replay_ops: a.replay_ops,
                });
            }
        }
        l.hb_start = cycle;
        l.last_wall = now;
    }

    /// Emits the final partial heartbeat and moves the report into
    /// `self.stats.ledger`; the accumulator is reset so a subsequent
    /// `run` starts a fresh stream.
    pub(super) fn finish_ledger(&mut self) {
        if self.ledger.is_none() {
            return;
        }
        self.ledger_emit();
        let shards = self.sweep_threads as u32;
        let l = self.ledger.as_deref_mut().expect("checked above");
        let report = LedgerReport {
            interval: l.cfg.interval,
            shards,
            active_visits: std::mem::take(&mut l.active_visits),
            records: std::mem::take(&mut l.records),
        };
        self.stats.ledger = Some(Box::new(report));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_render_as_json_objects() {
        let hb = LedgerRecord::Heartbeat {
            cycle: 1000,
            cycles: 500,
            wall_ms: 1.25,
            kcycles_per_sec: 400.0,
            in_flight: 7,
            completed: 93,
            active_routers: 64,
        };
        let line = hb.render_jsonl();
        assert!(line.starts_with("{\"kind\": \"heartbeat\""), "{line}");
        assert!(line.ends_with('}'));
        assert!(line.contains("\"cycle\": 1000"));
        assert!(line.contains("\"kcycles_per_sec\": 400.0000"));
        assert_eq!(hb.kind(), "heartbeat");
        assert_eq!(hb.cycle(), 1000);

        let sh = LedgerRecord::Shard {
            cycle: 1000,
            shard: 3,
            swept_routers: 1200,
            sweep_ms: 0.5,
            barrier_ms: 0.1,
            replay_ops: 42,
        };
        assert!(sh.render_jsonl().contains("\"shard\": 3"));
        assert_eq!(sh.kind(), "shard");

        let ev = LedgerRecord::Event {
            cycle: 123,
            kind: TimelineEventKind::WatchdogFired,
        };
        assert!(ev.render_jsonl().contains("\"event\": \"watchdog_fired\""));
        let retune = LedgerRecord::Event {
            cycle: 9,
            kind: TimelineEventKind::RetuneApplied { installed: 5 },
        };
        assert!(retune.render_jsonl().contains("\"installed\": 5"));
    }

    #[test]
    fn json_helpers_escape_and_bound() {
        assert_eq!(jstr("a\"b"), "\"a\\\"b\"");
        assert_eq!(jf64(f64::NAN), "null");
        assert_eq!(jf64(2.0), "2.0000");
    }
}
