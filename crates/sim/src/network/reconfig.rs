//! Live RF-I reconfiguration (paper §3.2 steps 1–3): drain the
//! channels, retune transmitters/receivers, rewrite the routing tables.

#[allow(clippy::wildcard_imports)]
use super::*;

impl Network {

    /// Requests a live reconfiguration to a new shortcut set (paper §3.2):
    /// the RF-I ports stop accepting traffic, drain, the transmitters and
    /// receivers retune, and the routing tables are rewritten (stalling
    /// injection for [`SimConfig::reconfig_cycles`]). Traffic in the mesh
    /// keeps flowing throughout.
    ///
    /// # Panics
    ///
    /// Panics if the network uses XY routing (no tables to rewrite), a
    /// reconfiguration is already in progress, or the new set violates the
    /// one-in/one-out port constraint.
    pub fn reconfigure(&mut self, shortcuts: Vec<Shortcut>) {
        assert!(
            self.port_table.is_some(),
            "reconfiguration requires shortest-path (table) routing"
        );
        assert_eq!(self.reconfig, ReconfigState::Idle, "reconfiguration already in progress");
        let n = self.dims.nodes();
        let mut out_used = vec![false; n];
        let mut in_used = vec![false; n];
        for s in &shortcuts {
            assert!(s.src < n && s.dst < n, "shortcut endpoint out of range");
            assert!(!out_used[s.src], "router {} has two outbound shortcuts", s.src);
            assert!(!in_used[s.dst], "router {} has two inbound shortcuts", s.dst);
            out_used[s.src] = true;
            in_used[s.dst] = true;
        }
        self.reconfig = ReconfigState::Draining(shortcuts);
    }

    /// Completed reconfigurations so far.
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// Whether every RF-I port in the network is idle (no owners, full
    /// credits, empty buffers and link queues).
    pub(super) fn rf_idle(&self) -> bool {
        let depth = self.config.buffer_depth as u32;
        self.routers.iter().all(|r| {
            let out_ok = !r.outputs[PORT_RF].exists
                || r.outputs[PORT_RF]
                    .vcs
                    .iter()
                    .all(|v| v.owner.is_none() && v.credits == depth);
            let in_ok = !r.inputs[PORT_RF].exists
                || (r.inputs[PORT_RF].arrivals.is_empty()
                    && r.inputs[PORT_RF].vcs.iter().all(|v| v.buffer.is_empty()));
            out_ok && in_ok
        })
    }

    /// Retunes the RF ports to `shortcuts` and rebuilds the routing tables.
    pub(super) fn apply_retuning(&mut self, shortcuts: &[Shortcut]) {
        let n = self.dims.nodes();
        let vcs = self.config.total_vcs();
        let depth = self.config.buffer_depth as u32;
        // Tear down all RF ports (drained by construction).
        for r in self.routers.iter_mut() {
            r.inputs[PORT_RF] = InputPort::default();
            r.outputs[PORT_RF] = OutputPort::default();
        }
        for s in shortcuts {
            let hops = self.dims.manhattan(s.src, s.dst);
            let out = &mut self.routers[s.src].outputs[PORT_RF];
            out.exists = true;
            out.target = Some((s.dst, PORT_RF as u8));
            out.capacity = self.config.rf_flits_per_cycle();
            out.shortcut_hops = hops;
            out.vcs = vec![Default::default(); vcs];
            for v in &mut out.vcs {
                v.credits = depth;
            }
            let inp = &mut self.routers[s.dst].inputs[PORT_RF];
            inp.exists = true;
            inp.vcs = vec![Default::default(); vcs];
            inp.upstream = Some((s.src, PORT_RF as u8));
        }
        // Rebuild the shortest-path tables over the new topology.
        let graph = GridGraph::with_shortcuts(self.dims, shortcuts);
        let dist = graph.distances();
        let tables = RoutingTables::from_distances(&graph, &dist);
        let mut pt = vec![PORT_LOCAL as u8; n * n];
        let mut dm = vec![0u32; n * n];
        for r in 0..n {
            for d in 0..n {
                dm[r * n + d] = dist.get(r, d);
                if r == d {
                    continue;
                }
                let next = tables.next_hop(r, d);
                pt[r * n + d] = if self.dims.manhattan(r, next) == 1 {
                    mesh_port(self.dims, r, next)
                } else {
                    PORT_RF as u8
                };
            }
        }
        self.port_table = Some(pt);
        self.sp_dist = Some(dm);
    }

    /// Advances the reconfiguration state machine by one cycle.
    pub(super) fn step_reconfig(&mut self) {
        match std::mem::replace(&mut self.reconfig, ReconfigState::Idle) {
            ReconfigState::Idle => {}
            ReconfigState::Draining(shortcuts) => {
                if self.rf_idle() {
                    self.apply_retuning(&shortcuts);
                    self.reconfig =
                        ReconfigState::Updating(self.cycle + self.config.reconfig_cycles);
                } else {
                    self.reconfig = ReconfigState::Draining(shortcuts);
                }
            }
            ReconfigState::Updating(until) => {
                if self.cycle >= until {
                    self.reconfigurations += 1;
                } else {
                    self.reconfig = ReconfigState::Updating(until);
                }
            }
        }
    }

    /// Whether injection is stalled by a routing-table rewrite.
    pub(super) fn injection_stalled(&self) -> bool {
        matches!(self.reconfig, ReconfigState::Updating(_))
    }

    /// Whether RF output ports may accept new packets.
    pub(super) fn rf_accepting(&self) -> bool {
        !matches!(self.reconfig, ReconfigState::Draining(_))
    }
}
