//! Live RF-I reconfiguration (paper §3.2 steps 1–3): drain the
//! channels, retune transmitters/receivers, rewrite the routing tables.
//! Fault-driven shortcut teardowns reuse the same drain → retune →
//! rewrite machinery, so graceful degradation and planned retuning share
//! one code path.

#[allow(clippy::wildcard_imports)]
use super::*;

impl Network {

    /// Requests a live reconfiguration to a new shortcut set (paper §3.2):
    /// the RF-I ports stop accepting traffic, drain, the transmitters and
    /// receivers retune, and the routing tables are rewritten (stalling
    /// injection for [`SimConfig::reconfig_cycles`]). Traffic in the mesh
    /// keeps flowing throughout. Shortcuts whose transmitter has failed
    /// (and not been repaired) are skipped at retune time.
    ///
    /// # Errors
    ///
    /// Returns a [`ReconfigError`] if the network uses XY routing (no
    /// tables to rewrite), a reconfiguration is already in progress, or
    /// the new set violates the one-in/one-out port constraint (including
    /// self-loop shortcuts, which the constraint implies).
    pub fn reconfigure(&mut self, shortcuts: Vec<Shortcut>) -> Result<(), ReconfigError> {
        if self.port_table.is_none() {
            return Err(ReconfigError::XyRouting);
        }
        if self.reconfig != ReconfigState::Idle || self.pending_target.is_some() {
            return Err(ReconfigError::InProgress);
        }
        check_shortcut_set(&shortcuts, self.dims.nodes())?;
        self.reconfig = ReconfigState::Draining(shortcuts);
        Ok(())
    }

    /// Completed reconfigurations so far (planned retunes and fault-driven
    /// degradations both count).
    pub fn reconfigurations(&self) -> u64 {
        self.reconfigurations
    }

    /// Whether every RF-I port in the network is idle (no owners, full
    /// credits, empty buffers and link queues).
    pub(super) fn rf_idle(&self) -> bool {
        let depth = self.config.buffer_depth as u32;
        self.routers.iter().all(|r| {
            // The RF port is always the last slot on every router.
            let rf = r.outputs.len() - 1;
            let out_ok = !r.outputs[rf].exists
                || r.outputs[rf]
                    .vcs
                    .iter()
                    .all(|v| v.owner.is_none() && v.credits == depth);
            let in_ok = !r.inputs[rf].exists
                || (r.inputs[rf].arrivals.is_empty()
                    && r.inputs[rf].vcs.iter().all(|v| v.buffer.is_empty()));
            out_ok && in_ok
        })
    }

    /// Retunes the RF ports to `shortcuts` (minus failed transmitters) and
    /// rebuilds the routing tables.
    pub(super) fn apply_retuning(&mut self, shortcuts: &[Shortcut]) {
        let vcs = self.config.total_vcs();
        let depth = self.config.buffer_depth as u32;
        let installed: Vec<Shortcut> = shortcuts
            .iter()
            .filter(|s| !self.failed_rf_tx[s.src])
            .copied()
            .collect();
        // Tear down all RF ports (drained by construction).
        for r in self.routers.iter_mut() {
            let rf = r.inputs.len() - 1;
            r.inputs[rf] = InputPort::default();
            r.outputs[rf] = OutputPort::default();
        }
        for s in &installed {
            let hops = self.fabric.base_route_len(s.src, s.dst);
            let rf_src = self.rf_port(s.src);
            let rf_dst = self.rf_port(s.dst);
            let out = &mut self.routers[s.src].outputs[rf_src];
            out.exists = true;
            out.target = Some((s.dst, rf_dst as u8));
            out.capacity = self.config.rf_flits_per_cycle();
            out.shortcut_hops = hops;
            out.vcs = vec![Default::default(); vcs];
            for v in &mut out.vcs {
                v.credits = depth;
            }
            let inp = &mut self.routers[s.dst].inputs[rf_dst];
            inp.exists = true;
            inp.vcs = vec![Default::default(); vcs];
            inp.upstream = Some((s.src, rf_src as u8));
        }
        self.active_shortcuts = installed;
        self.rebuild_unicast_tables();
        self.tel_event(telemetry::TimelineEventKind::RetuneApplied {
            installed: self.active_shortcuts.len(),
        });
        self.recovery_note_retune_applied();
        // Retuning rewrites the routing tables; wake everyone so any
        // packet whose route just changed is revisited promptly.
        self.mark_all_active();
    }

    /// Rebuilds the shortest-path tables over the current topology: the
    /// surviving mesh plus the active shortcuts. While the mesh is intact
    /// this uses the same [`GridGraph`] machinery as construction (so a
    /// fault-free retune behaves exactly as it always did); with failed
    /// mesh links it switches to a per-destination BFS over the surviving
    /// links.
    pub(super) fn rebuild_unicast_tables(&mut self) {
        let n = self.dims.nodes();
        if self.mesh_link_failures > 0 {
            let shortcuts = self.active_shortcuts.clone();
            let (pt, dm, td) = self.detour_tables(&shortcuts);
            self.port_table = Some(pt);
            self.sp_dist = Some(dm);
            self.detour_dist = Some(td);
            return;
        }
        self.detour_dist = None;
        let graph = GridGraph::from_fabric(&self.fabric, &self.active_shortcuts);
        let dist = graph.distances();
        let tables = RoutingTables::from_distances(&graph, &dist);
        let mut pt = vec![0u8; n * n];
        let mut dm = vec![0u32; n * n];
        for r in 0..n {
            for d in 0..n {
                dm[r * n + d] = dist.get(r, d);
                if r == d {
                    pt[r * n + d] = self.base_ports[r];
                    continue;
                }
                let next = tables.next_hop(r, d);
                pt[r * n + d] = match self.fabric.port_between(r, next) {
                    Some(slot) => slot,
                    None => self.base_ports[r] + 1,
                };
            }
        }
        self.port_table = Some(pt);
        self.sp_dist = Some(dm);
    }

    /// Advances the reconfiguration state machine by one cycle.
    pub(super) fn step_reconfig(&mut self) {
        match std::mem::replace(&mut self.reconfig, ReconfigState::Idle) {
            ReconfigState::Idle => {}
            ReconfigState::Draining(shortcuts) => {
                if self.rf_idle() {
                    self.apply_retuning(&shortcuts);
                    self.reconfig =
                        ReconfigState::Updating(self.cycle + self.config.reconfig_cycles);
                } else {
                    self.reconfig = ReconfigState::Draining(shortcuts);
                }
            }
            ReconfigState::Updating(until) => {
                if self.cycle >= until {
                    self.reconfigurations += 1;
                    self.tel_event(telemetry::TimelineEventKind::TablesRewritten);
                    self.recovery_note_tables_rewritten();
                    // A fault that struck mid-rewrite queued a fresh target;
                    // start draining toward it now.
                    if let Some(target) = self.pending_target.take() {
                        self.reconfig = ReconfigState::Draining(target);
                    }
                } else {
                    self.reconfig = ReconfigState::Updating(until);
                }
            }
        }
    }

    /// Whether injection is stalled by a routing-table rewrite.
    pub(super) fn injection_stalled(&self) -> bool {
        matches!(self.reconfig, ReconfigState::Updating(_))
    }

    /// Whether RF output ports may accept new packets.
    pub(super) fn rf_accepting(&self) -> bool {
        !matches!(self.reconfig, ReconfigState::Draining(_))
    }
}
