//! The sharded sweep: per-shard state for multi-threaded router stepping.
//!
//! `step_routers` is the only engine phase that parallelises: every other
//! phase (fault application, reconfiguration, injection bookkeeping, the
//! multicast engine, telemetry interval flushes) stays serial. The fabric
//! is partitioned into [`shard_ranges`] — contiguous router ranges — and
//! each shard steps its routers through the full per-router pipeline
//! (arrival delivery, injection, VC allocation, switch allocation) using
//! only state it owns:
//!
//! * its slice of the router array, the active-stamp list, and the
//!   per-router statistics vectors (`router_bytes`, `port_flits`,
//!   `per_dest`);
//! * a private [`ShardBuf`] collecting everything that crosses a shard
//!   boundary or touches global state: flit deliveries, credit returns,
//!   multicast enqueues, message completions, telemetry operations, trace
//!   events, and scalar statistics deltas.
//!
//! Shared state is read-only during the sweep ([`SweepShared`] snapshots
//! the routing tables and per-cycle flags) except for three per-packet
//! fields (`ejected`, `head_grants`, `mesh_only`) which are atomics with
//! relaxed ordering: each has exactly one logical writer per cycle (a
//! packet's head flit sits in one router; its ejections all happen at its
//! single destination), so the atomics only serve to make the concurrent
//! *reads* from other shards well-defined, and the pool's cycle-boundary
//! barriers provide the cross-cycle happens-before edges.
//!
//! Determinism: after the barrier, shard buffers are replayed in shard
//! order — which is ascending-router order, exactly the serial engine's
//! visit order — so completions, telemetry records, trace events, and
//! outbox drains land in the bit-identical sequence the single-threaded
//! engine produces. The serial engine itself runs as one shard through
//! this same code path, which is how the golden-hash suite pins both.

#[allow(clippy::wildcard_imports)]
use super::*;
use std::sync::atomic::Ordering::Relaxed;

/// The contiguous router ranges the sharded engine assigns to `threads`
/// worker shards over a fabric of `routers` routers: `threads` half-open
/// `(start, end)` ranges in ascending order that cover every router
/// exactly once, balanced to within one router. Thread counts above the
/// router count (or zero) are clamped.
pub fn shard_ranges(routers: usize, threads: usize) -> Vec<(usize, usize)> {
    let t = threads.clamp(1, routers.max(1));
    let base = routers / t;
    let extra = routers % t;
    let mut out = Vec::with_capacity(t);
    let mut start = 0;
    for i in 0..t {
        let len = base + usize::from(i < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Read-only per-cycle snapshot shared by every shard: configuration,
/// routing tables, and the serial-phase flags the router pipeline consults.
pub(super) struct SweepShared<'a> {
    pub cycle: u64,
    pub counting: bool,
    /// The sweep's epoch `e`; a visited non-quiescent router re-stamps
    /// itself `e + 1`.
    pub epoch: u64,
    pub config: &'a SimConfig,
    pub dims: GridDims,
    pub fabric: FabricSpec,
    pub base_ports: &'a [u8],
    pub max_ports: usize,
    pub base_table: Option<&'a [u8]>,
    pub port_table: Option<&'a [u8]>,
    pub sp_dist: Option<&'a [u32]>,
    pub escape_table: Option<&'a [u8]>,
    /// RF-multicast cluster of each router, when RF multicast is active.
    pub cluster_of: Option<&'a [Option<usize>]>,
    /// False while a reconfiguration drains the RF ports.
    pub rf_accepting: bool,
    /// True while a routing-table rewrite stalls injection.
    pub injection_stalled: bool,
}

impl SweepShared<'_> {
    /// Local (core-side) port slot of router `r`.
    #[inline]
    pub fn local_port(&self, r: usize) -> usize {
        self.base_ports[r] as usize
    }

    /// RF transmitter/receiver port slot of router `r`.
    #[inline]
    pub fn rf_port(&self, r: usize) -> usize {
        self.base_ports[r] as usize + 1
    }

    /// Number of port slots router `r` allocates.
    #[inline]
    pub fn num_ports(&self, r: usize) -> usize {
        self.base_ports[r] as usize + 2
    }

    /// The base-route out port from `r` toward `dest` (`r != dest`).
    #[inline]
    pub fn base_port_toward(&self, r: usize, dest: usize) -> u8 {
        match self.base_table {
            Some(bt) => bt[r * self.dims.nodes() + dest],
            None => xy_port(self.dims, r, dest),
        }
    }

    /// The output port toward `dest` under the active routing mode.
    pub fn route_port(&self, router: NodeId, dest: NodeId) -> u8 {
        if router == dest {
            return self.local_port(router) as u8;
        }
        match self.port_table {
            Some(pt) => pt[router * self.dims.nodes() + dest],
            None => self.escape_port(router, dest),
        }
    }

    /// The escape (base-fabric-only) output port toward `dest`: the
    /// fabric's base route on an intact fabric, the detour table when
    /// links have failed.
    pub fn escape_port(&self, router: NodeId, dest: NodeId) -> u8 {
        if router == dest {
            self.local_port(router) as u8
        } else if let Some(table) = self.escape_table {
            table[router * self.dims.nodes() + dest]
        } else {
            self.base_port_toward(router, dest)
        }
    }
}

/// How a shard reaches the packet table.
pub(super) enum PacketAccess<'a> {
    /// Parallel sweep: shared read access (the mutable per-packet fields
    /// are atomics).
    Shared(&'a [PacketInfo]),
    /// Serial sweep: exclusive access, so tree multicast may allocate
    /// child packets mid-sweep.
    Owned(&'a mut Vec<PacketInfo>),
}

impl PacketAccess<'_> {
    #[inline]
    pub fn get(&self, id: u32) -> &PacketInfo {
        match self {
            PacketAccess::Shared(p) => &p[id as usize],
            PacketAccess::Owned(v) => &v[id as usize],
        }
    }
}

/// Where a shard's telemetry hooks land.
pub(super) enum TelSink<'a> {
    /// Telemetry disabled: hooks cost one discriminant check.
    Off,
    /// Serial sweep: apply each operation to the accumulator immediately
    /// (identical cost profile to the pre-sharding inline hooks).
    Direct(&'a mut telemetry::TelemetryState),
    /// Parallel sweep: buffer operations in the [`ShardBuf`] for
    /// shard-order replay after the barrier.
    Buffer,
}

/// Where a shard's flit-trace events land (mirrors [`TelSink`]).
pub(super) enum TraceSink<'a> {
    Off,
    Direct {
        events: &'a mut Vec<FlitEvent>,
        dropped: &'a mut u64,
        limit: usize,
    },
    Buffer,
}

/// One telemetry hook invocation, captured during a parallel sweep and
/// replayed in shard order. Packet-derived values (creation cycle, head
/// grants) are captured at emission so replay needs no packet-table access.
#[derive(Debug, Clone, Copy)]
pub(super) enum TelOp {
    BufferPush(u32),
    BufferPop(u32),
    HopArrived { packet: u32, r: u32, port: u8, at: u64 },
    VaStall,
    HopVa { packet: u32 },
    CreditStall,
    HopCredit { packet: u32 },
    SaStalls(u64),
    Grant { r: u32, out: u8, is_rf: bool, packet: u32, first: bool },
    HopGranted { packet: u32, r: u32, out: u8 },
    EjectedFlit,
    PacketDone { packet: u32, created: u64, head_grants: u32, at: u64 },
}

/// A message-completion event observed during the sweep, replayed in shard
/// order so latency pushes, per-source counts, the outstanding-message
/// decrement, and recovery-convergence checks happen in the serial
/// engine's ascending-router order.
#[derive(Debug, Clone, Copy)]
pub(super) enum Completion {
    /// A measured unicast message's last flit ejected.
    Unicast { src: u32, created: u64, at: u64 },
    /// A multicast child covered `covered` destinations of its parent.
    ParentPart { parent: u32, covered: u32, at: u64 },
}

/// Per-shard outbox: everything a shard produces that crosses shard
/// boundaries or mutates global state. Persistent across cycles so the
/// steady state allocates nothing; replayed and cleared at each cycle
/// boundary.
#[derive(Debug, Default)]
pub(super) struct ShardBuf {
    /// Cross-router flit handoffs: `(router, port, vc, flit, arrival)`.
    pub deliveries: Vec<(usize, u8, u16, Flit, u64)>,
    /// Upstream credit returns: `(router, port, vc)`.
    pub credit_returns: Vec<(usize, u8, u16)>,
    /// RF-multicast engine enqueues: `(cluster, parent)`.
    pub mc_enqueues: Vec<(usize, u32)>,
    /// Completions to replay (see [`Completion`]).
    pub completions: Vec<Completion>,
    /// Buffered telemetry operations (parallel sweeps only).
    pub tel_ops: Vec<TelOp>,
    /// Buffered flit-trace events (parallel sweeps only; the cap is
    /// applied at replay).
    pub trace: Vec<FlitEvent>,
    /// Switch-allocation request scratch, one list per output slot.
    pub sa_requests: Vec<Vec<(u8, u16, i8)>>,
    /// Scalar statistics deltas, added to `RunStats` at replay.
    pub ejected_flits: u64,
    pub flit_latency_sum: u64,
    pub hops_sum: u64,
    pub hop_packets: u64,
    pub link_byte_hops: u64,
    pub rf_bytes: u64,
    /// Whether any switch grant happened in this shard (watchdog food).
    pub progress: bool,
    /// Routers visited by the last `run_shard` (ledger observability;
    /// written only by the shard that owns this buffer).
    pub swept: u64,
    /// Wall-clock nanoseconds the last `run_shard` took, when `timed`.
    pub sweep_ns: u64,
    /// Record per-sweep wall time (set at build only when the run ledger
    /// is enabled on the sharded engine; the serial path never reads the
    /// clock inside the sweep).
    pub timed: bool,
}

impl ShardBuf {
    pub fn new(max_ports: usize) -> Self {
        Self {
            sa_requests: vec![Vec::new(); max_ports],
            ..Default::default()
        }
    }
}

/// One shard's mutable view of the network for a single `step_routers`
/// sweep: the router/stamp/statistics slices it owns (indexed relative to
/// `base`), shared read-only state, and its outbox.
pub(super) struct Sweep<'a> {
    pub sh: &'a SweepShared<'a>,
    /// Global id of `routers[0]`.
    pub base: usize,
    pub routers: &'a mut [Router],
    pub stamps: &'a mut [u64],
    /// This shard's slice of `RunStats::activity::router_bytes`.
    pub router_bytes: &'a mut [u64],
    /// This shard's slice of `RunStats::port_flits` (stride `max_ports`).
    pub port_flits: &'a mut [u64],
    /// This shard's slice of `RunStats::per_dest`.
    pub per_dest: &'a mut [u32],
    pub packets: PacketAccess<'a>,
    pub tel: TelSink<'a>,
    pub trace: TraceSink<'a>,
    pub buf: &'a mut ShardBuf,
}

impl Sweep<'_> {
    /// Steps every active router in this shard through the full pipeline,
    /// in ascending router order (the serial engine's visit order).
    pub fn run_shard(&mut self) {
        let t0 = self.buf.timed.then(std::time::Instant::now);
        let e = self.sh.epoch;
        let mut swept: u64 = 0;
        for rl in 0..self.routers.len() {
            if self.stamps[rl] != e {
                continue;
            }
            swept += 1;
            let r = self.base + rl;
            self.deliver_arrivals(r);
            self.step_injector(r);
            self.step_va(r);
            self.step_sa(r);
            if !self.routers[rl].quiescent() {
                self.stamps[rl] = e + 1;
            }
        }
        self.buf.swept = swept;
        if let Some(t0) = t0 {
            self.buf.sweep_ns = t0.elapsed().as_nanos() as u64;
        }
    }

    /// Whether any telemetry hook should fire.
    #[inline]
    pub fn tel_on(&self) -> bool {
        !matches!(self.tel, TelSink::Off)
    }

    /// Routes one telemetry operation to the shard's sink.
    #[inline]
    pub fn tel(&mut self, op: TelOp) {
        match &mut self.tel {
            TelSink::Off => {}
            TelSink::Direct(t) => t.apply_op(self.sh.cycle, op),
            TelSink::Buffer => self.buf.tel_ops.push(op),
        }
    }

    /// Whether the flit trace is recording.
    #[inline]
    pub fn trace_on(&self) -> bool {
        !matches!(self.trace, TraceSink::Off)
    }

    /// Records a flit-trace event on the shard's sink.
    pub fn trace_event(&mut self, packet: u32, flit: u32, router: usize, kind: FlitEventKind) {
        let ev = FlitEvent { cycle: self.sh.cycle, packet, flit, router, kind };
        match &mut self.trace {
            TraceSink::Off => {}
            TraceSink::Direct { events, dropped, limit } => {
                if events.len() < *limit {
                    events.push(ev);
                } else {
                    **dropped += 1;
                }
            }
            TraceSink::Buffer => self.buf.trace.push(ev),
        }
    }

    /// Allocates a mid-sweep packet (tree-multicast children). Only legal
    /// on the serial path: VCT multicast forces `threads = 1`.
    pub fn new_packet(&mut self, p: PacketInfo) -> u32 {
        let PacketAccess::Owned(packets) = &mut self.packets else {
            unreachable!("tree multicast allocates packets mid-sweep; it runs serial")
        };
        packets.push(p);
        let id = (packets.len() - 1) as u32;
        if let TelSink::Direct(t) = &mut self.tel {
            let p = &packets[id as usize];
            let dest = match p.dest {
                PacketDest::Unicast(d) => d as u32,
                PacketDest::Tree(_) => u32::MAX,
            };
            t.on_packet_created(id, p.src, dest, p.created, p.measured);
        }
        id
    }

    /// Handles a flit leaving the network at `router` at time `at`.
    pub fn on_flit_ejected(&mut self, packet: u32, router: NodeId, at: u64) {
        let (measured, created, flits, ejected) = {
            let p = self.packets.get(packet);
            let ejected = p.ejected.load(Relaxed) + 1;
            p.ejected.store(ejected, Relaxed);
            (p.measured, p.created, p.flits, ejected)
        };
        if measured {
            self.buf.ejected_flits += 1;
            self.buf.flit_latency_sum += at.saturating_sub(created);
        }
        if self.tel_on() {
            self.tel(TelOp::EjectedFlit);
        }
        if ejected == flits {
            let (parent, mc_carry, src, head_grants) = {
                let p = self.packets.get(packet);
                (p.parent, p.mc_carry, p.src, p.head_grants.load(Relaxed))
            };
            if measured && head_grants > 0 {
                self.buf.hops_sum += (head_grants - 1) as u64;
                self.buf.hop_packets += 1;
            }
            if self.tel_on() {
                self.tel(TelOp::PacketDone { packet, created, head_grants, at });
            }
            if measured && !mc_carry {
                self.per_dest[router - self.base] += 1;
            }
            if mc_carry {
                let cluster = self
                    .sh
                    .cluster_of
                    .and_then(|c| c[router])
                    .expect("carry packets terminate at cluster transmitters");
                let parent = parent.expect("carry packets have a parent");
                self.buf.mc_enqueues.push((cluster, parent));
            } else if let Some(par) = parent {
                self.buf.completions.push(Completion::ParentPart { parent: par, covered: 1, at });
            } else if measured {
                self.buf.completions.push(Completion::Unicast { src, created, at });
            }
        }
    }
}
