//! The cycle engine: arrivals, route computation / VC allocation,
//! switch allocation, flit movement, and completion bookkeeping.
//!
//! The per-router pipeline stages live on [`Sweep`] — one shard's view of
//! the network — so the same code serves the serial engine (one shard,
//! direct telemetry) and the sharded engine (`SimConfig::threads` worker
//! shards, buffered side effects replayed in shard order). `Network`
//! keeps the orchestration: shard construction, worker dispatch, the
//! deterministic replay, and the outbox application.

#[allow(clippy::wildcard_imports)]
use super::*;
use std::sync::atomic::Ordering::Relaxed;
use sweep::{Completion, PacketAccess, Sweep, SweepShared, TelSink, TraceSink};

impl Network {

    /// Runs the workload for the configured warmup + measurement window,
    /// then drains measured packets (up to the drain limit), and returns
    /// the collected statistics.
    ///
    /// While measured packets are outstanding a forward-progress watchdog
    /// ([`SimConfig::watchdog_cycles`]) monitors the run: if no switch
    /// grant happens anywhere for a full watchdog window (deadlock), or no
    /// measured message completes for four windows despite grants
    /// (livelock), the run stops early with a structured
    /// [`crate::HealthReport`] in [`RunStats::health`] instead of spinning
    /// silently to the drain limit.
    pub fn run(&mut self, workload: &mut dyn Workload) -> RunStats {
        let horizon = self.config.warmup_cycles + self.config.measure_cycles;
        let limit = horizon + self.config.drain_cycles;
        let watchdog = self.config.watchdog_cycles;
        let mut buf = Vec::new();
        while self.cycle < horizon || (self.measured_outstanding > 0 && self.cycle < limit) {
            buf.clear();
            workload.messages_at(self.cycle, &mut buf);
            for spec in buf.drain(..) {
                self.inject_message(spec);
            }
            self.step();
            if watchdog > 0 && self.measured_outstanding > 0 {
                let stalled = self.cycle.saturating_sub(self.last_progress);
                let starved = self.cycle.saturating_sub(self.last_completion);
                if stalled >= watchdog || starved >= watchdog.saturating_mul(4) {
                    self.stats.health =
                        Some(self.health_report(stalled, starved, stalled >= watchdog));
                    self.tel_event(telemetry::TimelineEventKind::WatchdogFired);
                    break;
                }
            }
        }
        self.stats.saturated = self.measured_outstanding > 0;
        self.stats.end_cycle = self.cycle;
        self.stats.activity.cycles =
            self.cycle.saturating_sub(self.config.warmup_cycles).max(1);
        self.stats.finalize();
        // Telemetry closes its partial final interval and hands the report
        // to the outgoing stats before the move below; recovery tracking
        // drains its per-fault records the same way.
        self.finish_telemetry();
        self.finish_recovery();
        self.finish_ledger();
        // Return the accumulated statistics by move — the per-message
        // latency and per-router activity vectors can run to megabytes
        // and were previously cloned once per experiment. The network
        // keeps a fresh (zeroed) collector, so a subsequent `run` starts
        // a new measurement instead of accumulating; the watchdog report
        // stays readable through [`Network::health`].
        let n = self.routers.len();
        let max_dist = self.stats.distance_histogram.len().saturating_sub(1);
        let mut fresh = RunStats::with_ports(n, max_dist, self.max_ports);
        if self.config.collect_pair_counts {
            fresh.pair_counts = vec![0; n * n];
        }
        fresh.health = self.stats.health;
        std::mem::replace(&mut self.stats, fresh)
    }

    /// Records the completion of one measured message from source `src`
    /// created at `created` whose final flit landed at `at` — the single
    /// site for the latency push, per-source count, outstanding-count
    /// decrement, and watchdog completion stamp.
    fn record_completion(&mut self, src: u32, created: u64, at: u64) {
        let latency = at.saturating_sub(created);
        self.stats.completed_messages += 1;
        self.stats.message_latency_sum += latency;
        self.stats.message_latencies.push(latency.min(u32::MAX as u64) as u32);
        self.stats.per_source[src as usize] += 1;
        self.measured_outstanding -= 1;
        self.last_completion = at;
        if self.recovery.is_some() {
            self.recovery_note_completion(latency, at);
        }
    }

    pub(super) fn complete_parent_part(&mut self, parent: u32, covered: u32, at: u64) {
        let p = &mut self.parents[parent as usize];
        assert!(p.remaining >= covered, "multicast over-completion");
        p.remaining -= covered;
        if p.remaining == 0 && p.measured {
            let (src, created) = (p.src, p.created);
            self.record_completion(src, created, at);
        }
    }

    /// Advances the simulation by one cycle.
    pub fn step(&mut self) {
        self.counting = self.cycle >= self.config.warmup_cycles;
        self.step_faults();
        self.step_reconfig();
        self.apply_pending_injections();
        self.step_mc_engine();
        self.step_routers();
        self.apply_outboxes();
        self.cycle += 1;
        self.step_telemetry();
        self.step_ledger();
    }

    pub(super) fn step_routers(&mut self) {
        // Active-router scheduling: visit only routers with (possible)
        // work. `active_stamp[r] == e` means "visit r in sweep e"; each
        // shard scans its slice of the stamp vector in ascending router id
        // (the push order into the delivery/credit outboxes depends on
        // visit order, and downstream arrival interleaving is
        // order-sensitive) and a visited router re-stamps itself for the
        // next sweep while it is non-quiescent. Skipping a quiescent
        // router is bit-identical to visiting it because a visit to one is
        // a pure no-op (the VA round-robin pointer is derived from the
        // cycle count, not stored and rotated). The O(n) stamp scan is
        // deliberate: it is a dense sequential read, far cheaper than
        // maintaining a sorted worklist.
        let e = self.active_epoch;
        self.active_epoch = e + 1;
        let n = self.routers.len();
        let shared = SweepShared {
            cycle: self.cycle,
            counting: self.counting,
            epoch: e,
            config: &self.config,
            dims: self.dims,
            fabric: self.fabric,
            base_ports: &self.base_ports,
            max_ports: self.max_ports,
            base_table: self.base_table.as_deref(),
            port_table: self.port_table.as_deref(),
            sp_dist: self.sp_dist.as_deref(),
            escape_table: self.escape_table.as_deref(),
            cluster_of: self.mc.as_ref().map(|mc| mc.cluster_of.as_slice()),
            rf_accepting: self.rf_accepting(),
            injection_stalled: self.injection_stalled(),
        };
        let trace_limit = self.config.flit_trace.limit;
        // Sharded sweep-phase wall time, for the ledger's barrier-wait
        // attribution; stays `None` on the serial path and when the
        // ledger is off.
        let mut sweep_wall_ns: Option<u64> = None;
        if self.sweep_threads <= 1 {
            // Serial engine: one shard with exclusive packet access (tree
            // multicast may allocate children mid-sweep) and direct
            // telemetry/trace sinks — the pre-sharding cost profile.
            let mut shard = Sweep {
                sh: &shared,
                base: 0,
                routers: &mut self.routers,
                stamps: &mut self.active_stamp,
                router_bytes: &mut self.stats.activity.router_bytes,
                port_flits: &mut self.stats.port_flits,
                per_dest: &mut self.stats.per_dest,
                packets: PacketAccess::Owned(&mut self.packets),
                tel: match self.telemetry.as_deref_mut() {
                    Some(t) => TelSink::Direct(t),
                    None => TelSink::Off,
                },
                trace: if trace_limit > 0 {
                    TraceSink::Direct {
                        events: &mut self.flit_trace,
                        dropped: &mut self.flit_trace_dropped,
                        limit: trace_limit,
                    }
                } else {
                    TraceSink::Off
                },
                buf: &mut self.shard_bufs[0],
            };
            shard.run_shard();
        } else {
            // Sharded engine: split the router array (and every
            // router-indexed slice) into contiguous per-shard views, hand
            // one to each pool worker behind a take-once mutex, and run
            // the sweep between the pool's cycle-boundary barriers. All
            // side effects land in the shard buffers for ordered replay.
            let tel_on = self.telemetry.is_some();
            let mut tasks: Vec<std::sync::Mutex<Option<Sweep<'_>>>> =
                Vec::with_capacity(self.sweep_threads);
            let mut routers = &mut self.routers[..];
            let mut stamps = &mut self.active_stamp[..];
            let mut rbytes = &mut self.stats.activity.router_bytes[..];
            let mut pflits = &mut self.stats.port_flits[..];
            let mut pdest = &mut self.stats.per_dest[..];
            let mut bufs = &mut self.shard_bufs[..];
            let packets = &self.packets[..];
            for (start, end) in sweep::shard_ranges(n, self.sweep_threads) {
                let len = end - start;
                let (r0, r1) = routers.split_at_mut(len);
                routers = r1;
                let (s0, s1) = stamps.split_at_mut(len);
                stamps = s1;
                let (rb0, rb1) = rbytes.split_at_mut(len);
                rbytes = rb1;
                let (pf0, pf1) = pflits.split_at_mut(len * self.max_ports);
                pflits = pf1;
                let (pd0, pd1) = pdest.split_at_mut(len);
                pdest = pd1;
                let (b0, b1) = bufs.split_at_mut(1);
                bufs = b1;
                tasks.push(std::sync::Mutex::new(Some(Sweep {
                    sh: &shared,
                    base: start,
                    routers: r0,
                    stamps: s0,
                    router_bytes: rb0,
                    port_flits: pf0,
                    per_dest: pd0,
                    packets: PacketAccess::Shared(packets),
                    tel: if tel_on { TelSink::Buffer } else { TelSink::Off },
                    trace: if trace_limit > 0 { TraceSink::Buffer } else { TraceSink::Off },
                    buf: &mut b0[0],
                })));
            }
            let tasks = &tasks;
            // Wall-clock the whole sweep phase only when the ledger will
            // consume it (per-shard barrier wait = this total minus the
            // shard's own sweep time).
            let t0 = self.ledger.is_some().then(std::time::Instant::now);
            self.pool
                .as_ref()
                .expect("sharded engine builds its worker pool")
                .scoped_run(&|i| {
                    let mut shard = tasks[i]
                        .lock()
                        .expect("shard task mutex")
                        .take()
                        .expect("one shard task per worker");
                    shard.run_shard();
                });
            sweep_wall_ns = t0.map(|t| t.elapsed().as_nanos() as u64);
        }
        if self.ledger.is_some() {
            self.ledger_note_sweep(sweep_wall_ns);
        }
        self.replay_shards();
    }

    /// Replays every shard buffer in shard order — ascending router order,
    /// the serial engine's visit order — so telemetry records, trace
    /// events, statistics, and message completions land in the
    /// bit-identical sequence the single-threaded engine produces. The
    /// serial path uses the same replay for its statistics deltas and
    /// completions (its telemetry/trace applied directly during the
    /// sweep), keeping the two engines on one code path.
    fn replay_shards(&mut self) {
        let now = self.cycle;
        let trace_limit = self.config.flit_trace.limit;
        for si in 0..self.shard_bufs.len() {
            if let Some(t) = self.telemetry.as_deref_mut() {
                for op in self.shard_bufs[si].tel_ops.drain(..) {
                    t.apply_op(now, op);
                }
            } else {
                self.shard_bufs[si].tel_ops.clear();
            }
            for i in 0..self.shard_bufs[si].trace.len() {
                let ev = self.shard_bufs[si].trace[i];
                if self.flit_trace.len() < trace_limit {
                    self.flit_trace.push(ev);
                } else {
                    self.flit_trace_dropped += 1;
                }
            }
            self.shard_bufs[si].trace.clear();
            {
                let b = &mut self.shard_bufs[si];
                self.stats.ejected_flits += std::mem::take(&mut b.ejected_flits);
                self.stats.flit_latency_sum += std::mem::take(&mut b.flit_latency_sum);
                self.stats.hops_sum += std::mem::take(&mut b.hops_sum);
                self.stats.hop_packets += std::mem::take(&mut b.hop_packets);
                self.stats.activity.link_byte_hops += std::mem::take(&mut b.link_byte_hops);
                self.stats.activity.rf_bytes += std::mem::take(&mut b.rf_bytes);
            }
            if std::mem::take(&mut self.shard_bufs[si].progress) {
                self.last_progress = now;
            }
            for i in 0..self.shard_bufs[si].completions.len() {
                match self.shard_bufs[si].completions[i] {
                    Completion::Unicast { src, created, at } => {
                        self.record_completion(src, created, at);
                    }
                    Completion::ParentPart { parent, covered, at } => {
                        self.complete_parent_part(parent, covered, at);
                    }
                }
            }
            self.shard_bufs[si].completions.clear();
        }
    }

    /// Marks router `r` for a visit on the next `step_routers` sweep.
    /// Call sites are the points where work can appear at a quiescent
    /// router: flit deliveries and message injections. Credit returns
    /// alone never require a mark — VA/SA only act on occupied VCs, and
    /// any packet waiting for those credits keeps its holder non-quiescent.
    #[inline]
    pub(super) fn mark_active(&mut self, r: usize) {
        self.active_stamp[r] = self.active_epoch;
    }

    /// Marks every router active — cheap insurance around rare global
    /// events (fault arrivals, RF retuning) whose reach is hard to bound
    /// locally. Visits to routers that turn out to be idle are no-ops.
    pub(super) fn mark_all_active(&mut self) {
        for r in 0..self.routers.len() {
            self.mark_active(r);
        }
    }

    pub(super) fn apply_outboxes(&mut self) {
        // Indexed drains instead of `mem::take`: the outbox vectors keep
        // their capacity across cycles, so the steady state allocates
        // nothing here. A delivered flit is new work for the target
        // router, so it is marked active; credit returns and multicast
        // enqueues never wake a quiescent router on their own.
        //
        // The network-level `mc_enqueues` (pushed by the serial injection
        // phase) drain before the shard buffers' sweep-time pushes,
        // preserving the serial engine's append order.
        for i in 0..self.mc_enqueues.len() {
            let (cluster, parent) = self.mc_enqueues[i];
            self.mc_queues[cluster].push_back(parent);
        }
        self.mc_enqueues.clear();
        for si in 0..self.shard_bufs.len() {
            for i in 0..self.shard_bufs[si].deliveries.len() {
                let (router, port, vc, flit, arrival) = self.shard_bufs[si].deliveries[i];
                self.routers[router].inputs[port as usize]
                    .arrivals
                    .push_back((arrival, vc, flit));
                self.mark_active(router);
            }
            self.shard_bufs[si].deliveries.clear();
            for i in 0..self.shard_bufs[si].credit_returns.len() {
                let (router, port, vc) = self.shard_bufs[si].credit_returns[i];
                self.routers[router].outputs[port as usize].vcs[vc as usize].credits += 1;
            }
            self.shard_bufs[si].credit_returns.clear();
            for i in 0..self.shard_bufs[si].mc_enqueues.len() {
                let (cluster, parent) = self.shard_bufs[si].mc_enqueues[i];
                self.mc_queues[cluster].push_back(parent);
            }
            self.shard_bufs[si].mc_enqueues.clear();
        }
    }
}

impl Sweep<'_> {

    pub(super) fn deliver_arrivals(&mut self, r: usize) {
        let rl = r - self.base;
        let now = self.sh.cycle;
        for port in 0..self.sh.num_ports(r) {
            loop {
                let front = self.routers[rl].inputs[port].arrivals.front().copied();
                match front {
                    Some((at, vc, flit)) if at <= now => {
                        self.routers[rl].inputs[port].arrivals.pop_front();
                        if flit.is_head() {
                            self.routers[rl].claim_vc(port, vc, flit.packet);
                        }
                        self.routers[rl].inputs[port].vcs[vc as usize].buffer.push_back(flit);
                        if self.tel_on() {
                            self.tel(sweep::TelOp::BufferPush(r as u32));
                            // Tree-multicast packets fork mid-network;
                            // only unicast packets (RF-multicast carriers
                            // included) get hop chains.
                            if flit.is_head()
                                && matches!(
                                    self.packets.get(flit.packet).dest,
                                    PacketDest::Unicast(_)
                                )
                            {
                                self.tel(sweep::TelOp::HopArrived {
                                    packet: flit.packet,
                                    r: r as u32,
                                    port: port as u8,
                                    at,
                                });
                            }
                        }
                    }
                    _ => break,
                }
            }
        }
    }

    /// Route computation + VC allocation for head flits.
    pub(super) fn step_va(&mut self, r: usize) {
        let rl = r - self.base;
        let now = self.sh.cycle;
        let escape_vcs = self.sh.config.vcs_escape;
        let depth = self.sh.config.buffer_depth as u32;
        // The VA port round-robin pointer advances once per cycle on every
        // router from an initial offset of `r`, so it is a pure function
        // of (router, cycle). Deriving it here instead of storing and
        // rotating a field keeps idle-router visits side-effect free.
        let np = self.sh.num_ports(r);
        let rr_base = ((r as u64 + now) % np as u64) as usize;
        for port_off in 0..np {
            let port = (rr_base + port_off) % np;
            if !self.routers[rl].inputs[port].exists {
                continue;
            }
            // VA never claims or releases VCs, so `occupied` is stable
            // across this loop and can be walked by index without cloning.
            let occ_len = self.routers[rl].inputs[port].occupied.len();
            for oi in 0..occ_len {
                let vc = self.routers[rl].inputs[port].occupied[oi];
                let vci = vc as usize;
                let (needs_va, front, packet_id) = {
                    let v = &self.routers[rl].inputs[port].vcs[vci];
                    let needs = !v.allocated
                        && (!v.mc_routed || v.mc_branches.iter().any(|b| b.out_vc.is_none()));
                    (needs, v.buffer.front().copied(), v.cur_packet)
                };
                if !needs_va {
                    continue;
                }
                let Some(flit) = front else { continue };
                if !flit.is_head() || flit.eligible > now {
                    continue;
                }
                let packet_id = packet_id.expect("claimed VC has a packet");
                match self.packets.get(packet_id).dest {
                    PacketDest::Unicast(dest) => {
                        self.va_unicast(r, port, vci, packet_id, dest, escape_vcs, depth, now);
                    }
                    PacketDest::Tree(set) => {
                        self.va_tree(r, port, vci, packet_id, set, escape_vcs, depth, now);
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn va_unicast(
        &mut self,
        r: usize,
        port: usize,
        vci: usize,
        packet: u32,
        dest: NodeId,
        escape_vcs: usize,
        depth: u32,
        now: u64,
    ) {
        let rl = r - self.base;
        let total = self.sh.config.total_vcs();
        let on_escape = vci < escape_vcs;
        let grant = if on_escape {
            let out = self.sh.escape_port(r, dest) as usize;
            alloc_out_vc(&mut self.routers[rl].outputs, out, 0..escape_vcs, packet, depth)
                .map(|ov| (out, ov))
        } else {
            let mesh_only = self.packets.get(packet).mesh_only.load(Relaxed);
            let mut out = if mesh_only {
                self.sh.escape_port(r, dest) as usize
            } else {
                self.sh.route_port(r, dest) as usize
            };
            // A draining reconfiguration closes the RF ports to new
            // packets; route over the mesh instead.
            if out == self.sh.rf_port(r) && !self.sh.rf_accepting {
                out = self.sh.escape_port(r, dest) as usize;
            }
            let mut grant =
                alloc_out_vc(&mut self.routers[rl].outputs, out, escape_vcs..total, packet, depth)
                    .map(|ov| (out, ov));
            // HPCA-2008 contention avoidance: a packet blocked on a busy
            // shortcut may adaptively take the mesh route instead, but only
            // once the wait already exceeds the estimated extra cost of the
            // mesh detour (≈3 cycles per extra hop); it then commits to XY
            // so the detour cannot loop back.
            if grant.is_none()
                && out == self.sh.rf_port(r)
                && self.sh.config.adaptive_shortcut_routing
            {
                let blocked = self.routers[rl].inputs[port].vcs[vci].va_blocked;
                let extra_hops = self
                    .sh
                    .sp_dist
                    .map(|dm| {
                        let n = self.sh.dims.nodes();
                        self.sh.fabric.base_route_len(r, dest).saturating_sub(dm[r * n + dest])
                    })
                    .unwrap_or(0);
                if blocked >= 3 * extra_hops {
                    let mesh = self.sh.escape_port(r, dest) as usize;
                    grant = alloc_out_vc(
                        &mut self.routers[rl].outputs,
                        mesh,
                        escape_vcs..total,
                        packet,
                        depth,
                    )
                    .map(|ov| (mesh, ov));
                    if grant.is_some() {
                        self.packets.get(packet).mesh_only.store(true, Relaxed);
                    }
                }
            }
            grant.or_else(|| {
                let esc = self.sh.escape_port(r, dest) as usize;
                alloc_out_vc(&mut self.routers[rl].outputs, esc, 0..escape_vcs, packet, depth)
                    .map(|ov| (esc, ov))
            })
        };
        let granted = grant.is_some();
        let v = &mut self.routers[rl].inputs[port].vcs[vci];
        match grant {
            Some((out, ovc)) => {
                v.allocated = true;
                v.out_port = out as u8;
                v.out_vc = ovc;
                v.va_blocked = 0;
                if let Some(f) = v.buffer.front_mut() {
                    f.eligible = now + 1;
                }
            }
            None => v.va_blocked += 1,
        }
        if self.tel_on() {
            if granted {
                self.tel(sweep::TelOp::HopVa { packet });
            } else {
                self.tel(sweep::TelOp::VaStall);
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    pub(super) fn va_tree(
        &mut self,
        r: usize,
        port: usize,
        vci: usize,
        packet: u32,
        set: DestSet,
        escape_vcs: usize,
        depth: u32,
        now: u64,
    ) {
        let rl = r - self.base;
        let total = self.sh.config.total_vcs();
        // Compute the base-route tree partition once.
        if !self.routers[rl].inputs[port].vcs[vci].mc_routed {
            let (groups, glen) = partition_tree(
                r,
                self.sh.local_port(r) as u8,
                |d| self.sh.base_port_toward(r, d),
                &set,
            );
            debug_assert!(glen > 0, "tree packet with no progress");
            // Child packets first (needs `&mut self`), then the branch
            // list is rebuilt in place so its capacity is reused. A
            // single-group tree keeps forwarding the original packet.
            let mut children: [u32; MAX_ROUTER_PORTS] = [packet; MAX_ROUTER_PORTS];
            if glen > 1 {
                let (created, measured, flits, bytes, parent, src) = {
                    let p = self.packets.get(packet);
                    (p.created, p.measured, p.flits, p.bytes, p.parent, p.src)
                };
                for (g, child) in children.iter_mut().enumerate().take(glen) {
                    *child = self.new_packet(PacketInfo::new(
                        PacketDest::Tree(groups[g].1),
                        src,
                        flits,
                        bytes,
                        created,
                        measured,
                        parent,
                        false,
                    ));
                }
            }
            let v = &mut self.routers[rl].inputs[port].vcs[vci];
            v.mc_branches.clear();
            for g in 0..glen {
                v.mc_branches.push(McBranch {
                    port: groups[g].0,
                    out_vc: None,
                    packet: children[g],
                });
            }
            v.mc_routed = true;
        }
        // Allocate remaining branches (adaptive class first, escape
        // fallback — tree hops follow the base route so escape semantics
        // hold).
        let branch_count = self.routers[rl].inputs[port].vcs[vci].mc_branches.len();
        let had_allocation = self.routers[rl].inputs[port].vcs[vci]
            .mc_branches
            .iter()
            .any(|b| b.out_vc.is_some());
        let mut any_allocated = false;
        for b in 0..branch_count {
            let branch = self.routers[rl].inputs[port].vcs[vci].mc_branches[b];
            if branch.out_vc.is_some() {
                continue;
            }
            let out = branch.port as usize;
            let grant =
                alloc_out_vc(&mut self.routers[rl].outputs, out, escape_vcs..total, branch.packet, depth)
                    .or_else(|| {
                        alloc_out_vc(&mut self.routers[rl].outputs, out, 0..escape_vcs, branch.packet, depth)
                    });
            if let Some(ovc) = grant {
                self.routers[rl].inputs[port].vcs[vci].mc_branches[b].out_vc = Some(ovc);
                any_allocated = true;
            }
        }
        // Release the head flit into switch allocation on the *first*
        // successful branch allocation only.
        if any_allocated && !had_allocation {
            if let Some(f) = self.routers[rl].inputs[port].vcs[vci].buffer.front_mut() {
                if f.is_head() && f.eligible <= now {
                    f.eligible = now + 1;
                }
            }
        }
        if !any_allocated && !had_allocation && self.tel_on() {
            self.tel(sweep::TelOp::VaStall);
        }
    }

    /// Switch allocation + traversal: grant flits to output ports.
    pub(super) fn step_sa(&mut self, r: usize) {
        let rl = r - self.base;
        let now = self.sh.cycle;
        let depth_flits = self.sh.config.link_width.bytes() as u64;
        // Collect requests per output port.
        for reqs in &mut self.buf.sa_requests {
            reqs.clear();
        }
        let np = self.sh.num_ports(r);
        for port in 0..np {
            if !self.routers[rl].inputs[port].exists {
                continue;
            }
            // Request collection only reads router state; `occupied` is
            // stable here (grants, which release VCs, come afterwards).
            let occ_len = self.routers[rl].inputs[port].occupied.len();
            for oi in 0..occ_len {
                let vc = self.routers[rl].inputs[port].occupied[oi];
                let v = &self.routers[rl].inputs[port].vcs[vc as usize];
                let Some(front) = v.buffer.front() else { continue };
                if front.eligible > now {
                    continue;
                }
                if v.allocated {
                    self.buf.sa_requests[v.out_port as usize].push((port as u8, vc, -1));
                } else {
                    for (bi, b) in v.mc_branches.iter().enumerate() {
                        if b.out_vc.is_some() && v.mc_front_sent & (1 << bi) == 0 {
                            self.buf.sa_requests[b.port as usize].push((port as u8, vc, bi as i8));
                        }
                    }
                }
            }
        }
        let mut used_input: [Option<(u8, u16)>; MAX_ROUTER_PORTS] = [None; MAX_ROUTER_PORTS];
        for out in 0..np {
            if !self.routers[rl].outputs[out].exists {
                continue;
            }
            // `try_grant` never touches `sa_requests`, so the request list
            // can be walked by index — no take/put-back churn.
            let reqs_len = self.buf.sa_requests[out].len();
            if reqs_len == 0 {
                continue;
            }
            let mut budget = self.routers[rl].outputs[out].capacity;
            let start = self.routers[rl].outputs[out].rr % reqs_len;
            for i in 0..reqs_len {
                if budget == 0 {
                    break;
                }
                let (in_port, vc, branch) = self.buf.sa_requests[out][(start + i) % reqs_len];
                let ip = in_port as usize;
                // One buffer read per input port per cycle, except multicast
                // fanout of the same front flit.
                if let Some(used) = used_input[ip] {
                    if used != (in_port, vc) || branch < 0 {
                        continue;
                    }
                }
                if self.try_grant(r, ip, vc as usize, out, branch, now, depth_flits) {
                    used_input[ip] = Some((in_port, vc));
                    budget -= 1;
                    self.routers[rl].outputs[out].rr =
                        self.routers[rl].outputs[out].rr.wrapping_add(1);
                    // A 16B RF channel drains several buffered narrow flits
                    // of the same packet in one cycle (burst drain).
                    while budget > 0
                        && branch < 0
                        && self.try_grant(r, ip, vc as usize, out, branch, now, depth_flits)
                    {
                        budget -= 1;
                    }
                }
            }
            if self.tel_on() {
                // Requests left ungranted this cycle lost switch
                // arbitration (to competition, capacity, or credits).
                let granted = (self.routers[rl].outputs[out].capacity - budget) as u64;
                self.tel(sweep::TelOp::SaStalls((reqs_len as u64).saturating_sub(granted)));
            }
        }
    }

    /// Attempts one switch-allocation grant. Returns true on success.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn try_grant(
        &mut self,
        r: usize,
        port: usize,
        vci: usize,
        out: usize,
        branch: i8,
        now: u64,
        width_bytes: u64,
    ) -> bool {
        let rl = r - self.base;
        let is_ejection = self.routers[rl].outputs[out].target.is_none();
        let (flit, out_vc, sent_packet, is_mc, pop) = {
            let v = &self.routers[rl].inputs[port].vcs[vci];
            let Some(&front) = v.buffer.front() else { return false };
            if front.eligible > now {
                return false;
            }
            if branch < 0 {
                (front, v.out_vc, front.packet, false, true)
            } else {
                let b = v.mc_branches[branch as usize];
                let Some(ovc) = b.out_vc else { return false };
                (front, ovc, b.packet, true, false)
            }
        };
        // Credit check for non-ejection ports.
        if !is_ejection && self.routers[rl].outputs[out].vcs[out_vc as usize].credits == 0 {
            if self.tel_on() {
                self.tel(sweep::TelOp::CreditStall);
                // Body-flit credit stalls surface in tail serialization;
                // only the head's count toward the hop's credit-wait.
                if !is_mc && flit.is_head() {
                    self.tel(sweep::TelOp::HopCredit { packet: sent_packet });
                }
            }
            return false;
        }
        // Every grant is forward progress for the watchdog.
        self.buf.progress = true;
        let (packet_flits, packet_bytes) = {
            let p = self.packets.get(sent_packet);
            (p.flits, p.bytes)
        };
        let is_tail = flit.is_tail(packet_flits);
        let mut first_grant = false;
        if flit.is_head() {
            let hg = &self.packets.get(sent_packet).head_grants;
            let grants = hg.load(Relaxed);
            first_grant = grants == 0;
            hg.store(grants + 1, Relaxed);
        }
        // Payload bytes carried by this flit (the tail may be partial).
        let flit_bytes = if is_tail {
            (packet_bytes as u64).saturating_sub((packet_flits as u64 - 1) * width_bytes).max(1)
        } else {
            width_bytes
        };

        if self.trace_on() {
            let kind = if is_ejection {
                telemetry::FlitEventKind::Ejected
            } else {
                telemetry::FlitEventKind::Granted { out_port: out as u8 }
            };
            self.trace_event(sent_packet, flit.idx, r, kind);
        }
        if self.tel_on() {
            self.tel(sweep::TelOp::Grant {
                r: r as u32,
                out: out as u8,
                is_rf: out == self.sh.rf_port(r),
                packet: sent_packet,
                first: first_grant,
            });
            if !is_mc && flit.is_head() {
                self.tel(sweep::TelOp::HopGranted {
                    packet: sent_packet,
                    r: r as u32,
                    out: out as u8,
                });
            }
        }

        // Statistics (per payload byte; see rfnoc-power's ActivityCounters).
        if self.sh.counting {
            self.router_bytes[rl] += flit_bytes;
            self.port_flits[rl * self.sh.max_ports + out] += 1;
            if !is_ejection {
                if out == self.sh.rf_port(r) {
                    let op = &self.routers[rl].outputs[out];
                    if op.is_wire {
                        // Wire shortcuts burn repeated-wire energy over
                        // their full Manhattan length.
                        self.buf.link_byte_hops += op.shortcut_hops as u64 * flit_bytes;
                    } else {
                        self.buf.rf_bytes += flit_bytes;
                    }
                } else {
                    self.buf.link_byte_hops += flit_bytes;
                }
            }
        }

        // Move the flit.
        if is_ejection {
            if is_tail {
                self.routers[rl].outputs[out].vcs[out_vc as usize].owner = None;
            }
            self.on_flit_ejected(sent_packet, r, now + 2);
        } else {
            let (t_router, t_port) = self.routers[rl].outputs[out].target.expect("non-ejection");
            self.routers[rl].outputs[out].vcs[out_vc as usize].credits -= 1;
            if is_tail {
                self.routers[rl].outputs[out].vcs[out_vc as usize].owner = None;
            }
            let arrival = now + 2 + self.routers[rl].outputs[out].extra_latency;
            let eligible = arrival + if flit.is_head() { 2 } else { 1 };
            self.buf.deliveries.push((
                t_router,
                t_port,
                out_vc,
                Flit { packet: sent_packet, idx: flit.idx, eligible },
                arrival,
            ));
        }

        // Retire the front flit (immediately for unicast; multicast waits
        // for all branches).
        let retire = if is_mc {
            let v = &mut self.routers[rl].inputs[port].vcs[vci];
            v.mc_front_sent |= 1 << (branch as u32);
            let all = v.mc_all_sent();
            if all {
                v.mc_front_sent = 0;
            }
            all
        } else {
            pop
        };
        if retire {
            self.routers[rl].inputs[port].vcs[vci].buffer.pop_front();
            if self.tel_on() {
                self.tel(sweep::TelOp::BufferPop(r as u32));
            }
            match self.routers[rl].inputs[port].upstream {
                Some((ur, up)) => self.buf.credit_returns.push((ur, up, vci as u16)),
                None => self.routers[rl].injector.credits[vci] += 1,
            }
            if is_tail {
                self.routers[rl].release_vc(port, vci as u16);
            }
        }
        true
    }
}
