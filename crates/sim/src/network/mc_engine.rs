//! The RF-I broadcast (multicast) engine (paper §3.3).

#[allow(clippy::wildcard_imports)]
use super::*;

impl Network {

    pub(super) fn step_mc_engine(&mut self) {
        if !matches!(self.multicast, MulticastMode::Rf) {
            return;
        }
        // Temporarily detach the config to avoid aliasing `self`.
        let Some(mc) = self.mc.take() else { return };
        self.step_mc_engine_inner(&mc);
        self.mc = Some(mc);
    }

    pub(super) fn step_mc_engine_inner(&mut self, mc: &McConfig) {
        if self.mc_current.is_none() {
            let owner = mc.owner_at(self.cycle);
            if let Some(parent) = self.mc_queues[owner].pop_front() {
                let bytes = self.parents[parent as usize].bytes;
                let dests = self.parents[parent as usize].dests;
                let plan = plan_delivery(mc, &dests);
                self.mc_current = Some((
                    McTransmission {
                        parent,
                        total_flits: mc.broadcast_flits(bytes),
                        next_flit: 0,
                    },
                    plan,
                ));
            }
        }
        let Some((tx, plan)) = self.mc_current.take() else { return };
        let arrival = self.cycle + 1;
        if self.counting {
            self.stats.activity.rf_bytes += mc.rf_flit_bytes as u64;
        }
        self.tel_rf_mc_flit();
        let mut tx = tx;
        if tx.next_flit == 1.min(tx.total_flits - 1) {
            // First payload flit: receivers serving neighbour cores start
            // local distribution immediately ("a message flit is duplicated
            // and delivered as soon as it is received", Figure 4).
            let parent_info = &self.parents[tx.parent as usize];
            let bytes = parent_info.bytes;
            let created = parent_info.created;
            let measured = parent_info.measured;
            let flits = self.flits_for(bytes);
            for &(rx, dest) in &plan.forwarded {
                let pkt = self.new_packet(PacketInfo::new(
                    PacketDest::Unicast(dest),
                    rx as u32,
                    flits,
                    bytes,
                    created,
                    measured,
                    Some(tx.parent),
                    false,
                ));
                self.pending_inj.push((rx, pkt, arrival));
            }
        }
        if tx.next_flit + 1 == tx.total_flits {
            // Last flit: destinations co-located with a tuned receiver have
            // now received the whole message.
            let parent = tx.parent;
            let payload_flits = tx.total_flits - 1;
            let measured = self.parents[parent as usize].measured;
            let created = self.parents[parent as usize].created;
            for &dest in &plan.direct {
                self.complete_parent_part(parent, 1, arrival);
                if measured {
                    self.stats.per_dest[dest] += 1;
                    self.stats.ejected_flits += payload_flits as u64;
                    self.stats.flit_latency_sum +=
                        payload_flits as u64 * arrival.saturating_sub(created);
                }
            }
            self.mc_current = None;
        } else {
            tx.next_flit += 1;
            self.mc_current = Some((tx, plan));
        }
    }
}
