//! Network construction: wiring routers, links, and the RF-I overlay.

#[allow(clippy::wildcard_imports)]
use super::*;

impl Network {

    /// Builds a network from its specification.
    ///
    /// # Panics
    ///
    /// Panics if the specification is inconsistent: invalid config, more
    /// than one inbound or outbound shortcut per router (or a self-loop),
    /// shortcuts present in XY mode, an invalid fault plan, or a
    /// missing/invalid multicast configuration. Prefer
    /// [`Network::try_new`] where a structured error is wanted.
    pub fn new(spec: NetworkSpec) -> Self {
        Self::try_new(spec).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a network from its specification, rejecting inconsistent
    /// specs instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] for a degenerate config, an illegal shortcut
    /// set (out-of-range endpoint, self-loop, or more than one inbound or
    /// outbound shortcut per router), shortcuts on an XY-routed network, a
    /// fault plan naming resources outside the network, or RF multicast
    /// without an [`McConfig`].
    pub fn try_new(spec: NetworkSpec) -> Result<Self, SimError> {
        spec.config.validate()?;
        let dims = spec.dims;
        let n = dims.nodes();
        let vcs = spec.config.total_vcs();
        let depth = spec.config.buffer_depth as u32;

        if spec.routing == RoutingKind::Xy && !spec.shortcuts.is_empty() {
            return Err(SimError::ShortcutsOnXy);
        }
        check_shortcut_set(&spec.shortcuts, n)?;
        if !spec.shortcuts.is_empty() && spec.config.vcs_adaptive == 0 {
            // Escape VCs never ride RF, so a shortcut-bearing network needs
            // at least one adaptive VC (vcs_escape < total_vcs).
            return Err(SimError::Config(crate::error::ConfigError::NoAdaptiveVcs));
        }
        validate_fault_plan(&spec.faults, dims)?;
        if matches!(spec.multicast, MulticastMode::Rf) && spec.mc.is_none() {
            return Err(SimError::MissingMcConfig);
        }
        let mut rf_out: Vec<Option<NodeId>> = vec![None; n];
        let mut rf_in: Vec<Option<NodeId>> = vec![None; n];
        for s in &spec.shortcuts {
            rf_out[s.src] = Some(s.dst);
            rf_in[s.dst] = Some(s.src);
        }

        let (port_table, sp_dist) = match spec.routing {
            RoutingKind::Xy => (None, None),
            RoutingKind::ShortestPath => {
                let graph = GridGraph::with_shortcuts(dims, &spec.shortcuts);
                let dist = graph.distances();
                let tables = RoutingTables::from_distances(&graph, &dist);
                let mut pt = vec![PORT_LOCAL as u8; n * n];
                let mut dm = vec![0u32; n * n];
                for r in 0..n {
                    for d in 0..n {
                        dm[r * n + d] = dist.get(r, d);
                        if r == d {
                            continue;
                        }
                        let next = tables.next_hop(r, d);
                        pt[r * n + d] = if dims.manhattan(r, next) == 1 {
                            mesh_port(dims, r, next)
                        } else {
                            debug_assert_eq!(rf_out[r], Some(next), "non-adjacent hop without shortcut");
                            PORT_RF as u8
                        };
                    }
                }
                (Some(pt), Some(dm))
            }
        };

        // Wire up routers.
        let mut routers = Vec::with_capacity(n);
        for r in 0..n {
            let mut inputs = vec![InputPort::default(); NUM_PORTS];
            let mut outputs = vec![OutputPort::default(); NUM_PORTS];
            for port in [PORT_N, PORT_S, PORT_E, PORT_W] {
                if let Some(nb) = mesh_neighbor(dims, r, port) {
                    inputs[port].exists = true;
                    inputs[port].vcs = vec![Default::default(); vcs];
                    inputs[port].upstream = Some((nb, opposite_port(port) as u8));
                    outputs[port].exists = true;
                    outputs[port].target = Some((nb, opposite_port(port) as u8));
                    outputs[port].capacity = 1;
                    outputs[port].vcs = vec![Default::default(); vcs];
                    for v in &mut outputs[port].vcs {
                        v.credits = depth;
                    }
                }
            }
            // Local port: injection in, ejection out.
            inputs[PORT_LOCAL].exists = true;
            inputs[PORT_LOCAL].vcs = vec![Default::default(); vcs];
            inputs[PORT_LOCAL].upstream = None;
            outputs[PORT_LOCAL].exists = true;
            outputs[PORT_LOCAL].target = None;
            outputs[PORT_LOCAL].capacity = spec.config.local_port_speedup;
            outputs[PORT_LOCAL].vcs = vec![Default::default(); vcs];
            // RF port.
            if let Some(dst) = rf_out[r] {
                let hops = dims.manhattan(r, dst);
                outputs[PORT_RF].exists = true;
                outputs[PORT_RF].target = Some((dst, PORT_RF as u8));
                outputs[PORT_RF].shortcut_hops = hops;
                match spec.wire_shortcut_cycles_per_hop {
                    Some(cph) => {
                        // Conventional buffered wire: multi-cycle traversal,
                        // same width as the mesh links it replaces.
                        outputs[PORT_RF].capacity = 1;
                        outputs[PORT_RF].is_wire = true;
                        outputs[PORT_RF].extra_latency =
                            ((cph * hops as f64).ceil() as u64).saturating_sub(1);
                    }
                    None => {
                        outputs[PORT_RF].capacity = spec.config.rf_flits_per_cycle();
                    }
                }
                outputs[PORT_RF].vcs = vec![Default::default(); vcs];
                for v in &mut outputs[PORT_RF].vcs {
                    v.credits = depth;
                }
            }
            if let Some(src) = rf_in[r] {
                inputs[PORT_RF].exists = true;
                inputs[PORT_RF].vcs = vec![Default::default(); vcs];
                inputs[PORT_RF].upstream = Some((src, PORT_RF as u8));
            }
            routers.push(Router {
                inputs,
                outputs,
                injector: Injector::new(vcs, depth),
            });
        }

        let (mc_queues, vct_table) = match &spec.multicast {
            MulticastMode::Rf => {
                let mc = spec.mc.as_ref().expect("checked above");
                mc.validate(n);
                (vec![VecDeque::new(); mc.transmitters.len()], None)
            }
            MulticastMode::Vct(cfg) => (Vec::new(), Some(VctTable::new(*cfg))),
            MulticastMode::AsUnicasts => (Vec::new(), None),
        };

        let max_dist = (dims.width() - 1 + dims.height() - 1).max(1);
        let mut stats = RunStats::new(n, max_dist);
        if spec.config.collect_pair_counts {
            stats.pair_counts = vec![0; n * n];
        }
        Ok(Self {
            dims,
            routing: spec.routing,
            port_table,
            routers,
            packets: Vec::new(),
            parents: Vec::new(),
            multicast: spec.multicast,
            mc: spec.mc,
            mc_queues,
            mc_current: None,
            vct_table,
            stats,
            cycle: 0,
            measured_outstanding: 0,
            counting: false,
            deliveries: Vec::new(),
            credit_returns: Vec::new(),
            mc_enqueues: Vec::new(),
            pending_inj: Vec::new(),
            sa_requests: vec![Vec::new(); NUM_PORTS],
            sp_dist,
            flit_trace: Vec::new(),
            flit_trace_dropped: 0,
            telemetry: spec
                .config
                .telemetry
                .map(|t| Box::new(telemetry::TelemetryState::new(t, n))),
            recovery: spec.config.recovery.map(|r| Box::new(faults::RecoveryState::new(r))),
            reconfig: ReconfigState::Idle,
            reconfigurations: 0,
            active_shortcuts: spec.shortcuts,
            pending_target: None,
            failed_rf_tx: vec![false; n],
            link_failed: vec![false; n * 4],
            mesh_link_failures: 0,
            escape_table: None,
            faults: spec.faults,
            last_progress: 0,
            last_completion: 0,
            active_epoch: 1,
            active_stamp: vec![0; n],
            config: spec.config,
        })
    }
}

/// Checks every scheduled fault event against the network's topology.
fn validate_fault_plan(plan: &FaultPlan, dims: GridDims) -> Result<(), SimError> {
    let n = dims.nodes();
    let invalid = |cycle: u64, reason: String| SimError::InvalidFault { cycle, reason };
    for &(cycle, event) in plan.events() {
        match event {
            FaultEvent::ShortcutDown { src } => {
                if src >= n {
                    return Err(invalid(cycle, format!("router {src} out of range")));
                }
            }
            FaultEvent::BandDown => {}
            FaultEvent::ShortcutUp { src, dst } => {
                if src >= n || dst >= n {
                    return Err(invalid(cycle, format!("shortcut {src} -> {dst} out of range")));
                }
                if src == dst {
                    return Err(invalid(cycle, format!("shortcut at router {src} is a self-loop")));
                }
            }
            FaultEvent::MeshLinkDown { a, b } | FaultEvent::MeshLinkUp { a, b } => {
                if a >= n || b >= n || dims.manhattan(a, b) != 1 {
                    return Err(invalid(cycle, format!("no mesh link between {a} and {b}")));
                }
            }
            FaultEvent::LinkGlitch { a, b } => {
                if a >= n || b >= n || a == b {
                    return Err(invalid(cycle, format!("no link from {a} to {b}")));
                }
            }
        }
    }
    Ok(())
}
