//! Network construction: wiring routers, links, and the RF-I overlay.

#[allow(clippy::wildcard_imports)]
use super::*;

impl Network {

    /// Builds a network from its specification.
    ///
    /// # Panics
    ///
    /// Panics if the specification is inconsistent: invalid config, more
    /// than one inbound or outbound shortcut per router, shortcuts present
    /// in XY mode, or a missing/invalid multicast configuration.
    pub fn new(spec: NetworkSpec) -> Self {
        spec.config.validate();
        let dims = spec.dims;
        let n = dims.nodes();
        let vcs = spec.config.total_vcs();
        let depth = spec.config.buffer_depth as u32;

        if spec.routing == RoutingKind::Xy {
            assert!(
                spec.shortcuts.is_empty(),
                "XY routing cannot use shortcuts; use ShortestPath"
            );
        }
        let mut rf_out: Vec<Option<NodeId>> = vec![None; n];
        let mut rf_in: Vec<Option<NodeId>> = vec![None; n];
        for s in &spec.shortcuts {
            assert!(s.src < n && s.dst < n, "shortcut endpoint out of range");
            assert!(rf_out[s.src].is_none(), "router {} has two outbound shortcuts", s.src);
            assert!(rf_in[s.dst].is_none(), "router {} has two inbound shortcuts", s.dst);
            rf_out[s.src] = Some(s.dst);
            rf_in[s.dst] = Some(s.src);
        }

        let (port_table, sp_dist) = match spec.routing {
            RoutingKind::Xy => (None, None),
            RoutingKind::ShortestPath => {
                let graph = GridGraph::with_shortcuts(dims, &spec.shortcuts);
                let dist = graph.distances();
                let tables = RoutingTables::from_distances(&graph, &dist);
                let mut pt = vec![PORT_LOCAL as u8; n * n];
                let mut dm = vec![0u32; n * n];
                for r in 0..n {
                    for d in 0..n {
                        dm[r * n + d] = dist.get(r, d);
                        if r == d {
                            continue;
                        }
                        let next = tables.next_hop(r, d);
                        pt[r * n + d] = if dims.manhattan(r, next) == 1 {
                            mesh_port(dims, r, next)
                        } else {
                            debug_assert_eq!(rf_out[r], Some(next), "non-adjacent hop without shortcut");
                            PORT_RF as u8
                        };
                    }
                }
                (Some(pt), Some(dm))
            }
        };

        // Wire up routers.
        let mut routers = Vec::with_capacity(n);
        for r in 0..n {
            let mut inputs = vec![InputPort::default(); NUM_PORTS];
            let mut outputs = vec![OutputPort::default(); NUM_PORTS];
            for port in [PORT_N, PORT_S, PORT_E, PORT_W] {
                if let Some(nb) = mesh_neighbor(dims, r, port) {
                    inputs[port].exists = true;
                    inputs[port].vcs = vec![Default::default(); vcs];
                    inputs[port].upstream = Some((nb, opposite_port(port) as u8));
                    outputs[port].exists = true;
                    outputs[port].target = Some((nb, opposite_port(port) as u8));
                    outputs[port].capacity = 1;
                    outputs[port].vcs = vec![Default::default(); vcs];
                    for v in &mut outputs[port].vcs {
                        v.credits = depth;
                    }
                }
            }
            // Local port: injection in, ejection out.
            inputs[PORT_LOCAL].exists = true;
            inputs[PORT_LOCAL].vcs = vec![Default::default(); vcs];
            inputs[PORT_LOCAL].upstream = None;
            outputs[PORT_LOCAL].exists = true;
            outputs[PORT_LOCAL].target = None;
            outputs[PORT_LOCAL].capacity = spec.config.local_port_speedup;
            outputs[PORT_LOCAL].vcs = vec![Default::default(); vcs];
            // RF port.
            if let Some(dst) = rf_out[r] {
                let hops = dims.manhattan(r, dst);
                outputs[PORT_RF].exists = true;
                outputs[PORT_RF].target = Some((dst, PORT_RF as u8));
                outputs[PORT_RF].shortcut_hops = hops;
                match spec.wire_shortcut_cycles_per_hop {
                    Some(cph) => {
                        // Conventional buffered wire: multi-cycle traversal,
                        // same width as the mesh links it replaces.
                        outputs[PORT_RF].capacity = 1;
                        outputs[PORT_RF].is_wire = true;
                        outputs[PORT_RF].extra_latency =
                            ((cph * hops as f64).ceil() as u64).saturating_sub(1);
                    }
                    None => {
                        outputs[PORT_RF].capacity = spec.config.rf_flits_per_cycle();
                    }
                }
                outputs[PORT_RF].vcs = vec![Default::default(); vcs];
                for v in &mut outputs[PORT_RF].vcs {
                    v.credits = depth;
                }
            }
            if let Some(src) = rf_in[r] {
                inputs[PORT_RF].exists = true;
                inputs[PORT_RF].vcs = vec![Default::default(); vcs];
                inputs[PORT_RF].upstream = Some((src, PORT_RF as u8));
            }
            routers.push(Router {
                inputs,
                outputs,
                injector: Injector::new(vcs, depth),
                va_rr: r % NUM_PORTS,
            });
        }

        let (mc_queues, vct_table) = match &spec.multicast {
            MulticastMode::Rf => {
                let mc = spec.mc.as_ref().expect("RF multicast requires an McConfig");
                mc.validate(n);
                (vec![VecDeque::new(); mc.transmitters.len()], None)
            }
            MulticastMode::Vct(cfg) => (Vec::new(), Some(VctTable::new(*cfg))),
            MulticastMode::AsUnicasts => (Vec::new(), None),
        };

        let max_dist = (dims.width() - 1 + dims.height() - 1).max(1);
        let mut stats = RunStats::new(n, max_dist);
        if spec.config.collect_pair_counts {
            stats.pair_counts = vec![0; n * n];
        }
        Self {
            dims,
            routing: spec.routing,
            port_table,
            routers,
            packets: Vec::new(),
            parents: Vec::new(),
            multicast: spec.multicast,
            mc: spec.mc,
            mc_queues,
            mc_current: None,
            vct_table,
            stats,
            cycle: 0,
            measured_outstanding: 0,
            counting: false,
            deliveries: Vec::new(),
            credit_returns: Vec::new(),
            mc_enqueues: Vec::new(),
            pending_inj: Vec::new(),
            sa_requests: vec![Vec::new(); NUM_PORTS],
            sp_dist,
            flit_trace: Vec::new(),
            reconfig: ReconfigState::Idle,
            reconfigurations: 0,
            config: spec.config,
        }
    }
}
