//! Network construction: wiring routers, links, and the RF-I overlay.

#[allow(clippy::wildcard_imports)]
use super::*;

impl Network {

    /// Builds a network from its specification.
    ///
    /// # Panics
    ///
    /// Panics if the specification is inconsistent: invalid config,
    /// degenerate fabric, more than one inbound or outbound shortcut per
    /// router (or a self-loop), shortcuts present in XY mode, an invalid
    /// fault plan, or a missing/invalid multicast configuration. Prefer
    /// [`Network::try_new`] where a structured error is wanted.
    pub fn new(spec: NetworkSpec) -> Self {
        Self::try_new(spec).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a network from its specification, rejecting inconsistent
    /// specs instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] for a degenerate config or fabric, an illegal
    /// shortcut set (out-of-range endpoint, self-loop, or more than one
    /// inbound or outbound shortcut per router), shortcuts on an XY-routed
    /// network, a fault plan naming resources outside the network, RF
    /// multicast without an [`McConfig`], or RF broadcast multicast on a
    /// non-mesh fabric (the broadcast medium spans the mesh only).
    pub fn try_new(spec: NetworkSpec) -> Result<Self, SimError> {
        spec.config.validate()?;
        let fabric = spec.fabric;
        fabric.validate()?;
        let dims = fabric.dims();
        let n = dims.nodes();
        let vcs = spec.config.total_vcs();
        let depth = spec.config.buffer_depth as u32;
        let max_base = fabric.max_base_slots();
        let max_ports = max_base + 2;
        assert!(
            max_ports <= crate::router::MAX_ROUTER_PORTS,
            "fabric {fabric} needs {max_ports} ports per router, \
             above the engine cap of {}",
            crate::router::MAX_ROUTER_PORTS
        );
        let base_ports: Vec<u8> = (0..n).map(|r| fabric.base_slot_count(r) as u8).collect();

        if spec.routing == RoutingKind::Xy && !spec.shortcuts.is_empty() {
            return Err(SimError::ShortcutsOnXy);
        }
        check_shortcut_set(&spec.shortcuts, n)?;
        if !spec.shortcuts.is_empty() && spec.config.vcs_adaptive == 0 {
            // Escape VCs never ride RF, so a shortcut-bearing network needs
            // at least one adaptive VC (vcs_escape < total_vcs).
            return Err(SimError::Config(crate::error::ConfigError::NoAdaptiveVcs));
        }
        validate_fault_plan(&spec.faults, &fabric)?;
        if matches!(spec.multicast, MulticastMode::Rf) {
            if spec.mc.is_none() {
                return Err(SimError::MissingMcConfig);
            }
            if !fabric.is_mesh() {
                return Err(SimError::RfMulticastNeedsMesh);
            }
        }
        let mut rf_out: Vec<Option<NodeId>> = vec![None; n];
        let mut rf_in: Vec<Option<NodeId>> = vec![None; n];
        for s in &spec.shortcuts {
            rf_out[s.src] = Some(s.dst);
            rf_in[s.dst] = Some(s.src);
        }

        // Precompute the base-route port table for non-mesh fabrics; the
        // mesh keeps deriving its base route with the literal XY
        // computation (no table lookup on the escape path).
        let base_table: Option<Vec<u8>> = if fabric.is_mesh() {
            None
        } else {
            let mut bt = vec![0u8; n * n];
            for r in 0..n {
                for d in 0..n {
                    bt[r * n + d] =
                        if r == d { base_ports[r] } else { fabric.base_port(r, d) };
                }
            }
            Some(bt)
        };

        let (port_table, sp_dist) = match spec.routing {
            RoutingKind::Xy => (None, None),
            RoutingKind::ShortestPath => {
                let graph = GridGraph::from_fabric(&fabric, &spec.shortcuts);
                let dist = graph.distances();
                let tables = RoutingTables::from_distances(&graph, &dist);
                let mut pt = vec![0u8; n * n];
                let mut dm = vec![0u32; n * n];
                for r in 0..n {
                    for d in 0..n {
                        dm[r * n + d] = dist.get(r, d);
                        if r == d {
                            pt[r * n + d] = base_ports[r];
                            continue;
                        }
                        let next = tables.next_hop(r, d);
                        pt[r * n + d] = match fabric.port_between(r, next) {
                            Some(slot) => slot,
                            None => {
                                debug_assert_eq!(
                                    rf_out[r],
                                    Some(next),
                                    "non-adjacent hop without shortcut"
                                );
                                base_ports[r] + 1
                            }
                        };
                    }
                }
                (Some(pt), Some(dm))
            }
        };

        // Wire up routers, sized to each router's own degree.
        let mut routers = Vec::with_capacity(n);
        for r in 0..n {
            let base = base_ports[r] as usize;
            let mut inputs = vec![InputPort::default(); base + 2];
            let mut outputs = vec![OutputPort::default(); base + 2];
            for slot in 0..base {
                if let Some(nb) = fabric.port_neighbor(r, slot as u8) {
                    let back = fabric
                        .port_between(nb, r)
                        .expect("base fabric links are bidirectional");
                    inputs[slot].exists = true;
                    inputs[slot].vcs = vec![Default::default(); vcs];
                    inputs[slot].upstream = Some((nb, back));
                    outputs[slot].exists = true;
                    outputs[slot].target = Some((nb, back));
                    outputs[slot].capacity = 1;
                    outputs[slot].vcs = vec![Default::default(); vcs];
                    for v in &mut outputs[slot].vcs {
                        v.credits = depth;
                    }
                }
            }
            // Local port: injection in, ejection out.
            let local = base;
            inputs[local].exists = true;
            inputs[local].vcs = vec![Default::default(); vcs];
            inputs[local].upstream = None;
            outputs[local].exists = true;
            outputs[local].target = None;
            outputs[local].capacity = spec.config.local_port_speedup;
            outputs[local].vcs = vec![Default::default(); vcs];
            // RF port.
            let rf = base + 1;
            if let Some(dst) = rf_out[r] {
                let hops = fabric.base_route_len(r, dst);
                outputs[rf].exists = true;
                outputs[rf].target = Some((dst, base_ports[dst] + 1));
                outputs[rf].shortcut_hops = hops;
                match spec.wire_shortcut_cycles_per_hop {
                    Some(cph) => {
                        // Conventional buffered wire: multi-cycle traversal,
                        // same width as the mesh links it replaces.
                        outputs[rf].capacity = 1;
                        outputs[rf].is_wire = true;
                        outputs[rf].extra_latency =
                            ((cph * hops as f64).ceil() as u64).saturating_sub(1);
                    }
                    None => {
                        outputs[rf].capacity = spec.config.rf_flits_per_cycle();
                    }
                }
                outputs[rf].vcs = vec![Default::default(); vcs];
                for v in &mut outputs[rf].vcs {
                    v.credits = depth;
                }
            }
            if let Some(src) = rf_in[r] {
                inputs[rf].exists = true;
                inputs[rf].vcs = vec![Default::default(); vcs];
                inputs[rf].upstream = Some((src, base_ports[src] + 1));
            }
            routers.push(Router {
                inputs,
                outputs,
                injector: Injector::new(vcs, depth),
            });
        }

        let (mc_queues, vct_table) = match &spec.multicast {
            MulticastMode::Rf => {
                let mc = spec.mc.as_ref().expect("checked above");
                mc.validate(n);
                (vec![VecDeque::new(); mc.transmitters.len()], None)
            }
            MulticastMode::Vct(cfg) => (Vec::new(), Some(VctTable::new(*cfg))),
            MulticastMode::AsUnicasts => (Vec::new(), None),
        };

        let max_dist = fabric.max_route_len().max(1) as usize;
        let mut stats = RunStats::with_ports(n, max_dist, max_ports);
        if spec.config.collect_pair_counts {
            stats.pair_counts = vec![0; n * n];
        }
        // The sharded sweep: VCT multicast allocates tree-child packets
        // mid-sweep, which needs exclusive packet-table access, so it
        // falls back to the serial engine.
        let sweep_threads = if matches!(spec.multicast, MulticastMode::Vct(_)) {
            1
        } else {
            spec.config.threads.clamp(1, n)
        };
        let pool = (sweep_threads > 1).then(|| rfnoc_parallel::WorkerPool::new(sweep_threads));
        // Per-shard sweep timing is only worth the clock reads when the run
        // ledger will consume it, and only the sharded engine reports it.
        let time_sweeps = spec.config.ledger.is_some() && sweep_threads > 1;
        let shard_bufs = (0..sweep_threads)
            .map(|_| {
                let mut b = sweep::ShardBuf::new(max_ports);
                b.timed = time_sweeps;
                b
            })
            .collect();
        Ok(Self {
            dims,
            fabric,
            base_ports,
            max_ports,
            base_table,
            routing: spec.routing,
            port_table,
            routers,
            packets: Vec::new(),
            parents: Vec::new(),
            multicast: spec.multicast,
            mc: spec.mc,
            mc_queues,
            mc_current: None,
            vct_table,
            stats,
            cycle: 0,
            measured_outstanding: 0,
            counting: false,
            mc_enqueues: Vec::new(),
            pending_inj: Vec::new(),
            sweep_threads,
            shard_bufs,
            pool,
            sp_dist,
            detour_dist: None,
            flit_trace: Vec::new(),
            flit_trace_dropped: 0,
            telemetry: spec
                .config
                .telemetry
                .map(|t| Box::new(telemetry::TelemetryState::new(t, n, max_ports))),
            recovery: spec.config.recovery.map(|r| Box::new(faults::RecoveryState::new(r))),
            ledger: spec
                .config
                .ledger
                .map(|c| Box::new(ledger::LedgerState::new(c, sweep_threads))),
            reconfig: ReconfigState::Idle,
            reconfigurations: 0,
            active_shortcuts: spec.shortcuts,
            pending_target: None,
            failed_rf_tx: vec![false; n],
            link_failed: vec![false; n * max_base],
            mesh_link_failures: 0,
            escape_table: None,
            escape_dist: None,
            faults: spec.faults,
            last_progress: 0,
            last_completion: 0,
            active_epoch: 1,
            active_stamp: vec![0; n],
            config: spec.config,
        })
    }
}

/// Checks every scheduled fault event against the network's topology.
fn validate_fault_plan(plan: &FaultPlan, fabric: &FabricSpec) -> Result<(), SimError> {
    let n = fabric.nodes();
    let invalid = |cycle: u64, reason: String| SimError::InvalidFault { cycle, reason };
    for &(cycle, event) in plan.events() {
        match event {
            FaultEvent::ShortcutDown { src } => {
                if src >= n {
                    return Err(invalid(cycle, format!("router {src} out of range")));
                }
            }
            FaultEvent::BandDown => {}
            FaultEvent::ShortcutUp { src, dst } => {
                if src >= n || dst >= n {
                    return Err(invalid(cycle, format!("shortcut {src} -> {dst} out of range")));
                }
                if src == dst {
                    return Err(invalid(cycle, format!("shortcut at router {src} is a self-loop")));
                }
            }
            FaultEvent::MeshLinkDown { a, b } | FaultEvent::MeshLinkUp { a, b } => {
                if a >= n || b >= n || fabric.port_between(a, b).is_none() {
                    return Err(invalid(cycle, format!("no base link between {a} and {b}")));
                }
            }
            FaultEvent::LinkGlitch { a, b } => {
                if a >= n || b >= n || a == b {
                    return Err(invalid(cycle, format!("no link from {a} to {b}")));
                }
            }
        }
    }
    Ok(())
}
